"""E2 / Figure 4 (left) + Section 5 headline — per-path OWD, NY→LA.

Paper: "GTT's path significantly outperforms the BGP default path
through NTT whose delay is 30% higher on average.  The same holds for
the reverse direction."

Regenerates the figure's series (hours 25–48 of the campaign, as in the
paper's left panel) and the headline statistic for both directions.  The
timed section is the 23-hour fast-campaign sampling + statistics.
"""

import numpy as np
from conftest import emit

from repro.analysis.report import format_kv, format_table, series_sparkline
from repro.analysis.stats import campaign_table, default_vs_best

WINDOW_T0_H, WINDOW_T1_H = 25.0, 48.0
SAMPLE_INTERVAL_S = 1.0  # figure-resolution sampling of the same process


def run_campaign(deployment, src):
    measured, true = deployment.run_fast_campaign(
        src,
        WINDOW_T0_H * 3600.0,
        WINDOW_T1_H * 3600.0,
        interval_s=SAMPLE_INTERVAL_S,
    )
    return measured, true


def test_fig4_left_owd_series(benchmark, deployment):
    measured, true = benchmark(run_campaign, deployment, "ny")

    labels = {t.path_id: t.short_label for t in deployment.tunnels("ny")}
    rows = [s.as_row() for s in campaign_table(true, labels)]
    emit(
        format_table(
            rows,
            title=(
                "Fig. 4 (left) — one-way delay NY->LA, "
                f"hours {WINDOW_T0_H:.0f}-{WINDOW_T1_H:.0f}"
            ),
        )
    )
    for path_id, label in sorted(labels.items()):
        series = true.series(path_id)
        emit(f"  {label:>7} {series_sparkline(series.values * 1e3)}")

    headline = default_vs_best(true, labels, default_path_id=0)
    emit(
        format_kv(
            [
                ("default (paper: NTT)", headline.default_label),
                ("best    (paper: GTT)", headline.best_label),
                ("default mean ms", headline.default_mean * 1e3),
                ("best mean ms", headline.best_mean * 1e3),
                ("penalty (paper: ~30%)", headline.penalty_fraction),
            ],
            title="Section 5 headline",
        )
    )

    # Shape assertions: who wins and by roughly what factor.
    assert headline.default_label == "NTT"
    assert headline.best_label == "GTT"
    assert 0.22 <= headline.penalty_fraction <= 0.38

    # "The same holds for the reverse direction."
    measured_rev, true_rev = deployment.run_fast_campaign(
        "la", WINDOW_T0_H * 3600.0, WINDOW_T1_H * 3600.0, interval_s=5.0
    )
    labels_rev = {t.path_id: t.short_label for t in deployment.tunnels("la")}
    reverse = default_vs_best(
        true_rev, labels_rev, default_path_id=64
    )
    assert reverse.best_label == "GTT"
    assert 0.22 <= reverse.penalty_fraction <= 0.38

    # Relative ordering is offset-invariant: measured (offset-distorted)
    # ranks identically to the ground truth.
    def ranking(store):
        return sorted(
            store.path_ids(), key=lambda p: float(np.mean(store.series(p).values))
        )

    assert ranking(measured) == ranking(true)
