"""E15 — incremental propagation engine vs the full-scan baseline.

The perf-regression gate for the incremental work-queue engine and the
convergence snapshot cache (see README "Performance"): runs the standard
workloads from :mod:`repro.profiling.bench` under both configurations,
prints the speedup table, writes ``BENCH_PERF.json``, and FAILS if
incremental full-path discovery over the Vultr topology is not at least
3x faster than the full-scan baseline.

Environment:

* ``BENCH_SMOKE=1`` — CI mode: fewest repetitions, same workloads and
  the same 3x gate.
* ``BENCH_PERF_OUT`` — where to write the JSON report (default:
  ``BENCH_PERF.json`` in the current directory).
"""

import json
import os

from conftest import emit

from repro.analysis.report import format_table
from repro.profiling.bench import (
    DISCOVERY_MIN_SPEEDUP,
    run_discovery_workload,
    run_perf_suite,
)

SMOKE = os.environ.get("BENCH_SMOKE", "") == "1"
OUT_PATH = os.environ.get("BENCH_PERF_OUT", "BENCH_PERF.json")


def test_engine_perf_suite(benchmark):
    # The benchmark fixture times the cheap, high-signal workload (one
    # incremental discovery pass); the full before/after suite runs once
    # around it and produces the report.
    benchmark(run_discovery_workload, repeat=1, runs=1)

    report = run_perf_suite(repeat=2 if SMOKE else 3, smoke=SMOKE)

    rows = []
    for name, wl in sorted(report.workloads.items()):
        rows.append(
            {
                "workload": name,
                "full_scan_s": f"{wl.baseline_s:.4f}",
                "incremental_s": f"{wl.incremental_s:.4f}",
                "speedup": f"{wl.speedup:.2f}x",
            }
        )
    emit(format_table(rows, title="E15 — engine before/after wall-clock"))
    replay = report.workloads.get("fault_replay_mttr")
    if replay is not None and "converge_speedup" in replay.detail:
        emit(
            "fault replay control-plane share: "
            f"{replay.detail['baseline_converge_s']:.4f}s -> "
            f"{replay.detail['incremental_converge_s']:.4f}s "
            f"({replay.detail['converge_speedup']:.1f}x)"
        )

    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        handle.write(report.to_json())
    emit(f"wrote {OUT_PATH}")

    payload = json.loads(report.to_json())
    assert payload["schema"] == "tango-repro/bench-perf/v1"

    # The gate: discovery must be at least 3x faster incrementally.
    discovery = report.workloads["discovery"]
    assert discovery.speedup >= DISCOVERY_MIN_SPEEDUP, (
        f"incremental discovery is only {discovery.speedup:.2f}x faster "
        f"than full-scan (gate: {DISCOVERY_MIN_SPEEDUP:.1f}x)"
    )
    # Sanity on the other workloads: incremental never loses.
    assert report.workloads["reset_session"].speedup >= 1.0
    if replay is not None:
        assert replay.detail["converge_speedup"] >= 1.0
