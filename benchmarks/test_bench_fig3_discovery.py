"""E1 / Figure 3 — path discovery between the Vultr DCs.

Paper: "we found that the LA and the NY DCs are connected by at least
four paths in each direction ... Traffic from LA to NY can be routed
through (in order of preference by Vultr's routers): (i) NTT; (ii) Telia;
(iii) GTT; and (iv) NTT and Cogent ... Traffic from NY to LA can be
routed through: (i) NTT; (ii) Telia; (iii) GTT; and (iv) Level3."

The benchmark reruns the iterative suppression algorithm on the modeled
control plane and regenerates the figure's path/community table; the
timed section is one full bidirectional discovery.
"""

from conftest import emit

from repro.analysis.report import format_table
from repro.core.discovery import PathDiscovery
from repro.scenarios.vultr import VULTR_ASN, build_bgp_network

PAPER_LA_TO_NY = ["NTT", "Telia", "GTT", "Cogent"]
PAPER_NY_TO_LA = ["NTT", "Telia", "GTT", "Level3"]


def run_discovery():
    bgp = build_bgp_network()
    discovery = PathDiscovery(bgp, VULTR_ASN)
    la_to_ny = discovery.discover(
        announcer="tango-ny", observer="tango-la", probe_prefix="2001:db8:f1::/48"
    )
    ny_to_la = discovery.discover(
        announcer="tango-la", observer="tango-ny", probe_prefix="2001:db8:f2::/48"
    )
    return la_to_ny, ny_to_la


def test_fig3_path_discovery(benchmark):
    la_to_ny, ny_to_la = benchmark(run_discovery)

    rows = []
    for direction, result, paper in (
        ("LA->NY", la_to_ny, PAPER_LA_TO_NY),
        ("NY->LA", ny_to_la, PAPER_NY_TO_LA),
    ):
        for path, expected in zip(result.paths, paper):
            rows.append(
                {
                    "direction": direction,
                    "rank": path.index + 1,
                    "paper": expected,
                    "measured": path.short_label,
                    "as_path": path.label,
                    "communities": len(path.communities),
                }
            )
    emit(format_table(rows, title="Fig. 3 — discovered paths per direction"))

    assert [p.short_label for p in la_to_ny.paths] == PAPER_LA_TO_NY
    assert [p.short_label for p in ny_to_la.paths] == PAPER_NY_TO_LA
    # "at least four paths in each direction", then unreachable.
    assert la_to_ny.path_count == 4
    assert ny_to_la.path_count == 4
    # Community sets grow by one per rank: the recorded recipe.
    for result in (la_to_ny, ny_to_la):
        assert [len(p.communities) for p in result.paths] == [0, 1, 2, 3]
