"""E3 / Figure 4 (middle) — the intra-provider route change.

Paper: "Around hour 121.25, the one-way-delay of GTT's route dramatically
increases during a brief period of instability.  After this, it quickly
stabilizes at a new minimum that has a 5ms longer one-way delay.  This
persists for around 10 minutes until the original path is used.  Thus,
during these route-change events, selecting an alternate path based on
live data is required for optimal performance."

Regenerates the hour-long window around the event, detects it, and shows
that an adaptive policy sidesteps it while BGP-default-on-GTT would not.
"""

import numpy as np
from conftest import emit

from repro.analysis.replay import PolicyReplay, hysteresis_chooser, static_chooser
from repro.analysis.report import format_kv, format_table, series_sparkline
from repro.analysis.stats import detect_excursions
from repro.scenarios.vultr import ROUTE_CHANGE_HOUR

EVENT_S = ROUTE_CHANGE_HOUR * 3600.0
T0, T1 = EVENT_S - 900.0, EVENT_S + 1500.0  # the figure's 1-hour frame
GTT = 2


def run_window(deployment):
    return deployment.run_fast_campaign("ny", T0, T1, interval_s=0.1)


def test_fig4_middle_route_change(benchmark, deployment):
    measured, true = benchmark(run_window, deployment)

    gtt = true.series(GTT)
    emit(
        "Fig. 4 (middle) — GTT NY->LA around hour "
        f"{ROUTE_CHANGE_HOUR}:\n  {series_sparkline(gtt.values * 1e3, 80)}"
    )

    before = float(np.mean(gtt.window(T0, EVENT_S - 10.0)[1]))
    plateau = float(np.mean(gtt.window(EVENT_S + 60.0, EVENT_S + 540.0)[1]))
    after = float(np.mean(gtt.window(EVENT_S + 720.0, T1)[1]))
    excursions = detect_excursions(
        gtt.times, gtt.values, threshold=before + 0.002, merge_gap_s=30.0
    )
    emit(
        format_kv(
            [
                ("baseline before (ms)", before * 1e3),
                ("new plateau (ms)", plateau * 1e3),
                ("shift (paper: +5 ms)", (plateau - before) * 1e3),
                ("after revert (ms)", after * 1e3),
                ("event duration (paper: ~10 min)", excursions[0].duration),
            ],
            title="route-change event",
        )
    )

    # Shape: +5 ms plateau for ~10 minutes, then revert.
    assert (plateau - before) * 1e3 == np.clip((plateau - before) * 1e3, 4.0, 6.0)
    assert after * 1e3 == np.clip(after * 1e3, before * 1e3 - 1.0, before * 1e3 + 1.0)
    assert len(excursions) == 1
    assert 480.0 <= excursions[0].duration <= 720.0

    # "selecting an alternate path based on live data is required":
    # pinned-to-GTT eats the plateau; hysteresis routing moves to Telia
    # for the duration and comes back.
    replay = PolicyReplay(measured, true, decision_interval_s=1.0)
    pinned = replay.run(
        static_chooser(GTT), T0, T1, name="pinned-GTT", initial_path=GTT
    )
    adaptive = replay.run(
        hysteresis_chooser(margin_s=0.0005, dwell_s=5.0),
        T0,
        T1,
        name="tango",
        initial_path=GTT,
    )
    rows = [pinned.as_row(), adaptive.as_row()]
    emit(format_table(rows, title="policy outcome over the event window"))
    assert adaptive.mean_delay < pinned.mean_delay
    assert adaptive.switch_count >= 2  # leaves GTT and returns
