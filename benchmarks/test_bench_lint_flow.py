"""Wall-time gate for the whole-program lint pass (``--flow``).

The flow pass runs on every CI push, so it must stay interactive: the
cold full-tree analysis (empty cache — parse + extract + fixpoint +
reporting for all of ``src/repro``) is gated at 60 s, and the warm
incremental rerun must re-analyze nothing.  Both timings are merged
into ``BENCH_PERF.json`` under the ``lint_flow`` key (the file's other
keys are written by ``test_bench_engine_perf``).

Environment:

* ``BENCH_PERF_OUT`` — the JSON report path (default: ``BENCH_PERF.json``
  in the current directory).
"""

import io
import json
import os
import time
from pathlib import Path

from conftest import emit

from repro.analysis.report import format_table
from repro.lint import run_lint
from repro.lint.engine import LintEngine
from repro.lint.flow import FlowAnalyzer, SummaryCache

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = str(REPO_ROOT / "src" / "repro")
OUT_PATH = os.environ.get("BENCH_PERF_OUT", "BENCH_PERF.json")

#: Cold full-tree flow pass must finish within this budget.
COLD_GATE_S = 60.0


def _timed_lint(cache_dir: str) -> tuple[float, int]:
    out = io.StringIO()
    start = time.perf_counter()
    status = run_lint(
        [SRC], flow=True, flow_cache=cache_dir, stdout=out, stderr=out
    )
    elapsed = time.perf_counter() - start
    assert status == 0, out.getvalue()
    return elapsed, status


def test_lint_flow_cold_and_warm(benchmark, tmp_path):
    cache_dir = str(tmp_path / "flow-cache")
    files = list(LintEngine.iter_python_files([SRC]))

    cold_s, _ = _timed_lint(cache_dir)
    warm_s, _ = _timed_lint(cache_dir)

    # The warm pass must be fully incremental: nothing re-analyzed.
    warm = FlowAnalyzer(SummaryCache(cache_dir)).run(files)
    assert warm.analyzed == [], warm.analyzed
    assert len(warm.cached) == len(files)

    # The benchmark fixture times the steady-state (warm) pass.
    benchmark(
        lambda: FlowAnalyzer(SummaryCache(cache_dir)).run(files)
    )

    emit(
        format_table(
            [
                {
                    "pass": "cold (empty cache)",
                    "wall_s": f"{cold_s:.2f}",
                    "modules": str(len(files)),
                },
                {
                    "pass": "warm (full cache)",
                    "wall_s": f"{warm_s:.2f}",
                    "modules": "0 re-analyzed",
                },
            ],
            title="lint --flow wall-clock",
        )
    )

    payload = {}
    if os.path.exists(OUT_PATH):
        try:
            with open(OUT_PATH, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except ValueError:
            payload = {}
    payload["lint_flow"] = {
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "files": len(files),
        "gate_cold_s": COLD_GATE_S,
    }
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    emit(f"merged lint_flow into {OUT_PATH}")

    assert cold_s <= COLD_GATE_S, (
        f"cold full-tree flow pass took {cold_s:.1f}s "
        f"(gate: {COLD_GATE_S:.0f}s)"
    )
