"""E19 — vectorized fluid engine and batched controller tick scheduler.

The vector/tick perf gate (see README "Performance" and EXPERIMENTS.md
E19): runs the synthetic many-tunnel engine comparison and the
1000-controller farm comparison from :mod:`repro.traffic.bench`, prints
the measured throughput, and FAILS if

* the vectorized engine sustains fewer than 10,000,000 flow-updates/s
  (modeled concurrent flows x steps / wall), or
* the vectorized engine is less than 5x faster than the scalar oracle
  at stepping the same workload, or
* the vectorized run is not byte-identical to the scalar oracle
  (telemetry series and loss ledgers), or
* 1000 controllers on one shared tick wheel need more than one live
  recurring heap event, drift from the per-controller-task tick counts,
  or blow the 100 ms per-round wall budget.

Environment:

* ``BENCH_SMOKE=1`` — CI mode: shorter simulated windows, same gates.
* ``BENCH_VECTOR_OUT`` — where to write the JSON report (default:
  ``BENCH_VECTOR.json`` in the current directory).
"""

import json
import os

from conftest import emit

from repro.traffic.bench import (
    TICK_BUDGET_S,
    TICK_CONTROLLERS,
    VECTOR_MIN_SPEEDUP,
    VECTOR_TARGET_UPDATES_PER_S,
    run_tick_workload,
    run_vector_workload,
)

SMOKE = os.environ.get("BENCH_SMOKE", "") == "1"
OUT_PATH = os.environ.get("BENCH_VECTOR_OUT", "BENCH_VECTOR.json")


def test_vector_engine_and_tick_scheduler(benchmark):
    # The benchmark fixture times the high-signal piece (a short
    # vectorized run); the gated comparisons run once around it.
    benchmark(
        run_vector_workload, n_tunnels=64, duration_s=2.0, step_s=0.1
    )

    vector = run_vector_workload(duration_s=10.0 if SMOKE else 30.0)
    ticks = run_tick_workload(duration_s=2.0 if SMOKE else 10.0)

    emit(
        "E19 vector: "
        f"{vector.detail['buckets']} buckets x {vector.detail['steps']} "
        f"steps, {vector.detail['flow_updates_per_s']:,.0f} "
        f"flow-updates/s, {vector.detail['speedup']:.1f}x over scalar, "
        f"bit-equivalent={vector.detail['bit_equivalent']}"
    )
    emit(
        "E19 ticks: "
        f"{ticks.detail['controllers']} controllers, "
        f"{ticks.detail['rounds']} rounds at "
        f"{ticks.detail['per_round_s'] * 1e3:.2f}ms/round "
        f"(budget {TICK_BUDGET_S * 1e3:.0f}ms), heap events "
        f"{ticks.detail['heap_live_dedicated']} -> "
        f"{ticks.detail['heap_live_shared']}"
    )

    payload = {
        "schema": "tango-repro/bench-vector/v1",
        "smoke": SMOKE,
        "passed": vector.passed and ticks.passed,
        "gates": {
            "vector_target_updates_per_s": VECTOR_TARGET_UPDATES_PER_S,
            "vector_min_speedup": VECTOR_MIN_SPEEDUP,
            "tick_controllers": TICK_CONTROLLERS,
            "tick_budget_s": TICK_BUDGET_S,
        },
        "workloads": {
            "vector": vector.as_dict(),
            "ticks": ticks.as_dict(),
        },
    }
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    emit(f"wrote {OUT_PATH}")

    # Gate 1: the vectorized engine is only trustworthy while it stays
    # bit-identical to the scalar oracle.
    assert vector.detail["bit_equivalent"], (
        "vectorized engine diverged from the scalar oracle "
        "(telemetry series or loss ledgers differ)"
    )

    # Gate 2: sustained flow-update throughput.
    assert (
        vector.detail["flow_updates_per_s"] >= VECTOR_TARGET_UPDATES_PER_S
    ), (
        f"vectorized engine sustained only "
        f"{vector.detail['flow_updates_per_s']:,.0f} flow-updates/s "
        f"(gate: {VECTOR_TARGET_UPDATES_PER_S:,.0f})"
    )

    # Gate 3: the regression gate — the vectorized step loop must beat
    # the scalar oracle by at least 5x on the same workload.
    assert vector.detail["speedup"] >= VECTOR_MIN_SPEEDUP, (
        f"vectorized engine only {vector.detail['speedup']:.2f}x faster "
        f"than the scalar oracle (gate: {VECTOR_MIN_SPEEDUP:.0f}x)"
    )

    # Gate 4: the controller farm multiplexes onto one heap event,
    # reproduces per-controller tick counts, and fits the round budget.
    assert ticks.detail["heap_live_shared"] == 1, (
        f"shared wheel left {ticks.detail['heap_live_shared']} live "
        f"recurring heap events (gate: 1)"
    )
    assert ticks.detail["ticks_match_dedicated"], (
        "shared-wheel controllers drifted from the per-task tick counts"
    )
    assert ticks.detail["per_round_s"] <= TICK_BUDGET_S, (
        f"one wheel round over {ticks.detail['controllers']} controllers "
        f"took {ticks.detail['per_round_s'] * 1e3:.2f}ms "
        f"(budget: {TICK_BUDGET_S * 1e3:.0f}ms)"
    )
    assert vector.passed and ticks.passed
