"""E7 / Section 3 ablation — one-way measurement vs RTT probing.

The paper's motivation (Sections 2.1 and 3): round-trip measurements
cannot be decomposed into the two one-way components, and end-to-end
probes are dominated by edge/host noise.  This ablation grants the RTT
prober the same path diversity Tango has and shows both failure modes:

* a forward-only degradation paired with an equal reverse improvement is
  invisible to RTT/2, so the prober stays on the degraded path while
  Tango's one-way measurements flag it immediately;
* the RTT estimate's noise floor is an order of magnitude above the
  border-to-border one-way measurement's.
"""

import numpy as np
from conftest import emit

from repro.analysis.replay import PolicyReplay, greedy_chooser
from repro.analysis.report import format_kv, format_table
from repro.baselines.rtt_probing import RttProbingBaseline
from repro.netsim.delaymodels import AsymmetryEvent
from repro.scenarios.vultr import (
    LA_TO_NY_PATHS,
    NY_TO_LA_PATHS,
    VultrDeployment,
)
from repro.telemetry.store import MeasurementStore

T1 = 300.0
EVENT = AsymmetryEvent(start=100.0, duration=120.0, shift=0.006)
GTT = 2


def build_campaign():
    """Steady-state Vultr paths with an asymmetric event on GTT:
    forward +6 ms, reverse −6 ms (e.g. an asymmetric intradomain
    reroute) — RTT is exactly unchanged."""
    fwd, rev = MeasurementStore(), MeasurementStore()
    times = np.arange(0.0, T1, 0.01)
    for index, label in enumerate(["NTT", "Telia", "GTT", "Level3"]):
        model = NY_TO_LA_PATHS[label].build(include_events=False)
        values = model.delays(times)
        if index == GTT:
            values = values + EVENT.extra_delays(times)
        fwd.extend(index, times, values)
    for index, label in enumerate(["NTT", "Telia", "GTT", "Cogent"]):
        model = LA_TO_NY_PATHS[label].build(include_events=False)
        values = model.delays(times)
        if index == GTT:
            values = values - EVENT.extra_delays(times)
        rev.extend(index, times, values)
    return fwd, rev


def run_ablation():
    fwd, rev = build_campaign()
    rtt = RttProbingBaseline(fwd, rev, probe_interval_s=1.0)
    rtt_result = rtt.run(0.0, T1)
    tango_replay = PolicyReplay(
        fwd, fwd, decision_interval_s=1.0, visibility_latency_s=0.2
    )
    tango_result = tango_replay.run(greedy_chooser(), 0.0, T1, name="tango-oneway")
    return fwd, rev, rtt, rtt_result, tango_result


def test_oneway_vs_rtt_ablation(benchmark):
    fwd, rev, rtt, rtt_result, tango_result = benchmark(run_ablation)

    emit(
        format_table(
            [rtt_result.as_row(), tango_result.as_row()],
            title="E7 — forward-direction delay achieved by each prober",
        )
    )

    # During the event, Tango leaves GTT; the RTT prober cannot see it.
    inside = (rtt_result.times >= EVENT.start + 20.0) & (
        rtt_result.times < EVENT.end
    )
    rtt_on_gtt = float(np.mean(rtt_result.choices[inside] == GTT))
    tango_on_gtt = float(np.mean(tango_result.choices[inside] == GTT))
    # Estimate blindness: the RTT/2 estimate of GTT barely moves.
    estimates = rtt.build_estimates(0.0, T1)
    est = estimates.series(GTT)
    est_before = float(np.mean(est.window(50.0, 99.0)[1]))
    est_during = float(np.mean(est.window(120.0, 219.0)[1]))
    truth_shift = 0.006
    emit(
        format_kv(
            [
                ("true forward shift (ms)", truth_shift * 1e3),
                ("RTT/2 estimate shift (ms)", (est_during - est_before) * 1e3),
                ("RTT prober time on degraded path", rtt_on_gtt),
                ("Tango time on degraded path", tango_on_gtt),
                (
                    "RTT estimate noise floor (ms, std)",
                    float(np.std(est.window(0.0, 99.0)[1])) * 1e3,
                ),
                (
                    "Tango measurement noise (ms, std)",
                    float(np.std(fwd.series(GTT).window(0.0, 99.0)[1])) * 1e3,
                ),
            ],
            title="asymmetry blindness and noise",
        )
    )

    assert abs(est_during - est_before) < truth_shift / 4  # blind
    assert rtt_on_gtt > 0.9  # stays on the degraded path
    assert tango_on_gtt < 0.1  # flees it
    assert tango_result.mean_delay < rtt_result.mean_delay
    # Edge/host noise dominates the RTT estimates.
    rtt_noise = float(np.std(est.window(0.0, 99.0)[1]))
    tango_noise = float(np.std(fwd.series(GTT).window(0.0, 99.0)[1]))
    assert rtt_noise > 3 * tango_noise
