"""E6b (extension) — real TCP over Tango tunnels during the instability.

The analytic model (E6) shows head-of-line blocking; this benchmark runs
an actual Reno-style TCP transfer packet-by-packet through the Vultr
deployment while GTT suffers the Figure 4-right instability *with
elevated loss*, and compares:

* a transfer pinned to GTT (nominally the fastest path),
* the same transfer pinned to Telia (stable, 4 ms slower),

reproducing "should a packet experience delay during one of these
spikes, future application packets will be delivered out-of-order
(resulting in a reduction in TCP throughput)" with a real congestion
window, fast retransmits, and timeouts.
"""

import ipaddress

from conftest import emit

from repro.analysis.report import format_table
from repro.core.policy import StaticSelector
from repro.netsim.delaymodels import InstabilityEvent
from repro.netsim.links import WindowedLoss
from repro.netsim.packet import Ipv6Header, Packet, UdpHeader
from repro.netsim.transport import connect_tcp
from repro.scenarios.vultr import VultrDeployment

TRANSFER_BYTES = 3_000_000  # ~2200 MSS segments
#: MSS clamped for tunnel overhead: 1500 MTU - 40 (inner IPv6) - 8 (inner
#: UDP) - 64 (Tango encapsulation) = 1388; use 1360 for slack.  (With a
#: 1400-byte MSS every segment exceeds the wide-area MTU once
#: encapsulated and the transfer deadlocks — the classic tunnel-MTU trap,
#: reproduced faithfully by the simulator's MTU accounting.)
MSS = 1360
EVENT = dict(start=2.0, duration=40.0)


def run_transfer(path_index: int, conn_id: int):
    deployment = VultrDeployment(include_events=False)
    deployment.establish()
    # Stage the instability (delay spikes + 3% loss) on GTT NY->LA.
    link = deployment.net.links["ny->la:GTT"]
    event = InstabilityEvent(
        start=EVENT["start"],
        duration=EVENT["duration"],
        spike_probability=0.04,
        spike_min=0.010,
        spike_max=0.050,
        seed=88,
    )
    link.delay = link.delay.with_event(event)
    link.loss = WindowedLoss.around_events([event], elevated=0.03)

    deployment.set_data_policy("ny", StaticSelector(path_index))
    ny, la = deployment.pairing.a, deployment.pairing.b

    def builder(src, dst, sport):
        def build():
            return Packet(
                headers=[
                    Ipv6Header(
                        src=ipaddress.IPv6Address(src),
                        dst=ipaddress.IPv6Address(dst),
                    ),
                    UdpHeader(sport=sport, dport=sport + 1),
                ],
                flow_label=conn_id,
            )

        return build

    sender, receiver, data_cb, ack_cb = connect_tcp(
        deployment.sim,
        send_data=deployment.sender_for("ny"),
        send_ack=deployment.sender_for("la"),
        build_data_packet=builder(
            str(ny.host_address(3)), str(la.host_address(3)), 6000
        ),
        build_ack_packet=builder(
            str(la.host_address(3)), str(ny.host_address(3)), 6002
        ),
        transfer_bytes=TRANSFER_BYTES,
        conn_id=conn_id,
        mss=MSS,
    )
    deployment.host_la._on_packet = data_cb
    deployment.host_ny._on_packet = ack_cb
    sender.start()
    deployment.net.run(until=120.0)
    return sender


def test_tcp_goodput_under_instability(benchmark):
    def run_both():
        return {
            "GTT (unstable)": run_transfer(2, conn_id=21),
            "Telia (stable)": run_transfer(1, conn_id=22),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = []
    for label, sender in results.items():
        stats = sender.stats
        rows.append(
            {
                "path": label,
                "done": sender.done,
                "seconds": stats.completed_at,
                "goodput_kbps": (
                    stats.goodput_bps() / 1e3 if sender.done else None
                ),
                "retx": stats.retransmissions,
                "fast_retx": stats.fast_retransmits,
                "timeouts": stats.timeouts,
            }
        )
    emit(
        format_table(
            rows, title="E6b — 3 MB TCP transfer through the instability"
        )
    )

    gtt = results["GTT (unstable)"]
    telia = results["Telia (stable)"]
    assert gtt.done and telia.done
    # The stable path wins despite its higher propagation delay.
    assert telia.stats.completed_at < gtt.stats.completed_at
    # And the mechanism is TCP's loss/reordering response, not magic:
    assert gtt.stats.retransmissions > 5
    assert gtt.stats.fast_retransmits + gtt.stats.timeouts > 0
    assert telia.stats.retransmissions == 0
