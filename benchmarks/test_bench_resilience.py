"""E14 (extension) — resilient transport: crash recovery + degraded OWD.

One resilient edge (reliable telemetry channel, RTT-probe fallback,
journaled controller under a supervisor) rides out a 3 s telemetry
blackout and a mid-run controller crash.  The table reports:

* **recovery time** — crash detection to warm restart, versus BGP's
  convergence delay (the no-controller alternative for rerouting);
* **degraded-mode OWD penalty** — mean excess one-way delay of the
  selector's choice over the true-best path while running on local
  RTT-probe estimates, versus the same regret in cooperative mode.

Shape assertions: the crash is recovered in under 2 simulated seconds
(two orders faster than BGP), degraded mode engages within the staleness
horizon and heals afterwards, and the degraded-mode penalty stays under
a millisecond — the paper's cooperative feed is better, but losing it
degrades selection, not connectivity.
"""

import numpy as np
from conftest import emit

from repro.analysis.report import format_kv
from repro.bgp.network import CONVERGENCE_DELAY_S
from repro.core.controller import QuarantinePolicy, TangoController
from repro.core.policy import LowestDelaySelector
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.netsim.trace import PacketFactory
from repro.resilience import (
    ChannelConfig,
    ControllerJournal,
    DegradedModeConfig,
    RttFallbackEstimator,
)
from repro.scenarios.vultr import VultrDeployment

DROP_AT, DROP_FOR = 5.0, 3.0
CRASH_AT = 12.0
HORIZON_S = 0.5
RUN_UNTIL = 20.0
WARMUP_S = 2.0  # selector windows still filling; excluded from regret

PLAN = FaultPlan(
    name="e14-resilience",
    seed=23,
    events=(
        FaultEvent(
            "telemetry_drop",
            at=DROP_AT,
            duration=DROP_FOR,
            params={"edge": "ny"},
        ),
        FaultEvent("controller_crash", at=CRASH_AT, params={"edge": "ny"}),
    ),
)


def run_campaign():
    deployment = VultrDeployment(
        include_events=False,
        telemetry_channel=ChannelConfig(report_interval_s=0.1),
    )
    deployment.establish()
    deployment.start_path_probes("ny")
    deployment.set_data_policy(
        "ny", LowestDelaySelector(deployment.gateway_ny.outbound, window_s=1.0)
    )
    estimator = RttFallbackEstimator.for_deployment(deployment, "ny")
    estimator.start()
    journal = ControllerJournal(checkpoint_every_ticks=10)
    controller = TangoController(
        deployment.gateway_ny,
        deployment.sim,
        interval_s=0.1,
        staleness_s=HORIZON_S,
        quarantine=QuarantinePolicy(),
        degraded=DegradedModeConfig(
            estimates=estimator.estimates, horizon_s=HORIZON_S
        ),
        journal=journal,
    )
    controller.start()
    deployment.attach_controller("ny", controller)
    supervisor = deployment.supervise("ny", journal=journal)

    factory = PacketFactory(
        src=str(deployment.pairing.a.host_address(4)),
        dst=str(deployment.pairing.b.host_address(4)),
        flow_label=9,
    )
    send = deployment.sender_for("ny")
    deployment.sim.call_every(0.02, lambda: send(factory.build()))

    FaultInjector(deployment, PLAN).arm()
    deployment.net.run(until=RUN_UNTIL)
    return deployment, controller, supervisor


def regret_by_mode(deployment, controller):
    """Per-mode mean/max excess OWD (ms) of the chosen path over the
    true-best path, from the calibrated ground-truth delay models."""
    mask = (controller.choice_trace.values >= 0) & (
        controller.choice_trace.times >= WARMUP_S
    )
    times = controller.choice_trace.times[mask]
    choices = controller.choice_trace.values[mask]
    table = deployment.calibrations["ny"]
    delays = {
        t.path_id: table[t.short_label].build(False).delays(times)
        for t in deployment.tunnels("ny")
    }
    best = np.vstack(list(delays.values())).min(axis=0)
    chosen = np.array([delays[int(c)][i] for i, c in enumerate(choices)])
    regret_ms = (chosen - best) * 1e3

    marks = [(m.t, m.mode) for m in controller.mode_log]

    def mode_at(t):
        mode = "cooperative"
        for mark_t, mark_mode in marks:
            if t < mark_t:
                break
            mode = mark_mode
        return mode

    modes = np.array([mode_at(t) for t in times])
    out = {}
    for mode in ("cooperative", "degraded"):
        sel = modes == mode
        out[mode] = (
            int(sel.sum()),
            float(regret_ms[sel].mean()) if sel.any() else float("nan"),
            float(regret_ms[sel].max()) if sel.any() else float("nan"),
        )
    return out


def test_resilience_recovery_and_degraded_penalty(benchmark):
    deployment, controller, supervisor = benchmark.pedantic(
        run_campaign, rounds=1, iterations=1
    )

    recovery = supervisor.recovery_times()
    regret = regret_by_mode(deployment, controller)
    downgrades = [m.t for m in controller.mode_log if m.mode == "degraded"]
    upgrades = [m.t for m in controller.mode_log if m.mode == "cooperative"]
    coop_n, coop_mean, _ = regret["cooperative"]
    deg_n, deg_mean, deg_max = regret["degraded"]

    emit(
        format_kv(
            [
                ("crashes", f"{len(recovery)}"),
                ("recovery_s", f"{recovery[0]:.3f}"),
                ("bgp_convergence_s", f"{CONVERGENCE_DELAY_S:.0f}"),
                ("speedup_vs_bgp", f"{CONVERGENCE_DELAY_S / recovery[0]:.0f}x"),
                ("degraded_enter_s", f"{downgrades[0]:.2f}"),
                ("degraded_exit_s", f"{upgrades[0]:.2f}"),
                ("degraded_ticks", f"{deg_n}"),
                ("owd_regret_coop_ms", f"{coop_mean:.4f}"),
                ("owd_regret_degraded_ms", f"{deg_mean:.4f}"),
                ("owd_regret_degraded_max_ms", f"{deg_max:.4f}"),
            ],
            title="Resilient transport: crash recovery + degraded OWD (E14)",
        )
    )

    # Crash recovered warm, two orders faster than BGP convergence.
    assert supervisor.restarts == 1
    assert controller.running
    assert recovery[0] < 2.0
    assert CONVERGENCE_DELAY_S / recovery[0] > 100
    # Degraded mode engaged within the horizon of the blackout (plus a
    # couple of control ticks) and healed after the mirror returned.
    assert DROP_AT < downgrades[0] <= DROP_AT + HORIZON_S + 0.2
    assert upgrades and upgrades[0] > DROP_AT + DROP_FOR
    assert controller.mode == "cooperative"
    assert deg_n > 0
    # Local RTT-probe selection costs at most a millisecond of OWD here:
    # degraded means slightly worse choices, never lost connectivity.
    assert deg_mean < 1.0
    assert coop_mean < 1.0
