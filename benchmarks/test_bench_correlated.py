"""E18 — correlated-failure robustness: SRLG faults and fast reroute.

Fans seeded correlated-failure plans (shared-SRLG fiber cuts, two-group
overlaps, regional outages, drain-then-fail maintenance windows) across
worker processes; every plan runs with the failure-domain defense
(diversity-aware selection + make-before-break fast reroute) and with
the plain quarantine stack, so each row is its own ablation.  Prints the
per-archetype table, merges the report into ``BENCH_ROBUST.json`` under
the ``E18`` key, and FAILS unless

* the defended controller switches off a failed risk group within one
  telemetry horizon (precomputed SRLG-disjoint backup),
* the defended victim sends zero post-detection traffic on a failed
  SRLG while every undefended run demonstrably rides one,
* defended availability holds >= 0.9 through the two-group outage
  (>= the standard SLO elsewhere), and regret stays within budget.

Environment:

* ``BENCH_SMOKE=1`` — CI mode: 8 plans instead of the full 32.
* ``BENCH_ROBUST_OUT`` — report path (default ``BENCH_ROBUST.json``).
* ``BENCH_ROBUST_WORKERS`` — worker processes (default 4).
"""

import json
import os
import statistics
from collections import defaultdict

from conftest import emit, merge_experiment

from repro.analysis.report import format_table
from repro.campaign import run_correlated_campaign

SMOKE = os.environ.get("BENCH_SMOKE", "") == "1"
PLANS = 8 if SMOKE else 32
WORKERS = int(os.environ.get("BENCH_ROBUST_WORKERS", "4"))
OUT_PATH = os.environ.get("BENCH_ROBUST_OUT", "BENCH_ROBUST.json")
MASTER_SEED = 2026


def test_correlated_campaign(benchmark):
    report = benchmark.pedantic(
        run_correlated_campaign,
        args=(PLANS, MASTER_SEED),
        kwargs={"workers": WORKERS},
        rounds=1,
        iterations=1,
    )

    by_archetype = defaultdict(list)
    for row in report.results:
        by_archetype[row["archetype"]].append(row)
    rows = []
    for archetype in sorted(by_archetype):
        group = by_archetype[archetype]
        switchovers = [
            r["defended"]["switchover_s"]
            for r in group
            if r["defended"]["switchover_s"] is not None
        ]
        rows.append(
            {
                "archetype": archetype,
                "plans": str(len(group)),
                "def_avail": f"{min(r['defended']['availability'] for r in group):.4f}",
                "undef_avail": f"{min(r['undefended']['availability'] for r in group):.4f}",
                "switchover_s": (
                    f"{statistics.median(switchovers):.3f}" if switchovers else "-"
                ),
                "undef_failed_ticks": str(
                    max(r["undefended"]["failed_srlg_ticks"] for r in group)
                ),
            }
        )
    emit(
        format_table(
            rows, title="E18 — correlated failures: defended vs undefended"
        )
    )
    emit(
        "E18 gates: "
        f"switchover {report.gates['defended_switchover_median_s']:.3f} s "
        f"(budget {report.gates['switchover_budget_s']:.1f} s), "
        f"frr switchovers {report.gates['frr_switchovers_total']}, "
        f"two-group availability slo "
        f"{report.gates['availability_two_group_slo']:.2f}"
    )

    merge_experiment(OUT_PATH, "E18", report.to_json())
    emit(f"merged E18 into {OUT_PATH} ({PLANS} plans, {WORKERS} workers)")

    payload = json.loads(report.to_json())
    assert payload["experiment"] == "E18"
    assert payload["plans"] == PLANS

    # Every row must show the ablation: the defended stack never rides a
    # failed risk group after detection and switches within one horizon;
    # the undefended stack pays the detection latency on every plan.
    for row in report.results:
        assert row["defended"]["failed_srlg_ticks"] == 0
        assert row["defended"]["switchover_s"] <= 1.0
        assert row["undefended"]["failed_srlg_ticks"] > 0
    two_group = [r for r in report.results if r["archetype"] == "two_group"]
    assert two_group, "campaign generated no two-group plans"
    for row in two_group:
        assert row["defended"]["availability"] >= 0.9

    assert report.passed, "E18 gate failures:\n" + "\n".join(report.failures)
