"""Ablation sweep (DESIGN.md Section 5) — policy knobs vs outcomes.

Two design choices the core policies expose, swept over the route-change
window (the regime where responsiveness and stability fight):

* hysteresis margin: small margins react to everything (many switches),
  large margins never move — mean delay is U-shaped in between;
* probe interval: the paper's 10 ms cadence vs slower probing — slower
  measurement directly lengthens event-reaction time.
"""

import numpy as np
from conftest import emit

from repro.analysis.replay import PolicyReplay, greedy_chooser, hysteresis_chooser
from repro.analysis.report import format_table
from repro.scenarios.vultr import ROUTE_CHANGE_HOUR

EVENT_S = ROUTE_CHANGE_HOUR * 3600.0
T0, T1 = EVENT_S - 300.0, EVENT_S + 900.0
GTT = 2
MARGINS_MS = (0.1, 0.5, 1.0, 2.0, 5.0, 20.0)
PROBE_INTERVALS = (0.01, 0.1, 1.0, 10.0)


def sweep_margin(deployment):
    measured, true = deployment.run_fast_campaign("ny", T0, T1, 0.01)
    replay = PolicyReplay(measured, true, decision_interval_s=0.5)
    rows = []
    for margin_ms in MARGINS_MS:
        result = replay.run(
            hysteresis_chooser(margin_s=margin_ms * 1e-3, dwell_s=2.0),
            T0,
            T1,
            name=f"margin={margin_ms}ms",
            initial_path=GTT,
        )
        rows.append(result.as_row())
    return rows


def test_hysteresis_margin_sweep(benchmark, deployment):
    rows = benchmark(sweep_margin, deployment)
    emit(format_table(rows, title="ablation — hysteresis margin"))
    switches = [row["switches"] for row in rows]
    # Monotone: larger margins can only reduce switching.
    assert all(a >= b for a, b in zip(switches, switches[1:]))
    # A huge margin degenerates to pinned (never switches) and eats the
    # event; a moderate margin avoids it.
    by_margin = dict(zip(MARGINS_MS, rows))
    assert by_margin[20.0]["switches"] == 0
    assert by_margin[0.5]["mean_ms"] < by_margin[20.0]["mean_ms"]


def test_probe_interval_sweep(benchmark, deployment):
    def sweep():
        rows = []
        for interval in PROBE_INTERVALS:
            measured, true = deployment.run_fast_campaign(
                "ny", T0, T1, interval_s=max(interval, 0.01)
            )
            # Sparser probing also means staler visibility.
            replay = PolicyReplay(
                measured,
                true,
                decision_interval_s=0.5,
                visibility_latency_s=interval,
            )
            result = replay.run(
                greedy_chooser(),
                T0,
                T1,
                name=f"probe={interval}s",
                initial_path=GTT,
            )
            rows.append(
                {
                    **result.as_row(),
                    "interval_s": interval,
                    # Fraction of plateau time spent at GTT's degraded
                    # level (33.2 ms) rather than on the Telia detour
                    # (32.0-32.5 ms): the escape-success metric.
                    "plateau_exposure": float(
                        np.mean(
                            result.achieved[
                                (result.times >= EVENT_S + 60.0)
                                & (result.times < EVENT_S + 540.0)
                            ]
                            > 0.0328
                        )
                    ),
                }
            )
        return rows

    rows = benchmark(sweep)
    emit(format_table(rows, title="ablation — probe interval (10 ms = paper)"))
    exposures = [row["plateau_exposure"] for row in rows]
    # Sparser measurement -> more time stuck on the degraded plateau.
    assert exposures[0] <= exposures[-1]
    assert exposures[-1] > exposures[0] or exposures[0] < 0.2
