"""E5 / Section 5 jitter text — sub-second jitter per path, LA→NY.

Paper: "To measure sub-second network jitter, we calculated the mean
standard deviation of a 1-second rolling window.  For example, in the
LA to NY direction ... the least noisy path GTT had a rolling window
standard deviation of .01ms while Telia had a deviation of .33ms."
"""

from conftest import emit

from repro.analysis.report import format_table
from repro.telemetry.jitter import jitter_report

#: paper numbers, milliseconds, LA→NY.
PAPER_JITTER_MS = {"GTT": 0.01, "Telia": 0.33}

T0, T1 = 0.0, 300.0  # five minutes at the paper's 10 ms cadence


def run_jitter(deployment):
    _, true = deployment.run_fast_campaign("la", T0, T1, interval_s=0.01)
    return jitter_report(true, T0, T1, window_s=1.0)


def test_jitter_rolling_window(benchmark, quiet_deployment):
    report = benchmark(run_jitter, quiet_deployment)
    labels = {
        t.path_id: t.short_label for t in quiet_deployment.tunnels("la")
    }

    rows = []
    for path_id, jitter in sorted(report.items()):
        label = labels[path_id]
        rows.append(
            {
                "path": label,
                "jitter_ms": jitter * 1e3,
                "paper_ms": PAPER_JITTER_MS.get(label, None),
            }
        )
    emit(
        format_table(
            rows, title="Section 5 — 1 s rolling-window stddev, LA->NY"
        )
    )

    by_label = {labels[p]: j for p, j in report.items()}
    # Paper's two quoted numbers, within 15%.
    assert abs(by_label["GTT"] * 1e3 - 0.01) / 0.01 < 0.15
    assert abs(by_label["Telia"] * 1e3 - 0.33) / 0.33 < 0.15
    # And the qualitative claim: GTT is the least noisy path.
    assert by_label["GTT"] == min(by_label.values())
