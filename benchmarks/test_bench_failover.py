"""E11 (extension) — failure recovery: Tango vs BGP convergence.

The paper's Section 3 motivates per-packet path control with BGP's
sluggishness: short-term route changes "could overwhelm the control
plane or [are] too short-lived for BGP's several minute convergence
time".  This experiment quantifies the gap on a hard path failure:

* at t=5 s, the NY→LA GTT path (carrying the data) is blackholed;
* **Tango**: measurements for the dead tunnel stop arriving, its
  trailing window empties, and the delay-based policy fails over to the
  next-best live path — recovery within roughly the policy window;
* **BGP**: the interdomain control plane needs a convergence wave
  (``CONVERGENCE_DELAY_S``, the literature's multi-minute figure) before
  the default path moves.

Packet-level, end to end.
"""

import numpy as np
from conftest import emit

from repro.analysis.report import format_kv
from repro.bgp.network import CONVERGENCE_DELAY_S
from repro.core.policy import LowestDelaySelector
from repro.netsim.trace import PacketFactory
from repro.scenarios.vultr import VultrDeployment

FAIL_AT = 5.0
RUN_UNTIL = 12.0
DATA_RATE_GAP = 0.02
FLOW_DATA = 9


def run_failover():
    deployment = VultrDeployment(include_events=False)
    deployment.establish()
    deployment.start_path_probes("ny", interval_s=0.01)
    policy = LowestDelaySelector(deployment.gateway_ny.outbound, window_s=1.0)
    deployment.set_data_policy("ny", policy)

    factory = PacketFactory(
        src=str(deployment.pairing.a.host_address(4)),
        dst=str(deployment.pairing.b.host_address(4)),
        flow_label=FLOW_DATA,
    )
    send = deployment.sender_for("ny")
    deliveries: list[tuple[float, float, int]] = []  # (sent, received, path)

    def on_delivery(packet, now):
        if packet.flow_label == FLOW_DATA:
            deliveries.append(
                (packet.meta["sent"], now, packet.meta["tango_path_id"])
            )

    deployment.host_la._on_packet = on_delivery

    def emit_data():
        packet = factory.build()
        packet.meta["sent"] = deployment.sim.now
        send(packet)

    deployment.sim.call_every(DATA_RATE_GAP, emit_data)
    deployment.fail_path("ny", "GTT", at=FAIL_AT)
    deployment.net.run(until=RUN_UNTIL)
    return deliveries


def test_failover_vs_bgp_convergence(benchmark):
    deliveries = benchmark.pedantic(run_failover, rounds=1, iterations=1)

    sent_times = np.asarray([d[0] for d in deliveries])
    paths = np.asarray([d[2] for d in deliveries])

    # Before the failure, data rides GTT (path 2) once measurements warm up.
    warm = (sent_times > 2.0) & (sent_times < FAIL_AT)
    assert float(np.mean(paths[warm] == 2)) > 0.95

    # Packets sent right after the failure on GTT are lost; recovery time
    # is the gap until deliveries resume (on another path).
    lost_window = sent_times[(sent_times >= FAIL_AT)]
    first_recovered = float(np.min(lost_window)) if lost_window.size else None
    assert first_recovered is not None
    tango_recovery = first_recovered - FAIL_AT
    after = paths[sent_times >= first_recovered]
    recovered_path = int(after[0])

    emit(
        format_kv(
            [
                ("failure at (s)", FAIL_AT),
                ("tango recovery (s)", tango_recovery),
                ("recovered onto path", recovered_path),
                ("bgp convergence (s, literature)", CONVERGENCE_DELAY_S),
                ("speedup", CONVERGENCE_DELAY_S / max(tango_recovery, 1e-9)),
            ],
            title="E11 — failure recovery",
        )
    )

    # Tango recovers within ~its measurement window (1 s) + slack.
    assert tango_recovery < 2.0
    # It fails over to a *live* path, not the dead one.
    assert recovered_path != 2
    # And every subsequent packet keeps flowing.
    assert float(np.mean(after != 2)) > 0.99
    # The gap to BGP is two orders of magnitude.
    assert CONVERGENCE_DELAY_S / tango_recovery > 50.0
