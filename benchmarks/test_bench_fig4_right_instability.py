"""E4 / Figure 4 (right) — the network-instability window.

Paper: "The period of instability lasts approximately 5min and involves
both minor increases in one-way delay and major spikes resulting in a
peak one-way-delay of 78ms (more than double the minimum one-way delay
of 28ms).  During this time, all other networks experience almost no
interference ... changing to a path that is not experiencing this
network instability is superior for application performance."
"""

import numpy as np
from conftest import emit

from repro.analysis.replay import PolicyReplay, jitter_aware_chooser, static_chooser
from repro.analysis.report import format_kv, format_table, series_sparkline
from repro.scenarios.vultr import INSTABILITY_HOUR, NY_TO_LA_PATHS

EVENT_S = INSTABILITY_HOUR * 3600.0
T0, T1 = EVENT_S - 120.0, EVENT_S + 420.0  # the figure's ~12-minute frame
GTT = 2


def run_window(deployment):
    return deployment.run_fast_campaign("ny", T0, T1, interval_s=0.01)


def test_fig4_right_instability(benchmark, deployment):
    measured, true = benchmark(run_window, deployment)
    labels = {t.path_id: t.short_label for t in deployment.tunnels("ny")}

    gtt = true.series(GTT)
    emit(
        "Fig. 4 (right) — GTT NY->LA instability window:\n  "
        + series_sparkline(gtt.values * 1e3, 80)
    )
    window = gtt.window(EVENT_S, EVENT_S + 300.0)[1]
    peak = float(np.max(window))
    floor = float(np.min(window))
    emit(
        format_kv(
            [
                ("peak OWD (paper: 78 ms)", peak * 1e3),
                ("floor OWD (paper: 28 ms)", floor * 1e3),
                ("peak/floor (paper: >2x)", peak / floor),
            ],
            title="instability extremes",
        )
    )
    # Shape: spikes to ~78 ms, floor still ~28 ms, ratio > 2.
    assert 0.070 <= peak <= 0.080
    assert floor == np.clip(floor, 0.027, 0.029)
    assert peak / floor > 2.0

    # "all other networks experience almost no interference"
    for path_id, label in labels.items():
        if path_id == GTT:
            continue
        others = true.series(path_id).window(EVENT_S, EVENT_S + 300.0)[1]
        base = NY_TO_LA_PATHS[label].base_ms * 1e-3
        assert float(np.max(others)) < base + 0.012

    # Switching away wins for *application* performance: GTT's mean
    # stays low (most packets still ride the 28 ms floor), so a
    # mean-greedy policy correctly stays put — the win comes from
    # avoiding the spikes, which a jitter-aware policy sees.
    replay = PolicyReplay(measured, true, decision_interval_s=0.5)
    pinned = replay.run(
        static_chooser(GTT), T0, T1, name="pinned-GTT", initial_path=GTT
    )
    adaptive = replay.run(
        jitter_aware_chooser(jitter_weight=3.0),
        T0,
        T1,
        name="tango-jitter-aware",
        initial_path=GTT,
    )
    emit(
        format_table(
            [pinned.as_row(), adaptive.as_row()],
            title="policy outcome over the instability window",
        )
    )
    assert adaptive.p99_delay < pinned.p99_delay
    # Spike exposure: fraction of samples above 40 ms.
    pinned_exposure = float(np.mean(pinned.achieved > 0.040))
    adaptive_exposure = float(np.mean(adaptive.achieved > 0.040))
    emit(
        format_kv(
            [
                ("pinned spike exposure", pinned_exposure),
                ("adaptive spike exposure", adaptive_exposure),
            ]
        )
    )
    assert adaptive_exposure < pinned_exposure / 2
