"""E6 / Section 5 TCP discussion — spikes, reordering, throughput.

Paper: "even though GTT's network does deliver some packets at the
minimum one-way delay of 28ms (even during the instability), TCP's
in-order packet delivery means that should a packet experience delay
during one of these spikes, future application packets will be delivered
out-of-order (resulting in a reduction in TCP throughput) and the
application-layer data stream will be held up by the slow packet.  Thus,
changing to a path that is not experiencing this network instability is
superior for application performance."
"""

import numpy as np
from conftest import emit

from repro.analysis.report import format_kv, format_table
from repro.analysis.tcp_model import (
    InOrderDeliveryModel,
    mathis_throughput,
    stream_goodput,
)
from repro.scenarios.vultr import INSTABILITY_HOUR
from repro.telemetry.reorder import reordering_from_arrivals

EVENT_S = INSTABILITY_HOUR * 3600.0
T0, T1 = EVENT_S, EVENT_S + 300.0  # the 5-minute instability window
SEND_INTERVAL = 0.01
GTT, TELIA = 2, 1
DEADLINE_S = 0.050
PAYLOAD = 1000


def run_replay(deployment):
    _, true = deployment.run_fast_campaign("ny", T0, T1, SEND_INTERVAL)
    sends = true.series(GTT).times
    model = InOrderDeliveryModel(stall_threshold_s=0.0005)
    return {
        "sends": sends,
        "gtt": true.series(GTT).values,
        "telia": true.series(TELIA).values,
        "stats_gtt": model.replay(sends, true.series(GTT).values),
        "stats_telia": model.replay(sends, true.series(TELIA).values),
    }


def test_tcp_impact_of_instability(benchmark, deployment):
    data = benchmark(run_replay, deployment)
    stats_gtt, stats_telia = data["stats_gtt"], data["stats_telia"]

    rows = [
        dict(path="GTT (unstable)", **_row(stats_gtt)),
        dict(path="Telia (stable)", **_row(stats_telia)),
    ]
    emit(
        format_table(
            rows,
            title="Section 5 — in-order delivery during the instability",
        )
    )

    # Reordering: spiked packets are overtaken by later ones.
    arrivals = data["sends"] + data["gtt"]
    order = np.argsort(arrivals, kind="stable")
    report = reordering_from_arrivals(
        np.arange(arrivals.size)[order], arrivals[order]
    )
    goodput_gtt = stream_goodput(data["sends"], data["gtt"], PAYLOAD, DEADLINE_S)
    goodput_telia = stream_goodput(
        data["sends"], data["telia"], PAYLOAD, DEADLINE_S
    )
    loss_equivalent = report.reordered_fraction
    emit(
        format_kv(
            [
                ("reordered fraction (GTT)", report.reordered_fraction),
                ("max reordering extent", report.max_extent),
                ("deadline goodput GTT (B/s)", goodput_gtt),
                ("deadline goodput Telia (B/s)", goodput_telia),
                (
                    "Mathis throughput GTT (B/s, spikes as loss)",
                    mathis_throughput(1460, 2 * 0.028, max(loss_equivalent, 1e-9)),
                ),
            ],
            title="reordering and throughput",
        )
    )

    # Shapes from the paper's narrative:
    # 1. GTT still delivers packets at the floor during instability.
    assert float(np.min(data["gtt"])) < 0.029
    # 2. In-order delivery amplifies spikes: mean app delay >> mean
    #    network delay on the unstable path, but not on the stable one.
    assert stats_gtt.hol_blocking_penalty_s > 0.0008
    assert stats_telia.hol_blocking_penalty_s < 0.0001
    assert (
        stats_gtt.hol_blocking_penalty_s
        > 10 * stats_telia.hol_blocking_penalty_s
    )
    # 3. Packets stall behind spiked predecessors; reordering exists.
    assert stats_gtt.stalled_packets > 100
    assert report.reordered > 0
    # 4. The stable path is superior for application performance even
    #    though its *network* mean is higher than GTT's.
    assert stats_telia.mean_network_delay_s > stats_gtt.mean_network_delay_s
    assert goodput_telia > goodput_gtt


def _row(stats):
    return {
        "net_mean_ms": stats.mean_network_delay_s * 1e3,
        "app_mean_ms": stats.mean_app_delay_s * 1e3,
        "app_p99_ms": stats.p99_app_delay_s * 1e3,
        "app_max_ms": stats.max_app_delay_s * 1e3,
        "stalled": stats.stalled_packets,
    }
