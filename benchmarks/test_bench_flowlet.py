"""E12 (extension) — flowlet load balancing in the data plane (Section 6).

The paper leaves "effective load balancing across multiple paths in the
data plane" as future work; flowlet switching is the standard answer.
The safety argument: a flow may move between paths only across an idle
gap longer than the paths' delay disparity, so no packet can overtake an
earlier one.

Packet-level sweep over the Vultr deployment (NY→LA, GTT at ~28 ms vs
NTT at ~36 ms — an 8 ms disparity) with bursty application traffic
(20-packet bursts at 1 ms spacing, 60 ms pauses):

* per-packet switching (gap « packet spacing): balances load but
  reorders packets across the disparity;
* per-burst switching (gap between packet spacing and pause): balances
  load at ambient reordering (only the edge links' own jitter) — the
  flowlet sweet spot;
* sticky (gap > pause): never switches, no balancing at all.
"""

import numpy as np
from conftest import emit

from repro.analysis.report import format_table
from repro.dataplane.flowlet import FlowletSelector
from repro.netsim.trace import PacketFactory
from repro.scenarios.vultr import VultrDeployment
from repro.telemetry.reorder import reordering_from_arrivals

BURSTS = 120
BURST_SIZE = 20
INTRA_GAP = 0.001
PAUSE = 0.060
FLOW = 33

#: (label, flowlet gap): per-packet, per-burst, sticky.
SWEEP = (("per-packet", 0.0005), ("per-burst", 0.005), ("sticky", 0.5))


def run_one(gap_s):
    deployment = VultrDeployment(include_events=False)
    deployment.establish()
    selector = FlowletSelector(gap_s=gap_s, seed=5)
    deployment.gateway_ny.set_selector(selector)

    factory = PacketFactory(
        src=str(deployment.pairing.a.host_address(6)),
        dst=str(deployment.pairing.b.host_address(6)),
        flow_label=FLOW,
    )
    send = deployment.sender_for("ny")
    arrivals = []  # (app_seq, arrival_time, path_id)

    def on_delivery(packet, now):
        if packet.flow_label == FLOW:
            arrivals.append(
                (packet.meta["app_seq"], now, packet.meta["tango_path_id"])
            )

    deployment.host_la._on_packet = on_delivery

    seq = 0
    for burst in range(BURSTS):
        start = burst * (BURST_SIZE * INTRA_GAP + PAUSE)
        for i in range(BURST_SIZE):
            def emit_packet(s=seq):
                packet = factory.build()
                packet.meta["app_seq"] = s
                send(packet)

            deployment.sim.schedule_at(start + i * INTRA_GAP, emit_packet)
            seq += 1
    duration = BURSTS * (BURST_SIZE * INTRA_GAP + PAUSE)
    deployment.net.run(until=duration + 1.0)

    arrivals.sort(key=lambda a: a[1])
    seqs = np.asarray([a[0] for a in arrivals])
    times = np.asarray([a[1] for a in arrivals])
    paths = np.asarray([a[2] for a in arrivals])
    report = reordering_from_arrivals(seqs, times)
    shares = {int(p): float(np.mean(paths == p)) for p in np.unique(paths)}
    balance = 1.0 - max(shares.values())  # 0 = all on one path
    return {
        "delivered": len(arrivals),
        "reordered_fraction": report.reordered_fraction,
        "paths_used": len(shares),
        "top_path_share": max(shares.values()),
        "balance": balance,
        "switches": selector.switches,
    }


def test_flowlet_gap_sweep(benchmark):
    def sweep():
        return {label: run_one(gap) for label, gap in SWEEP}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [{"mode": label, **stats} for label, stats in results.items()]
    emit(format_table(rows, title="E12 — flowlet gap vs reordering/balance"))

    per_packet = results["per-packet"]
    per_burst = results["per-burst"]
    sticky = results["sticky"]

    total = BURSTS * BURST_SIZE
    for stats in results.values():
        assert stats["delivered"] == total

    # Ambient reordering from edge-link jitter exists even without any
    # switching (the sticky run measures it: ~2%).
    ambient = sticky["reordered_fraction"]
    assert ambient < 0.05

    # Per-packet switching reorders massively across the 8 ms disparity.
    assert per_packet["reordered_fraction"] > 0.2
    assert per_packet["reordered_fraction"] > 5 * max(ambient, 0.01)
    assert per_packet["paths_used"] >= 2

    # Per-burst flowlets: real balancing at (near-)ambient reordering —
    # path switches only happen across the 60 ms pauses, which exceed
    # any path-delay disparity.
    assert per_burst["reordered_fraction"] < 0.08
    assert per_burst["reordered_fraction"] < per_packet["reordered_fraction"] / 5
    assert per_burst["paths_used"] >= 2
    assert per_burst["top_path_share"] < 0.6
    assert per_burst["switches"] > 10

    # Sticky never switches: no balancing at all.
    assert sticky["paths_used"] == 1
    assert sticky["switches"] == 0
