"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table/figure of the paper (see the
experiment index in DESIGN.md) and *prints the rows it reproduces*, so
``pytest benchmarks/ --benchmark-only -s`` reads like the paper's
evaluation section.  Shape assertions (who wins, by roughly what factor)
are enforced with asserts, so drift fails loudly.
"""

import pytest

from repro.scenarios.vultr import VultrDeployment


@pytest.fixture(scope="session")
def deployment():
    """One established Vultr deployment shared by all benchmarks."""
    d = VultrDeployment()
    d.establish()
    return d


@pytest.fixture(scope="session")
def quiet_deployment():
    """Event-free variant for steady-state benchmarks."""
    d = VultrDeployment(include_events=False)
    d.establish()
    return d


def emit(text: str) -> None:
    """Print a reproduction table (visible with ``-s`` / on failure)."""
    print("\n" + text)


def merge_experiment(path: str, experiment: str, report_json: str) -> str:
    """Merge one campaign report into a multi-experiment JSON file.

    ``BENCH_ROBUST.json`` holds one top-level key per experiment
    (``{"E17": {...}, "E18": {...}}``) so the chaos campaigns can share
    the file without clobbering each other; the write stays
    deterministic (sorted keys, stable indentation, trailing newline).
    A legacy flat report — or anything else unrecognized — is replaced
    wholesale rather than merged into.
    """
    import json
    import os
    import re

    merged = {}
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as handle:
                existing = json.load(handle)
        except (OSError, ValueError):
            existing = None
        if (
            isinstance(existing, dict)
            and existing
            and all(re.fullmatch(r"E\d+", key) for key in existing)
        ):
            merged = existing
    merged[experiment] = json.loads(report_json)
    text = json.dumps(merged, indent=2, sort_keys=True) + "\n"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text
