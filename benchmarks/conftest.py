"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table/figure of the paper (see the
experiment index in DESIGN.md) and *prints the rows it reproduces*, so
``pytest benchmarks/ --benchmark-only -s`` reads like the paper's
evaluation section.  Shape assertions (who wins, by roughly what factor)
are enforced with asserts, so drift fails loudly.
"""

import pytest

from repro.scenarios.vultr import VultrDeployment


@pytest.fixture(scope="session")
def deployment():
    """One established Vultr deployment shared by all benchmarks."""
    d = VultrDeployment()
    d.establish()
    return d


@pytest.fixture(scope="session")
def quiet_deployment():
    """Event-free variant for steady-state benchmarks."""
    d = VultrDeployment(include_events=False)
    d.establish()
    return d


def emit(text: str) -> None:
    """Print a reproduction table (visible with ``-s`` / on failure)."""
    print("\n" + text)
