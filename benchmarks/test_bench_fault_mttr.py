"""E13 (extension) — chaos campaign MTTR across fault kinds.

One deterministic fault plan exercises the quarantine-enabled control
loop against each path-fault kind in sequence — hard blackhole, flapping
loss, heavy burst — on the active NY→LA path, with a quiet gap between
faults so each recovery is attributable.  The table reports per-fault
detection / reroute / repair timings and the MTTR headline.

Shape assertions: every fault is detected, MTTR stays under 2 simulated
seconds, and the whole loop is two orders of magnitude faster than BGP's
convergence delay — the paper's Section 3 motivation, now measured under
three distinct failure modes instead of one.
"""

from conftest import emit

from repro.analysis.report import format_kv
from repro.bgp.network import CONVERGENCE_DELAY_S
from repro.core.controller import QuarantinePolicy, TangoController
from repro.core.policy import LowestDelaySelector
from repro.faults import FaultEvent, FaultInjector, FaultPlan, RecoveryLog
from repro.netsim.trace import PacketFactory
from repro.scenarios.vultr import VultrDeployment

#: Faults hit GTT — the calibrated-best NY→LA path the data stream rides.
PLAN = FaultPlan(
    name="mttr-sweep",
    seed=23,
    events=(
        FaultEvent(
            "link_blackhole",
            at=5.0,
            duration=4.0,
            params={"src": "ny", "path": "GTT"},
        ),
        FaultEvent(
            "link_flap",
            at=25.0,
            duration=4.0,
            params={"src": "ny", "path": "GTT", "period": 1.0, "duty": 0.8},
        ),
        # Staleness is the detection signal, so the burst must be heavy
        # enough that surviving probes are rarer than the staleness
        # horizon (100 probes/s x 0.002 pass rate ~ one per 5 s >> 0.5 s).
        FaultEvent(
            "loss_burst",
            at=45.0,
            duration=4.0,
            params={"src": "ny", "path": "GTT", "rate": 0.998},
        ),
    ),
)
RUN_UNTIL = 65.0


def run_campaign():
    deployment = VultrDeployment(include_events=False)
    deployment.establish()
    deployment.start_path_probes("ny")
    deployment.set_data_policy(
        "ny", LowestDelaySelector(deployment.gateway_ny.outbound, window_s=1.0)
    )
    controller = TangoController(
        deployment.gateway_ny,
        deployment.sim,
        interval_s=0.1,
        staleness_s=0.5,
        quarantine=QuarantinePolicy(),
    )
    controller.start()

    factory = PacketFactory(
        src=str(deployment.pairing.a.host_address(4)),
        dst=str(deployment.pairing.b.host_address(4)),
        flow_label=9,
    )
    send = deployment.sender_for("ny")
    deployment.sim.call_every(0.02, lambda: send(factory.build()))

    FaultInjector(deployment, PLAN).arm()
    deployment.net.run(until=RUN_UNTIL)
    return RecoveryLog.build(PLAN, {"ny": controller})


def test_fault_mttr_sweep(benchmark):
    log = benchmark.pedantic(run_campaign, rounds=1, iterations=1)

    emit(log.format())
    mttr = log.mttr()
    emit(
        format_kv(
            [
                ("mttr_s", f"{mttr:.3f}"),
                ("detected", f"{log.detected_count}/{log.path_fault_count}"),
                ("bgp_convergence_s", f"{CONVERGENCE_DELAY_S:.0f}"),
                ("speedup_vs_bgp", f"{CONVERGENCE_DELAY_S / mttr:.0f}x"),
            ],
            title="Chaos campaign MTTR (E13)",
        )
    )

    # Every injected path fault must be detected and rerouted around.
    assert log.detected_count == log.path_fault_count == 3
    for record in log.records:
        assert record.detected_at is not None, f"{record.kind} undetected"
        assert record.rerouted_at is not None, f"{record.kind} not rerouted"
        assert record.reroute_s < 2.0
    # The headline: sub-2 s MTTR, ~100x faster than BGP convergence.
    assert mttr < 2.0
    assert CONVERGENCE_DELAY_S / mttr > 100
