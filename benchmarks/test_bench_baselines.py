"""E10 / Section 2 — Tango against the status-quo alternatives.

Regenerates the paper's motivation as a single comparison table: BGP
default, end-host RTT probing, multi-homed route control, a RON-style
overlay, and Tango policies, all over the same NY→LA campaign window
containing the instability event.  Shape claims: Tango wins on mean and
tail; multihoming beats the default but is capped by its path subset;
the overlay pays its software tax; the RTT prober is noise-limited.
"""

import numpy as np
from conftest import emit

from repro.analysis.replay import (
    PolicyReplay,
    greedy_chooser,
    hysteresis_chooser,
)
from repro.analysis.report import format_table
from repro.baselines import (
    BgpDefaultBaseline,
    MultihomingBaseline,
    OverlayBaseline,
    RttProbingBaseline,
)
from repro.scenarios.vultr import INSTABILITY_HOUR

EVENT_S = INSTABILITY_HOUR * 3600.0
T0, T1 = EVENT_S - 600.0, EVENT_S + 600.0  # 20 minutes around the event


def run_comparison(deployment):
    measured, fwd_true = deployment.run_fast_campaign("ny", T0, T1, 0.01)
    _, rev_true = deployment.run_fast_campaign("la", T0, T1, 0.01)
    # Reverse path ids live in the 64+ block; re-key them to align with
    # forward indices for the RTT pairing.
    rekeyed = _rekey(rev_true)

    replay = PolicyReplay(
        measured, fwd_true, decision_interval_s=0.5, visibility_latency_s=0.2
    )
    results = [
        BgpDefaultBaseline().run(replay, T0, T1),
        RttProbingBaseline(fwd_true, rekeyed, probe_interval_s=1.0).run(T0, T1),
        MultihomingBaseline(
            fwd_true, rekeyed, accessible_paths=[0, 1]
        ).run(T0, T1),
        OverlayBaseline(fwd_true, probe_interval_s=10.0).run(T0, T1),
        replay.run(greedy_chooser(), T0, T1, name="tango-greedy"),
        replay.run(
            hysteresis_chooser(margin_s=0.001, dwell_s=2.0),
            T0,
            T1,
            name="tango-hysteresis",
        ),
    ]
    return results


def _rekey(store):
    from repro.telemetry.store import MeasurementStore

    rekeyed = MeasurementStore()
    for new_id, path_id in enumerate(store.path_ids()):
        series = store.series(path_id)
        rekeyed.extend(new_id, series.times, series.values)
    return rekeyed


def test_baseline_comparison(benchmark, deployment):
    results = benchmark(run_comparison, deployment)
    by_name = {r.name: r for r in results}
    emit(
        format_table(
            [r.as_row() for r in results],
            title=(
                "E10 — alternatives over the NY->LA window around the "
                "instability event"
            ),
        )
    )

    default = by_name["bgp-default"]
    rtt = by_name["rtt-probing"]
    multihoming = by_name["multihoming"]
    overlay = by_name["overlay"]
    tango = by_name["tango-greedy"]
    tango_hyst = by_name["tango-hysteresis"]

    # Tango beats every alternative on mean delay.
    for other in (default, rtt, multihoming, overlay):
        assert tango.mean_delay < other.mean_delay, other.name
        assert tango_hyst.mean_delay < other.mean_delay, other.name

    # Multihoming (subset {NTT, Telia}) improves on the default...
    assert multihoming.mean_delay < default.mean_delay
    # ...but cannot reach the best path, so Tango's margin is real.
    assert multihoming.fraction_on_path(2) == 0.0

    # The overlay finds good paths but pays its per-packet overhead:
    # its steady-state mean sits ~1 ms above Tango's.
    steady = overlay.times < EVENT_S - 30.0
    overlay_steady = float(np.mean(overlay.achieved[steady]))
    tango_steady = float(np.mean(tango.achieved[tango.times < EVENT_S - 30.0]))
    assert overlay_steady - tango_steady > 0.0005

    # The default is ~30% worse than Tango outside event influence.
    assert default.mean_delay / tango.mean_delay > 1.15
