"""E9 / Section 6 (future work) — from Tango of 2 to Tango of N.

Paper: "We envision Tango of two to be the building block of an open and
robust wide-area overlay composed of more networks and of more PoPs of
the same network.  Doing so will expose a larger path diversity to Tango
participants using RON-like techniques."

The benchmark grows a mesh of N cooperating edges (pairwise discovery on
synthetic provider/transit topologies) and measures, per N: exposed route
diversity per pair, and best-route delay improvement over the pair's
BGP default when one relay hop is allowed.
"""

import numpy as np
from conftest import emit

from repro.analysis.report import format_table
from repro.scenarios.topologies import build_mesh_scenario

N_RANGE = (2, 3, 4, 5, 6)


def run_sweep():
    rows = []
    for n in N_RANGE:
        scenario = build_mesh_scenario(n)
        mesh = scenario.mesh
        pair_rows = []
        for a in scenario.edge_names:
            for b in scenario.edge_names:
                if a == b:
                    continue
                pair_rows.append(
                    (
                        mesh.diversity(a, b, max_relays=0),
                        mesh.diversity(a, b, max_relays=1),
                        mesh.diversity_gain(a, b, max_relays=1),
                    )
                )
        direct, relayed, gains = map(np.asarray, zip(*pair_rows))
        rows.append(
            {
                "N": n,
                "pairs": len(pair_rows),
                "direct_routes": float(np.mean(direct)),
                "routes_with_relay": float(np.mean(relayed)),
                "mean_gain_ms": float(np.mean(gains)) * 1e3,
                "max_gain_ms": float(np.max(gains)) * 1e3,
            }
        )
    return rows


def test_tango_of_n_diversity(benchmark):
    rows = benchmark(run_sweep)
    emit(
        format_table(
            rows,
            title="E9 — path diversity and delay gain vs mesh size N",
        )
    )

    by_n = {row["N"]: row for row in rows}
    # N=2 is the paper's pairing: direct paths only, no relays.
    assert by_n[2]["routes_with_relay"] == by_n[2]["direct_routes"]
    # Diversity grows strictly with every added member...
    relayed = [by_n[n]["routes_with_relay"] for n in N_RANGE]
    assert all(a < b for a, b in zip(relayed, relayed[1:]))
    # ...while direct diversity stays flat (it is a pair property).
    direct = [by_n[n]["direct_routes"] for n in N_RANGE]
    assert max(direct) - min(direct) < 1e-9
    # And the extra routes are *useful*: mean best-delay gain grows.
    assert by_n[6]["mean_gain_ms"] > by_n[3]["mean_gain_ms"]
    assert by_n[6]["max_gain_ms"] > 1.0  # at least one pair gains > 1 ms
