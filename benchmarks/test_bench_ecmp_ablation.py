"""E8 / Section 3 ablation — why Tango tunnels before measuring.

Paper: "Tango tunnels traffic before forwarding it to each path to avoid
unpredictable path diversity (e.g., due to 5-tuple hashing in ECMP)
which will result in measuring multiple paths as one."

Packet-level experiment on a fabric whose single BGP path hides three
ECMP sub-paths at 30/35/41 ms:

* an unpinned prober (fresh source port per probe, the classic
  traceroute/ping pathology) sees a multi-modal blend whose variance
  says nothing about any real path;
* the same probes inside one Tango tunnel (fixed outer 5-tuple) stick
  to a single sub-path and measure it cleanly.
"""

import ipaddress

import numpy as np
from conftest import emit

from repro.analysis.report import format_kv
from repro.dataplane.encap import encapsulate
from repro.netsim.packet import Ipv6Header, Packet, UdpHeader
from repro.scenarios.topologies import build_ecmp_fanout

PROBES = 400


def probe(sport, dst="2001:db8:ecf::9"):
    return Packet(
        headers=[
            Ipv6Header(
                src=ipaddress.IPv6Address("2001:db8:ec0::1"),
                dst=ipaddress.IPv6Address(dst),
            ),
            UdpHeader(sport=sport, dport=33434),
        ],
        payload_bytes=16,
    )


def run_unpinned():
    fabric = build_ecmp_fanout()
    net = fabric.net
    src, dst = net.node(fabric.src_name), net.node(fabric.dst_name)
    arrivals = []
    dst.attach_ingress(
        lambda s, p: (arrivals.append(s.sim.now - p.created_at), None)[1]
    )
    for i in range(PROBES):
        net.sim.schedule_at(
            i * 0.01, lambda i=i: net.inject(src, probe(sport=20000 + i))
        )
    net.run()
    return np.asarray(arrivals)


def run_tunneled():
    fabric = build_ecmp_fanout()
    net = fabric.net
    src, dst = net.node(fabric.src_name), net.node(fabric.dst_name)
    arrivals = []
    dst.attach_ingress(
        lambda s, p: (arrivals.append(s.sim.now - p.created_at), None)[1]
    )

    def send(i):
        packet = probe(sport=20000 + i)
        encapsulate(
            packet,
            src="2001:db8:eca::1",
            dst="2001:db8:eca::2",
            path_id=0,
            timestamp_ns=0,
            seq=i,
        )
        net.inject(src, packet)

    for i in range(PROBES):
        net.sim.schedule_at(i * 0.01, lambda i=i: send(i))
    net.run()
    return np.asarray(arrivals)


def test_ecmp_measurement_blur(benchmark):
    unpinned = benchmark(run_unpinned)
    tunneled = run_tunneled()

    emit(
        format_kv(
            [
                ("unpinned probes", unpinned.size),
                ("unpinned mean (ms)", float(np.mean(unpinned)) * 1e3),
                ("unpinned std (ms)", float(np.std(unpinned)) * 1e3),
                (
                    "unpinned modes seen",
                    len(np.unique(np.round(unpinned * 1e3 / 5) * 5)),
                ),
                ("tunneled mean (ms)", float(np.mean(tunneled)) * 1e3),
                ("tunneled std (ms)", float(np.std(tunneled)) * 1e3),
            ],
            title="E8 — ECMP blur vs tunnel pinning",
        )
    )

    assert unpinned.size == PROBES and tunneled.size == PROBES
    # Unpinned probing blends the 30/35/41 ms sub-paths: its spread is
    # dominated by mode separation (milliseconds), not path jitter.
    assert float(np.std(unpinned)) > 3e-3
    # The tunnel sticks to one sub-path: spread is the sub-path's own
    # 0.05 ms jitter, two orders of magnitude tighter.
    assert float(np.std(tunneled)) < 2e-4
    # The tunneled mean matches one (and only one) of the real sub-paths.
    modes = np.asarray([0.030, 0.035, 0.041])
    distance = np.abs(modes - float(np.mean(tunneled) - 0.0002))
    assert float(np.min(distance)) < 5e-4
    # The unpinned series is multi-modal: every sub-path contributes a
    # healthy share of samples, i.e. it "measures multiple paths as one".
    for mode in modes:
        share = float(np.mean(np.abs(unpinned - 0.0002 - mode) < 1e-3))
        assert share > 0.10, f"mode {mode}: share {share}"
