"""E16 — fluid traffic engine: scale gate and packet-equivalence gate.

The traffic bench gate (see README "Workloads & traffic engine"): runs
the standard traffic workloads from :mod:`repro.traffic.bench`, prints
the results, writes ``BENCH_TRAFFIC.json``, and FAILS if

* the fluid engine does not sustain >=1,000,000 concurrent modeled
  flows on the Vultr scenario in under 10 s wall-clock, or
* the fluid model's mean delay deviates from the packet simulator by
  more than 10% (or loss by more than 2 pp) at any point of the
  equivalence sweep.

Environment:

* ``BENCH_SMOKE=1`` — CI mode: shorter simulated window and packet
  comparison run, same gates.
* ``BENCH_TRAFFIC_OUT`` — where to write the JSON report (default:
  ``BENCH_TRAFFIC.json`` in the current directory).
"""

import json
import os

from conftest import emit

from repro.analysis.report import format_table
from repro.traffic.bench import (
    EQUIV_DELAY_TOL,
    EQUIV_LOSS_TOL_PP,
    SCALE_MAX_WALL_S,
    SCALE_TARGET_FLOWS,
    run_equivalence_workload,
    run_traffic_suite,
)

SMOKE = os.environ.get("BENCH_SMOKE", "") == "1"
OUT_PATH = os.environ.get("BENCH_TRAFFIC_OUT", "BENCH_TRAFFIC.json")


def test_traffic_suite(benchmark):
    # The benchmark fixture times the cheap, high-signal workload (a
    # small equivalence sweep); the full gated suite runs once around it
    # and produces the report.
    benchmark(run_equivalence_workload, packets=2_000)

    report = run_traffic_suite(smoke=SMOKE)

    scale = report.workloads["scale"]
    emit(
        "E16 scale: "
        f"{scale.detail['peak_concurrent_flows']:,.0f} peak flows, "
        f"{scale.detail['sim_s']:.0f}s simulated in "
        f"{scale.detail['wall_s']:.2f}s wall "
        f"({scale.detail['sim_s_per_wall_s']:.0f}x real time)"
    )
    equivalence = report.workloads["equivalence"]
    rows = []
    for point in equivalence.detail["points"]:
        rows.append(
            {
                "rho": f"{point['rho']:.2f}",
                "packet_ms": f"{point['packet_delay_ms']:.2f}",
                "fluid_ms": f"{point['fluid_delay_ms']:.2f}",
                "delay_err": f"{point['delay_rel_error']:.1%}",
                "packet_loss": f"{point['packet_loss']:.4f}",
                "fluid_loss": f"{point['fluid_loss']:.4f}",
                "loss_pp": f"{point['loss_error_pp']:.2f}",
            }
        )
    emit(format_table(rows, title="E16 — fluid vs packet equivalence"))

    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        handle.write(report.to_json())
    emit(f"wrote {OUT_PATH}")

    payload = json.loads(report.to_json())
    assert payload["schema"] == "tango-repro/bench-traffic/v1"

    # Gate 1: >=1M concurrent modeled flows, simulated in <10 s wall.
    assert scale.detail["peak_concurrent_flows"] >= SCALE_TARGET_FLOWS, (
        f"only {scale.detail['peak_concurrent_flows']:,.0f} concurrent "
        f"flows modeled (gate: {SCALE_TARGET_FLOWS:,})"
    )
    assert scale.detail["wall_s"] < SCALE_MAX_WALL_S, (
        f"scale workload took {scale.detail['wall_s']:.2f}s wall "
        f"(gate: {SCALE_MAX_WALL_S:.0f}s)"
    )

    # Gate 2: fluid model within tolerance of the packet simulator at
    # every utilization point.
    for point in equivalence.detail["points"]:
        assert point["delay_rel_error"] <= EQUIV_DELAY_TOL, (
            f"rho={point['rho']}: delay error {point['delay_rel_error']:.1%} "
            f"exceeds {EQUIV_DELAY_TOL:.0%}"
        )
        assert point["loss_error_pp"] <= EQUIV_LOSS_TOL_PP, (
            f"rho={point['rho']}: loss error {point['loss_error_pp']:.2f}pp "
            f"exceeds {EQUIV_LOSS_TOL_PP:.0f}pp"
        )
    assert report.passed
