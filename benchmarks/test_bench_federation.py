"""E20 — federation establishment dedup, stitched rescue, relay failover.

The federation gate (see README "Tango of N" and EXPERIMENTS.md E20):
runs the full N=8 federation experiment — shared-cache establishment of
all 28 pairs vs the independent-pairwise baseline, the stitched relay
rescue of the degraded pair, and the mid-run relay kill — and FAILS if

* any of the 28 pairwise sessions fails to establish,
* the shared snapshot cache's hit rate is below 50% or does not beat
  the independent-pairwise baseline's,
* the degraded pair (one direct path by construction) does not reach at
  least 2 usable routes via its stitched relay tunnel,
* killing the relay member is not detected (stitched tunnel
  quarantined) within one telemetry horizon, or
* a rerun of the seeded experiment is not byte-identical.

Environment:

* ``BENCH_SMOKE=1`` — CI mode: skips the N=4/6 scaling sweep, same gates.
* ``BENCH_FEDERATION_OUT`` — where to write the JSON report (default:
  ``BENCH_FEDERATION.json`` in the current directory).
"""

import json
import os

from conftest import emit

from repro.federation.experiment import run_federation_experiment

SMOKE = os.environ.get("BENCH_SMOKE", "") == "1"
OUT_PATH = os.environ.get("BENCH_FEDERATION_OUT", "BENCH_FEDERATION.json")

N_EDGES = 8
MIN_HIT_RATE = 0.5
MIN_USABLE_ROUTES = 2


def test_federation_establishment_and_relay_failover(benchmark):
    # The benchmark fixture times the high-signal piece: shared-cache
    # establishment of a mid-size federation.
    def establish_only():
        from repro.federation import FederationRegistry
        from repro.scenarios.topologies import build_live_federation

        registry = FederationRegistry(build_live_federation(6))
        registry.establish()
        registry.stop()

    benchmark(establish_only)

    report = run_federation_experiment(N_EDGES, smoke=SMOKE)
    replay = run_federation_experiment(N_EDGES, smoke=SMOKE)
    serialized = json.dumps(report, indent=2, sort_keys=True)
    byte_identical = serialized == json.dumps(
        replay, indent=2, sort_keys=True
    )

    cache = report["snapshot_cache"]
    baseline = report["independent_baseline"]
    degraded = report["degraded_pair"]
    reroute = report["reroute"]
    emit(
        f"E20 dedup: {report['established_pairs']}/{report['pairs']} pairs, "
        f"shared hit rate {cache['hit_rate']:.2f} "
        f"({cache['hits']} hits / {cache['misses']} misses) vs "
        f"independent {baseline['hit_rate']:.2f}"
    )
    emit(
        f"E20 stitched: {degraded['pair'][0]}->{degraded['pair'][1]} had "
        f"{degraded['direct_routes']} direct route(s), "
        f"{degraded['usable_routes']} usable via relay {degraded['relay']}"
    )
    emit(
        f"E20 failover: relay killed at t={reroute['killed_at']:g}, "
        f"stitched tunnel quarantined +{reroute['delay_s']:.2f}s "
        f"(budget {reroute['budget_s']:.2f}s, cause={reroute['cause']}), "
        f"restored={reroute['restored_after_clear']}"
    )
    emit(f"E20 replay byte-identical: {byte_identical}")

    gates = {
        "n_edges": N_EDGES,
        "min_hit_rate": MIN_HIT_RATE,
        "min_usable_routes": MIN_USABLE_ROUTES,
        "reroute_budget_s": reroute["budget_s"],
    }
    passed = (
        report["established_pairs"] == report["pairs"]
        and cache["hit_rate"] >= MIN_HIT_RATE
        and cache["hit_rate"] > baseline["hit_rate"]
        and degraded["usable_routes"] >= MIN_USABLE_ROUTES
        and bool(reroute["within_budget"])
        and byte_identical
    )
    payload = {
        "schema": "tango-repro/bench-federation/v1",
        "smoke": SMOKE,
        "passed": passed,
        "gates": gates,
        "byte_identical_replay": byte_identical,
        "report": report,
    }
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    emit(f"wrote {OUT_PATH}")

    # Gate 1: every pairwise session established over the shared network.
    assert report["established_pairs"] == report["pairs"], (
        f"only {report['established_pairs']} of {report['pairs']} "
        "pairwise sessions established"
    )

    # Gate 2: shared-cache dedup — the reason one process can afford N
    # sites — must clear 50% and beat independent establishment.
    assert cache["hit_rate"] >= MIN_HIT_RATE, (
        f"shared snapshot-cache hit rate {cache['hit_rate']:.2f} below "
        f"gate {MIN_HIT_RATE:.2f}"
    )
    assert cache["hit_rate"] > baseline["hit_rate"], (
        f"shared cache ({cache['hit_rate']:.2f}) did not beat independent "
        f"pairwise establishment ({baseline['hit_rate']:.2f})"
    )

    # Gate 3: the stitched relay tunnel rescues the degraded pair.
    assert degraded["direct_routes"] == 1
    assert degraded["usable_routes"] >= MIN_USABLE_ROUTES, (
        f"degraded pair has {degraded['usable_routes']} usable routes "
        f"(gate: {MIN_USABLE_ROUTES})"
    )

    # Gate 4: relay death is detected within one telemetry horizon.
    assert reroute["within_budget"], (
        f"stitched tunnel quarantined {reroute['delay_s']}s after the "
        f"relay kill (budget: {reroute['budget_s']}s)"
    )

    # Gate 5: the seeded experiment replays byte-identically.
    assert byte_identical, "seeded federation rerun diverged"
    assert passed
