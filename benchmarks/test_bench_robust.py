"""E17 — adversarial chaos campaign: Byzantine-peer defense SLO gate.

Fans seeded adversarial fault plans (timestamp tamper, telemetry replay,
gray loss, clock drift, plain blackholes) across worker processes; every
plan runs defended and undefended, so each report row is its own
ablation.  Prints the per-archetype table, writes ``BENCH_ROBUST.json``,
and FAILS unless

* defended median OWD regret stays within 2x the fault-free baseline
  (1 ms noise floor),
* the defended victim never rides a tamper-favored tunnel longer than
  one telemetry horizon while the undefended victim is demonstrably
  steered (>= 3 horizons),
* defended availability and blackhole MTTR hold their SLOs.

Environment:

* ``BENCH_SMOKE=1`` — CI mode: 8 plans instead of the full 64.
* ``BENCH_ROBUST_OUT`` — report path (default ``BENCH_ROBUST.json``).
* ``BENCH_ROBUST_WORKERS`` — worker processes (default 4).
"""

import json
import os
import statistics
from collections import defaultdict

from conftest import emit, merge_experiment

from repro.analysis.report import format_table
from repro.campaign import run_campaign

SMOKE = os.environ.get("BENCH_SMOKE", "") == "1"
PLANS = 8 if SMOKE else 64
WORKERS = int(os.environ.get("BENCH_ROBUST_WORKERS", "4"))
OUT_PATH = os.environ.get("BENCH_ROBUST_OUT", "BENCH_ROBUST.json")
MASTER_SEED = 2026


def test_robust_campaign(benchmark):
    report = benchmark.pedantic(
        run_campaign,
        args=(PLANS, MASTER_SEED),
        kwargs={"workers": WORKERS},
        rounds=1,
        iterations=1,
    )

    by_archetype = defaultdict(list)
    for row in report.results:
        by_archetype[row["archetype"]].append(row)
    rows = []
    for archetype in sorted(by_archetype):
        group = by_archetype[archetype]
        defended = [r["defended"]["median_ms"] or 0.0 for r in group]
        undefended = [r["undefended"]["median_ms"] or 0.0 for r in group]
        steered = [
            r["defended"]["steered_s"]
            for r in group
            if r["defended"].get("steered_s") is not None
        ]
        rows.append(
            {
                "archetype": archetype,
                "plans": str(len(group)),
                "defended_ms": f"{statistics.median(defended):.3f}",
                "undefended_ms": f"{statistics.median(undefended):.3f}",
                "max_steered_s": f"{max(steered):.2f}" if steered else "-",
            }
        )
    emit(format_table(rows, title="E17 — defended vs undefended OWD regret"))
    emit(
        "E17 gates: "
        f"regret {report.gates['defended_regret_median_ms']:.3f} ms "
        f"(budget {report.gates['regret_budget_ms']:.3f} ms), "
        f"mttr {report.gates['mttr_median_s']:.3f} s "
        f"(slo {report.gates['mttr_slo_s']:.1f} s)"
    )

    merge_experiment(OUT_PATH, "E17", report.to_json())
    emit(f"merged E17 into {OUT_PATH} ({PLANS} plans, {WORKERS} workers)")

    payload = json.loads(report.to_json())
    assert payload["experiment"] == "E17"
    assert payload["plans"] == PLANS

    # Every favored-tamper plan must show the ablation: the undefended
    # victim steered for >= 3 horizons, the defended one never held past
    # one horizon.  (The gate list is authoritative; spot-check here so
    # a silently-empty campaign cannot pass.)
    tampered = [r for r in report.results if r["archetype"] == "favored_tamper"]
    assert tampered, "campaign generated no favored-tamper plans"
    for row in tampered:
        assert row["undefended"]["steered_s"] >= 3.0
        assert row["defended"]["steered_s"] <= 1.0
        assert row["defended"]["dataplane_rejected"] > 0

    assert report.passed, "E17 gate failures:\n" + "\n".join(report.failures)
