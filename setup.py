"""Setup shim for editable installs on environments without the
``wheel`` package (PEP 660 builds need it; legacy develop does not)."""
from setuptools import setup

setup()
