"""The paper's motivating application: drone analytics (Section 2.2).

ASX (an access network flying drones) streams telemetry to its VMs in
ASY (a cost-effective cloud) for real-time adaptive control.  Occasional
wide-area delay spikes break the control loop's deadline.

This example runs that workload packet-level over the Vultr deployment
during an instability event and compares:

* **BGP default** — pinned to the provider-preferred path (NTT);
* **Tango** — jitter-aware adaptive selection over the measured tunnels.

The metric an operator cares about: fraction of control messages that
arrive within the 40 ms control-loop deadline, and latency statistics.

Run:
    python examples/drone_analytics.py
"""

from repro.analysis.report import format_table
from repro.core.policy import JitterAwareSelector, StaticSelector
from repro.netsim.delaymodels import InstabilityEvent
from repro.netsim.trace import DroneTelemetryWorkload, PacketFactory
from repro.scenarios.vultr import VultrDeployment

DEADLINE_S = 0.040
RUN_SECONDS = 30.0
FLOW_DRONE = 42


def run_workload(policy_name: str) -> dict:
    deployment = VultrDeployment(include_events=False)
    deployment.establish()

    # Inject a (time-shifted) instability window on the NY->LA GTT path
    # — the Figure 4 (right) event, early enough to hit this short run.
    link = deployment.net.links["ny->la:GTT"]
    link.delay = link.delay.with_event(
        InstabilityEvent(
            start=10.0,
            duration=15.0,
            spike_probability=0.05,
            spike_min=0.010,
            spike_max=0.050,
            seed=77,
        )
    )

    deployment.start_path_probes("ny")
    if policy_name == "tango":
        deployment.set_data_policy(
            "ny",
            JitterAwareSelector(
                deployment.gateway_ny.outbound, window_s=1.0, jitter_weight=5.0
            ),
        )
    else:
        deployment.set_data_policy("ny", StaticSelector(0))  # BGP default

    # Stamp application-level latency on delivery at the cloud host.
    latencies: list[float] = []

    def on_delivery(packet, now):
        if packet.flow_label == FLOW_DRONE:
            latencies.append(now - packet.meta["sent_at"])

    deployment.host_la._on_packet = on_delivery

    factory = PacketFactory(
        src=str(deployment.pairing.a.host_address(3)),
        dst=str(deployment.pairing.b.host_address(3)),
        payload_bytes=256,
        flow_label=FLOW_DRONE,
    )
    workload = DroneTelemetryWorkload(
        deployment.sim,
        factory,
        deployment.sender_for("ny"),
        rate_hz=100.0,
        deadline_s=DEADLINE_S,
    )
    workload.start(until=RUN_SECONDS)
    deployment.net.run(until=RUN_SECONDS + 1.0)

    on_time = sum(1 for latency in latencies if latency <= DEADLINE_S)
    return {
        "policy": policy_name,
        "sent": workload.sent,
        "delivered": len(latencies),
        "on_time_fraction": on_time / max(len(latencies), 1),
        "worst_latency_ms": max(latencies) * 1e3 if latencies else 0.0,
        "mean_latency_ms": (
            sum(latencies) / len(latencies) * 1e3 if latencies else 0.0
        ),
    }


def main() -> None:
    rows = [run_workload(policy) for policy in ("bgp-default", "tango")]
    print(format_table(rows, title="drone control-loop deadline performance"))
    print(
        "\nThe BGP default path (NTT) sits within a millisecond of the"
        "\ndeadline and misses whenever noise pushes it over; Tango keeps"
        "\nan ~8 ms margin by riding GTT while it is healthy and abandons"
        "\nit during the instability (its worst case is the handful of"
        "\nspiked packets before the policy reacts)."
    )


if __name__ == "__main__":
    main()
