"""Quickstart: bring up Tango between two edges and watch it measure.

Reproduces the paper's deployment in miniature:

1. build the Vultr NY/LA control plane and run the Section 4.1
   discovery procedure in both directions;
2. start per-path measurement probes (the paper's 10 ms cadence);
3. run the packet-level simulation for a few seconds;
4. print what each side now knows about its wide-area paths.

Run:
    python examples/quickstart.py
"""

from repro.analysis.report import format_table
from repro.scenarios.vultr import VultrDeployment


def main() -> None:
    deployment = VultrDeployment(include_events=False)
    state = deployment.establish()

    print("== control plane: discovered paths ==")
    for direction, result in (
        ("NY -> LA", state.discovery_a_to_b),
        ("LA -> NY", state.discovery_b_to_a),
    ):
        print(f"\n{direction}")
        rows = [
            {
                "rank": path.index + 1,
                "path": path.short_label,
                "as_path": path.label,
                "communities": ", ".join(
                    sorted(str(c) for c in path.communities)
                )
                or "(none)",
            }
            for path in result.paths
        ]
        print(format_table(rows))

    print("\n== data plane: measuring all paths for 3 simulated seconds ==")
    deployment.start_path_probes("ny")
    deployment.start_path_probes("la")
    deployment.net.run(until=3.0)
    deployment.stop_probes()

    for edge in ("ny", "la"):
        gateway = deployment.gateway(edge)
        print(f"\n{edge.upper()} gateway tunnel report (outbound paths):")
        print(format_table(gateway.tunnel_report(window_s=3.0)))

    offset = deployment.clock_offset_delta("ny")
    print(
        f"\nNote: NY->LA measurements include a constant {offset * 1e3:+.1f} ms"
        " clock-offset distortion — relative comparisons between paths"
        " are unaffected, which is all Tango needs (paper, Section 3)."
    )


if __name__ == "__main__":
    main()
