"""Adaptive failover around the paper's route-change event (Fig. 4 middle).

Replays the hour around hour 121.25 of the campaign: GTT's intradomain
route change bumps its one-way delay by 5 ms for ~10 minutes.  BGP never
reacts (the interdomain path is unchanged and BGP carries no performance
signal); Tango's hysteresis policy detours to Telia for exactly the
duration of the plateau and returns.

Prints the per-minute timeline: GTT's delay, the policy's chosen path,
and the delay the application actually experienced.

Run:
    python examples/adaptive_failover.py
"""

import numpy as np

from repro.analysis.replay import PolicyReplay, hysteresis_chooser, static_chooser
from repro.analysis.report import format_table, series_sparkline
from repro.scenarios.vultr import ROUTE_CHANGE_HOUR, VultrDeployment

EVENT_S = ROUTE_CHANGE_HOUR * 3600.0
T0, T1 = EVENT_S - 900.0, EVENT_S + 1500.0
GTT = 2


def main() -> None:
    deployment = VultrDeployment()
    deployment.establish()
    labels = {t.path_id: t.short_label for t in deployment.tunnels("ny")}

    measured, true = deployment.run_fast_campaign("ny", T0, T1, interval_s=0.1)
    replay = PolicyReplay(measured, true, decision_interval_s=1.0)
    pinned = replay.run(
        static_chooser(GTT), T0, T1, name="pinned-GTT", initial_path=GTT
    )
    tango = replay.run(
        hysteresis_chooser(margin_s=0.0005, dwell_s=5.0),
        T0,
        T1,
        name="tango",
        initial_path=GTT,
    )

    print("GTT one-way delay over the window (paper Fig. 4, middle):")
    print("  " + series_sparkline(true.series(GTT).values * 1e3, 76))

    rows = []
    for minute_start in np.arange(T0, T1, 120.0):
        mask = (tango.times >= minute_start) & (tango.times < minute_start + 120.0)
        if not np.any(mask):
            continue
        chosen = int(np.bincount(tango.choices[mask]).argmax())
        rows.append(
            {
                "t_min": (minute_start - EVENT_S) / 60.0,
                "gtt_ms": float(
                    np.mean(true.series(GTT).window(
                        minute_start, minute_start + 120.0
                    )[1])
                )
                * 1e3,
                "tango_path": labels[chosen],
                "tango_ms": float(np.mean(tango.achieved[mask])) * 1e3,
                "pinned_ms": float(np.mean(pinned.achieved[mask])) * 1e3,
            }
        )
    print(
        format_table(
            rows,
            title="two-minute bins relative to the event (t=0 is hour 121.25)",
        )
    )
    print(
        f"\nwindow means: tango {tango.mean_delay * 1e3:.3f} ms vs "
        f"pinned-GTT {pinned.mean_delay * 1e3:.3f} ms "
        f"({tango.switch_count} path switches)"
    )


if __name__ == "__main__":
    main()
