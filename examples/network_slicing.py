"""QoS slicing over Tango tunnels (paper Section 6).

"Tango has the potential to act as a wide-area dynamically slicable
network allowing participants to enforce certain QoS."

Three slices share the NY→LA pairing:

* **control** — the drone control loop: pinned to the stable low-jitter
  path, never metered;
* **video** — adaptive path selection, generous meter;
* **bulk** — backups: best-effort path, tightly metered so it cannot
  starve the others.

The border switch classifies by flow label, meters each slice with a
token bucket, and routes each slice by its own policy — all at the
per-packet layer, no core support.

Run:
    python examples/network_slicing.py
"""

from repro.analysis.report import format_table
from repro.core.policy import LowestDelaySelector, StaticSelector
from repro.core.slicing import NetworkSlice, SliceManager, TokenBucket
from repro.netsim.trace import PacketFactory
from repro.scenarios.vultr import VultrDeployment

FLOW_CONTROL, FLOW_VIDEO, FLOW_BULK = 1, 2, 3
RUN_SECONDS = 8.0


def main() -> None:
    deployment = VultrDeployment(include_events=False)
    deployment.establish()
    deployment.start_path_probes("ny")

    gateway = deployment.gateway("ny")
    control = NetworkSlice(
        "control", frozenset({FLOW_CONTROL}), StaticSelector(2)  # pin GTT
    )
    video = NetworkSlice(
        "video",
        frozenset({FLOW_VIDEO}),
        LowestDelaySelector(gateway.outbound, window_s=1.0),
        bucket=TokenBucket(rate_bps=2_000_000.0, burst_bytes=64 * 1024),
    )
    bulk = NetworkSlice(
        "bulk",
        frozenset({FLOW_BULK}),
        StaticSelector(0),  # best-effort on the default path
        bucket=TokenBucket(rate_bps=80_000.0, burst_bytes=4 * 1024),
    )
    best_effort = NetworkSlice("best-effort", frozenset(), StaticSelector(0))
    manager = SliceManager([control, video, bulk], best_effort)
    # Admission runs before the Tango sender program; routing decisions
    # delegate to each slice's own selector.
    deployment.gw_ny_switch.egress_programs.insert(0, manager.admission_program)
    deployment.set_data_policy("ny", manager)

    send = deployment.sender_for("ny")
    workloads = (
        (FLOW_CONTROL, 100.0, 128),  # 100 pps of 128 B control messages
        (FLOW_VIDEO, 200.0, 1000),  # ~1.6 Mbit/s of video
        (FLOW_BULK, 200.0, 1000),  # bulk tries the same rate, gets capped
    )
    for flow, rate, payload in workloads:
        factory = PacketFactory(
            src=str(deployment.pairing.a.host_address(flow)),
            dst=str(deployment.pairing.b.host_address(flow)),
            flow_label=flow,
            payload_bytes=payload,
        )
        count = int(rate * RUN_SECONDS)
        for i in range(count):
            deployment.sim.schedule_at(
                i / rate, lambda f=factory: send(f.build())
            )
    deployment.net.run(until=RUN_SECONDS + 1.0)

    delivered = {}
    paths = {}
    for packet in deployment.host_la.received_packets:
        delivered[packet.flow_label] = delivered.get(packet.flow_label, 0) + 1
        paths.setdefault(packet.flow_label, set()).add(
            packet.meta.get("tango_path_id")
        )
    rows = []
    for row in manager.report():
        name = row["slice"]
        flow = {"control": 1, "video": 2, "bulk": 3}.get(name)
        rows.append(
            {
                **row,
                "delivered": delivered.get(flow, 0),
                "paths": ",".join(
                    str(p) for p in sorted(paths.get(flow, set()))
                ),
            }
        )
    print(format_table(rows, title="per-slice outcome (8 s of offered load)"))
    print(
        "\nThe control slice rides its pinned path untouched; video adapts"
        "\nwithin its envelope; bulk is clamped by its token bucket — QoS"
        "\nenforced entirely at the cooperating edges."
    )


if __name__ == "__main__":
    main()
