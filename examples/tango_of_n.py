"""From Tango of 2 to Tango of N (paper Section 6, future work).

Grows a mesh of cooperating edges: every pair runs the pairwise
discovery procedure, and tunnels compose through member relays
(RON-style, but with switch-speed forwarding at the relays).  Shows how
route diversity and achievable delay improve as members join.

Run:
    python examples/tango_of_n.py
"""

import numpy as np

from repro.analysis.report import format_table
from repro.scenarios.topologies import build_mesh_scenario


def main() -> None:
    rows = []
    for n in (2, 3, 4, 5, 6):
        scenario = build_mesh_scenario(n)
        mesh = scenario.mesh
        diversities, gains = [], []
        for a in scenario.edge_names:
            for b in scenario.edge_names:
                if a == b:
                    continue
                diversities.append(mesh.diversity(a, b, max_relays=1))
                gains.append(mesh.diversity_gain(a, b, max_relays=1))
        rows.append(
            {
                "members": n,
                "routes_per_pair": float(np.mean(diversities)),
                "mean_gain_ms": float(np.mean(gains)) * 1e3,
                "max_gain_ms": float(np.max(gains)) * 1e3,
                "pairs_gaining": float(np.mean(np.asarray(gains) > 0)),
            }
        )
    print(format_table(rows, title="Tango of N — diversity and delay gains"))

    scenario = build_mesh_scenario(5)
    print("\nexample composite routes, edge0 -> edge3 (best first):")
    for route in scenario.mesh.routes("edge0", "edge3", max_relays=1)[:5]:
        relays = ",".join(route.relays) or "direct"
        print(
            f"  {route.total_delay_s * 1e3:7.3f} ms  via {relays:10s}  {route.label}"
        )
    print(
        "\nEach member added multiplies usable route combinations; the"
        "\npairwise Tango session is the building block (paper, Section 6)."
    )


if __name__ == "__main__":
    main()
