"""From Tango of 2 to Tango of N — now a *live* federation.

Earlier revisions computed this table from the offline analytical mesh;
here every row comes from a running federation: N gateways over one
shared BGP network, every pairwise session established through one
shared convergence cache (``repro.federation.FederationRegistry``), and
the diversity/delay-gain analytics projected from the *established
tunnels'* calibrated delays.  The shared-cache hit rate is printed per
row — the dedup that lets one process establish dozens of pairs.

Run:
    python examples/tango_of_n.py
"""

import numpy as np

from repro.analysis.report import format_table
from repro.federation import FederationRegistry
from repro.scenarios.topologies import build_live_federation


def main() -> None:
    rows = []
    for n in (2, 3, 4, 5, 6):
        scenario = build_live_federation(n, degraded_pair=False)
        registry = FederationRegistry(scenario)
        registry.establish()
        mesh = registry.analytical_mesh()
        diversities, gains = [], []
        for a in scenario.member_names:
            for b in scenario.member_names:
                if a == b:
                    continue
                diversities.append(mesh.diversity(a, b, max_relays=1))
                gains.append(mesh.diversity_gain(a, b, max_relays=1))
        rows.append(
            {
                "members": n,
                "routes_per_pair": float(np.mean(diversities)),
                "mean_gain_ms": float(np.mean(gains)) * 1e3,
                "max_gain_ms": float(np.max(gains)) * 1e3,
                "pairs_gaining": float(np.mean(np.asarray(gains) > 0)),
                "cache_hit_rate": registry.snapshot_stats()["hit_rate"],
            }
        )
        if n == 5:
            mesh5 = mesh
        registry.stop()
    print(format_table(rows, title="Tango of N — diversity and delay gains"))

    print("\nexample composite routes, edge0->edge3 (best first):")
    for route in mesh5.routes("edge0", "edge3", max_relays=1)[:5]:
        relays = ",".join(route.relays) or "direct"
        print(
            f"  {route.total_delay_s * 1e3:7.3f} ms  via {relays:10s}  {route.label}"
        )
    print(
        "\nEach member added multiplies usable route combinations; the"
        "\npairwise Tango session is the building block, and the shared"
        "\nsnapshot cache keeps N-site establishment affordable."
    )


if __name__ == "__main__":
    main()
