"""Trustworthy telemetry under an on-path attacker (paper Section 6).

"Any data-driven system working in the wide-area is vulnerable to
on-path and off-path attackers who might try to compromise the
monitoring process.  For instance, an attacker might try to inject, drop
or modify some of the packets used for measurements."

This example stages exactly that attack against the Vultr deployment: a
compromised transit hop on the *best* path (GTT) rewrites Tango
timestamps to make GTT look slower than NTT, trying to push the victim's
traffic onto a path the attacker controls.

Two runs: without telemetry authentication the attack succeeds (traffic
leaves GTT); with the shared-key MACs of `repro.telemetry.auth` every
tampered packet is rejected at verification and the routing decision
stands.

Run:
    python examples/secure_telemetry.py
"""

from dataclasses import replace

from repro.analysis.report import format_table
from repro.core.policy import LowestDelaySelector
from repro.scenarios.vultr import VultrDeployment

ATTACK_EXTRA_NS = 30_000_000  # +30 ms forged onto tampered timestamps
TAMPER_EVERY = 3  # forge every third GTT packet (stay stealthy)
GTT = 2
_attack_counter = {"n": 0}


def attacker_program(switch, packet):
    """On-path tamperer: inflate every third GTT-tunnel timestamp by
    30 ms (rewriting the timestamp backwards in time makes the measured
    one-way delay larger — the path looks congested).  Tampering only a
    fraction keeps the attack stealthier than dropping the path outright
    — which an on-path adversary could always do, and which no
    measurement scheme can prevent (only detect)."""
    tango = packet.tango
    if tango is not None and tango.path_id == GTT:
        _attack_counter["n"] += 1
        if _attack_counter["n"] % TAMPER_EVERY == 0:
            index = packet.headers.index(tango)
            packet.headers[index] = replace(
                tango, timestamp_ns=tango.timestamp_ns - ATTACK_EXTRA_NS
            )
    return packet


def run(auth_key: bytes) -> dict:
    deployment = VultrDeployment(include_events=False, auth_key=auth_key)
    deployment.establish()
    # Compromise the receiving border's upstream: tamper before the
    # receiver program sees the packet (ingress program attached first
    # runs first, so prepend the attacker).
    deployment.gw_la_switch.ingress_programs.insert(0, attacker_program)

    deployment.start_path_probes("ny", interval_s=0.01)
    deployment.set_data_policy(
        "ny", LowestDelaySelector(deployment.gateway_ny.outbound, window_s=1.0)
    )

    # Data stream whose path choice the attacker wants to steer.
    from repro.netsim.trace import PacketFactory, ProbeGenerator

    factory = PacketFactory(
        src=str(deployment.pairing.a.host_address(5)),
        dst=str(deployment.pairing.b.host_address(5)),
        flow_label=77,
    )
    data = ProbeGenerator(
        deployment.sim, factory, deployment.sender_for("ny"), interval=0.02
    )
    data.start(at=2.0)
    deployment.net.run(until=8.0)

    delivered = [
        p for p in deployment.host_la.received_packets if p.flow_label == 77
    ]
    on_gtt = sum(1 for p in delivered if p.meta["tango_path_id"] == GTT)
    receiver = deployment.gateway_la.receiver
    return {
        "auth": "enabled" if auth_key else "disabled",
        "data_packets": len(delivered),
        "fraction_on_gtt": on_gtt / max(len(delivered), 1),
        "rejected_forgeries": receiver.rejected_auth,
    }


def main() -> None:
    rows = [run(b""), run(b"shared-pairing-key!!")]
    print(
        format_table(
            rows,
            title=(
                "on-path timestamp forgery against GTT "
                f"(+{ATTACK_EXTRA_NS / 1e6:.0f} ms)"
            ),
        )
    )
    print(
        "\nWithout authentication the forged measurements inflate GTT's"
        "\napparent delay and steer the victim's traffic off its best"
        "\npath.  With the shared-key MAC every tampered packet fails"
        "\nverification and is dropped: the surviving clean measurements"
        "\nkeep the routing decision on GTT, and the rejection counter"
        "\nitself is the alarm that someone is tampering."
    )


if __name__ == "__main__":
    main()
