"""Root pytest configuration.

CI runs the suites with ``--timeout`` (pytest-timeout) so a hung
simulation fails fast instead of stalling the job.  The plugin is a dev
extra, not a hard dependency: when it is absent the option below makes
``--timeout``/``--timeout-method`` parse as no-ops, so the same command
lines work in minimal environments — without a timeout, not without a
test run.
"""


def pytest_addoption(parser, pluginmanager):
    if pluginmanager.hasplugin("timeout"):
        return  # pytest-timeout installed: the real options exist
    group = parser.getgroup("timeout", "per-test timeout (plugin absent: ignored)")
    group.addoption("--timeout", type=float, default=None, help="ignored")
    group.addoption("--timeout-method", default=None, help="ignored")
