"""Shared-risk link groups: correlated-failure domains for Tango paths.

Tango's value proposition is steering across *disjoint* edge-to-edge
paths, but AS-level disjointness says nothing about the physical layer:
two transit providers can ride the same conduit out of a metro, share a
landing station, or sit in the same regional power grid.  When that
shared fate fails, it takes every "disjoint" tunnel down at once — the
dominant real-world multipath failure mode.

This package models those failure domains explicitly:

* :class:`SrlgRegistry` — names risk groups, maps links/routers into
  them, tracks the live up/draining/down state of each group
  (refcounted, so overlapping fault windows compose), and groups
  routers+groups into named :class:`Region` blast radii.
* :mod:`~repro.srlg.diversity` — SRLG-aware scoring over tunnel sets:
  pairwise :func:`shared_risk`, a candidate-set
  :func:`diversity_penalty`, deterministic
  :func:`max_disjoint_backup` selection, and the
  :class:`FateAwareSelector` data-plane wrapper that refuses to place
  traffic on tunnels whose risk group is down or draining.
* :mod:`~repro.srlg.frr` — :class:`FastReroute`: precomputes a
  max-SRLG-disjoint backup per primary and installs it
  make-before-break (pin first, drain later) the moment a group goes
  down or starts draining.

Everything degrades to a no-op when no tags exist: untagged scenarios
keep today's behaviour bit-for-bit.
"""

from .diversity import (
    FateAwareSelector,
    diversity_penalty,
    max_disjoint_backup,
    select_diverse,
    shared_risk,
)
from .frr import FastReroute, FrrEvent
from .registry import Region, SrlgRegistry

__all__ = [
    "SrlgRegistry",
    "Region",
    "shared_risk",
    "diversity_penalty",
    "max_disjoint_backup",
    "select_diverse",
    "FateAwareSelector",
    "FastReroute",
    "FrrEvent",
]
