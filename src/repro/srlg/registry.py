"""Failure-domain registry: named SRLGs, regions, and live group state.

The registry is the single source of truth three consumers share:

* the **injector** marks groups down/draining when a correlated fault
  fires (``srlg_failure``, ``regional_outage``, ``maintenance_window``);
* the **data plane** (:class:`~repro.srlg.diversity.FateAwareSelector`)
  filters candidate tunnels whose groups are unavailable;
* the **controller** (:class:`~repro.srlg.frr.FastReroute` and
  QuarantinePolicy probation) reads the same state to pin backups and
  refuse to probe tunnels whose domain is still down.

State transitions are **refcounted**: two overlapping maintenance or
failure windows on the same group each take a hold, and the group only
comes back up when the last hold clears — the same discipline the fault
injector applies to stateful control-plane faults.  ``epoch`` increments
on every *effective* transition (0 -> 1 holds or 1 -> 0 holds), which
lets per-tick consumers short-circuit when nothing changed.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Region", "SrlgRegistry"]


@dataclass(frozen=True)
class Region:
    """A named blast radius: routers and risk groups that share fate.

    A ``regional_outage`` fault takes the region's risk-group links down
    *and* disconnects every BGP session touching the region's routers —
    the "metro lost power" scenario where both the data plane and the
    control plane inside the domain disappear together.
    """

    name: str
    routers: tuple[str, ...] = ()
    groups: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("region name must be non-empty")
        if not self.routers and not self.groups:
            raise ValueError(
                f"region {self.name!r} must name at least one router or group"
            )


class SrlgRegistry:
    """Maps links/routers into named risk groups and tracks group state."""

    def __init__(self) -> None:
        self._link_groups: dict[str, frozenset[str]] = {}
        self._node_groups: dict[str, frozenset[str]] = {}
        self._known: set[str] = set()
        self._regions: dict[str, Region] = {}
        self._down: dict[str, int] = {}
        self._draining: dict[str, int] = {}
        #: Bumped on every effective state transition; consumers use it
        #: to skip recomputation on quiet ticks.
        self.epoch = 0

    # -- membership ----------------------------------------------------

    def tag_link(self, link_name: str, *groups: str) -> None:
        """Add ``link_name`` to each named group (idempotent, additive)."""
        merged = self._link_groups.get(link_name, frozenset()) | frozenset(groups)
        self._link_groups[link_name] = merged
        self._known.update(groups)

    def tag_node(self, node_name: str, *groups: str) -> None:
        """Add ``node_name`` (a router) to each named group."""
        merged = self._node_groups.get(node_name, frozenset()) | frozenset(groups)
        self._node_groups[node_name] = merged
        self._known.update(groups)

    def groups_for_link(self, link_name: str) -> frozenset[str]:
        return self._link_groups.get(link_name, frozenset())

    def link_members(self, group: str) -> tuple[str, ...]:
        """Links belonging to ``group``, sorted for determinism."""
        return tuple(
            sorted(
                name
                for name, groups in self._link_groups.items()
                if group in groups
            )
        )

    def node_members(self, group: str) -> tuple[str, ...]:
        return tuple(
            sorted(
                name
                for name, groups in self._node_groups.items()
                if group in groups
            )
        )

    def groups(self) -> tuple[str, ...]:
        """Every group name ever tagged, sorted."""
        return tuple(sorted(self._known))

    # -- regions -------------------------------------------------------

    def add_region(self, region: Region) -> None:
        if region.name in self._regions:
            raise ValueError(f"region {region.name!r} already registered")
        self._regions[region.name] = region
        self._known.update(region.groups)

    def region(self, name: str) -> Region:
        try:
            return self._regions[name]
        except KeyError:
            raise LookupError(
                f"no region {name!r}; have {sorted(self._regions)}"
            ) from None

    def regions(self) -> tuple[str, ...]:
        return tuple(sorted(self._regions))

    # -- live state (refcounted) ---------------------------------------

    def mark_down(self, group: str) -> None:
        """Take a down-hold on ``group``; the first hold transitions it."""
        count = self._down.get(group, 0)
        self._down[group] = count + 1
        self._known.add(group)
        if count == 0:
            self.epoch += 1

    def clear_down(self, group: str) -> None:
        count = self._down.get(group, 0)
        if count <= 0:
            raise ValueError(f"clear_down without mark_down for {group!r}")
        if count == 1:
            del self._down[group]
            self.epoch += 1
        else:
            self._down[group] = count - 1

    def mark_draining(self, group: str) -> None:
        """Take a draining-hold: scheduled maintenance gave advance notice."""
        count = self._draining.get(group, 0)
        self._draining[group] = count + 1
        self._known.add(group)
        if count == 0:
            self.epoch += 1

    def clear_draining(self, group: str) -> None:
        count = self._draining.get(group, 0)
        if count <= 0:
            raise ValueError(
                f"clear_draining without mark_draining for {group!r}"
            )
        if count == 1:
            del self._draining[group]
            self.epoch += 1
        else:
            self._draining[group] = count - 1

    def state(self, group: str) -> str:
        """``"down"`` | ``"draining"`` | ``"up"`` — down dominates."""
        if self._down.get(group, 0) > 0:
            return "down"
        if self._draining.get(group, 0) > 0:
            return "draining"
        return "up"

    def down_groups(self) -> frozenset[str]:
        return frozenset(self._down)

    def unavailable_groups(self) -> frozenset[str]:
        """Groups no new traffic should be placed on: down or draining."""
        return frozenset(self._down) | frozenset(self._draining)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SrlgRegistry(groups={len(self._known)}, "
            f"links={len(self._link_groups)}, down={sorted(self._down)}, "
            f"draining={sorted(self._draining)})"
        )
