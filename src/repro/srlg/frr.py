"""Fast reroute: precomputed SRLG-disjoint backups, make-before-break.

BGP reconvergence after a correlated failure is measured in tens of
seconds; Tango's telemetry loop is measured in hundreds of
milliseconds.  :class:`FastReroute` closes the remaining gap to *one
controller tick* by removing all decision latency from the failure
path: the backup for every primary is computed **before** anything
fails, so reacting to a group event is a table lookup plus a pin.

The state machine:

* **steady** — ``backup_for`` maps each tunnel to its max-SRLG-disjoint
  alternative (ties to lowest path id).  Recomputed only when the
  registry epoch moves, i.e. when a group changes state — including
  *loss of disjointness*: when a group failure makes a formerly-disjoint
  backup share fate with its primary, the table is repaired on the same
  tick.
* **pinned** — a group covering the currently-ridden tunnel went down
  (or started draining for maintenance).  The backup is pinned on the
  :class:`~repro.srlg.diversity.FateAwareSelector` so the very next
  packet rides it; the primary is never torn down first
  (make-before-break — during a maintenance drain this achieves a
  zero-loss switch, because the pin lands while the old path still
  forwards).
* **released** — the primary's groups recovered; the pin is dropped and
  the inner measurement-driven policy resumes.

Group state (down/draining marks in :class:`SrlgRegistry`) is the
authoritative failure-domain signal — the moral equivalent of a NOC
feed or maintenance calendar.  The undefended ablation in the E18
campaign shows what life looks like without it: loss-triggered
quarantine only, paying the detection latency and the drained-window
losses this module exists to avoid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .diversity import FateAwareSelector, max_disjoint_backup
from .registry import SrlgRegistry

if TYPE_CHECKING:
    from ..core.gateway import TangoGateway

__all__ = ["FastReroute", "FrrEvent"]


@dataclass(frozen=True)
class FrrEvent:
    """One fast-reroute action, for audit and the recovery report."""

    t: float
    action: str  # "switchover" | "release" | "recompute"
    primary: int
    backup: int  # -1 when no backup applies (release/recompute)
    groups: tuple[str, ...] = ()


class FastReroute:
    """Per-primary backup precomputation + pin/release on group events."""

    def __init__(
        self,
        gateway: "TangoGateway",
        registry: SrlgRegistry,
        selector: FateAwareSelector,
    ) -> None:
        self.gateway = gateway
        self.registry = registry
        self.selector = selector
        self.log: list[FrrEvent] = []
        self.switchovers = 0
        self.backup_for: dict[int, int] = {}
        self._pinned_primary: Optional[int] = None
        self._last_epoch: Optional[int] = None
        self._recompute(frozenset())

    def backup_of(self, path_id: int) -> Optional[int]:
        return self.backup_for.get(path_id)

    def _recompute(self, unavailable: frozenset[str]) -> bool:
        """Rebuild the backup table against the current group state.

        Backups are drawn from tunnels not currently covered by an
        unavailable group, so a group event that kills a primary's
        precomputed backup (loss of disjointness) repairs the table in
        the same pass.  Falls back to the full set when everything is
        covered — a least-bad answer beats none.
        """
        tunnels = self.gateway.tunnel_table.all_tunnels()
        usable = [t for t in tunnels if not (t.srlgs & unavailable)]
        pool = usable or tunnels
        table: dict[int, int] = {}
        for tunnel in tunnels:
            backup = max_disjoint_backup(tunnel, pool)
            if backup is not None:
                table[tunnel.path_id] = backup.path_id
        changed = table != self.backup_for
        self.backup_for = table
        return changed

    def tick(self, now: float) -> None:
        """Run once per controller tick; cheap no-op on quiet epochs."""
        if self.registry.epoch == self._last_epoch:
            return
        self._last_epoch = self.registry.epoch
        unavailable = self.registry.unavailable_groups()
        tunnels = self.gateway.tunnel_table.all_tunnels()
        affected = frozenset(
            t.path_id for t in tunnels if t.srlgs & unavailable
        )
        if self._recompute(unavailable) and unavailable:
            self.log.append(
                FrrEvent(now, "recompute", -1, -1, tuple(sorted(unavailable)))
            )

        current = self.selector.last_choice
        if current is not None and current in affected:
            backup = self.backup_for.get(current)
            if backup == self.selector.pinned and backup is not None:
                pass  # already riding this backup; nothing to do
            elif backup is not None and backup not in affected:
                # Make-before-break: the pin forces the backup into the
                # forwarding decision while the primary's tunnel state
                # stays installed; nothing is torn down.
                self.selector.pin(backup)
                self._pinned_primary = current
                self.switchovers += 1
                self.log.append(
                    FrrEvent(
                        now,
                        "switchover",
                        current,
                        backup,
                        tuple(sorted(unavailable)),
                    )
                )
            elif self.selector.pinned is not None:
                # The pinned backup itself is now covered and no clean
                # alternative exists; drop the pin and let the
                # fate-aware filter + inner policy fall back.
                self._release(now, self.selector.pinned)
        elif (
            self.selector.pinned is not None
            and self._pinned_primary is not None
            and self._pinned_primary not in affected
        ):
            # Primary's domain recovered: resume measurement-driven policy.
            self._release(now, self.selector.pinned)

    def _release(self, now: float, backup: int) -> None:
        primary = self._pinned_primary if self._pinned_primary is not None else -1
        self.selector.release()
        self._pinned_primary = None
        self.log.append(FrrEvent(now, "release", primary, backup))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FastReroute(backups={self.backup_for}, "
            f"switchovers={self.switchovers}, pinned={self._pinned_primary})"
        )
