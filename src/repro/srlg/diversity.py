"""SRLG-aware diversity scoring and the fate-aware data-plane wrapper.

AS-disjoint is not fate-disjoint: two tunnels through different transit
providers can share a conduit, and a candidate set that *looks* diverse
can collapse under one fiber cut.  The functions here score candidate
sets by shared risk and pick maximally-disjoint backups; all of them are
pure over :class:`~repro.core.tunnels.TangoTunnel` tags and degrade to
today's behaviour when no tags exist (every ``srlgs`` set empty).

:class:`FateAwareSelector` is the data-plane half: it wraps any inner
:class:`~repro.dataplane.programs.PathSelector` and (a) filters
candidates whose risk group is currently down or draining, (b) honours a
fast-reroute **pin** installed by :class:`~repro.srlg.frr.FastReroute`
so a precomputed backup wins over the inner policy during an event.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from ..core.tunnels import TangoTunnel
from ..netsim.packet import Packet
from .registry import SrlgRegistry

if TYPE_CHECKING:
    from ..dataplane.programs import PathSelector
    from ..telemetry.store import MeasurementStore

__all__ = [
    "shared_risk",
    "diversity_penalty",
    "max_disjoint_backup",
    "select_diverse",
    "FateAwareSelector",
]


def shared_risk(a: TangoTunnel, b: TangoTunnel) -> frozenset[str]:
    """Risk groups ``a`` and ``b`` have in common."""
    return a.srlgs & b.srlgs


def diversity_penalty(tunnels: Sequence[TangoTunnel]) -> int:
    """Shared-fate score of a candidate set: sum of pairwise shared
    group counts over unordered pairs.  0 means fully SRLG-disjoint;
    untagged sets always score 0 (current behaviour preserved)."""
    penalty = 0
    ordered = sorted(tunnels, key=lambda t: t.path_id)
    for i, first in enumerate(ordered):
        for second in ordered[i + 1 :]:
            penalty += len(shared_risk(first, second))
    return penalty


def max_disjoint_backup(
    primary: TangoTunnel, candidates: Sequence[TangoTunnel]
) -> Optional[TangoTunnel]:
    """The candidate sharing the fewest risk groups with ``primary``.

    Ties break on lowest ``path_id`` (deterministic, and biased toward
    the BGP-preferred path).  Returns None when no other candidate
    exists.
    """
    pool = [t for t in candidates if t.path_id != primary.path_id]
    if not pool:
        return None
    return min(pool, key=lambda t: (len(shared_risk(primary, t)), t.path_id))


def select_diverse(
    tunnels: Sequence[TangoTunnel], count: int
) -> list[TangoTunnel]:
    """Greedy max-diversity subset of size ``count``.

    Seeds with the lowest ``path_id`` (the BGP default), then repeatedly
    adds the candidate that adds the least shared risk to the picked
    set, ties again on ``path_id``.  Deterministic for a given input.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    remaining = sorted(tunnels, key=lambda t: t.path_id)
    if not remaining:
        return []
    picked = [remaining.pop(0)]
    while remaining and len(picked) < count:
        best = min(
            remaining,
            key=lambda t: (
                sum(len(shared_risk(t, p)) for p in picked),
                t.path_id,
            ),
        )
        remaining.remove(best)
        picked.append(best)
    return picked


class FateAwareSelector:
    """Wrap a selector with failure-domain awareness.

    On every decision the wrapper drops candidates whose risk groups
    intersect the registry's unavailable (down or draining) set before
    delegating to the inner policy.  If the filter would empty the set —
    every candidate shares a dead group — the full set passes through
    unchanged: with no survivor there is nothing better to do than what
    an unaware selector would, and the inner policy's own fallbacks
    (plus quarantine above us) take over.

    Fast reroute installs a **pin**: while pinned, the named tunnel wins
    over the inner policy whenever it survives the availability filter.
    That is the make-before-break half — the backup is forced into the
    forwarding decision before the primary's window actually fails.
    """

    def __init__(self, inner: "PathSelector", registry: SrlgRegistry) -> None:
        self.inner = inner
        self.registry = registry
        #: Path id forced by fast reroute, or None.
        self.pinned: Optional[int] = None
        #: Decisions where the availability filter removed candidates.
        self.filtered = 0
        #: Decisions resolved by the FRR pin.
        self.pin_hits = 0
        self._last_choice: Optional[int] = None

    @property
    def last_choice(self) -> Optional[int]:
        """Path id of the most recent decision (None before traffic)."""
        return self._last_choice

    @property
    def store(self) -> "MeasurementStore":
        """Delegate to the inner selector's measurement store so the
        degraded-mode store swap sees through the wrapper."""
        return self.inner.store  # type: ignore[attr-defined, no-any-return]

    @store.setter
    def store(self, value: "MeasurementStore") -> None:
        self.inner.store = value  # type: ignore[attr-defined]

    def pin(self, path_id: int) -> None:
        self.pinned = path_id

    def release(self) -> None:
        self.pinned = None

    def select(
        self, tunnels: list[TangoTunnel], packet: Packet, now: float
    ) -> TangoTunnel:
        candidates = tunnels
        unavailable = self.registry.unavailable_groups()
        if unavailable:
            kept = [t for t in tunnels if not (t.srlgs & unavailable)]
            if kept and len(kept) < len(tunnels):
                self.filtered += 1
                candidates = kept
        if self.pinned is not None:
            for tunnel in candidates:
                if tunnel.path_id == self.pinned:
                    self.pin_hits += 1
                    self._last_choice = tunnel.path_id
                    return tunnel
        tunnel = self.inner.select(candidates, packet, now)
        self._last_choice = tunnel.path_id
        return tunnel

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FateAwareSelector(inner={self.inner!r}, pinned={self.pinned}, "
            f"filtered={self.filtered})"
        )
