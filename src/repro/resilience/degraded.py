"""Degraded-mode estimation: keep routing when the peer goes quiet.

Tango's one-way-delay selection needs the *peer's* measurements, mirrored
over the WAN.  When that feed goes stale past a configurable horizon the
controller must not freeze (nor quarantine every tunnel — a feed outage
is not a path outage): it downgrades to the measurement status quo the
paper argues Tango improves on — local RTT probing — and upgrades back
the moment the mirror heals.  This module provides the two pieces:

* :class:`RttFallbackEstimator` — a live, probe-cadence RTT/2 estimate
  stream per path, reusing the measurement model of
  :class:`~repro.baselines.rtt_probing.RttProbingBaseline` (same
  four-edge-crossing and two-host noise terms, same deterministic noise
  streams), feeding a local :class:`MeasurementStore` that the selector
  can be pointed at;
* :class:`DegradedModeConfig` — the controller-side knobs: which estimate
  store to fall back to, the staleness horizon that triggers the
  downgrade, and the healthy-tick hysteresis for the upgrade.

Mode transitions are recorded as :class:`ModeTransition` entries in the
controller's ``mode_log`` (and its write-ahead log when journaling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..netsim.delaymodels import deterministic_normal
from ..netsim.events import PeriodicTask, Simulator
from ..telemetry.store import MeasurementStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..scenarios.deployment import PacketLevelDeployment

__all__ = [
    "ModeTransition",
    "DegradedModeConfig",
    "RttFallbackEstimator",
]

#: Controller operating modes.
MODE_COOPERATIVE = "cooperative"
MODE_DEGRADED = "degraded"


@dataclass(frozen=True)
class ModeTransition:
    """One downgrade/upgrade of the estimation source.

    Attributes:
        t: simulation time of the transition.
        mode: the mode *entered* (``cooperative`` | ``degraded``).
        staleness_s: peer-feed staleness that triggered it (None when no
            path had ever been measured).
    """

    t: float
    mode: str
    staleness_s: Optional[float] = None


@dataclass(frozen=True)
class DegradedModeConfig:
    """Controller knobs for the cooperative -> RTT-probing downgrade.

    Attributes:
        estimates: local RTT/2 estimate store (usually an
            :class:`RttFallbackEstimator`'s ``estimates``) the data
            selector is re-pointed at while degraded.
        horizon_s: peer-feed staleness (age of the *freshest* mirrored
            sample across paths) beyond which the controller downgrades.
        heal_ticks: consecutive fresh control ticks required before
            upgrading back — hysteresis against a flapping mirror.
    """

    estimates: MeasurementStore
    horizon_s: float = 1.0
    heal_ticks: int = 2

    def __post_init__(self) -> None:
        if self.horizon_s <= 0:
            raise ValueError(f"horizon_s must be positive, got {self.horizon_s}")
        if self.heal_ticks < 1:
            raise ValueError("heal_ticks must be >= 1")


class RttFallbackEstimator:
    """Live per-path RTT/2 estimates from local round-trip probing.

    The measurement model matches
    :class:`~repro.baselines.rtt_probing.RttProbingBaseline` (E7): each
    probe's RTT is forward + reverse true delay plus the absolute values
    of four edge-crossing and two host-stack noise draws, halved.  The
    noise is a pure function of (seed, time), so campaigns replay
    bit-exactly.  Unlike the offline baseline, this estimator runs *in*
    the simulation as a periodic task, appending to :attr:`estimates` —
    the store a degraded controller re-points its selector at.

    Args:
        sim: the deployment simulator.
        forward: fwd path_id -> that path's true delay model.
        reverse: rev path_id -> delay model; paired with forward paths by
            sorted-id order (the pairing a real prober gets implicitly).
        probe_interval_s: probing cadence (1 s is a generous pinger).
        edge_noise_sigma_s: per-edge-crossing noise stddev (x4 per RTT).
        host_noise_sigma_s: per-host noise stddev (x2 per RTT).
        seed: deterministic noise stream.
    """

    name = "rtt-fallback"

    def __init__(
        self,
        sim: Simulator,
        forward: dict[int, object],
        reverse: dict[int, object],
        probe_interval_s: float = 0.5,
        edge_noise_sigma_s: float = 0.35e-3,
        host_noise_sigma_s: float = 0.5e-3,
        seed: int = 900,
    ) -> None:
        if probe_interval_s <= 0:
            raise ValueError("probe interval must be positive")
        if len(forward) != len(reverse):
            raise ValueError(
                f"directions expose different path counts: "
                f"{len(forward)} vs {len(reverse)}"
            )
        if not forward:
            raise ValueError("need at least one path to probe")
        self.sim = sim
        self.probe_interval_s = probe_interval_s
        self.edge_noise_sigma_s = edge_noise_sigma_s
        self.host_noise_sigma_s = host_noise_sigma_s
        self.seed = seed
        self.estimates = MeasurementStore()
        self.probes = 0
        self._pairs = [
            (fwd_id, forward[fwd_id], reverse[rev_id])
            for fwd_id, rev_id in zip(sorted(forward), sorted(reverse))
        ]
        self._task: Optional[PeriodicTask] = None

    @classmethod
    def for_deployment(
        cls, deployment: PacketLevelDeployment, src: str, **kwargs
    ) -> "RttFallbackEstimator":
        """Build an estimator for traffic sent from ``src``.

        Forward models come from ``src``'s calibration table, reverse
        models from the peer's — the same tables
        :meth:`~repro.scenarios.deployment.PacketLevelDeployment.run_fast_campaign`
        samples.
        """
        dst = deployment.peer_of(src)
        forward = {
            t.path_id: deployment.calibrations[src][t.short_label].build(
                deployment.include_events
            )
            for t in deployment.tunnels(src)
        }
        reverse = {
            t.path_id: deployment.calibrations[dst][t.short_label].build(
                deployment.include_events
            )
            for t in deployment.tunnels(dst)
        }
        return cls(deployment.sim, forward, reverse, **kwargs)

    def start(self) -> PeriodicTask:
        """Begin probing; one RTT/2 estimate per path per interval."""
        if self._task is not None:
            raise RuntimeError("estimator already started")
        self._task = self.sim.call_every(self.probe_interval_s, self._probe)
        return self._task

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _probe(self) -> None:
        now = self.sim.now
        at = np.asarray([now], dtype=np.float64)
        self.probes += 1
        for index, (path_id, fwd_model, rev_model) in enumerate(self._pairs):
            noise_seed = self.seed + 7 * index
            edge = sum(
                float(deterministic_normal(noise_seed + k, at)[0])
                for k in range(4)
            )
            host = sum(
                float(deterministic_normal(noise_seed + 10 + k, at)[0])
                for k in range(2)
            )
            rtt = (
                fwd_model.delay_at(now)
                + rev_model.delay_at(now)
                + abs(edge) * self.edge_noise_sigma_s
                + abs(host) * self.host_noise_sigma_s
            )
            self.estimates.record(path_id, now, rtt / 2.0)
