"""Crash-safe controller persistence: JSON checkpoints + a write-ahead log.

A :class:`ControllerJournal` owns two artifacts:

* a **checkpoint** — the controller's full serialized runtime state
  (quarantine machines, stale flags, estimation mode, tick count), taken
  every ``checkpoint_every_ticks`` control ticks;
* a **write-ahead log** — every decision that mutates routing state
  (quarantine transitions, fallback toggles, mode changes, data-path
  choice changes) appended *as it happens*, truncated at each checkpoint.

Recovery replays checkpoint + WAL: the restarted controller resumes with
the quarantine/edge-trigger/selector state it had at death, so a restart
does not re-thrash tunnels that were already correctly quarantined (or
re-admit ones that were not).

Two backings share one API: in-memory (fast, for simulations that model
the crash without modeling the disk) and directory-backed (checkpoint
written atomically via rename, WAL as append-only JSON lines — a journal
re-opened on the same directory recovers across real process restarts).
All serialization uses sorted keys and compact separators, so
:meth:`ControllerJournal.dump` is byte-identical across replays of the
same seed — the property the E14 acceptance test pins down.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Optional

__all__ = ["WriteAheadLog", "ControllerJournal"]


def _dumps(payload: Any) -> str:
    """Stable JSON: sorted keys, no insignificant whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class WriteAheadLog:
    """Append-only decision log, optionally backed by a JSONL file."""

    def __init__(self, path: Optional[Path] = None) -> None:
        self.path = path
        self._entries: list[dict] = []
        if path is not None and path.exists():
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        self._entries.append(json.loads(line))

    def append(self, entry: dict) -> None:
        self._entries.append(entry)
        if self.path is not None:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(_dumps(entry) + "\n")

    def entries(self) -> list[dict]:
        """The logged entries, oldest first (a copy)."""
        return list(self._entries)

    def truncate(self) -> None:
        """Drop everything — called after a successful checkpoint."""
        self._entries.clear()
        if self.path is not None:
            with open(self.path, "w", encoding="utf-8"):
                pass

    def __len__(self) -> int:
        return len(self._entries)


class ControllerJournal:
    """Checkpoint + WAL pair for one controller.

    Args:
        directory: back the journal with files under this directory
            (``checkpoint.json`` + ``wal.jsonl``); ``None`` keeps it in
            memory.  Re-opening a journal on an existing directory loads
            whatever a previous incarnation persisted — recovery across
            process restarts.
        checkpoint_every_ticks: controller ticks between checkpoints.
    """

    def __init__(
        self,
        directory: Optional[str | Path] = None,
        checkpoint_every_ticks: int = 50,
    ) -> None:
        if checkpoint_every_ticks < 1:
            raise ValueError("checkpoint_every_ticks must be >= 1")
        self.checkpoint_every_ticks = checkpoint_every_ticks
        self.directory = Path(directory) if directory is not None else None
        self.checkpoints = 0
        self.records = 0
        self._snapshot: Optional[dict] = None
        wal_path = None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            checkpoint_path = self.directory / "checkpoint.json"
            if checkpoint_path.exists():
                with open(checkpoint_path, "r", encoding="utf-8") as handle:
                    self._snapshot = json.load(handle)
            wal_path = self.directory / "wal.jsonl"
        self.wal = WriteAheadLog(wal_path)

    # -- write path ----------------------------------------------------------------

    def record(self, kind: str, t: float, **payload: Any) -> None:
        """Append one decision to the WAL (before it takes effect is the
        contract; the controller calls this from the mutation site)."""
        entry = {"kind": kind, "t": t}
        entry.update(payload)
        self.wal.append(entry)
        self.records += 1

    def checkpoint(self, snapshot: dict) -> None:
        """Persist a full state snapshot and truncate the WAL."""
        self._snapshot = snapshot
        self.checkpoints += 1
        if self.directory is not None:
            target = self.directory / "checkpoint.json"
            tmp = self.directory / "checkpoint.json.tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(_dumps(snapshot))
            os.replace(tmp, target)
        self.wal.truncate()

    # -- recovery ------------------------------------------------------------------

    def recover(self) -> tuple[Optional[dict], list[dict]]:
        """The latest checkpoint (or None) plus WAL entries since it."""
        return self._snapshot, self.wal.entries()

    def dump(self) -> str:
        """Deterministic serialization of checkpoint + WAL for replay
        comparisons (byte-identical for identical campaigns)."""
        return _dumps({"checkpoint": self._snapshot, "wal": self.wal.entries()})

    def __repr__(self) -> str:
        backing = "memory" if self.directory is None else str(self.directory)
        return (
            f"ControllerJournal({backing}, checkpoints={self.checkpoints}, "
            f"wal={len(self.wal)})"
        )
