"""Resilience: surviving the failures ``repro.faults`` injects.

PR 1 made the *network* faulty; this package makes the Tango agents
themselves survive those faults, in three layers:

* :mod:`repro.resilience.channel` — the telemetry mirror as a real
  transport: sequenced, acknowledged, retransmitted report frames over a
  lossy control link, with bounded queues and explicit per-edge
  staleness/health status.  Telemetry can be lost, delayed, reordered or
  duplicated and the controller still converges.
* :mod:`repro.resilience.degraded` — probing-based fallback when the
  cooperative signal vanishes: a live RTT/2 estimator (the measurement
  model of ``baselines/rtt_probing``) the controller re-points its
  selector at while the peer feed is stale, upgrading back on heal.
* :mod:`repro.resilience.journal` / :mod:`repro.resilience.supervisor` —
  crash-safe control: periodic JSON checkpoints plus a write-ahead log
  of decisions, and a supervisor that detects controller death
  (heartbeat), restarts with capped exponential backoff, and
  warm-restores quarantine/mode state so recovery does not re-thrash
  tunnels.
"""

from .channel import (
    ChannelConfig,
    ChannelHealth,
    ChannelStats,
    ReliableTelemetryChannel,
    TelemetryRecord,
)
from .degraded import DegradedModeConfig, ModeTransition, RttFallbackEstimator
from .journal import ControllerJournal, WriteAheadLog
from .supervisor import Supervisor, SupervisorEvent, SupervisorPolicy

__all__ = [
    "ChannelConfig",
    "ChannelHealth",
    "ChannelStats",
    "ControllerJournal",
    "DegradedModeConfig",
    "ModeTransition",
    "ReliableTelemetryChannel",
    "RttFallbackEstimator",
    "Supervisor",
    "SupervisorEvent",
    "SupervisorPolicy",
    "TelemetryRecord",
    "WriteAheadLog",
]
