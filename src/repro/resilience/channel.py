"""Reliable telemetry transport: a sequenced, acknowledged channel.

The plain :class:`~repro.core.session.TelemetryMirror` is a lossless
in-process copy — an idealization PR 1's fault injector could only
silence wholesale.  This module replaces the copy with a *transport*
simulated over the same unreliable WAN the tunnels traverse:

* every mirrored sample becomes a :class:`TelemetryRecord` carrying a
  per-channel sequence number (assigned at first transmission, so queue
  drops never leave an unfillable receiver gap);
* records travel in batched report frames over a lossy, delayed control
  link — frame loss is a pure function of (seed, frame index, time), so
  replays are bit-exact;
* the receiver suppresses duplicates, buffers out-of-order arrivals and
  delivers records *in sequence* into the sink store (which keeps every
  per-path series time-monotonic), acking cumulatively after each frame;
* the sender retransmits unacked records on a per-record timeout with
  exponential backoff plus deterministic jitter (capped), and fast
  -retransmits the first gap after ``dupack_threshold`` duplicate
  cumulative acks — the receiver's gap-detection signal;
* the send queue is bounded with drop-oldest overflow, and
  :meth:`ReliableTelemetryChannel.health` reports explicit per-edge
  staleness so the controller can *know* its peer feed is degraded
  rather than infer it.

Under loss, delay, reordering and duplication the sink converges to a
prefix of the source; once the wire heals it catches up completely.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..netsim.events import PeriodicTask, Simulator
from ..telemetry.store import MeasurementStore

__all__ = [
    "TelemetryRecord",
    "ChannelConfig",
    "ChannelStats",
    "ChannelHealth",
    "ReliableTelemetryChannel",
]

_MASK64 = (1 << 64) - 1


def _uniform(seed: int, index: int) -> float:
    """One deterministic uniform draw in [0, 1) per (seed, index).

    splitmix64-style mixing; the channel draws one per frame (loss) and
    one per retransmission (jitter), indexed so pause/resume cannot shift
    any other draw — the replay-exactness contract of ``repro.faults``.
    """
    x = (seed * 0x9E3779B97F4A7C15 + index * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x / float(1 << 64)


@dataclass(frozen=True)
class TelemetryRecord:
    """One mirrored sample in flight: (seq, path, sample time, value).

    ``tag`` carries the truncated MAC over (sample time, seq, path) when
    the channel authenticates its reports — the same protection the Tango
    header gives piggybacked telemetry, extended to the report frames.
    """

    seq: int
    path_id: int
    t: float
    value: float
    tag: Optional[bytes] = None

    @property
    def t_ns(self) -> int:
        """Sample time quantized to nanoseconds — the MAC'd field."""
        return round(self.t * 1e9)


@dataclass(frozen=True)
class ChannelConfig:
    """Transport tuning knobs.

    Attributes:
        report_interval_s: pump cadence — how often new source samples are
            collected, framed, and due retransmissions re-sent.
        latency_s: one-way control-link delay for frames and acks.
        loss_rate: baseline probability that a frame (or ack) is lost.
        rto_s: initial per-record retransmission timeout.
        rto_backoff: multiplier applied per failed attempt.
        max_rto_s: retransmission-timeout ceiling.
        jitter_frac: deterministic jitter added to each backoff, as a
            fraction of the timeout (decorrelates retransmit bursts).
        queue_limit: bound on the not-yet-transmitted send queue; overflow
            drops the *oldest* queued record (freshness beats history).
        window_records: max records awaiting ack before the sender stops
            dequeuing new ones (backpressure into the bounded queue).
        frame_records: max records batched into one report frame.
        dupack_threshold: duplicate cumulative acks that trigger a fast
            retransmit of the first unacked record.
        staleness_s: peer-feed health horizon for :meth:`health`.
    """

    report_interval_s: float = 0.05
    latency_s: float = 0.04
    loss_rate: float = 0.0
    rto_s: float = 0.2
    rto_backoff: float = 2.0
    max_rto_s: float = 2.0
    jitter_frac: float = 0.1
    queue_limit: int = 4096
    window_records: int = 1024
    frame_records: int = 64
    dupack_threshold: int = 3
    staleness_s: float = 1.0

    def __post_init__(self) -> None:
        if self.report_interval_s <= 0:
            raise ValueError("report_interval_s must be positive")
        if self.latency_s < 0:
            raise ValueError("latency_s must be >= 0")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        if self.rto_s <= 0 or self.max_rto_s < self.rto_s:
            raise ValueError("need 0 < rto_s <= max_rto_s")
        if self.rto_backoff < 1.0:
            raise ValueError("rto_backoff must be >= 1")
        if self.jitter_frac < 0:
            raise ValueError("jitter_frac must be >= 0")
        if min(self.queue_limit, self.window_records, self.frame_records) < 1:
            raise ValueError("queue/window/frame sizes must be >= 1")
        if self.dupack_threshold < 1:
            raise ValueError("dupack_threshold must be >= 1")
        if self.staleness_s <= 0:
            raise ValueError("staleness_s must be positive")


@dataclass
class ChannelStats:
    """Transport counters (cumulative, deterministic per replay)."""

    records_sent: int = 0
    records_delivered: int = 0
    duplicates: int = 0
    out_of_order: int = 0
    retransmits: int = 0
    fast_retransmits: int = 0
    frames_sent: int = 0
    frames_lost: int = 0
    acks_sent: int = 0
    acks_lost: int = 0
    queue_drops: int = 0
    samples_discarded: int = 0
    records_forged: int = 0
    records_rejected: int = 0


@dataclass(frozen=True)
class ChannelHealth:
    """Explicit per-edge feed status — what the controller's degraded-mode
    decision reads instead of inferring staleness from store contents."""

    fresh: bool
    staleness_s: Optional[float]  # age of newest *delivered* sample; None if none
    queued: int
    unacked: int


@dataclass
class _Pending:
    """Sender-side per-record retransmission state."""

    record: TelemetryRecord
    attempts: int = 0
    deadline: float = 0.0


@dataclass(frozen=True)
class _LossWindow:
    start: float
    end: float
    rate: float


class ReliableTelemetryChannel:
    """Sequenced, acked telemetry between a source and a sink store.

    Drop-in for :class:`~repro.core.session.TelemetryMirror` at the
    session layer: it exposes ``latency_s``, ``samples_mirrored``,
    ``samples_discarded`` and :meth:`discard_before`, and its pump is a
    pausable :class:`~repro.netsim.events.PeriodicTask`, so the existing
    ``telemetry_drop`` fault silences it unchanged.

    Args:
        source: the far edge's inbound measurement store.
        sink: the near edge's outbound store (what policies read).
        sim: the deployment simulator (frames ride its event queue).
        config: transport knobs.
        seed: deterministic draw stream for loss and jitter.
        name: label used in diagnostics.
        authenticator: when set, every record is MAC-tagged at framing
            and verified (incl. replay-window check) before delivery;
            failures are acked (the transport made its best effort) but
            counted in ``stats.records_forged`` and never reach the sink.
        gate: optional plausibility filter (duck-typed: anything with
            ``admit(path_id, t, value, now) -> bool``); records it
            rejects are counted in ``stats.records_rejected`` and
            withheld from the sink.
    """

    def __init__(
        self,
        source: MeasurementStore,
        sink: MeasurementStore,
        sim: Simulator,
        config: ChannelConfig = ChannelConfig(),
        seed: int = 0,
        name: str = "telemetry-channel",
        authenticator=None,
        gate=None,
    ) -> None:
        self.source = source
        self.sink = sink
        self.sim = sim
        self.config = config
        self.seed = seed
        self.name = name
        self.authenticator = authenticator
        self.gate = gate
        self.stats = ChannelStats()
        self.task: Optional[PeriodicTask] = None
        # sender side
        self._cursor: dict[int, int] = {}
        self._queue: deque[tuple[int, float, float]] = deque()
        self._next_seq = 0
        self._pending: dict[int, _Pending] = {}
        self._draws = itertools.count()
        self._loss_windows: list[_LossWindow] = []
        # receiver side
        self._expected = 0
        self._reorder: dict[int, TelemetryRecord] = {}
        self._last_cum_acked = -1
        self._dupacks = 0
        self._last_delivered_sample_t: Optional[float] = None

    # -- mirror-compatible surface -------------------------------------------------

    @property
    def latency_s(self) -> float:
        return self.config.latency_s

    @property
    def samples_mirrored(self) -> int:
        """Records delivered into the sink (the mirror-API name)."""
        return self.stats.records_delivered

    @property
    def samples_discarded(self) -> int:
        return self.stats.samples_discarded

    def discard_before(self, t: float) -> int:
        """Drop un-sent samples older than ``t`` — outage reports are lost.

        Mirrors :meth:`TelemetryMirror.discard_before`: samples at exactly
        ``t`` survive.  Already-transmitted (unacked) records stay in
        flight — they were on the wire when the outage cleared.
        """
        discarded = 0
        for path_id in self.source.path_ids():
            series = self.source.series(path_id)
            start = self._cursor.get(path_id, 0)
            cut = int(np.searchsorted(series.times, t, side="left"))
            if cut > start:
                self._cursor[path_id] = cut
                discarded += cut - start
        kept = [item for item in self._queue if item[1] >= t]
        discarded += len(self._queue) - len(kept)
        self._queue = deque(kept)
        self.stats.samples_discarded += discarded
        return discarded

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> PeriodicTask:
        """Start the pump (collection + transmission + retransmission)."""
        if self.task is not None:
            raise RuntimeError("channel already started")
        self.task = self.sim.call_every(self.config.report_interval_s, self._pump)
        return self.task

    def stop(self) -> None:
        if self.task is not None:
            self.task.stop()
            self.task = None

    # -- fault-injection hooks -----------------------------------------------------

    def add_loss_window(self, start: float, end: float, rate: float) -> None:
        """Raise frame loss to ``rate`` inside [start, end) — the
        ``telemetry_loss`` fault's handle.  Pure function of time, so the
        override needs no scheduled state changes."""
        if end <= start:
            raise ValueError(f"need end > start, got [{start}, {end})")
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self._loss_windows.append(_LossWindow(start, end, rate))

    def loss_rate(self, now: float) -> float:
        """Effective frame-loss probability at ``now``."""
        rate = self.config.loss_rate
        for window in self._loss_windows:
            if window.start <= now < window.end:
                rate = max(rate, window.rate)
        return rate

    # -- sender --------------------------------------------------------------------

    def _pump(self) -> None:
        now = self.sim.now
        self._collect()
        self._fill_window(now)
        self._transmit_due(now)

    def _collect(self) -> None:
        """Pull new source samples into the bounded send queue."""
        cfg = self.config
        for path_id in self.source.path_ids():
            series = self.source.series(path_id)
            start = self._cursor.get(path_id, 0)
            times, values = series.times, series.values
            for i in range(start, len(series)):
                if len(self._queue) >= cfg.queue_limit:
                    self._queue.popleft()
                    self.stats.queue_drops += 1
                self._queue.append((path_id, float(times[i]), float(values[i])))
            self._cursor[path_id] = len(series)

    def _fill_window(self, now: float) -> None:
        """Assign seqnums to queued records as window space allows."""
        while self._queue and len(self._pending) < self.config.window_records:
            path_id, t, value = self._queue.popleft()
            record = TelemetryRecord(self._next_seq, path_id, t, value)
            if self.authenticator is not None:
                record = TelemetryRecord(
                    record.seq,
                    path_id,
                    t,
                    value,
                    tag=self.authenticator.tag(record.t_ns, record.seq, path_id),
                )
            self._next_seq += 1
            self._pending[record.seq] = _Pending(record, attempts=0, deadline=now)
            self.stats.records_sent += 1

    def _transmit_due(self, now: float) -> None:
        """(Re)send every pending record whose deadline has passed."""
        due = sorted(
            seq for seq, p in self._pending.items() if p.deadline <= now
        )
        cfg = self.config
        for lo in range(0, len(due), cfg.frame_records):
            frame = [self._pending[seq].record for seq in due[lo : lo + cfg.frame_records]]
            self._send_frame(frame, now)
        for seq in due:
            pending = self._pending[seq]
            if pending.attempts > 0:
                self.stats.retransmits += 1
            pending.attempts += 1
            pending.deadline = now + self._rto(seq, pending.attempts)

    def _rto(self, seq: int, attempts: int) -> float:
        cfg = self.config
        rto = min(cfg.rto_s * cfg.rto_backoff ** (attempts - 1), cfg.max_rto_s)
        jitter = _uniform(self.seed ^ 0x5BD1E995, seq * 97 + attempts)
        return rto * (1.0 + cfg.jitter_frac * jitter)

    def _send_frame(self, records: list[TelemetryRecord], now: float) -> None:
        self.stats.frames_sent += 1
        if _uniform(self.seed, next(self._draws)) < self.loss_rate(now):
            self.stats.frames_lost += 1
            return
        self.sim.schedule_in(
            self.config.latency_s, lambda: self._on_frame(tuple(records))
        )

    # -- receiver ------------------------------------------------------------------

    def _on_frame(self, records: tuple[TelemetryRecord, ...]) -> None:
        for record in records:
            if record.seq < self._expected or record.seq in self._reorder:
                self.stats.duplicates += 1
                continue
            if record.seq != self._expected:
                self.stats.out_of_order += 1
            self._reorder[record.seq] = record
        while self._expected in self._reorder:
            self._deliver(self._reorder.pop(self._expected))
            self._expected += 1
        self._send_ack()

    def _deliver(self, record: TelemetryRecord) -> None:
        if self.authenticator is not None and not self.authenticator.verify(
            record.t_ns, record.seq, record.path_id, record.tag
        ):
            self.stats.records_forged += 1
            return
        if self.gate is not None and not self.gate.admit(
            record.path_id, record.t, record.value, self.sim.now
        ):
            self.stats.records_rejected += 1
            return
        self.sink.record(record.path_id, record.t, record.value)
        self.stats.records_delivered += 1
        self._last_delivered_sample_t = record.t

    def _send_ack(self) -> None:
        cum = self._expected - 1
        self.stats.acks_sent += 1
        if _uniform(self.seed, next(self._draws)) < self.loss_rate(self.sim.now):
            self.stats.acks_lost += 1
            return
        self.sim.schedule_in(self.config.latency_s, lambda: self._on_ack(cum))

    def _on_ack(self, cum: int) -> None:
        if cum > self._last_cum_acked:
            for seq in range(self._last_cum_acked + 1, cum + 1):
                self._pending.pop(seq, None)
            self._last_cum_acked = cum
            self._dupacks = 0
            return
        if cum == self._last_cum_acked:
            self._dupacks += 1
            if self._dupacks >= self.config.dupack_threshold and self._pending:
                first = min(self._pending)
                now = self.sim.now
                self._send_frame([self._pending[first].record], now)
                pending = self._pending[first]
                pending.attempts += 1
                pending.deadline = now + self._rto(first, pending.attempts)
                self.stats.fast_retransmits += 1
                self._dupacks = 0

    # -- health --------------------------------------------------------------------

    def health(self, now: Optional[float] = None) -> ChannelHealth:
        """Feed status at ``now`` (defaults to the simulation clock)."""
        if now is None:
            now = self.sim.now
        if self._last_delivered_sample_t is None:
            staleness = None
        else:
            staleness = now - self._last_delivered_sample_t
        fresh = staleness is not None and staleness <= self.config.staleness_s
        return ChannelHealth(
            fresh=fresh,
            staleness_s=staleness,
            queued=len(self._queue),
            unacked=len(self._pending),
        )

    def __repr__(self) -> str:
        return (
            f"ReliableTelemetryChannel({self.name}, sent={self.stats.records_sent}, "
            f"delivered={self.stats.records_delivered}, "
            f"retransmits={self.stats.retransmits})"
        )
