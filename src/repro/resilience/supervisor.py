"""Controller supervision: crash detection and warm restarts.

The :class:`~repro.core.controller.TangoController` is a single point of
failure for an edge's slow path — if it dies mid-epoch, nothing samples
loss, advances quarantine machines, or heals the estimation mode (the
data plane keeps forwarding with its last-installed state, as a real
switch would).  A :class:`Supervisor` closes that gap:

* **detection** — a heartbeat check every ``check_interval_s``: the
  controller is dead if it stopped reporting itself running or its tick
  counter stalled (a hung loop looks exactly like a dead one);
* **restart** — scheduled after a capped exponential backoff (repeated
  crashes wait longer; a stretch of healthy uptime resets the backoff);
* **warm restore** — before restarting, the controller's state is
  rebuilt from its journal (checkpoint + WAL replay), so recovery does
  not re-thrash tunnels that were already quarantined, nor forget the
  degraded/cooperative estimation mode.

Every detection and restart is recorded as a :class:`SupervisorEvent`
with simulation timestamps — the E14 benchmark's recovery-time source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..netsim.events import PeriodicTask, Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.controller import TangoController
    from .journal import ControllerJournal

__all__ = ["SupervisorPolicy", "SupervisorEvent", "Supervisor"]


def _uniform(seed: int, index: int) -> float:
    """Counter-based uniform in [0, 1): splitmix64 of (seed, index).

    Same construction as the fault injector's draws — a pure function of
    its arguments, so a supervisor replays the identical jitter schedule
    for the same seed regardless of event interleaving.
    """
    x = (seed * 0x9E3779B97F4A7C15 + index) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    return (x >> 11) / float(1 << 53)


@dataclass(frozen=True)
class SupervisorPolicy:
    """Detection and restart tuning.

    Attributes:
        check_interval_s: heartbeat cadence (should exceed the
            controller's tick interval, or a healthy controller looks
            stalled between checks).
        restart_delay_s: backoff before the first restart attempt.
        backoff_factor: multiplier per successive crash.
        max_restart_delay_s: backoff ceiling.
        healthy_after_s: uptime that resets the backoff to its base.
        jitter_frac: deterministic jitter added to each restart delay,
            as a fraction of it — decorrelates simultaneous restarts of
            both edges' controllers without sacrificing replayability
            (the draw is a pure function of the supervisor's seed and
            its crash count, never of wall clock).
    """

    check_interval_s: float = 0.5
    restart_delay_s: float = 0.25
    backoff_factor: float = 2.0
    max_restart_delay_s: float = 5.0
    healthy_after_s: float = 10.0
    jitter_frac: float = 0.0

    def __post_init__(self) -> None:
        if self.check_interval_s <= 0:
            raise ValueError("check_interval_s must be positive")
        if self.restart_delay_s <= 0:
            raise ValueError("restart_delay_s must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_restart_delay_s < self.restart_delay_s:
            raise ValueError("max_restart_delay_s below restart_delay_s")
        if self.healthy_after_s <= 0:
            raise ValueError("healthy_after_s must be positive")


@dataclass(frozen=True)
class SupervisorEvent:
    """One supervision action (all times are simulation seconds)."""

    t: float
    action: str  # crash-detected | restart | backoff-reset
    restarts: int = 0
    delay_s: float = 0.0


class Supervisor:
    """Watches one controller; restarts it warm from its journal.

    Args:
        controller: the controller to supervise (already started).
        sim: simulator whose clock drives the heartbeat.
        journal: the controller's journal; ``None`` restarts cold (the
            PR 1 behavior — runtime state reset, traces kept).
        policy: detection/backoff tuning.
        seed: jitter stream identity; two supervisors with different
            seeds (e.g. one per edge) decorrelate even when their
            controllers crash at the same instant.
    """

    def __init__(
        self,
        controller: "TangoController",
        sim: Simulator,
        journal: Optional["ControllerJournal"] = None,
        policy: SupervisorPolicy = SupervisorPolicy(),
        seed: int = 0,
    ) -> None:
        self.controller = controller
        self.sim = sim
        self.journal = journal
        self.policy = policy
        self.seed = seed
        self.events: list[SupervisorEvent] = []
        self.restarts = 0
        self._crashes = 0
        self._task: Optional[PeriodicTask] = None
        self._last_ticks = controller.ticks
        self._delay_s = policy.restart_delay_s
        self._restart_pending = False
        self._last_restart_at: Optional[float] = None

    def start(self) -> None:
        if self._task is not None:
            raise RuntimeError("supervisor already started")
        self._last_ticks = self.controller.ticks
        self._task = self.sim.call_every(
            self.policy.check_interval_s, self._check
        )

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    # -- heartbeat -----------------------------------------------------------------

    def _check(self) -> None:
        if self._restart_pending:
            return
        now = self.sim.now
        alive = self.controller.running and self.controller.ticks > self._last_ticks
        self._last_ticks = self.controller.ticks
        if alive:
            if (
                self._last_restart_at is not None
                and self._delay_s > self.policy.restart_delay_s
                and now - self._last_restart_at >= self.policy.healthy_after_s
            ):
                self._delay_s = self.policy.restart_delay_s
                self.events.append(
                    SupervisorEvent(t=now, action="backoff-reset", restarts=self.restarts)
                )
            return
        delay = self._delay_s
        if self.policy.jitter_frac > 0.0:
            delay += delay * self.policy.jitter_frac * _uniform(
                self.seed, self._crashes
            )
        self._crashes += 1
        self._delay_s = min(
            self._delay_s * self.policy.backoff_factor,
            self.policy.max_restart_delay_s,
        )
        self._restart_pending = True
        self.events.append(
            SupervisorEvent(
                t=now, action="crash-detected", restarts=self.restarts, delay_s=delay
            )
        )
        self.sim.schedule_in(delay, self._restart)

    def _restart(self) -> None:
        controller = self.controller
        if controller.running and controller.ticks > self._last_ticks:
            # Raced with a manual restart: the loop is ticking again.
            self._restart_pending = False
            return
        if controller.running:
            # Hung, not dead: the flag is up but the loop is wedged.
            # Take it down so the restart below is a clean one.
            controller.stop()
        if self.journal is not None:
            snapshot, wal = self.journal.recover()
            controller.restore_state(snapshot, wal)
            controller.start(warm=True)
        else:
            controller.start()
        self.restarts += 1
        self._restart_pending = False
        self._last_ticks = controller.ticks
        self._last_restart_at = self.sim.now
        self.events.append(
            SupervisorEvent(
                t=self.sim.now, action="restart", restarts=self.restarts
            )
        )

    # -- metrics -------------------------------------------------------------------

    def recovery_times(self) -> list[float]:
        """Per-crash downtime: crash detection to successful restart."""
        out = []
        detected: Optional[float] = None
        for event in self.events:
            if event.action == "crash-detected":
                detected = event.t
            elif event.action == "restart" and detected is not None:
                out.append(event.t - detected)
                detected = None
        return out
