"""Tango: cooperative edge-to-edge routing — a faithful reproduction.

Reproduces *It Takes Two to Tango: Cooperative Edge-to-Edge Routing*
(Birge-Lee, Apostolaki, Rexford — HotNets 2022) as a pure-Python system:

* :mod:`repro.bgp` — AS-level BGP control plane (communities, policies).
* :mod:`repro.netsim` — discrete-event packet simulator with calibrated
  wide-area delay processes.
* :mod:`repro.dataplane` — the eBPF-style sender/receiver programs.
* :mod:`repro.telemetry` — one-way delay, jitter, loss, reordering, auth.
* :mod:`repro.core` — Tango itself: discovery, tunnels, policies,
  gateways, pairwise sessions, and Tango-of-N meshes.
* :mod:`repro.baselines` — the Section 2 alternatives.
* :mod:`repro.scenarios` — the Vultr NY/LA deployment and synthetic
  topologies.
* :mod:`repro.analysis` — statistics, a TCP impact model, and reports.
* :mod:`repro.faults` — deterministic fault plans and their injector.
* :mod:`repro.resilience` — degraded mode, journaling, supervision.
* :mod:`repro.lint` — static determinism & Gao–Rexford policy checks
  (the ``tango-repro lint`` engine).

Quickstart::

    from repro.scenarios.vultr import VultrDeployment

    deployment = VultrDeployment()
    state = deployment.establish()
    print(state.discovery_a_to_b.labels())   # paths NY -> LA
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
