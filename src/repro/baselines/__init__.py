"""The paper's Section 2 alternatives, as runnable baselines."""

from .bgp_default import BgpDefaultBaseline
from .multihoming import MultihomingBaseline
from .overlay import OverlayBaseline
from .rtt_probing import RttProbingBaseline

__all__ = [
    "BgpDefaultBaseline",
    "MultihomingBaseline",
    "OverlayBaseline",
    "RttProbingBaseline",
]
