"""The status quo: single BGP best path, no measurement, no control.

What the paper's Figure 1 edge networks are stuck with: BGP picks one
path per prefix by policy (not performance), and the edge rides it
through route changes and instability alike.  Every experiment's
comparison anchor.
"""

from __future__ import annotations

from ..analysis.replay import PolicyReplay, ReplayResult, static_chooser

__all__ = ["BgpDefaultBaseline"]


class BgpDefaultBaseline:
    """Always the provider-preferred path (discovery index 0)."""

    name = "bgp-default"

    def __init__(self, default_path_id: int = 0) -> None:
        self.default_path_id = default_path_id

    def run(self, replay: PolicyReplay, t0: float, t1: float) -> ReplayResult:
        """Score the default path over [t0, t1)."""
        return replay.run(
            static_chooser(self.default_path_id),
            t0,
            t1,
            name=self.name,
            initial_path=self.default_path_id,
        )
