"""RON-style end-host overlay routing.

Overlay networks (RON, Detour) pioneered measurement-driven path choice,
but from *end hosts*: packets detour through overlay nodes in software,
and probing is active and sparse (RON probed each virtual link on the
order of seconds to minutes).  The paper's Section 2.2 critique: extra
infrastructure, software forwarding overheads, and end-host measurement
noise.

This baseline models an overlay deployed on the two edges' own hosts:

* it can use every underlying path (the overlay's virtual links ride the
  same transit networks);
* every forwarded packet pays the software/stack overhead and crosses
  the noisy edge segments (no border switch shortcut);
* its estimates refresh at overlay-probing cadence and carry end-host
  noise.
"""

from __future__ import annotations

import numpy as np

from ..analysis.replay import PolicyReplay, ReplayResult, greedy_chooser
from ..netsim.delaymodels import deterministic_normal
from ..telemetry.store import MeasurementStore

__all__ = ["OverlayBaseline"]


class OverlayBaseline:
    """Greedy overlay routing with software overheads.

    Args:
        fwd_true: forward ground truth per path.
        forwarding_overhead_s: per-packet software path cost (user-space
            forwarding, kernel crossings); RON-era numbers are
            milliseconds, a tuned modern stack still pays ~1 ms.
        probe_interval_s: overlay link-state probing cadence.
        host_noise_sigma_s: end-host measurement noise per sample.
    """

    name = "overlay"

    def __init__(
        self,
        fwd_true: MeasurementStore,
        forwarding_overhead_s: float = 1.0e-3,
        probe_interval_s: float = 10.0,
        host_noise_sigma_s: float = 0.5e-3,
        seed: int = 1300,
    ) -> None:
        if forwarding_overhead_s < 0:
            raise ValueError("forwarding overhead must be >= 0")
        if probe_interval_s <= 0:
            raise ValueError("probe interval must be positive")
        self.fwd_true = fwd_true
        self.forwarding_overhead_s = forwarding_overhead_s
        self.probe_interval_s = probe_interval_s
        self.host_noise_sigma_s = host_noise_sigma_s
        self.seed = seed

    def build_estimates(self, t0: float, t1: float) -> MeasurementStore:
        """Sparse, noisy one-way estimates (overlay nodes can timestamp
        in software, but through their own jittery stacks)."""
        probe_times = np.arange(t0, t1, self.probe_interval_s)
        estimates = MeasurementStore()
        for index, path_id in enumerate(self.fwd_true.path_ids()):
            series = self.fwd_true.series(path_id)
            idx = np.clip(
                np.searchsorted(series.times, probe_times, side="right") - 1, 0, None
            )
            truth = series.values[idx]
            noise = np.abs(
                deterministic_normal(self.seed + index, probe_times)
                * self.host_noise_sigma_s
            )
            estimates.extend(
                path_id, probe_times, truth + self.forwarding_overhead_s + noise
            )
        return estimates

    def run(
        self,
        t0: float,
        t1: float,
        decision_interval_s: float = 1.0,
        window_s: float = 30.0,
    ) -> ReplayResult:
        """Replay greedy overlay choice; achieved delays include the
        software forwarding overhead on every packet."""
        replay = PolicyReplay(
            measured=self.build_estimates(t0, t1),
            true=self.fwd_true,
            decision_interval_s=decision_interval_s,
            visibility_latency_s=self.probe_interval_s,
            window_s=window_s,
        )
        result = replay.run(greedy_chooser(), t0, t1, name=self.name)
        result.achieved = result.achieved + self.forwarding_overhead_s
        return result
