"""End-to-end round-trip probing (the measurement status quo).

The paper's Section 2.1 lists why RTT probing from end hosts falls short:

1. end-to-end measurements are dominated by edge/host noise (wireless
   retransmissions, hypervisor scheduling) — four edge crossings and two
   host stacks per RTT sample;
2. a round-trip cannot be decomposed into its two one-way components, so
   a purely directional event is averaged down by the quiet reverse path;
3. probing is sparse (probes are extra traffic, so they run at seconds
   cadence, not per-packet).

This baseline grants RTT probing Tango's *path diversity* (it may choose
any of the discovered paths) and handicaps it only with its own
measurement model — isolating measurement quality as the variable, which
is exactly the one-way-vs-RTT ablation (DESIGN.md E7).
"""

from __future__ import annotations

import numpy as np

from ..analysis.replay import PolicyReplay, ReplayResult, greedy_chooser
from ..netsim.delaymodels import deterministic_normal
from ..telemetry.store import MeasurementStore

__all__ = ["RttProbingBaseline"]


class RttProbingBaseline:
    """Greedy path choice over noisy RTT/2 estimates.

    Args:
        fwd_true: ground-truth forward one-way delays per path.
        rev_true: ground-truth reverse one-way delays per path; paired
            with forward paths by sorted index order.
        probe_interval_s: probing cadence (1 s is a generous pinger).
        edge_noise_sigma_s: stddev of *each* edge-network crossing's
            noise contribution; an RTT crosses four edges.
        host_noise_sigma_s: stddev of end-host processing noise (two
            hosts per RTT).
        seed: noise stream.
    """

    name = "rtt-probing"

    def __init__(
        self,
        fwd_true: MeasurementStore,
        rev_true: MeasurementStore,
        probe_interval_s: float = 1.0,
        edge_noise_sigma_s: float = 0.35e-3,
        host_noise_sigma_s: float = 0.5e-3,
        seed: int = 900,
    ) -> None:
        if probe_interval_s <= 0:
            raise ValueError("probe interval must be positive")
        self.fwd_true = fwd_true
        self.rev_true = rev_true
        self.probe_interval_s = probe_interval_s
        self.edge_noise_sigma_s = edge_noise_sigma_s
        self.host_noise_sigma_s = host_noise_sigma_s
        self.seed = seed

    def build_estimates(self, t0: float, t1: float) -> MeasurementStore:
        """Per-path RTT/2 estimate series — what the prober believes.

        Forward path ``i`` is paired with reverse path ``i`` (index
        order), the pairing a real prober gets implicitly by sending the
        probe and its reply over each direction's selected route.
        """
        fwd_ids = self.fwd_true.path_ids()
        rev_ids = self.rev_true.path_ids()
        if len(fwd_ids) != len(rev_ids):
            raise ValueError(
                f"directions expose different path counts: "
                f"{len(fwd_ids)} vs {len(rev_ids)}"
            )
        estimates = MeasurementStore()
        probe_times = np.arange(t0, t1, self.probe_interval_s)
        if probe_times.size == 0:
            raise ValueError(f"no probe instants in [{t0}, {t1})")
        for index, (fwd_id, rev_id) in enumerate(zip(fwd_ids, rev_ids)):
            fwd = self._sample_at(self.fwd_true, fwd_id, probe_times)
            rev = self._sample_at(self.rev_true, rev_id, probe_times)
            noise_seed = self.seed + 7 * index
            edge = sum(
                deterministic_normal(noise_seed + k, probe_times)
                * self.edge_noise_sigma_s
                for k in range(4)
            )
            host = sum(
                deterministic_normal(noise_seed + 10 + k, probe_times)
                * self.host_noise_sigma_s
                for k in range(2)
            )
            rtt = fwd + rev + np.abs(edge) + np.abs(host)
            estimates.extend(fwd_id, probe_times, rtt / 2.0)
        return estimates

    def run(
        self,
        t0: float,
        t1: float,
        decision_interval_s: float = 1.0,
        window_s: float = 5.0,
    ) -> ReplayResult:
        """Replay greedy selection over the RTT/2 estimates.

        Achieved delay is scored against the *forward* truth — the
        direction the prober thinks it is optimizing.
        """
        replay = PolicyReplay(
            measured=self.build_estimates(t0, t1),
            true=self.fwd_true,
            decision_interval_s=decision_interval_s,
            visibility_latency_s=self.probe_interval_s,
            window_s=window_s,
        )
        return replay.run(greedy_chooser(), t0, t1, name=self.name)

    @staticmethod
    def _sample_at(
        store: MeasurementStore, path_id: int, at: np.ndarray
    ) -> np.ndarray:
        """Nearest-earlier sample of a path's true series at each instant."""
        series = store.series(path_id)
        times, values = series.times, series.values
        if times.size == 0:
            raise ValueError(f"path {path_id} has no ground-truth samples")
        idx = np.clip(np.searchsorted(times, at, side="right") - 1, 0, None)
        return values[idx]
