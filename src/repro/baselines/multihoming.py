"""Multi-homed route control: one side, few paths, round-trip visibility.

The best-studied alternative (paper Section 2.2): a multi-homed stub
picks its egress among its own providers.  Its structural limits, which
this baseline models explicitly:

* **One direction.**  The stub controls which provider its *outbound*
  packets use; the reverse direction follows whatever the remote's BGP
  picked — optimizing it is out of reach.
* **Few paths.**  The choice set is the stub's own provider count
  (``accessible_paths``), not the full cooperative path set.
* **Round-trip visibility.**  Its border device can count volumes and
  time request/response pairs, but cannot see one-way delays; estimates
  are RTT-based with the reverse leg fixed to the remote's default.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..analysis.replay import PolicyReplay, ReplayResult, greedy_chooser
from ..netsim.delaymodels import deterministic_normal
from ..telemetry.store import MeasurementStore

__all__ = ["MultihomingBaseline"]


class MultihomingBaseline:
    """Greedy egress choice among the stub's own providers.

    Args:
        fwd_true: forward ground truth per path.
        rev_true: reverse ground truth per path; the *remote-default*
            reverse path (lowest id) is the fixed return leg.
        accessible_paths: forward path ids the stub can actually reach
            via its own providers (a strict subset in the scenarios).
        measurement_noise_sigma_s: RTT timing noise at the border device.
        probe_interval_s: estimate refresh cadence.
    """

    name = "multihoming"

    def __init__(
        self,
        fwd_true: MeasurementStore,
        rev_true: MeasurementStore,
        accessible_paths: Sequence[int],
        measurement_noise_sigma_s: float = 0.2e-3,
        probe_interval_s: float = 1.0,
        seed: int = 1100,
    ) -> None:
        if not accessible_paths:
            raise ValueError("a multihomed stub needs at least one provider")
        self.fwd_true = fwd_true
        self.rev_true = rev_true
        self.accessible_paths = sorted(accessible_paths)
        self.measurement_noise_sigma_s = measurement_noise_sigma_s
        self.probe_interval_s = probe_interval_s
        self.seed = seed

    def build_estimates(self, t0: float, t1: float) -> MeasurementStore:
        """RTT/2 estimates over the accessible forward paths only."""
        rev_ids = self.rev_true.path_ids()
        if not rev_ids:
            raise ValueError("reverse ground truth is empty")
        rev_default = rev_ids[0]
        probe_times = np.arange(t0, t1, self.probe_interval_s)
        estimates = MeasurementStore()
        rev_series = self.rev_true.series(rev_default)
        rev = _sample_at(rev_series.times, rev_series.values, probe_times)
        for index, path_id in enumerate(self.accessible_paths):
            series = self.fwd_true.series(path_id)
            fwd = _sample_at(series.times, series.values, probe_times)
            noise = (
                deterministic_normal(self.seed + index, probe_times)
                * self.measurement_noise_sigma_s
            )
            estimates.extend(path_id, probe_times, (fwd + rev) / 2.0 + np.abs(noise))
        return estimates

    def run(
        self,
        t0: float,
        t1: float,
        decision_interval_s: float = 1.0,
        window_s: float = 5.0,
    ) -> ReplayResult:
        """Replay over the accessible subset, scored on forward truth."""
        replay = PolicyReplay(
            measured=self.build_estimates(t0, t1),
            true=self.fwd_true,
            decision_interval_s=decision_interval_s,
            visibility_latency_s=self.probe_interval_s,
            window_s=window_s,
        )
        return replay.run(
            greedy_chooser(),
            t0,
            t1,
            name=self.name,
            initial_path=self.accessible_paths[0],
            restrict_paths=self.accessible_paths,
        )


def _sample_at(times: np.ndarray, values: np.ndarray, at: np.ndarray) -> np.ndarray:
    if times.size == 0:
        raise ValueError("empty ground-truth series")
    idx = np.clip(np.searchsorted(times, at, side="right") - 1, 0, None)
    return values[idx]
