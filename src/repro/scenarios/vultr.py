"""The paper's deployment: Tango between two Vultr datacenters (Section 4).

Control plane
    Two tenant servers (private ASNs, one per DC) speak eBGP with the
    co-located Vultr border router (AS 20473, ``allowas_in`` so the DCs
    hear each other's prefixes across the public core).  Upstream
    connectivity reproduces the paper's discovered path sets:

    * LA providers: NTT, Telia, GTT, Level3 (preference in that order)
    * NY providers: NTT, Telia, GTT, Cogent
    * Peerings: NTT–Cogent, NTT–Level3, Telia–GTT

    which yields exactly the paper's Figure 3: LA→NY traffic can ride
    NTT, Telia, GTT, or NTT+Cogent; NY→LA can ride NTT, Telia, GTT, or
    (NTT+)Level3 — four paths per direction, discovered by the iterative
    suppression algorithm, and nothing after the fourth.

Data plane
    Each discovered path becomes one wide-area link between the two
    border switches, driven by a delay process calibrated to the paper's
    Section 5 numbers (see ``NY_TO_LA_PATHS`` / ``LA_TO_NY_PATHS``):
    the BGP-default path (NTT) averages ≈30% above the best path (GTT);
    GTT in the NY→LA direction suffers the Figure 4 route-change event
    (hour 121.25: +5 ms for ~10 min) and instability window (hour ~47.85:
    ~5 min with spikes to 78 ms against a 28 ms floor); LA→NY jitter is
    0.01 ms on GTT vs 0.33 ms on Telia.

Measurement campaigns
    Short windows run packet-level through the discrete-event simulator.
    Multi-hour/day series use :meth:`VultrDeployment.run_fast_campaign`,
    which samples the *same* delay processes at the probe cadence and
    applies the same clock-offset distortion — it produces exactly the
    series the packet path would record, without simulating 276 million
    packets (asserted equivalent in the test suite).
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping, Optional

from ..bgp.network import BgpNetwork
from ..bgp.router import BgpRouter
from ..core.config import EdgeConfig, PairingConfig
from ..netsim.delaymodels import (
    CompositeDelay,
    DiurnalVariation,
    GaussianJitterDelay,
    InstabilityEvent,
    RouteChangeEvent,
    SpikeProcess,
)
from ..resilience.channel import ChannelConfig
from ..srlg import Region
from .deployment import PacketLevelDeployment

__all__ = [
    "VULTR_ASN",
    "ROUTE_CHANGE_HOUR",
    "INSTABILITY_HOUR",
    "CAMPAIGN_HOURS",
    "PathCalibration",
    "NY_TO_LA_PATHS",
    "LA_TO_NY_PATHS",
    "VULTR_REGIONS",
    "VULTR_SRLG_GROUPS",
    "build_bgp_network",
    "make_pairing",
    "VultrDeployment",
]

VULTR_ASN = 20473
NTT, TELIA, GTT, COGENT, LEVEL3 = 2914, 1299, 3257, 174, 3356
TENANT_LA_ASN, TENANT_NY_ASN = 64512, 64513

#: Figure 4's two narrated events (hours into the 8-day campaign).
ROUTE_CHANGE_HOUR = 121.25
INSTABILITY_HOUR = 47.85
CAMPAIGN_HOURS = 192.0  # eight days

#: Clock offsets of the two border switches (seconds).  Deliberately
#: nonzero and opposite: all measured one-way delays are distorted by a
#: constant ±(offset_la - offset_ny), which relative comparisons cancel.
CLOCK_OFFSET_LA = 0.0032
CLOCK_OFFSET_NY = -0.0013


@dataclass(frozen=True)
class PathCalibration:
    """Calibration of one wide-area path's delay process."""

    label: str
    base_ms: float
    sigma_ms: float
    diurnal_ms: float = 0.0
    seed: int = 0
    with_route_change: bool = False
    with_instability: bool = False
    background_spikes: bool = False
    #: Provisioned bottleneck capacity of the transit path, used by the
    #: fluid traffic engine (repro.traffic) — the packet simulator's
    #: QueuedLink has its own bandwidth parameter and ignores this.
    capacity_bps: float = 10e9
    #: Shared-risk link groups the path's physical infrastructure
    #: traverses (conduits, landing stations, regional power).  Empty
    #: tuple = no annotation; SRLG-aware features stay dormant.
    srlgs: tuple[str, ...] = ()

    def build(self, include_events: bool = True) -> CompositeDelay:
        """Materialize the delay process."""
        components = []
        if self.diurnal_ms > 0:
            components.append(
                DiurnalVariation(
                    amplitude=self.diurnal_ms * 1e-3, phase=self.seed * 0.7
                )
            )
        if self.background_spikes:
            components.append(
                SpikeProcess(
                    rate_per_second=0.02,
                    min_magnitude=1e-3,
                    max_magnitude=6e-3,
                    seed=self.seed + 50,
                )
            )
        events = []
        if include_events and self.with_route_change:
            events.append(
                RouteChangeEvent(
                    start=ROUTE_CHANGE_HOUR * 3600.0,
                    duration=600.0,
                    shift=5e-3,
                    transition=30.0,
                    seed=self.seed + 100,
                )
            )
        if include_events and self.with_instability:
            events.append(
                InstabilityEvent(
                    start=INSTABILITY_HOUR * 3600.0,
                    duration=300.0,
                    spike_probability=0.03,
                    spike_min=10e-3,
                    spike_max=50e-3,
                    minor_max=2e-3,
                    seed=self.seed + 200,
                )
            )
        return CompositeDelay(
            base=GaussianJitterDelay(
                base=self.base_ms * 1e-3, sigma=self.sigma_ms * 1e-3, seed=self.seed
            ),
            components=tuple(components),
            events=tuple(events),
        )


#: Physical failure domains of the deployment.  Telia and GTT exit the
#: LA metro through the same southern-California conduit — the AS-level
#: view says "disjoint", the fiber map says "shared fate" — so the two
#: *fastest* NY→LA paths die together, which is exactly the correlated
#: case E18 gates on.  NTT/Cogent/Level3 ride their own backbones.
SRLG_SOCAL_CONDUIT = "socal-conduit"
SRLG_NTT_BACKBONE = "ntt-backbone"
SRLG_COGENT_BACKBONE = "cogent-backbone"
SRLG_LEVEL3_BACKBONE = "level3-backbone"

#: NY→LA calibration (the direction Figure 4 plots).  NTT is the BGP
#: default; its mean sits ≈30% above GTT's.  GTT carries both events.
NY_TO_LA_PATHS: Mapping[str, PathCalibration] = MappingProxyType({
    "NTT": PathCalibration(
        "NTT",
        base_ms=36.4,
        sigma_ms=0.12,
        diurnal_ms=1.2,
        seed=11,
        capacity_bps=12e9,
        srlgs=(SRLG_NTT_BACKBONE,),
    ),
    "Telia": PathCalibration(
        "Telia",
        base_ms=32.0,
        sigma_ms=0.25,
        diurnal_ms=0.5,
        seed=12,
        capacity_bps=10e9,
        srlgs=(SRLG_SOCAL_CONDUIT,),
    ),
    "GTT": PathCalibration(
        "GTT",
        base_ms=28.05,
        sigma_ms=0.03,
        diurnal_ms=0.3,
        seed=13,
        with_route_change=True,
        with_instability=True,
        capacity_bps=8e9,
        srlgs=(SRLG_SOCAL_CONDUIT,),
    ),
    "Level3": PathCalibration(
        "Level3",
        base_ms=40.2,
        sigma_ms=0.45,
        diurnal_ms=1.5,
        seed=14,
        background_spikes=True,
        capacity_bps=6e9,
        srlgs=(SRLG_LEVEL3_BACKBONE,),
    ),
})

#: LA→NY calibration.  Jitter numbers match the paper's Section 5: GTT's
#: 1-second rolling-window stddev ≈ 0.01 ms, Telia's ≈ 0.33 ms.
#: Both tables are ``MappingProxyType`` so fork-started campaign workers
#: can never see a parent-side mutation of shared calibration state.
LA_TO_NY_PATHS: Mapping[str, PathCalibration] = MappingProxyType({
    "NTT": PathCalibration(
        "NTT",
        base_ms=36.6,
        sigma_ms=0.05,
        diurnal_ms=1.0,
        seed=21,
        capacity_bps=12e9,
        srlgs=(SRLG_NTT_BACKBONE,),
    ),
    "Telia": PathCalibration(
        "Telia",
        base_ms=33.4,
        sigma_ms=0.33,
        diurnal_ms=0.6,
        seed=22,
        capacity_bps=10e9,
        srlgs=(SRLG_SOCAL_CONDUIT,),
    ),
    "GTT": PathCalibration(
        "GTT",
        base_ms=28.3,
        sigma_ms=0.01,
        diurnal_ms=0.2,
        seed=23,
        capacity_bps=8e9,
        srlgs=(SRLG_SOCAL_CONDUIT,),
    ),
    "Cogent": PathCalibration(
        "Cogent",
        base_ms=41.0,
        sigma_ms=0.60,
        diurnal_ms=1.4,
        seed=24,
        background_spikes=True,
        capacity_bps=6e9,
        srlgs=(SRLG_COGENT_BACKBONE,),
    ),
})

#: Edge-network noise (what Tango's border placement avoids but end-host
#: measurements include): wireless retransmissions in the access network,
#: hypervisor scheduling at the cloud.
EDGE_NOISE_BASE_MS = 0.6
EDGE_NOISE_SIGMA_MS = 0.35

#: Regional blast radii: a ``regional_outage`` fault takes a region's
#: risk-group links down *and* disconnects every BGP session of its
#: routers.  "socal" models an LA-metro event hitting the shared conduit
#: plus the Telia/GTT PoPs that terminate it.
VULTR_REGIONS: tuple[Region, ...] = (
    Region(
        "socal",
        routers=("gtt", "telia"),
        groups=(SRLG_SOCAL_CONDUIT,),
    ),
)

#: Every risk-group name a fault plan may target in this scenario —
#: explicit physical groups plus the automatic per-transit fate tags
#: stamped by ``build_tunnels`` (TNG105 validates plans against this).
VULTR_SRLG_GROUPS: frozenset[str] = frozenset(
    {
        SRLG_SOCAL_CONDUIT,
        SRLG_NTT_BACKBONE,
        SRLG_COGENT_BACKBONE,
        SRLG_LEVEL3_BACKBONE,
    }
    | {f"transit:{label}" for label in ("NTT", "Telia", "GTT", "Cogent", "Level3")}
)


def build_bgp_network() -> BgpNetwork:
    """The AS-level control plane of the deployment (Figure 3)."""
    net = BgpNetwork()
    for name, asn in (
        ("ntt", NTT),
        ("telia", TELIA),
        ("gtt", GTT),
        ("cogent", COGENT),
        ("level3", LEVEL3),
    ):
        net.add_router(BgpRouter(name, asn))
    net.add_router(BgpRouter("vultr-la", VULTR_ASN, allowas_in=True))
    net.add_router(BgpRouter("vultr-ny", VULTR_ASN, allowas_in=True))
    net.add_router(BgpRouter("tango-la", TENANT_LA_ASN))
    net.add_router(BgpRouter("tango-ny", TENANT_NY_ASN))

    # Vultr's operator preference: NTT, then Telia, then GTT, then others.
    for provider, preference in (
        ("ntt", 1),
        ("telia", 2),
        ("gtt", 3),
        ("level3", 5),
    ):
        net.add_provider("vultr-la", provider, customer_preference=preference)
    for provider, preference in (
        ("ntt", 1),
        ("telia", 2),
        ("gtt", 3),
        ("cogent", 4),
    ):
        net.add_provider("vultr-ny", provider, customer_preference=preference)
    net.add_peering("ntt", "cogent")
    net.add_peering("ntt", "level3")
    net.add_peering("telia", "gtt")
    net.add_provider("tango-la", "vultr-la")
    net.add_provider("tango-ny", "vultr-ny")
    return net


def _prefix(index: int) -> ipaddress.IPv6Network:
    return ipaddress.IPv6Network(f"2001:db8:{index:x}::/48")


def make_pairing(
    probe_interval_s: float = 0.010,
    report_interval_s: float = 0.100,
    auth_key: bytes = b"",
) -> PairingConfig:
    """The NY/LA pairing configuration (four route prefixes per edge,
    as in the prototype)."""
    ny = EdgeConfig(
        name="ny",
        tenant_router="tango-ny",
        tenant_asn=TENANT_NY_ASN,
        provider_router="vultr-ny",
        provider_asn=VULTR_ASN,
        host_prefix=_prefix(0x20),
        route_prefixes=tuple(_prefix(0xB0 + i) for i in range(4)),
        clock_offset_s=CLOCK_OFFSET_NY,
    )
    la = EdgeConfig(
        name="la",
        tenant_router="tango-la",
        tenant_asn=TENANT_LA_ASN,
        provider_router="vultr-la",
        provider_asn=VULTR_ASN,
        host_prefix=_prefix(0x10),
        route_prefixes=tuple(_prefix(0xA0 + i) for i in range(4)),
        clock_offset_s=CLOCK_OFFSET_LA,
    )
    return PairingConfig(
        a=ny,
        b=la,
        probe_interval_s=probe_interval_s,
        report_interval_s=report_interval_s,
        auth_key=auth_key,
    )


class VultrDeployment(PacketLevelDeployment):
    """The full NY/LA deployment: BGP + session + data plane + workloads.

    Pairing orientation: ``a`` = NY, ``b`` = LA, so direction "a→b" is the
    NY→LA direction Figure 4 plots.  All generic machinery (probes,
    policies, failure injection, fast campaigns) lives in
    :class:`repro.scenarios.deployment.PacketLevelDeployment`; this class
    binds it to the Vultr control plane and the calibrated paths.

    Args:
        include_events: disable to get steady-state paths (useful for
            calibration tests and jitter measurements).
        probe_interval_s: measurement cadence (paper: 10 ms).
        instability_loss: add elevated loss on GTT NY→LA during the
            instability window (drives the loss/TCP experiments).
        auth_key: enable authenticated telemetry when non-empty.
    """

    def __init__(
        self,
        include_events: bool = True,
        probe_interval_s: float = 0.010,
        report_interval_s: float = 0.100,
        instability_loss: float = 0.0,
        auth_key: bytes = b"",
        telemetry_channel: Optional[ChannelConfig] = None,
    ) -> None:
        super().__init__(
            pairing=make_pairing(probe_interval_s, report_interval_s, auth_key),
            bgp=build_bgp_network(),
            calibrations={"ny": NY_TO_LA_PATHS, "la": LA_TO_NY_PATHS},
            include_events=include_events,
            instability_loss=instability_loss,
            auth_key=auth_key,
            edge_noise_ms=(EDGE_NOISE_BASE_MS, EDGE_NOISE_SIGMA_MS),
            telemetry_channel=telemetry_channel,
            srlg_regions=VULTR_REGIONS,
        )
        # Convenience aliases used throughout the experiments.
        self.host_ny = self.hosts["ny"]
        self.host_la = self.hosts["la"]
        self.gw_ny_switch = self.switches["ny"]
        self.gw_la_switch = self.switches["la"]
        self.gateway_ny = self.gateways["ny"]
        self.gateway_la = self.gateways["la"]
