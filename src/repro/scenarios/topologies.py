"""Synthetic topologies: Tango-of-N meshes and the ECMP ablation fabric.

Two generators:

* :func:`build_mesh_scenario` — N edge networks attached to a partially
  peered transit core, pairwise discovery run for every ordered pair,
  per-path delays assigned deterministically — the substrate for the
  Section 6 "Tango of N" study (DESIGN.md E9).
* :func:`build_ecmp_fanout` — a packet-level fabric where one BGP path
  hides several ECMP sub-paths with different delays, demonstrating why
  unpinned probing measures "multiple paths as one" and why Tango's
  fixed tunnel 5-tuple fixes it (DESIGN.md E8).
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..bgp.network import BgpNetwork
from ..bgp.router import BgpRouter
from ..bgp.snapshot import SnapshotCache
from ..core.config import EdgeConfig
from ..core.discovery import DiscoveredPath, DiscoveryResult, PathDiscovery, asn_label
from ..core.mesh import TangoMesh
from ..netsim.delaymodels import ConstantDelay, GaussianJitterDelay
from ..netsim.topology import Network
from .vultr import PathCalibration

__all__ = [
    "MeshScenario",
    "build_mesh_scenario",
    "LiveFederationScenario",
    "build_live_federation",
    "EcmpFanout",
    "build_ecmp_fanout",
]

#: Transit core used by the mesh generator (ASN -> base one-way ms
#: "speed" factor; paths through lower-factor transits are faster).
_TRANSIT_SPEED = {2914: 1.00, 1299: 1.12, 3257: 0.92, 174: 1.25, 3356: 1.18}
_TRANSIT_ASNS = tuple(sorted(_TRANSIT_SPEED))
_EDGE_BASE_ASN = 65100
_PROVIDER_BASE_ASN = 64900


@dataclass
class MeshScenario:
    """N cooperating edges with pairwise discovery already run."""

    bgp: BgpNetwork
    edge_names: list[str]
    discoveries: dict[tuple[str, str], DiscoveryResult]
    mesh: TangoMesh
    #: (observer, announcer) -> per-discovered-path risk-group sets, in
    #: path order.  The generated mesh has no fiber map, so the failure
    #: domains are the transit operators themselves: ``transit:<AS>``
    #: tags mirror what :func:`repro.core.tunnels.build_tunnels` stamps,
    #: letting SRLG tooling reason about mesh path fate-sharing too.
    path_srlgs: dict[tuple[str, str], tuple[frozenset[str], ...]] = field(
        default_factory=dict
    )

    @property
    def n(self) -> int:
        return len(self.edge_names)


def _pair_distance(i: int, j: int, n: int, rng: np.random.Generator) -> float:
    """Deterministic pseudo-geographic distance (ms) between edges."""
    base = 12.0 + 40.0 * abs(i - j) / max(n - 1, 1)
    return base + float(rng.uniform(0.0, 8.0))


def build_mesh_scenario(
    n_edges: int,
    providers_per_edge: int = 2,
    seed: int = 42,
) -> MeshScenario:
    """Build an N-edge Tango mesh over a shared transit core.

    Each edge gets its own provider AS (its "Vultr") which buys transit
    from ``providers_per_edge`` distinct core transits (deterministically
    chosen), so pairwise discovery exposes a few paths per ordered pair.
    Path delays derive from a pseudo-geographic pair distance scaled by
    the transit's speed factor — slower transits give strictly worse
    paths, so relaying through a well-placed third edge can win.

    Args:
        n_edges: number of participating edge networks (≥ 2).
        providers_per_edge: transits each edge's provider connects to.
        seed: drives distances and provider assignment.
    """
    if n_edges < 2:
        raise ValueError(f"need at least 2 edges, got {n_edges}")
    if not 1 <= providers_per_edge <= len(_TRANSIT_ASNS):
        raise ValueError(
            f"providers_per_edge must be in 1..{len(_TRANSIT_ASNS)}"
        )
    rng = np.random.default_rng(seed)
    bgp = BgpNetwork()
    for asn in _TRANSIT_ASNS:
        bgp.add_router(BgpRouter(f"transit-{asn}", asn))
    # Full peering among transits keeps every pair reachable even when
    # their provider transit sets are disjoint.
    for i, a in enumerate(_TRANSIT_ASNS):
        for b in _TRANSIT_ASNS[i + 1 :]:
            bgp.add_peering(f"transit-{a}", f"transit-{b}")

    edge_names: list[str] = []
    edge_transits: dict[str, list[int]] = {}
    for index in range(n_edges):
        edge = f"edge{index}"
        provider = f"provider-{index}"
        bgp.add_router(
            BgpRouter(provider, _PROVIDER_BASE_ASN + index, allowas_in=True)
        )
        bgp.add_router(BgpRouter(edge, _EDGE_BASE_ASN + index))
        bgp.add_provider(edge, provider)
        start = index % len(_TRANSIT_ASNS)
        chosen = [
            _TRANSIT_ASNS[(start + k) % len(_TRANSIT_ASNS)]
            for k in range(providers_per_edge)
        ]
        for preference, transit in enumerate(chosen, start=1):
            bgp.add_provider(
                provider, f"transit-{transit}", customer_preference=preference
            )
        edge_names.append(edge)
        edge_transits[edge] = chosen

    mesh = TangoMesh()
    for edge in edge_names:
        mesh.add_member(edge)
    discoveries: dict[tuple[str, str], DiscoveryResult] = {}
    path_srlgs: dict[tuple[str, str], tuple[frozenset[str], ...]] = {}
    # One cache across all ordered pairs: the base state recurs after
    # every probe withdrawal, and the early suppression states of one
    # announcer recur across its observers.
    snapshots = SnapshotCache(capacity=32)
    for j, announcer in enumerate(edge_names):
        provider_asn = _PROVIDER_BASE_ASN + j
        probe = f"2001:db8:{0xF000 + j:x}::/48"
        for i, observer in enumerate(edge_names):
            if observer == announcer:
                continue
            result = PathDiscovery(
                bgp, provider_asn, snapshots=snapshots
            ).discover(
                announcer=announcer,
                observer=observer,
                probe_prefix=probe,
            )
            discoveries[(observer, announcer)] = result
            path_srlgs[(observer, announcer)] = tuple(
                frozenset(f"transit:{asn_label(a)}" for a in path.transit_asns)
                for path in result.paths
            )
            distance = _pair_distance(i, j, n_edges, rng)
            labeled = []
            for path in result.paths:
                speed = float(
                    np.mean([_TRANSIT_SPEED.get(a, 1.3) for a in path.transit_asns])
                    if path.transit_asns
                    else 1.0
                )
                hop_tax = 1.0 + 0.06 * max(len(path.transit_asns) - 1, 0)
                labeled.append((path.label, distance * speed * hop_tax * 1e-3))
            mesh.add_paths(observer, announcer, labeled)
    return MeshScenario(
        bgp=bgp,
        edge_names=edge_names,
        discoveries=discoveries,
        mesh=mesh,
        path_srlgs=path_srlgs,
    )


@dataclass
class LiveFederationScenario:
    """Substrate for a *live* N-edge federation (E20).

    Unlike :class:`MeshScenario` — an analytical artifact with discovery
    pre-run and delays baked into a :class:`TangoMesh` — this carries
    everything a :class:`~repro.federation.registry.FederationRegistry`
    needs to run establishment itself over one shared
    :class:`BgpNetwork`: full per-member address plans (host prefix plus
    per-peer route-prefix slices), canonical probe prefixes, and a
    deterministic calibration for every (pair, path) the registry will
    discover.

    The address plan partitions each member's route prefixes into
    per-peer *slices*: one member's prefix can carry only one community
    set at a time, so each pair pins into its own disjoint slice and
    every pairing stays a standard two-party Tango session.
    """

    bgp: BgpNetwork
    members: list[EdgeConfig]
    member_transits: dict[str, list[int]]
    probe_prefixes: dict[str, str]
    prefixes_per_peer: int
    #: Sorted-name pair -> pseudo-geographic distance (one-way ms).
    pair_distance_ms: dict[tuple[str, str], float]
    #: The deliberately fate-shared pair (both single-homed to one
    #: transit), or None when the knob is off.
    degraded_pair: Optional[tuple[str, str]]
    seed: int

    @property
    def n(self) -> int:
        return len(self.members)

    @property
    def member_names(self) -> list[str]:
        return [m.name for m in self.members]

    def member(self, name: str) -> EdgeConfig:
        for config in self.members:
            if config.name == name:
                return config
        raise KeyError(f"no federation member {name!r}")

    def member_index(self, name: str) -> int:
        for index, config in enumerate(self.members):
            if config.name == name:
                return index
        raise KeyError(f"no federation member {name!r}")

    def peer_slice(self, member: str, peer: str) -> EdgeConfig:
        """``member``'s config restricted to its route slice for ``peer``.

        Same identity (name, routers, ASNs, host prefix) — only
        ``route_prefixes`` narrows, so the sliced view drops into
        :class:`~repro.core.session.TangoSession` unchanged while pin
        announcements from different pairs can never collide.
        """
        config = self.member(member)
        k, j = self.member_index(member), self.member_index(peer)
        if k == j:
            raise ValueError(f"{member!r} cannot peer with itself")
        position = j if j < k else j - 1
        start = position * self.prefixes_per_peer
        return EdgeConfig(
            name=config.name,
            tenant_router=config.tenant_router,
            tenant_asn=config.tenant_asn,
            provider_router=config.provider_router,
            provider_asn=config.provider_asn,
            host_prefix=config.host_prefix,
            route_prefixes=config.route_prefixes[
                start : start + self.prefixes_per_peer
            ],
            clock_offset_s=config.clock_offset_s,
        )

    def path_delay_ms(self, src: str, dst: str, path: DiscoveredPath) -> float:
        """Deterministic base one-way delay for one discovered path."""
        pair = (src, dst) if src < dst else (dst, src)
        distance = self.pair_distance_ms[pair]
        speed = float(
            np.mean([_TRANSIT_SPEED.get(a, 1.3) for a in path.transit_asns])
            if path.transit_asns
            else 1.0
        )
        hop_tax = 1.0 + 0.06 * max(len(path.transit_asns) - 1, 0)
        return distance * speed * hop_tax

    def calibration(
        self, src: str, dst: str, path: DiscoveredPath, label: str
    ) -> PathCalibration:
        """Delay-process calibration for the ``src``→``dst`` path."""
        k, j = self.member_index(src), self.member_index(dst)
        return PathCalibration(
            label=label,
            base_ms=self.path_delay_ms(src, dst, path),
            sigma_ms=0.05,
            seed=self.seed * 10007 + k * 512 + j * 32 + path.index,
        )


def build_live_federation(
    n_edges: int,
    prefixes_per_peer: int = 4,
    providers_per_edge: int = 2,
    seed: int = 42,
    degraded_pair: bool = True,
) -> LiveFederationScenario:
    """Build the substrate for a live N-edge federation.

    Same transit core and provider rotation as :func:`build_mesh_scenario`
    — the analytical and live generators stay comparable — plus full
    address plans.  With ``degraded_pair=True`` (and ≥ 3 members) the
    first two members are single-homed to the *same* transit, so their
    direct connectivity collapses to one fate-shared path: the pair the
    E20 experiment heals with a stitched relay tunnel.
    """
    if n_edges < 2:
        raise ValueError(f"need at least 2 edges, got {n_edges}")
    if not 1 <= providers_per_edge <= len(_TRANSIT_ASNS):
        raise ValueError(
            f"providers_per_edge must be in 1..{len(_TRANSIT_ASNS)}"
        )
    if prefixes_per_peer < 1:
        raise ValueError("prefixes_per_peer must be >= 1")
    rng = np.random.default_rng(seed)
    bgp = BgpNetwork()
    for asn in _TRANSIT_ASNS:
        bgp.add_router(BgpRouter(f"transit-{asn}", asn))
    for i, a in enumerate(_TRANSIT_ASNS):
        for b in _TRANSIT_ASNS[i + 1 :]:
            bgp.add_peering(f"transit-{a}", f"transit-{b}")

    degrade = degraded_pair and n_edges >= 3
    members: list[EdgeConfig] = []
    member_transits: dict[str, list[int]] = {}
    probe_prefixes: dict[str, str] = {}
    slices = max(n_edges - 1, 1) * prefixes_per_peer
    for index in range(n_edges):
        edge = f"edge{index}"
        provider = f"provider-{index}"
        bgp.add_router(
            BgpRouter(provider, _PROVIDER_BASE_ASN + index, allowas_in=True)
        )
        bgp.add_router(BgpRouter(edge, _EDGE_BASE_ASN + index))
        bgp.add_provider(edge, provider)
        if degrade and index in (0, 1):
            # Both fate-shared members buy from the one same transit.
            chosen = [_TRANSIT_ASNS[0]]
        else:
            start = index % len(_TRANSIT_ASNS)
            chosen = [
                _TRANSIT_ASNS[(start + k) % len(_TRANSIT_ASNS)]
                for k in range(providers_per_edge)
            ]
        for preference, transit in enumerate(chosen, start=1):
            bgp.add_provider(
                provider, f"transit-{transit}", customer_preference=preference
            )
        members.append(
            EdgeConfig(
                name=edge,
                tenant_router=edge,
                tenant_asn=_EDGE_BASE_ASN + index,
                provider_router=provider,
                provider_asn=_PROVIDER_BASE_ASN + index,
                host_prefix=ipaddress.IPv6Network(
                    f"2001:db8:{0x1000 + index:x}::/48"
                ),
                route_prefixes=tuple(
                    ipaddress.IPv6Network(
                        f"2001:db8:{0x2000 + index * 0x100 + m:x}::/48"
                    )
                    for m in range(slices)
                ),
                clock_offset_s=((index * 37) % 23 - 11) * 1e-3,
            )
        )
        member_transits[edge] = chosen
        probe_prefixes[edge] = f"2001:db8:{0xF000 + index:x}::/48"

    # Distances in one fixed double loop so the rng consumption order —
    # and with it every delay in the federation — is seed-determined.
    pair_distance_ms: dict[tuple[str, str], float] = {}
    for i in range(n_edges):
        for j in range(i + 1, n_edges):
            pair_distance_ms[(f"edge{i}", f"edge{j}")] = _pair_distance(
                i, j, n_edges, rng
            )
    return LiveFederationScenario(
        bgp=bgp,
        members=members,
        member_transits=member_transits,
        probe_prefixes=probe_prefixes,
        prefixes_per_peer=prefixes_per_peer,
        pair_distance_ms=pair_distance_ms,
        degraded_pair=("edge0", "edge1") if degrade else None,
        seed=seed,
    )


@dataclass
class EcmpFanout:
    """Packet-level fabric with hidden ECMP sub-paths.

    ``src`` and ``dst`` are programmable switches; between them sits one
    core router whose route to the destination prefix is an ECMP group of
    ``sub_path_delays_ms`` parallel links.  To BGP this is *one* path.
    """

    net: Network
    src_name: str
    dst_name: str
    dst_prefix: str
    sub_path_delays_ms: tuple[float, ...]


def build_ecmp_fanout(
    sub_path_delays_ms: tuple[float, ...] = (30.0, 35.0, 41.0),
    jitter_ms: float = 0.05,
    ecmp_salt: int = 7,
) -> EcmpFanout:
    """Build the E8 ablation fabric.

    Probes that vary their 5-tuple are sprayed over the sub-paths and see
    a multi-modal delay mix; packets inside one Tango tunnel share a
    5-tuple and stick to a single sub-path.
    """
    if len(sub_path_delays_ms) < 2:
        raise ValueError("need at least two ECMP sub-paths for the ablation")
    net = Network()
    src = net.add_switch("ecmp-src")
    core = net.add_router("ecmp-core", ecmp_salt=ecmp_salt)
    dst = net.add_switch("ecmp-dst")
    uplink = net.add_link("src->core", src, core, delay=ConstantDelay(0.0002))
    group = []
    for index, delay_ms in enumerate(sub_path_delays_ms):
        group.append(
            net.add_link(
                f"core->dst:{index}",
                core,
                dst,
                delay=GaussianJitterDelay(
                    delay_ms * 1e-3, jitter_ms * 1e-3, seed=700 + index
                ),
            )
        )
    dst_prefix = "2001:db8:ecf::/48"
    src.fib.add_route(dst_prefix, uplink)
    core.fib.add_route(dst_prefix, group)  # the ECMP group
    # Also route the Tango outer prefix the same way so encapsulated
    # packets traverse the identical fabric.
    outer_prefix = "2001:db8:eca::/48"
    src.fib.add_route(outer_prefix, uplink)
    core.fib.add_route(outer_prefix, group)
    return EcmpFanout(
        net=net,
        src_name="ecmp-src",
        dst_name="ecmp-dst",
        dst_prefix=dst_prefix,
        sub_path_delays_ms=tuple(sub_path_delays_ms),
    )
