"""Generic two-edge packet-level Tango deployment.

Everything scenario-independent about standing up a pairing lives here:

* hosts and programmable border switches for both edges (clock offsets
  from the edge configs);
* noisy host↔gateway access links (the edge noise Tango's border
  placement excludes from measurements);
* control-plane establishment via :class:`~repro.core.session.TangoSession`;
* one wide-area link per discovered path, FIB-pinned to its route
  prefix, with a delay process supplied by the scenario's calibration
  tables;
* per-path probe streams, data-policy installation, failure injection,
  and the fast (sampled) campaign that provably matches the packet path.

Concrete scenarios (:class:`repro.scenarios.vultr.VultrDeployment`, the
enterprise pairing) provide a BGP topology, a pairing config, and
per-direction calibration tables, and inherit the rest.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..bgp.network import BgpNetwork
from ..core.config import PairingConfig
from ..core.controller import TangoController
from ..core.gateway import TangoGateway
from ..core.policy import ApplicationSelector, StaticSelector
from ..core.session import SessionState, TangoSession
from ..core.tunnels import TangoTunnel
from ..dataplane.programs import PathSelector
from ..netsim.delaymodels import GaussianJitterDelay
from ..netsim.links import ConstantLoss, Link, WindowedLoss
from ..netsim.packet import Packet
from ..netsim.topology import Network
from ..netsim.trace import PacketFactory, ProbeGenerator
from ..resilience.channel import ChannelConfig
from ..resilience.journal import ControllerJournal
from ..resilience.supervisor import Supervisor, SupervisorPolicy
from ..srlg import Region, SrlgRegistry
from ..telemetry.store import MeasurementStore

__all__ = ["PacketLevelDeployment"]

#: Default edge-network noise (ms): base and sigma of each access link.
DEFAULT_EDGE_NOISE_MS = (0.6, 0.35)


class PacketLevelDeployment:
    """A two-edge Tango deployment wired end to end.

    Args:
        pairing: the two edges' static configuration.
        bgp: the control plane (unconverged is fine; establishment
            converges it).
        calibrations: per-direction delay calibrations —
            ``{src_edge_name: {path_short_label: PathCalibration}}``.
        include_events: build delay processes with their event overlays.
        instability_loss: elevated loss rate during instability windows
            of paths that carry one (0 disables).
        auth_key: non-empty enables authenticated telemetry.
        edge_noise_ms: (base, sigma) of the access links.
        telemetry_channel: run the feedback loop over the reliable
            sequenced/acked transport with this config instead of the
            idealized lossless mirrors (``None`` keeps PR 1 behavior).
    """

    def __init__(
        self,
        pairing: PairingConfig,
        bgp: BgpNetwork,
        calibrations: dict[str, dict[str, object]],
        include_events: bool = True,
        instability_loss: float = 0.0,
        auth_key: bytes = b"",
        edge_noise_ms: tuple[float, float] = DEFAULT_EDGE_NOISE_MS,
        telemetry_channel: Optional[ChannelConfig] = None,
        srlg_regions: Sequence[Region] = (),
    ) -> None:
        for edge in (pairing.a, pairing.b):
            if edge.name not in calibrations:
                raise ValueError(
                    f"no calibration table for direction from {edge.name!r}"
                )
        self.pairing = pairing
        self.bgp = bgp
        self.calibrations = calibrations
        self.include_events = include_events
        self._instability_loss = instability_loss
        self.edge_noise_ms = edge_noise_ms

        self.net = Network()
        self.sim = self.net.sim
        self.hosts = {}
        self.switches = {}
        self.gateways = {}
        for edge in (pairing.a, pairing.b):
            self.hosts[edge.name] = self.net.add_host(
                f"host-{edge.name}", clock_offset=edge.clock_offset_s
            )
            switch = self.net.add_switch(
                f"gw-{edge.name}", clock_offset=edge.clock_offset_s
            )
            self.switches[edge.name] = switch
            self.gateways[edge.name] = TangoGateway(switch, edge, auth_key=auth_key)

        #: Failure-domain registry shared by the injector, the
        #: fate-aware data plane, and the controller's fast reroute.
        self.srlg = SrlgRegistry()
        for region in srlg_regions:
            self.srlg.add_region(region)
            for router in region.routers:
                self.srlg.tag_node(router, *region.groups)

        # Only edges whose calibrations carry annotations get a tag map;
        # an un-annotated scenario passes None through to build_tunnels
        # and keeps today's tag-free tunnels bit-for-bit.
        srlg_tags = {}
        for edge in (pairing.a, pairing.b):
            tags = {
                label: tuple(getattr(calibration, "srlgs", ()))
                for label, calibration in calibrations[edge.name].items()
            }
            if any(tags.values()):
                srlg_tags[edge.name] = tags
        self.session = TangoSession(
            pairing,
            bgp,
            self.gateways[pairing.a.name],
            self.gateways[pairing.b.name],
            self.sim,
            srlg_tags=srlg_tags,
        )
        self.state: Optional[SessionState] = None
        self._probe_generators: list[ProbeGenerator] = []
        self._probe_selectors: dict[str, ApplicationSelector] = {}
        self.telemetry_channel = telemetry_channel
        #: edge name -> attached TangoController (the controller-crash
        #: fault and the supervisor both resolve controllers here).
        self.controllers: dict[str, object] = {}
        self.supervisors: dict[str, Supervisor] = {}
        #: edge name -> armed DefenseStack (see repro.trust.stack); the
        #: chaos campaign and reports resolve defenses here.
        self.defenses: dict[str, object] = {}
        #: edge name -> attached fluid traffic engine (the demand_surge
        #: fault resolves engines here; see repro.traffic.fluid).
        self.traffic_engines: dict[str, object] = {}

    # -- establishment ------------------------------------------------------------

    def establish(self) -> SessionState:
        """Run control-plane establishment and build the data plane."""
        self.state = self.session.establish()
        self._build_edge_links()
        a, b = self.pairing.a.name, self.pairing.b.name
        self._build_wide_area(a, b, self.state.tunnels_a_to_b)
        self._build_wide_area(b, a, self.state.tunnels_b_to_a)
        if self.telemetry_channel is not None:
            self.session.start_reliable_telemetry(self.telemetry_channel)
        else:
            self.session.start_telemetry_mirrors()
        return self.state

    def _build_edge_links(self) -> None:
        base, sigma = self.edge_noise_ms
        for seed_offset, edge in enumerate((self.pairing.a, self.pairing.b)):
            host = self.hosts[edge.name]
            switch = self.switches[edge.name]
            self.net.add_link(
                f"{host.name}->{switch.name}",
                host,
                switch,
                delay=GaussianJitterDelay(
                    base * 1e-3, sigma * 1e-3, seed=31 + seed_offset
                ),
            )
            self.net.add_link(
                f"{switch.name}->{host.name}",
                switch,
                host,
                delay=GaussianJitterDelay(
                    base * 1e-3, sigma * 1e-3, seed=33 + seed_offset
                ),
            )
            switch.fib.add_route(
                edge.host_prefix, self.net.links[f"{switch.name}->{host.name}"]
            )

    def _build_wide_area(
        self, src: str, dst: str, tunnels: list[TangoTunnel]
    ) -> None:
        src_switch = self.switches[src]
        dst_switch = self.switches[dst]
        table = self.calibrations[src]
        for tunnel in tunnels:
            calibration = table.get(tunnel.short_label)
            if calibration is None:
                raise KeyError(
                    f"no calibration for path {tunnel.short_label!r} "
                    f"({src}->{dst}); have {sorted(table)}"
                )
            model = calibration.build(self.include_events)
            loss = None
            if (
                self._instability_loss > 0
                and getattr(calibration, "with_instability", False)
                and self.include_events
            ):
                loss = WindowedLoss.around_events(
                    model.events, baseline=0.0, elevated=self._instability_loss
                )
            link = self.net.add_link(
                f"{src}->{dst}:{tunnel.short_label}",
                src_switch,
                dst_switch,
                delay=model,
                loss=loss,
                srlgs=tuple(sorted(tunnel.srlgs)),
            )
            if tunnel.srlgs:
                self.srlg.tag_link(link.name, *tunnel.srlgs)
            src_switch.fib.add_route(tunnel.remote_prefix, link)
            if tunnel.is_default_path:
                remote_host = self.pairing.edge(dst).host_prefix
                src_switch.fib.add_route(remote_host, link)

    # -- workload helpers ---------------------------------------------------------

    def peer_of(self, edge_name: str) -> str:
        return self.pairing.peer_of(edge_name).name

    def sender_for(self, edge_name: str) -> Callable[[Packet], None]:
        """A send callable injecting packets at ``edge_name``'s host."""
        link = self.net.links[f"host-{edge_name}->gw-{edge_name}"]

        def send(packet: Packet) -> None:
            packet.created_at = self.sim.now
            link.transmit(self.sim, packet)

        return send

    def gateway(self, edge_name: str) -> TangoGateway:
        return self.gateways[edge_name]

    def tunnels(self, src: str) -> list[TangoTunnel]:
        """Tunnels for traffic originating at ``src``."""
        if self.state is None:
            raise RuntimeError("call establish() first")
        if src == self.pairing.a.name:
            return self.state.tunnels_a_to_b
        return self.state.tunnels_b_to_a

    def set_data_policy(self, src: str, selector: PathSelector) -> None:
        """Install the forwarding policy for data traffic from ``src``,
        preserving any pinned per-path probe streams."""
        existing = self._probe_selectors.get(src)
        if existing is not None:
            existing.default = selector
        else:
            self.gateway(src).set_selector(selector)

    def start_path_probes(
        self, src: str, interval_s: Optional[float] = None
    ) -> list[ProbeGenerator]:
        """One probe stream pinned to each path from ``src`` (the paper
        ran "a ping along each path every 10ms")."""
        if self.state is None:
            raise RuntimeError("call establish() first")
        interval = interval_s or self.pairing.probe_interval_s
        gateway = self.gateway(src)
        dst_edge = self.pairing.peer_of(src)
        selector = self._probe_selectors.get(src)
        if selector is None:
            selector = ApplicationSelector(default=gateway.selector)
            gateway.set_selector(selector)
            self._probe_selectors[src] = selector
        generators = []
        send = self.sender_for(src)
        for index, tunnel in enumerate(self.tunnels(src)):
            flow_label = 1000 + tunnel.path_id
            selector.assign(flow_label, StaticSelector(index))
            factory = PacketFactory(
                src=str(self.pairing.edge(src).host_address(2)),
                dst=str(dst_edge.host_address(2)),
                sport=52000 + index,
                dport=52000,
                payload_bytes=16,
                flow_label=flow_label,
            )
            generator = ProbeGenerator(self.sim, factory, send, interval)
            generator.start()
            generators.append(generator)
            self._probe_generators.append(generator)
        return generators

    def stop_probes(self) -> None:
        for generator in self._probe_generators:
            generator.stop()
        self._probe_generators.clear()

    # -- controllers & supervision ---------------------------------------------------

    def attach_controller(
        self, edge_name: str, controller: TangoController
    ) -> None:
        """Register ``edge_name``'s controller so faults and supervisors
        can find it (the ``controller_crash`` fault's handle)."""
        self.pairing.edge(edge_name)  # validates the name
        self.controllers[edge_name] = controller

    def controller_for(self, edge_name: str) -> TangoController:
        """The controller attached at ``edge_name`` (LookupError with the
        attached names otherwise)."""
        try:
            return self.controllers[edge_name]
        except KeyError:
            raise LookupError(
                f"no controller attached at edge {edge_name!r}; attached: "
                f"{sorted(self.controllers)}"
            ) from None

    # -- traffic engines -------------------------------------------------------------

    def attach_traffic_engine(self, edge_name: str, engine: object) -> None:
        """Register the fluid traffic engine sending *from* ``edge_name``
        so faults (``demand_surge``) and reports can find it.  Called
        automatically by :class:`repro.traffic.fluid.FluidEngine`."""
        self.pairing.edge(edge_name)  # validates the name
        self.traffic_engines[edge_name] = engine

    def traffic_engine(self, edge_name: str) -> object:
        """The traffic engine sending from ``edge_name`` (LookupError
        with the attached names otherwise)."""
        try:
            return self.traffic_engines[edge_name]
        except KeyError:
            raise LookupError(
                f"no traffic engine attached at edge {edge_name!r}; "
                f"attached: {sorted(self.traffic_engines)}"
            ) from None

    def supervise(
        self,
        edge_name: str,
        journal: Optional[ControllerJournal] = None,
        policy: SupervisorPolicy = SupervisorPolicy(),
        seed: Optional[int] = None,
    ) -> Supervisor:
        """Start a supervisor over ``edge_name``'s attached controller.

        With a journal, restarts are warm (checkpoint + WAL replay);
        without, they are cold.  The supervisor is returned and kept in
        :attr:`supervisors`.  ``seed`` feeds the restart-jitter stream;
        by default each edge gets a distinct seed from its pairing index
        so simultaneous crashes at both edges decorrelate.
        """
        controller = self.controller_for(edge_name)
        if seed is None:
            seed = 41 + [e.name for e in (self.pairing.a, self.pairing.b)].index(
                edge_name
            )
        supervisor = Supervisor(
            controller, self.sim, journal=journal, policy=policy, seed=seed
        )
        supervisor.start()
        self.supervisors[edge_name] = supervisor
        return supervisor

    def crash_controller(self, edge_name: str) -> None:
        """Kill ``edge_name``'s controller now (its supervisor, if any,
        will notice on its next heartbeat)."""
        self.controller_for(edge_name).crash()

    # -- failure injection ----------------------------------------------------------

    def fail_path(self, src: str, label: str, at: float) -> None:
        """Blackhole one wide-area path at simulation time ``at``."""
        link = self.wan_link(src, label)
        self.sim.schedule_at(at, lambda: setattr(link, "loss", ConstantLoss(1.0)))

    def restore_path(self, src: str, label: str, at: float) -> None:
        """Undo :meth:`fail_path` at simulation time ``at``."""
        link = self.wan_link(src, label)
        self.sim.schedule_at(at, lambda: setattr(link, "loss", ConstantLoss(0.0)))

    def wan_link(self, src: str, label: str) -> Link:
        """The wide-area link carrying ``src``'s path ``label`` (KeyError
        with the available names otherwise) — the fault injector's handle."""
        name = f"{src}->{self.peer_of(src)}:{label}"
        try:
            return self.net.links[name]
        except KeyError:
            raise KeyError(
                f"unknown wide-area link {name!r}; have "
                f"{sorted(k for k in self.net.links if ':' in k)}"
            ) from None

    # -- fast measurement campaign ---------------------------------------------------

    def clock_offset_delta(self, src: str) -> float:
        """Receiver-minus-sender clock offset for the given direction."""
        return (
            self.pairing.peer_of(src).clock_offset_s
            - self.pairing.edge(src).clock_offset_s
        )

    def run_fast_campaign(
        self,
        src: str,
        t0_s: float,
        t1_s: float,
        interval_s: Optional[float] = None,
        include_offset: bool = True,
    ) -> tuple[MeasurementStore, MeasurementStore]:
        """Sample the direction's delay processes at probe cadence.

        Returns ``(measured, true)`` stores — ``measured`` carries the
        direction's constant clock-offset distortion, ``true`` is the
        simulation-only ground truth.
        """
        if t1_s <= t0_s:
            raise ValueError(f"need t1 > t0, got [{t0_s}, {t1_s}]")
        interval = interval_s or self.pairing.probe_interval_s
        table = self.calibrations[src]
        offset = self.clock_offset_delta(src) if include_offset else 0.0
        times = np.arange(t0_s, t1_s, interval)
        measured = MeasurementStore()
        true = MeasurementStore()
        for tunnel in self.tunnels(src):
            model = table[tunnel.short_label].build(self.include_events)
            delays = model.delays(times)
            true.extend(tunnel.path_id, times, delays)
            measured.extend(tunnel.path_id, times, delays + offset)
        return measured, true

    def path_labels(self, src: str) -> list[str]:
        """Short labels of the direction's paths, discovery order."""
        return [t.short_label for t in self.tunnels(src)]
