"""Deployment scenarios: the Vultr NY/LA testbed, a distributed
enterprise, and synthetic fabrics."""

from .deployment import PacketLevelDeployment
from .enterprise import (
    EnterpriseDeployment,
    build_enterprise_bgp,
    make_enterprise_pairing,
)
from .topologies import (
    EcmpFanout,
    MeshScenario,
    build_ecmp_fanout,
    build_mesh_scenario,
)
from .vultr import (
    CAMPAIGN_HOURS,
    INSTABILITY_HOUR,
    LA_TO_NY_PATHS,
    NY_TO_LA_PATHS,
    ROUTE_CHANGE_HOUR,
    VULTR_ASN,
    PathCalibration,
    VultrDeployment,
    build_bgp_network,
    make_pairing,
)

__all__ = [
    "CAMPAIGN_HOURS",
    "EcmpFanout",
    "INSTABILITY_HOUR",
    "LA_TO_NY_PATHS",
    "EnterpriseDeployment",
    "MeshScenario",
    "NY_TO_LA_PATHS",
    "PacketLevelDeployment",
    "PathCalibration",
    "ROUTE_CHANGE_HOUR",
    "VULTR_ASN",
    "VultrDeployment",
    "build_bgp_network",
    "build_ecmp_fanout",
    "build_enterprise_bgp",
    "build_mesh_scenario",
    "make_enterprise_pairing",
    "make_pairing",
]
