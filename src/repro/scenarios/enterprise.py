"""A distributed-enterprise Tango pairing (paper Section 1).

"...or a distributed enterprise could run Tango between its multiple
locations."  This scenario is that deployment: a factory site behind a
regional access ISP and a headquarters/cloud site behind a business ISP,
an ocean apart.  Unlike the Vultr scenario there is no shared provider
ASN and no allowas-in trick — the two sites are ordinary single-homed
customers of *different* providers, which is exactly the Figure 1
situation the paper's motivation starts from.

Both providers buy transit from the same three backbones (NTT, Telia,
Cogent), so discovery exposes three paths per direction; delays are
transatlantic-scale (~80 ms) with one congested path, making the
adaptive-policy gains proportionally larger than in the domestic Vultr
setup.

The scenario demonstrates that nothing in the stack is Vultr-specific:
the same :class:`~repro.scenarios.deployment.PacketLevelDeployment`
machinery drives it end to end.
"""

from __future__ import annotations

import ipaddress

from ..bgp.network import BgpNetwork
from ..bgp.router import BgpRouter
from ..core.config import EdgeConfig, PairingConfig
from .deployment import PacketLevelDeployment
from .vultr import PathCalibration

__all__ = [
    "ACCESS_ISP_ASN",
    "BUSINESS_ISP_ASN",
    "FACTORY_TO_HQ_PATHS",
    "HQ_TO_FACTORY_PATHS",
    "build_enterprise_bgp",
    "make_enterprise_pairing",
    "EnterpriseDeployment",
]

ACCESS_ISP_ASN = 7018  # the factory's regional access provider
BUSINESS_ISP_ASN = 6939  # the HQ's business provider
NTT, TELIA, COGENT = 2914, 1299, 174
FACTORY_ASN, HQ_ASN = 64600, 64601

#: Factory → HQ: Telia is fastest; the default (NTT) is mildly congested
#: with a diurnal swell; Cogent is slow and noisy.
FACTORY_TO_HQ_PATHS: dict[str, PathCalibration] = {
    "NTT": PathCalibration(
        "NTT", base_ms=88.0, sigma_ms=0.4, diurnal_ms=4.0, seed=41
    ),
    "Telia": PathCalibration(
        "Telia", base_ms=79.5, sigma_ms=0.2, diurnal_ms=1.0, seed=42
    ),
    "Cogent": PathCalibration(
        "Cogent",
        base_ms=97.0,
        sigma_ms=1.1,
        diurnal_ms=3.0,
        seed=43,
        background_spikes=True,
    ),
}

#: HQ → factory: same ranking, slightly different absolute delays
#: (asymmetric routing is the norm, not the exception).
HQ_TO_FACTORY_PATHS: dict[str, PathCalibration] = {
    "NTT": PathCalibration(
        "NTT", base_ms=90.5, sigma_ms=0.5, diurnal_ms=3.5, seed=51
    ),
    "Telia": PathCalibration(
        "Telia", base_ms=80.2, sigma_ms=0.25, diurnal_ms=0.8, seed=52
    ),
    "Cogent": PathCalibration(
        "Cogent",
        base_ms=95.0,
        sigma_ms=0.9,
        diurnal_ms=2.5,
        seed=53,
        background_spikes=True,
    ),
}


def build_enterprise_bgp() -> BgpNetwork:
    """Two single-homed sites behind different providers, shared core."""
    net = BgpNetwork()
    for name, asn in (("ntt", NTT), ("telia", TELIA), ("cogent", COGENT)):
        net.add_router(BgpRouter(name, asn))
    net.add_peering("ntt", "telia")
    net.add_peering("ntt", "cogent")
    net.add_peering("telia", "cogent")
    net.add_router(BgpRouter("access-isp", ACCESS_ISP_ASN))
    net.add_router(BgpRouter("business-isp", BUSINESS_ISP_ASN))
    net.add_router(BgpRouter("tango-factory", FACTORY_ASN))
    net.add_router(BgpRouter("tango-hq", HQ_ASN))
    for provider, preference in (("ntt", 1), ("telia", 2), ("cogent", 3)):
        net.add_provider("access-isp", provider, customer_preference=preference)
        net.add_provider("business-isp", provider, customer_preference=preference)
    net.add_provider("tango-factory", "access-isp")
    net.add_provider("tango-hq", "business-isp")
    return net


def _prefix(index: int) -> ipaddress.IPv6Network:
    return ipaddress.IPv6Network(f"2001:db8:e{index:03x}::/48")


def make_enterprise_pairing(
    probe_interval_s: float = 0.010, report_interval_s: float = 0.100
) -> PairingConfig:
    factory = EdgeConfig(
        name="factory",
        tenant_router="tango-factory",
        tenant_asn=FACTORY_ASN,
        provider_router="access-isp",
        provider_asn=ACCESS_ISP_ASN,
        host_prefix=_prefix(0x010),
        route_prefixes=tuple(_prefix(0x100 + i) for i in range(3)),
        clock_offset_s=0.0071,
    )
    hq = EdgeConfig(
        name="hq",
        tenant_router="tango-hq",
        tenant_asn=HQ_ASN,
        provider_router="business-isp",
        provider_asn=BUSINESS_ISP_ASN,
        host_prefix=_prefix(0x020),
        route_prefixes=tuple(_prefix(0x200 + i) for i in range(3)),
        clock_offset_s=-0.0024,
    )
    return PairingConfig(
        a=factory,
        b=hq,
        probe_interval_s=probe_interval_s,
        report_interval_s=report_interval_s,
    )


class EnterpriseDeployment(PacketLevelDeployment):
    """Factory↔HQ pairing on the generic deployment machinery.

    Establishment runs *each site's own provider's* discovery: the
    factory edge attaches communities interpreted by AS 7018, the HQ
    edge by AS 6939 — nothing assumes a shared provider.
    """

    def __init__(
        self,
        include_events: bool = True,
        probe_interval_s: float = 0.010,
        report_interval_s: float = 0.100,
    ) -> None:
        super().__init__(
            pairing=make_enterprise_pairing(probe_interval_s, report_interval_s),
            bgp=build_enterprise_bgp(),
            calibrations={
                "factory": FACTORY_TO_HQ_PATHS,
                "hq": HQ_TO_FACTORY_PATHS,
            },
            include_events=include_events,
        )
