"""From Tango of 2 to Tango of N (paper Section 6).

The pairwise session is the building block; with N participating edges the
same tunnels compose into a RON-like overlay: traffic from A to C may go
direct over any of A–C's discovered paths, or *relay* through a member B
(decapsulated and re-encapsulated at B's Tango switch), buying path
diversity the direct BGP graph doesn't expose.

This module is control-plane-level: it reasons over the per-pair path
sets and their measured one-way delays (which the pairwise machinery
produces) to answer the Section 6 questions — how much diversity and how
much delay improvement does each additional member buy?
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Optional

__all__ = ["MeshPath", "MeshRoute", "TangoMesh"]

#: Per-relay processing cost: decapsulate, select, re-encapsulate at the
#: relay's border switch.  Programmable switches do this at line rate, so
#: the cost is one store-and-forward, not software overlay milliseconds.
DEFAULT_RELAY_OVERHEAD_S = 200e-6


@dataclass(frozen=True)
class MeshPath:
    """One direct wide-area path between a member pair (one direction)."""

    src: str
    dst: str
    label: str
    delay_s: float

    def __post_init__(self) -> None:
        if self.delay_s < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay_s}")


@dataclass(frozen=True)
class MeshRoute:
    """A composed route: a sequence of direct paths through members."""

    hops: tuple[MeshPath, ...]
    relay_overhead_s: float

    @property
    def src(self) -> str:
        return self.hops[0].src

    @property
    def dst(self) -> str:
        return self.hops[-1].dst

    @property
    def relays(self) -> tuple[str, ...]:
        return tuple(hop.dst for hop in self.hops[:-1])

    @property
    def total_delay_s(self) -> float:
        return (
            sum(hop.delay_s for hop in self.hops)
            + len(self.relays) * self.relay_overhead_s
        )

    @property
    def label(self) -> str:
        return " | ".join(
            f"{hop.src}->{hop.dst}:{hop.label}" for hop in self.hops
        )


class TangoMesh:
    """A set of edges with pairwise Tango sessions between them.

    Members and their pairwise path sets are registered explicitly (they
    come from pairwise discovery); route enumeration then answers
    diversity/latency questions.
    """

    def __init__(self, relay_overhead_s: float = DEFAULT_RELAY_OVERHEAD_S) -> None:
        if relay_overhead_s < 0:
            raise ValueError("relay overhead must be >= 0")
        self.relay_overhead_s = relay_overhead_s
        self._members: set[str] = set()
        self._paths: dict[tuple[str, str], list[MeshPath]] = {}

    # -- construction -----------------------------------------------------------

    def add_member(self, name: str) -> None:
        self._members.add(name)

    def members(self) -> list[str]:
        return sorted(self._members)

    def add_paths(
        self, src: str, dst: str, labeled_delays: Iterable[tuple[str, float]]
    ) -> None:
        """Register one direction's discovered paths between two members."""
        for name in (src, dst):
            if name not in self._members:
                raise KeyError(f"{name!r} is not a mesh member; add it first")
        if src == dst:
            raise ValueError("src and dst must differ")
        paths = [
            MeshPath(src=src, dst=dst, label=label, delay_s=delay)
            for label, delay in labeled_delays
        ]
        self._paths[(src, dst)] = paths

    def direct_paths(self, src: str, dst: str) -> list[MeshPath]:
        return list(self._paths.get((src, dst), []))

    # -- route enumeration ---------------------------------------------------------

    def routes(self, src: str, dst: str, max_relays: int = 1) -> list[MeshRoute]:
        """All routes from ``src`` to ``dst`` using up to ``max_relays``.

        Routes are returned sorted by total delay, best first.  Relay
        candidates are mesh members with sessions to both sides; each hop
        independently picks any of the pair's direct paths, so diversity
        multiplies.
        """
        if max_relays < 0:
            raise ValueError("max_relays must be >= 0")
        routes = [
            MeshRoute(hops=(p,), relay_overhead_s=self.relay_overhead_s)
            for p in self.direct_paths(src, dst)
        ]
        others = [m for m in self._members if m not in (src, dst)]
        for count in range(1, max_relays + 1):
            for relays in itertools.permutations(others, count):
                waypoints = (src, *relays, dst)
                legs = [
                    self.direct_paths(a, b)
                    for a, b in zip(waypoints, waypoints[1:])
                ]
                if any(not leg for leg in legs):
                    continue
                for combo in itertools.product(*legs):
                    routes.append(
                        MeshRoute(
                            hops=tuple(combo),
                            relay_overhead_s=self.relay_overhead_s,
                        )
                    )
        routes.sort(key=lambda r: r.total_delay_s)
        return routes

    def best_route(
        self, src: str, dst: str, max_relays: int = 1
    ) -> Optional[MeshRoute]:
        """Lowest-delay route, or None when unreachable."""
        routes = self.routes(src, dst, max_relays)
        return routes[0] if routes else None

    def diversity(self, src: str, dst: str, max_relays: int = 1) -> int:
        """How many distinct routes the mesh exposes for this pair."""
        return len(self.routes(src, dst, max_relays))

    def diversity_gain(self, src: str, dst: str, max_relays: int = 1) -> float:
        """Best-route delay improvement vs the pair's BGP-default path.

        Returns the (non-negative) seconds saved; 0.0 when the direct
        default is already optimal or no routes exist.
        """
        direct = self.direct_paths(src, dst)
        if not direct:
            return 0.0
        default_delay = direct[0].delay_s  # index 0 = BGP default
        best = self.best_route(src, dst, max_relays)
        if best is None:
            return 0.0
        return max(default_delay - best.total_delay_s, 0.0)
