"""Multiple points of presence per edge (paper footnote 1 + Section 6).

The paper's footnote: "If Tango is implemented with more than one sending
or receiving switch, all senders and receivers must have a form of
relative clock synchronization to accurately compare measurements that go
through different ingress/egress points."

With one switch per edge, the unknown clock offset is a single constant
that cancels in relative comparisons.  With several PoPs, each switch
pair has its *own* constant, so a path measured through PoP A is not
directly comparable to one measured through PoP B — unless the relative
offsets between the local PoPs are known.

:class:`PopOffsetCalibrator` recovers those relative offsets without any
extra infrastructure: when two receiving PoPs both measure tunnels from
the *same remote sender*, the difference of their measured floors on
paths of known equal (or measured) true delay is exactly the PoP-to-PoP
offset.  In practice edges can do even better — PoPs of one edge share a
LAN and can exchange timestamped messages directly — which
:func:`lan_offset_estimate` models.

:class:`MultiPopStore` then presents a single, comparable measurement
view across PoPs by normalizing every series to a reference PoP.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..telemetry.store import MeasurementStore

__all__ = ["lan_offset_estimate", "PopOffsetCalibrator", "MultiPopStore"]


def lan_offset_estimate(
    rtt_samples_s: np.ndarray, forward_deltas_s: np.ndarray
) -> float:
    """Relative offset between two co-located PoPs from a LAN exchange.

    PoP A sends its wall-clock time to PoP B over the shared LAN; B
    records ``delta = t_B_receive - t_A_send`` (true LAN delay + offset)
    and the LAN RTT.  With a symmetric LAN, offset = delta - RTT/2.
    Using minima filters queueing noise (classic NTP-style filtering).

    Args:
        rtt_samples_s: measured LAN round-trip times.
        forward_deltas_s: matching one-way receive deltas.

    Returns:
        Estimated ``clock_B - clock_A`` in seconds.
    """
    rtt_samples_s = np.asarray(rtt_samples_s, dtype=np.float64)
    forward_deltas_s = np.asarray(forward_deltas_s, dtype=np.float64)
    if rtt_samples_s.size == 0 or rtt_samples_s.size != forward_deltas_s.size:
        raise ValueError("need matching, non-empty RTT and delta samples")
    best = int(np.argmin(rtt_samples_s))
    return float(forward_deltas_s[best] - rtt_samples_s[best] / 2.0)


class PopOffsetCalibrator:
    """Estimates inter-PoP clock offsets from shared-sender measurements.

    If PoPs P and Q both terminate tunnels from the same remote switch,
    and the *same wide-area path* (or two paths whose true-delay
    difference is known to be ``known_gap_s``) feeds both, then::

        measured_P - measured_Q = (offset_P - offset_Q) + known_gap_s

    Floors (minima) are used rather than means: queueing inflates delays
    one-sidedly, so the floor difference isolates the constant.
    """

    def __init__(self) -> None:
        self._floors: dict[tuple[str, int], float] = {}

    def observe(self, pop: str, path_id: int, measured_owd_s: float) -> None:
        """Feed one measurement taken at ``pop``."""
        key = (pop, path_id)
        current = self._floors.get(key)
        if current is None or measured_owd_s < current:
            self._floors[key] = measured_owd_s

    def floor(self, pop: str, path_id: int) -> Optional[float]:
        return self._floors.get((pop, path_id))

    def relative_offset(
        self, pop_a: str, pop_b: str, path_id: int, known_gap_s: float = 0.0
    ) -> Optional[float]:
        """``clock_A - clock_B`` from a path both PoPs measured.

        Args:
            known_gap_s: true-delay difference (A's copy minus B's copy)
                when the two PoPs are fed by distinct physical paths;
                0.0 when they tap the same path.

        Returns:
            The offset estimate, or None if either floor is missing.
        """
        floor_a = self._floors.get((pop_a, path_id))
        floor_b = self._floors.get((pop_b, path_id))
        if floor_a is None or floor_b is None:
            return None
        return floor_a - floor_b - known_gap_s


class MultiPopStore:
    """A cross-PoP measurement view normalized to a reference PoP.

    Measurements recorded at PoP ``p`` are shifted by ``-offset(p)``
    (the calibrated ``clock_p - clock_reference``), after which delays
    measured at *any* PoP are mutually comparable — restoring the
    single-switch property the paper's relative-comparison argument
    needs.
    """

    def __init__(self, reference_pop: str) -> None:
        self.reference_pop = reference_pop
        self._offsets: dict[str, float] = {reference_pop: 0.0}
        self.store = MeasurementStore()

    def set_offset(self, pop: str, offset_s: float) -> None:
        """Register ``clock_pop - clock_reference`` (from calibration)."""
        self._offsets[pop] = offset_s

    def offset(self, pop: str) -> float:
        try:
            return self._offsets[pop]
        except KeyError:
            raise KeyError(
                f"PoP {pop!r} not calibrated; have {sorted(self._offsets)}"
            ) from None

    def record(self, pop: str, path_id: int, t: float, measured_owd_s: float) -> None:
        """Record a measurement taken at ``pop``, normalized."""
        self.store.record(path_id, t, measured_owd_s - self.offset(pop))

    def comparable_means(self, window_s: float, now: float) -> dict[int, float]:
        """Trailing-window means, comparable across ingress PoPs."""
        means = {}
        for path_id in self.store.path_ids():
            value = self.store.recent_delay(path_id, window_s, now)
            if value is not None:
                means[path_id] = value
        return means
