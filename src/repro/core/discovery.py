"""Iterative path discovery via suppression communities (paper Section 4.1).

The algorithm, verbatim from the paper's three-step procedure for one
direction between a source and a destination edge:

1. Observe the best BGP route for the destination's probe prefix at the
   source edge.
2. Configure the destination's BGP speaker to attach a community that
   suppresses the provider's export toward the transit AS currently
   carrying the route.
3. Wait for BGP to propagate; confirm the source now sees an alternate
   route.
4. Record the (route, community set) pair and repeat, until suppressing
   the used route makes the prefix unreachable.

Each discovered path is identified by its *transit view*: the AS path with
the provider's own ASN and private tenant ASNs removed — the "NTT",
"Telia", "GTT", "NTT Cogent" labels of the paper's Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..bgp.attributes import AsPath, LargeCommunity, RouteAttributes
from ..bgp.communities import no_export_to
from ..bgp.messages import Prefix, as_prefix
from ..bgp.poisoning import poisoned_attributes
from ..bgp.network import BgpNetwork
from ..bgp.snapshot import SnapshotCache
from ..profiling.core import Profiler

__all__ = ["DiscoveredPath", "DiscoveryResult", "PathDiscovery", "AS_NAMES"]

#: Human-readable names for the transit ASNs of the Vultr deployment plus
#: a few common networks; unknown ASNs render as "AS<number>".
AS_NAMES: dict[int, str] = {
    174: "Cogent",
    1299: "Telia",
    2914: "NTT",
    3257: "GTT",
    3356: "Level3",
    6939: "HE",
    7018: "AT&T",
    20473: "Vultr",
}


def asn_label(asn: int) -> str:
    """Render one ASN with its well-known name when available."""
    return AS_NAMES.get(asn, f"AS{asn}")


@dataclass(frozen=True)
class DiscoveredPath:
    """One wide-area path exposed by the discovery procedure.

    Attributes:
        index: discovery order — index 0 is the provider's (BGP-default)
            most preferred path.
        full_path: the AS path exactly as observed at the source edge.
        transit_asns: the transit view (provider/private ASNs stripped).
        communities: the suppression communities the destination edge must
            keep attached to the corresponding route prefix to pin it
            (community-method discovery).
        poisoned_asns: the ASNs the destination edge must keep poisoned
            in the route prefix's announced path to pin it
            (poisoning-method discovery).
    """

    index: int
    full_path: AsPath
    transit_asns: tuple[int, ...]
    communities: frozenset[LargeCommunity]
    poisoned_asns: tuple[int, ...] = ()

    @property
    def label(self) -> str:
        """Display label, e.g. ``"NTT"`` or ``"NTT Cogent"``."""
        return " ".join(asn_label(a) for a in self.transit_asns) or "direct"

    @property
    def short_label(self) -> str:
        """The paper's naming: the *distinguishing* AS — the transit
        adjacent to the announcing edge ("NTT and Cogent (we refer to this
        as Cogent)")."""
        if not self.transit_asns:
            return "direct"
        return asn_label(self.transit_asns[-1])

    @property
    def is_default(self) -> bool:
        """True for the path BGP would use with no Tango intervention."""
        return self.index == 0


@dataclass(frozen=True)
class DiscoveryResult:
    """Everything one direction's discovery learned."""

    source: str
    destination: str
    probe_prefix: Prefix
    paths: tuple[DiscoveredPath, ...]
    convergence_waves: int

    @property
    def path_count(self) -> int:
        return len(self.paths)

    @property
    def default_path(self) -> Optional[DiscoveredPath]:
        return self.paths[0] if self.paths else None

    def labels(self) -> list[str]:
        return [p.label for p in self.paths]


class PathDiscovery:
    """Runs the iterative suppression algorithm on a BGP network.

    Args:
        network: the converged control plane to probe.
        provider_asn: ASN whose traffic-control communities are driven
            (Vultr's 20473 in the paper).
        ignore_asns: ASNs stripped from observed paths to produce the
            transit view; the provider ASN is always stripped.
        snapshots: optional convergence snapshot cache.  Discovery keeps
            revisiting configurations (every run ends by withdrawing the
            probe and re-converging to the base state; repeated runs over
            the same base replay the same suppression ladder), so a cache
            turns those convergences into O(state) restores.
    """

    def __init__(
        self,
        network: BgpNetwork,
        provider_asn: int,
        ignore_asns: tuple[int, ...] = (),
        snapshots: Optional[SnapshotCache] = None,
    ) -> None:
        self.network = network
        self.provider_asn = provider_asn
        self.ignore_asns = tuple(ignore_asns)
        self.snapshots = snapshots
        #: Optional attached profiler; when set, discoveries are timed.
        self.profiler: Optional["Profiler"] = None

    def _converge(self) -> int:
        """One convergence, through the snapshot cache when present."""
        if self.snapshots is not None:
            return self.snapshots.converge(self.network)
        return self.network.converge()

    def discover(
        self,
        announcer: str,
        observer: str,
        probe_prefix: Union[str, Prefix],
        max_paths: int = 16,
        keep_announced: bool = False,
        method: str = "communities",
    ) -> DiscoveryResult:
        """Discover the distinct paths from ``observer`` toward ``announcer``.

        Note the direction: the *destination* edge announces; the paths
        found carry traffic from the observer (source) to the announcer
        (destination).

        Args:
            announcer: router name announcing the probe prefix (the
                destination edge's BGP speaker).
            observer: router name observing best paths (the source edge).
            probe_prefix: a prefix dedicated to probing (re-announced per
                round with growing suppression sets).
            max_paths: safety bound on the iteration.
            keep_announced: leave the final (fully suppressed) origination
                in place instead of withdrawing the probe prefix.
            method: how the current route is suppressed each round —
                ``"communities"`` (the paper's prototype: provider
                traffic-control communities) or ``"poisoning"``
                (Section 6's alternative knob: include the target transit
                in the announced AS path so its loop detection drops the
                route).  Poisoning needs no provider support but kills
                the target *everywhere* in the topology, so it typically
                exposes fewer paths — e.g. a backup path that re-enters
                a poisoned transit further upstream is lost too.

        Returns:
            A :class:`DiscoveryResult`; ``paths`` is empty if the prefix
            never became reachable.
        """
        if self.profiler is not None:
            with self.profiler.time("discovery.discover"):
                return self._discover(
                    announcer, observer, probe_prefix,
                    max_paths, keep_announced, method,
                )
        return self._discover(
            announcer, observer, probe_prefix, max_paths, keep_announced, method
        )

    def _discover(
        self,
        announcer: str,
        observer: str,
        probe_prefix: Union[str, Prefix],
        max_paths: int,
        keep_announced: bool,
        method: str,
    ) -> DiscoveryResult:
        if method not in ("communities", "poisoning"):
            raise ValueError(
                f"method must be 'communities' or 'poisoning', got {method!r}"
            )
        prefix = as_prefix(probe_prefix)
        announcer_router = self.network.router(announcer)
        observer_router = self.network.router(observer)
        communities: set[LargeCommunity] = set()
        poisoned: list[int] = []
        paths: list[DiscoveredPath] = []
        waves = 0

        announcer_router.originate(prefix)
        waves += self._converge()
        for index in range(max_paths):
            best = observer_router.best_path(prefix)
            if best is None:
                break
            # Poisoned ASNs ride at the tail of every announced path
            # (that is the mechanism); exclude them from the transit
            # view — they are not hops the traffic traverses.
            transit = self._transit_view(best, exclude=tuple(poisoned))
            paths.append(
                DiscoveredPath(
                    index=index,
                    full_path=best,
                    transit_asns=transit.asns,
                    communities=frozenset(communities),
                    poisoned_asns=tuple(poisoned),
                )
            )
            suppress_target = self._suppression_target(transit)
            if suppress_target is None:
                # Degenerate: provider-only path; nothing left to suppress.
                break
            if method == "communities":
                communities.add(
                    no_export_to(self.provider_asn, suppress_target)
                )
                announcer_router.originate(
                    prefix,
                    RouteAttributes().add_communities(large=communities),
                )
            else:
                poisoned.append(suppress_target)
                announcer_router.originate(
                    prefix, poisoned_attributes(poisoned)
                )
            waves += self._converge()
        if not keep_announced:
            announcer_router.withdraw_origination(prefix)
            waves += self._converge()
        return DiscoveryResult(
            source=observer,
            destination=announcer,
            probe_prefix=prefix,
            paths=tuple(paths),
            convergence_waves=waves,
        )

    def _transit_view(
        self, path: AsPath, exclude: tuple[int, ...] = ()
    ) -> AsPath:
        """Strip provider/private/ignored/excluded ASNs, keeping the
        transit networks the traffic actually traverses."""
        view = path.without(self.provider_asn).strip_private()
        for asn in self.ignore_asns + exclude:
            view = view.without(asn)
        return view

    def _suppression_target(self, transit: AsPath) -> Optional[int]:
        """The transit AS adjacent to the announcing edge's provider.

        That is the AS the provider exports the prefix to directly — the
        one a ``no_export_to`` community can cut off.  In the observed
        path it is the *last* transit ASN (closest to the origin).
        """
        return transit.asns[-1] if transit.asns else None
