"""The Tango border gateway: a programmable switch plus Tango state.

One gateway runs at the border of each cooperating edge (paper Figure 2).
It owns:

* the tunnel table (remote host prefix → available tunnels),
* the sender program (selection + timestamp + encapsulation) and the
  receiver program (measurement + decapsulation),
* two measurement stores with deliberately distinct roles:
  ``inbound`` holds delays this gateway *measured* on packets it received
  (the peer's outbound paths); ``outbound`` holds delays the *peer*
  measured on our transmissions, mirrored back to us — this is the store
  our forwarding policies read.
"""

from __future__ import annotations

import ipaddress
from typing import Optional

from ..dataplane.programs import (
    PathSelector,
    TangoReceiverProgram,
    TangoSenderProgram,
)
from ..dataplane.seqnum import SequenceTracker
from ..netsim.node import ProgrammableSwitch
from ..netsim.packet import TangoHeader
from ..telemetry.auth import TelemetryAuthenticator
from ..telemetry.loss import LossMonitor
from ..telemetry.store import MeasurementStore
from .config import EdgeConfig
from .policy import ApplicationSelector, StaticSelector
from .tunnels import TangoTunnel, TunnelTable

__all__ = ["TangoGateway"]


class TangoGateway:
    """Tango state and programs bound to one border switch.

    Args:
        switch: the programmable switch at this edge's border.  The
            gateway attaches its receiver program at ingress and its
            sender program at egress.
        config: this edge's static configuration.
        auth_key: non-empty enables authenticated telemetry both ways.
    """

    def __init__(
        self,
        switch: ProgrammableSwitch,
        config: EdgeConfig,
        auth_key: bytes = b"",
    ) -> None:
        self.switch = switch
        self.config = config
        self.tunnel_table = TunnelTable()
        self.inbound = MeasurementStore()
        self.outbound = MeasurementStore()
        self.tracker = SequenceTracker()
        self.loss_monitor = LossMonitor(self.tracker)
        authenticator: Optional[TelemetryAuthenticator] = None
        if auth_key:
            authenticator = TelemetryAuthenticator(auth_key)
        self.authenticator = authenticator
        self.receiver = TangoReceiverProgram(
            local_endpoints=(),
            on_measurement=self._on_measurement,
            tracker=self.tracker,
            authenticator=authenticator,
        )
        self.sender = TangoSenderProgram(
            tunnel_lookup=self.tunnel_table.tunnels_for,
            selector=StaticSelector(0),
            authenticator=authenticator,
        )
        switch.attach_ingress(self.receiver)
        switch.attach_egress(self.sender)
        # Every local route prefix hosts a tunnel endpoint by convention.
        for index in range(len(config.route_prefixes)):
            self.receiver.add_endpoint(config.tunnel_endpoint(index))

    # -- wiring -----------------------------------------------------------------

    def install_tunnels(
        self,
        remote_host_prefix: ipaddress.IPv6Network,
        tunnels: list[TangoTunnel],
    ) -> None:
        """Make ``tunnels`` available for traffic to ``remote_host_prefix``."""
        for tunnel in tunnels:
            self.tunnel_table.add(remote_host_prefix, tunnel)

    def set_selector(self, selector: PathSelector) -> None:
        """Swap the forwarding policy (takes effect on the next packet)."""
        self.sender.selector = selector

    @property
    def selector(self) -> PathSelector:
        return self.sender.selector

    @property
    def data_selector(self) -> PathSelector:
        """The selector deciding *data* traffic.

        When probe streams are pinned through an
        :class:`~repro.core.policy.ApplicationSelector`, data traffic is
        its default class; otherwise it is the installed selector itself.
        """
        selector = self.sender.selector
        if isinstance(selector, ApplicationSelector):
            return selector.default
        return selector

    def set_data_selector(self, selector: PathSelector) -> None:
        """Replace the data-traffic selector, leaving pinned probe classes
        untouched — how the controller wraps the policy with a quarantine
        guard without disturbing per-path measurement streams."""
        current = self.sender.selector
        if isinstance(current, ApplicationSelector):
            current.default = selector
        else:
            self.sender.selector = selector

    # -- measurement plumbing -----------------------------------------------------

    def _on_measurement(
        self, path_id: int, t: float, owd_s: float, _header: TangoHeader
    ) -> None:
        self.inbound.record(path_id, t, owd_s)

    # -- reporting ------------------------------------------------------------------

    def tunnel_report(self, window_s: float = 5.0) -> list[dict]:
        """Per-tunnel snapshot: label, outbound delay, loss — for humans."""
        now = self.switch.sim.now
        rows = []
        for tunnel in self.tunnel_table.all_tunnels():
            delay = self.outbound.recent_delay(tunnel.path_id, window_s, now)
            stats = self.tracker.stats_for(tunnel.path_id)
            rows.append(
                {
                    "path_id": tunnel.path_id,
                    "label": tunnel.label,
                    "outbound_delay_ms": None if delay is None else delay * 1e3,
                    "inbound_received": stats.received,
                    "inbound_loss_fraction": stats.loss_fraction,
                }
            )
        return rows

    def __repr__(self) -> str:
        return (
            f"TangoGateway({self.config.name}, switch={self.switch.name}, "
            f"tunnels={len(self.tunnel_table)})"
        )
