"""Control-plane → data-plane FIB synchronization.

In the prototype, BIRD installs its converged BGP routes into the kernel
FIB.  This module is that glue for the simulation: it walks a converged
:class:`~repro.bgp.network.BgpNetwork` and installs each router's best
routes into the corresponding data-plane node's LPM FIB, resolving
"next-hop neighbor" to the physical link toward that neighbor.

Scenario builders can use it instead of hand-wiring FIB entries, and
tests use it to assert control/data-plane consistency: the path a packet
takes equals the AS path BGP selected.
"""

from __future__ import annotations

from typing import Mapping

from ..bgp.network import BgpNetwork
from ..netsim.links import Link
from ..netsim.node import RouterNode

__all__ = ["FibSyncError", "sync_fibs"]


class FibSyncError(RuntimeError):
    """A best route exists but no link reaches its next hop."""


def sync_fibs(
    bgp: BgpNetwork,
    node_map: Mapping[str, RouterNode],
    link_map: Mapping[tuple[str, str], Link],
    strict: bool = True,
) -> int:
    """Install every router's Loc-RIB best routes into data-plane FIBs.

    Args:
        bgp: a converged control plane.
        node_map: BGP router name -> data-plane node.  Routers without a
            data-plane twin (modeled core ASes) may be omitted.
        link_map: (router name, neighbor name) -> egress link toward that
            neighbor.
        strict: raise :class:`FibSyncError` when a best route's next hop
            has no link; False skips it (useful for partial data planes).

    Returns:
        Number of FIB entries installed.
    """
    installed = 0
    for name, router in bgp.routers.items():
        node = node_map.get(name)
        if node is None:
            continue
        for prefix, entry in router.loc_rib.routes().items():
            link = link_map.get((name, entry.neighbor))
            if link is None:
                if strict:
                    raise FibSyncError(
                        f"{name}: best route for {prefix} points at "
                        f"{entry.neighbor!r} but no link is mapped"
                    )
                continue
            node.fib.add_route(prefix, link)
            installed += 1
    return installed
