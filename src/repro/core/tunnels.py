"""Prefixes as routes: the Tango tunnel table.

Tango's central trick (paper Section 3): instead of multiple routes to one
prefix (which needs core cooperation), announce *multiple prefixes*, each
propagating over a different wide-area path, and tunnel traffic to an
endpoint address inside the prefix whose path you want.  Host addressing
lives in separate prefixes, so a border switch seeing traffic for the
remote edge's host prefix picks a tunnel — a performance-driven,
per-packet source-routing decision the core never learns about.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..bgp.attributes import LargeCommunity
from ..netsim.packet import TANGO_UDP_PORT
from .discovery import DiscoveredPath, asn_label

__all__ = ["TangoTunnel", "TunnelTable", "build_tunnels", "bgp_best"]


@dataclass(frozen=True)
class TangoTunnel:
    """One unidirectional tunnel, bound to one wide-area path.

    Attributes:
        path_id: globally unique id carried in the Tango header.
        label: human-readable path name ("GTT", "NTT Cogent", ...).
        local_endpoint: outer source address (in a local route prefix).
        remote_endpoint: outer destination address (in the remote edge's
            route prefix pinned to this path) — choosing it chooses the
            path.
        remote_prefix: the remote route prefix, for FIB bookkeeping.
        transit_asns: the path's transit view, for reports.
        communities: communities the remote edge keeps attached to pin
            the prefix to this path.
        sport: tunnel UDP source port.  Unique per tunnel so each tunnel
            is one stable ECMP flow, distinct from its siblings.
        srlgs: shared-risk link groups this tunnel's wide-area path
            traverses — physical failure domains (conduits, regional
            grids) plus ``transit:<AS>`` fate tags.  Empty when the
            scenario carries no annotations (legacy behaviour).
    """

    path_id: int
    label: str
    local_endpoint: ipaddress.IPv6Address
    remote_endpoint: ipaddress.IPv6Address
    remote_prefix: ipaddress.IPv6Network
    transit_asns: tuple[int, ...] = ()
    communities: frozenset[LargeCommunity] = frozenset()
    sport: int = TANGO_UDP_PORT
    short_label: str = ""
    srlgs: frozenset[str] = frozenset()

    @property
    def is_default_path(self) -> bool:
        """Tunnels are created in discovery order; id 0 per direction is
        the BGP-default path (set by :func:`build_tunnels`)."""
        return self.path_id % _PATH_ID_STRIDE == 0


#: path ids are allocated as direction_base + index; stride keeps the two
#: directions of a pairing (and multiple pairings) disjoint.
_PATH_ID_STRIDE = 64


def bgp_best(tunnels: Sequence[TangoTunnel]) -> TangoTunnel:
    """The BGP-default tunnel of a candidate set — the last-resort path.

    When every tunnel looks unhealthy, degrading to the path BGP itself
    would use loses nothing relative to the status quo.  Falls back to the
    lowest path id when no candidate is marked default (e.g. an already
    filtered set).

    Raises:
        ValueError: on an empty candidate set.
    """
    if not tunnels:
        raise ValueError("no tunnels to choose a BGP-best fallback from")
    for tunnel in tunnels:
        if tunnel.is_default_path:
            return tunnel
    return min(tunnels, key=lambda t: t.path_id)


class TunnelTable:
    """Maps remote host prefixes to their available tunnels.

    This is the "statically configured table" of the paper: both endpoints
    cooperate, so each side simply knows which host prefixes live behind
    the other's Tango switch.
    """

    def __init__(self) -> None:
        self._by_prefix: dict[ipaddress.IPv6Network, list[TangoTunnel]] = {}
        self._by_id: dict[int, TangoTunnel] = {}

    def add(self, remote_host_prefix: ipaddress.IPv6Network, tunnel: TangoTunnel) -> None:
        """Register ``tunnel`` as a way to reach ``remote_host_prefix``."""
        if tunnel.path_id in self._by_id:
            raise ValueError(f"duplicate tunnel path_id {tunnel.path_id}")
        self._by_prefix.setdefault(remote_host_prefix, []).append(tunnel)
        self._by_id[tunnel.path_id] = tunnel

    def tunnels_for(self, dst: ipaddress.IPv6Address) -> list[TangoTunnel]:
        """Tunnels toward the Tango edge hosting ``dst`` ([] if none)."""
        for prefix, tunnels in self._by_prefix.items():
            if dst in prefix:
                return tunnels
        return []

    def by_id(self, path_id: int) -> Optional[TangoTunnel]:
        return self._by_id.get(path_id)

    def all_tunnels(self) -> list[TangoTunnel]:
        return [self._by_id[k] for k in sorted(self._by_id)]

    def prefixes(self) -> list[ipaddress.IPv6Network]:
        return list(self._by_prefix)

    def __len__(self) -> int:
        return len(self._by_id)


def build_tunnels(
    paths: tuple[DiscoveredPath, ...],
    local_route_prefixes: tuple[ipaddress.IPv6Network, ...],
    remote_route_prefixes: tuple[ipaddress.IPv6Network, ...],
    direction_base: int,
    sport_base: int = 40000,
    srlg_tags: Optional[Mapping[str, Sequence[str]]] = None,
) -> list[TangoTunnel]:
    """Turn one direction's discovered paths into tunnels.

    Path ``i`` uses the remote edge's ``i``-th route prefix (which the
    remote edge announces with that path's pinned communities) and the
    local ``i``-th route prefix as the return address.

    Args:
        paths: discovery output, in preference order.
        local_route_prefixes: this (sending) edge's route prefixes.
        remote_route_prefixes: the receiving edge's route prefixes.
        direction_base: base path id for this direction — use
            ``direction_index * 64`` so ids never collide.
        sport_base: first UDP source port; tunnel ``i`` gets ``base + i``.
        srlg_tags: optional scenario annotations keyed by path
            ``short_label``.  When given, each tunnel's ``srlgs`` is the
            annotated groups plus an automatic ``transit:<AS>`` tag per
            transit hop (an AS is itself a shared fate: one operator's
            backbone-wide incident takes all its paths at once).  When
            omitted, tunnels carry no tags and every SRLG-aware consumer
            degrades to today's behaviour.

    Raises:
        ValueError: when an edge exposed fewer route prefixes than
            discovery found paths (the prototype's answer was "allocate
            more /48s"; ours is a loud error).
    """
    if len(paths) > len(remote_route_prefixes):
        raise ValueError(
            f"{len(paths)} paths discovered but only "
            f"{len(remote_route_prefixes)} remote route prefixes available"
        )
    if len(paths) > len(local_route_prefixes):
        raise ValueError(
            f"{len(paths)} paths discovered but only "
            f"{len(local_route_prefixes)} local route prefixes available"
        )
    if direction_base % _PATH_ID_STRIDE != 0:
        raise ValueError(
            f"direction_base must be a multiple of {_PATH_ID_STRIDE}"
        )
    tunnels = []
    for path in paths:
        srlgs: frozenset[str] = frozenset()
        if srlg_tags is not None:
            groups = set(srlg_tags.get(path.short_label, ()))
            groups.update(f"transit:{asn_label(asn)}" for asn in path.transit_asns)
            srlgs = frozenset(groups)
        tunnels.append(
            TangoTunnel(
                path_id=direction_base + path.index,
                label=path.label,
                local_endpoint=local_route_prefixes[path.index][1],
                remote_endpoint=remote_route_prefixes[path.index][1],
                remote_prefix=remote_route_prefixes[path.index],
                transit_asns=path.transit_asns,
                communities=path.communities,
                sport=sport_base + path.index,
                short_label=path.short_label,
                srlgs=srlgs,
            )
        )
    return tunnels
