"""Per-edge Tango controller: the local control loop.

The controller is deliberately thin — Tango's whole point is that the
per-packet decision lives in the data plane.  What remains for slow-path
software:

* sampling the loss monitor on a fixed cadence (turning raw sequence
  counters into time-binned loss rates policies can read),
* recording which tunnel the data plane is choosing over time (the
  decision trace that experiment reports plot against the delay series),
* health checks: flagging tunnels that have gone quiet (no mirrored
  measurements within a staleness horizon), the trigger a deployment
  would use to re-run discovery,
* graceful degradation: a quarantine state machine that evicts stale or
  lossy tunnels from the data-plane candidate set (with hysteresis and
  exponential-backoff re-probation) and, when *everything* is unhealthy,
  falls back to the BGP-best tunnel — never worse than the status quo.

Lifecycle contract: :meth:`TangoController.start` may be called again
after :meth:`TangoController.stop`.  A (re)start resets all edge-trigger
and quarantine runtime state — previously stale tunnels re-fire
``on_stale`` and quarantined tunnels are re-admitted pending a fresh
verdict — while cumulative records (``choice_trace``, ``quarantine_log``,
``ticks``) are preserved.  Calling ``start`` on a running controller
remains an error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..netsim.events import PeriodicTask, Simulator
from ..telemetry.store import TimeSeries
from .gateway import TangoGateway
from .policy import GuardedSelector

__all__ = [
    "TunnelHealth",
    "QuarantinePolicy",
    "QuarantineEvent",
    "TangoController",
]


@dataclass(frozen=True)
class TunnelHealth:
    """Health snapshot for one tunnel."""

    path_id: int
    label: str
    fresh: bool
    last_measurement_age_s: Optional[float]
    recent_loss: float


@dataclass(frozen=True)
class QuarantinePolicy:
    """Tuning knobs of the graceful-degradation state machine.

    Attributes:
        loss_threshold: recent loss fraction above which a tunnel counts
            as unhealthy even while measurements stay fresh.
        unhealthy_ticks: consecutive unhealthy control ticks before a
            healthy tunnel is quarantined (hysteresis against one-tick
            blips).
        probation_delay_s: initial quarantine duration; once it elapses
            the tunnel re-enters the candidate set on probation.
        backoff_factor: multiplier applied to the quarantine duration on
            every (re-)quarantine — repeat offenders wait longer.
        max_probation_delay_s: backoff ceiling.
        probation_ticks: consecutive healthy ticks on probation required
            to fully restore the tunnel (and reset its backoff).
    """

    loss_threshold: float = 0.5
    unhealthy_ticks: int = 2
    probation_delay_s: float = 1.0
    backoff_factor: float = 2.0
    max_probation_delay_s: float = 30.0
    probation_ticks: int = 3

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_threshold <= 1.0:
            raise ValueError(
                f"loss_threshold must be in [0, 1], got {self.loss_threshold}"
            )
        if self.unhealthy_ticks < 1:
            raise ValueError("unhealthy_ticks must be >= 1")
        if self.probation_delay_s <= 0:
            raise ValueError("probation_delay_s must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_probation_delay_s < self.probation_delay_s:
            raise ValueError("max_probation_delay_s below probation_delay_s")
        if self.probation_ticks < 1:
            raise ValueError("probation_ticks must be >= 1")


@dataclass(frozen=True)
class QuarantineEvent:
    """One transition of the quarantine state machine — the raw material
    recovery logs and MTTR metrics are computed from."""

    t: float
    path_id: int
    label: str
    action: str  # quarantine | probation | restore | fallback-on | fallback-off
    cause: str = ""
    backoff_s: float = 0.0


@dataclass
class _QuarantineRuntime:
    """Mutable per-tunnel machine state (module-private)."""

    state: str = "healthy"  # healthy | quarantined | probation
    unhealthy_streak: int = 0
    healthy_streak: int = 0
    backoff_s: float = 0.0
    probation_at: float = 0.0


class TangoController:
    """Slow-path loop for one gateway.

    Args:
        gateway: the gateway to manage.
        sim: simulator whose clock drives the loop.
        interval_s: loop cadence.
        staleness_s: a tunnel with no mirrored measurement within this
            horizon is reported unhealthy.
        on_stale: edge-triggered staleness hook (fires once per stale
            transition; re-arms on recovery and on restart).
        quarantine: enable graceful degradation with these parameters;
            None (the default) keeps the controller report-only.
    """

    def __init__(
        self,
        gateway: TangoGateway,
        sim: Simulator,
        interval_s: float = 0.1,
        staleness_s: float = 2.0,
        on_stale: Optional[Callable[[TunnelHealth], None]] = None,
        quarantine: Optional[QuarantinePolicy] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        self.gateway = gateway
        self.sim = sim
        self.interval_s = interval_s
        self.staleness_s = staleness_s
        self.choice_trace = TimeSeries()
        self._task: Optional[PeriodicTask] = None
        self.ticks = 0
        #: Fired once per tunnel when it *becomes* stale (edge-triggered):
        #: the hook a deployment uses to alarm or re-run discovery.
        self.on_stale = on_stale
        self._stale_flags: dict[int, bool] = {}
        self.quarantine_policy = quarantine
        #: Path ids currently evicted from the data-plane candidate set.
        #: Shared by reference with the installed :class:`GuardedSelector`.
        self.quarantined: set[int] = set()
        #: Every state-machine transition, in tick order — the recovery log
        #: source (see ``repro.faults.recovery``).
        self.quarantine_log: list[QuarantineEvent] = []
        self._qstate: dict[int, _QuarantineRuntime] = {}
        self._guard: Optional[GuardedSelector] = None
        self._fallback_active = False

    def start(self) -> None:
        """Begin (or restart) the control loop.

        Safe after :meth:`stop`: edge-trigger and quarantine runtime state
        are reset so a tunnel that was stale or quarantined before the
        restart is re-evaluated from scratch (and will re-fire
        ``on_stale`` if still stale).  Cumulative traces are kept.
        """
        if self._task is not None:
            raise RuntimeError("controller already started")
        self._stale_flags.clear()
        self._reset_quarantine_runtime()
        if self.quarantine_policy is not None and self._guard is None:
            self._guard = GuardedSelector(
                self.gateway.data_selector, self.quarantined
            )
            self.gateway.set_data_selector(self._guard)
        self._task = self.sim.call_every(self.interval_s, self._tick)

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _reset_quarantine_runtime(self) -> None:
        self._qstate.clear()
        self.quarantined.clear()
        self._fallback_active = False

    def _tick(self) -> None:
        self.ticks += 1
        now = self.sim.now
        self.gateway.loss_monitor.sample(now)
        choice = getattr(self.gateway.selector, "last_choice", None)
        self.choice_trace.append(now, float(-1 if choice is None else choice))
        needs_health = self.on_stale is not None or self.quarantine_policy
        if not needs_health:
            return
        healths = self.health()
        if self.on_stale is not None:
            self._check_staleness(healths)
        if self.quarantine_policy is not None:
            self._quarantine_tick(healths, now)

    def _check_staleness(self, healths: list[TunnelHealth]) -> None:
        """Edge-triggered staleness notifications.

        A tunnel that has never been measured is not reported (it is
        still warming up); only a measured-then-silent tunnel fires.
        """
        for health in healths:
            was_stale = self._stale_flags.get(health.path_id, False)
            if health.last_measurement_age_s is None:
                continue
            if not health.fresh and not was_stale:
                self._stale_flags[health.path_id] = True
                self.on_stale(health)
            elif health.fresh:
                self._stale_flags[health.path_id] = False

    # -- quarantine state machine -------------------------------------------------

    def _unhealthy_cause(self, health: TunnelHealth) -> Optional[str]:
        """Why this tunnel counts as unhealthy, or None if it doesn't.

        Warming-up tunnels (never measured) are exempt from the staleness
        trigger, matching the edge-trigger semantics above.
        """
        if health.last_measurement_age_s is not None and not health.fresh:
            return "stale"
        if health.recent_loss > self.quarantine_policy.loss_threshold:
            return "loss"
        return None

    def _quarantine_tick(self, healths: list[TunnelHealth], now: float) -> None:
        policy = self.quarantine_policy
        for health in healths:
            runtime = self._qstate.setdefault(
                health.path_id, _QuarantineRuntime(backoff_s=policy.probation_delay_s)
            )
            cause = self._unhealthy_cause(health)
            if runtime.state == "healthy":
                if cause is None:
                    runtime.unhealthy_streak = 0
                else:
                    runtime.unhealthy_streak += 1
                    if runtime.unhealthy_streak >= policy.unhealthy_ticks:
                        self._enter_quarantine(health, runtime, now, cause)
            elif runtime.state == "quarantined":
                if now >= runtime.probation_at:
                    runtime.state = "probation"
                    runtime.healthy_streak = 0
                    self.quarantined.discard(health.path_id)
                    self._log(now, health, "probation")
            elif runtime.state == "probation":
                if cause is not None:
                    self._enter_quarantine(health, runtime, now, cause)
                else:
                    runtime.healthy_streak += 1
                    if runtime.healthy_streak >= policy.probation_ticks:
                        runtime.state = "healthy"
                        runtime.backoff_s = policy.probation_delay_s
                        runtime.unhealthy_streak = 0
                        self._log(now, health, "restore")
        self._update_fallback(healths, now)

    def _enter_quarantine(
        self,
        health: TunnelHealth,
        runtime: _QuarantineRuntime,
        now: float,
        cause: str,
    ) -> None:
        policy = self.quarantine_policy
        backoff = runtime.backoff_s or policy.probation_delay_s
        runtime.state = "quarantined"
        runtime.unhealthy_streak = 0
        runtime.probation_at = now + backoff
        runtime.backoff_s = min(
            backoff * policy.backoff_factor, policy.max_probation_delay_s
        )
        self.quarantined.add(health.path_id)
        self._log(now, health, "quarantine", cause=cause, backoff_s=backoff)

    def _update_fallback(self, healths: list[TunnelHealth], now: float) -> None:
        all_ids = {h.path_id for h in healths}
        active = bool(all_ids) and all_ids <= self.quarantined
        if active == self._fallback_active:
            return
        self._fallback_active = active
        action = "fallback-on" if active else "fallback-off"
        self.quarantine_log.append(
            QuarantineEvent(t=now, path_id=-1, label="*", action=action)
        )

    def _log(
        self,
        now: float,
        health: TunnelHealth,
        action: str,
        cause: str = "",
        backoff_s: float = 0.0,
    ) -> None:
        self.quarantine_log.append(
            QuarantineEvent(
                t=now,
                path_id=health.path_id,
                label=health.label,
                action=action,
                cause=cause,
                backoff_s=backoff_s,
            )
        )

    def quarantine_state(self, path_id: int) -> str:
        """Machine state for one tunnel: healthy | quarantined | probation."""
        runtime = self._qstate.get(path_id)
        return runtime.state if runtime is not None else "healthy"

    @property
    def fallback_active(self) -> bool:
        """True while every tunnel is quarantined (BGP-best last resort)."""
        return self._fallback_active

    # -- health -----------------------------------------------------------------

    def health(self) -> list[TunnelHealth]:
        """Per-tunnel health based on mirrored-measurement freshness."""
        now = self.sim.now
        out = []
        for tunnel in self.gateway.tunnel_table.all_tunnels():
            last = self.gateway.outbound.last_time(tunnel.path_id)
            age = None if last is None else now - last
            fresh = age is not None and age <= self.staleness_s
            out.append(
                TunnelHealth(
                    path_id=tunnel.path_id,
                    label=tunnel.label,
                    fresh=fresh,
                    last_measurement_age_s=age,
                    recent_loss=self.gateway.loss_monitor.recent_loss(
                        tunnel.path_id
                    ),
                )
            )
        return out

    def stale_tunnels(self) -> list[TunnelHealth]:
        """The unhealthy subset — a deployment's re-discovery trigger."""
        return [h for h in self.health() if not h.fresh]
