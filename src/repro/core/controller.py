"""Per-edge Tango controller: the local control loop.

The controller is deliberately thin — Tango's whole point is that the
per-packet decision lives in the data plane.  What remains for slow-path
software:

* sampling the loss monitor on a fixed cadence (turning raw sequence
  counters into time-binned loss rates policies can read),
* recording which tunnel the data plane is choosing over time (the
  decision trace that experiment reports plot against the delay series),
* health checks: flagging tunnels that have gone quiet (no mirrored
  measurements within a staleness horizon), the trigger a deployment
  would use to re-run discovery,
* graceful degradation: a quarantine state machine that evicts stale or
  lossy tunnels from the data-plane candidate set (with hysteresis and
  exponential-backoff re-probation) and, when *everything* is unhealthy,
  falls back to the BGP-best tunnel — never worse than the status quo.

Lifecycle contract: :meth:`TangoController.start` may be called again
after :meth:`TangoController.stop`.  A cold (re)start resets all
edge-trigger and quarantine runtime state — previously stale tunnels
re-fire ``on_stale`` and quarantined tunnels are re-admitted pending a
fresh verdict — while cumulative records (``choice_trace``,
``quarantine_log``, ``mode_log``, ``ticks``) are preserved.  Calling
``start`` on a running controller remains an error.

Resilience extensions (``repro.resilience``):

* **degraded-mode estimation** — with a
  :class:`~repro.resilience.degraded.DegradedModeConfig`, a peer
  telemetry feed stale past the horizon downgrades path selection to
  local RTT-probe estimates (and a feed-level outage stops counting as
  per-path staleness for quarantine — a quiet mirror is not four dead
  tunnels); the mirror healing upgrades back, both transitions recorded
  in :attr:`TangoController.mode_log`.
* **crash safety** — with a
  :class:`~repro.resilience.journal.ControllerJournal`, every quarantine
  /fallback/mode transition and data-path choice change is written ahead
  to the WAL and the full runtime state checkpointed periodically;
  :meth:`TangoController.crash` models process death (runtime memory
  wiped, installed data-plane state retained), and
  :meth:`TangoController.restore_state` + ``start(warm=True)`` is the
  supervisor's warm-recovery path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping, Optional, Sequence

from ..netsim.events import PeriodicTask, Simulator
from ..netsim.ticks import TickHandle, TickScheduler
from ..resilience.degraded import (
    MODE_COOPERATIVE,
    MODE_DEGRADED,
    DegradedModeConfig,
    ModeTransition,
)
from ..telemetry.store import TimeSeries
from .gateway import TangoGateway
from .policy import GuardedSelector, MeasuredSelector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..profiling.core import Profiler
    from ..resilience.journal import ControllerJournal
    from ..srlg.frr import FastReroute
    from ..srlg.registry import SrlgRegistry
    from ..trust.policy import PeerTrustMonitor

__all__ = [
    "TunnelHealth",
    "QuarantinePolicy",
    "QuarantineEvent",
    "TangoController",
]


@dataclass(frozen=True)
class TunnelHealth:
    """Health snapshot for one tunnel."""

    path_id: int
    label: str
    fresh: bool
    last_measurement_age_s: Optional[float]
    recent_loss: float


@dataclass(frozen=True)
class QuarantinePolicy:
    """Tuning knobs of the graceful-degradation state machine.

    Attributes:
        loss_threshold: recent loss fraction above which a tunnel counts
            as unhealthy even while measurements stay fresh.
        unhealthy_ticks: consecutive unhealthy control ticks before a
            healthy tunnel is quarantined (hysteresis against one-tick
            blips).
        probation_delay_s: initial quarantine duration; once it elapses
            the tunnel re-enters the candidate set on probation.
        backoff_factor: multiplier applied to the quarantine duration on
            every (re-)quarantine — repeat offenders wait longer.
        max_probation_delay_s: backoff ceiling.
        probation_ticks: consecutive healthy ticks on probation required
            to fully restore the tunnel (and reset its backoff).
    """

    loss_threshold: float = 0.5
    unhealthy_ticks: int = 2
    probation_delay_s: float = 1.0
    backoff_factor: float = 2.0
    max_probation_delay_s: float = 30.0
    probation_ticks: int = 3

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_threshold <= 1.0:
            raise ValueError(
                f"loss_threshold must be in [0, 1], got {self.loss_threshold}"
            )
        if self.unhealthy_ticks < 1:
            raise ValueError("unhealthy_ticks must be >= 1")
        if self.probation_delay_s <= 0:
            raise ValueError("probation_delay_s must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_probation_delay_s < self.probation_delay_s:
            raise ValueError("max_probation_delay_s below probation_delay_s")
        if self.probation_ticks < 1:
            raise ValueError("probation_ticks must be >= 1")


@dataclass(frozen=True)
class QuarantineEvent:
    """One transition of the quarantine state machine — the raw material
    recovery logs and MTTR metrics are computed from."""

    t: float
    path_id: int
    label: str
    action: str  # quarantine | probation | restore | fallback-on | fallback-off
    cause: str = ""
    backoff_s: float = 0.0


@dataclass
class _QuarantineRuntime:
    """Mutable per-tunnel machine state (module-private)."""

    state: str = "healthy"  # healthy | quarantined | probation
    unhealthy_streak: int = 0
    healthy_streak: int = 0
    backoff_s: float = 0.0
    probation_at: float = 0.0


class TangoController:
    """Slow-path loop for one gateway.

    Args:
        gateway: the gateway to manage.
        sim: simulator whose clock drives the loop.
        interval_s: loop cadence.
        staleness_s: a tunnel with no mirrored measurement within this
            horizon is reported unhealthy.
        on_stale: edge-triggered staleness hook (fires once per stale
            transition; re-arms on recovery and on restart).
        quarantine: enable graceful degradation with these parameters;
            None (the default) keeps the controller report-only.
        degraded: enable RTT-probing fallback when the peer telemetry
            feed goes stale past the config's horizon; None keeps the
            PR 1 behavior (cooperative estimates only).
        journal: write-ahead-log every routing decision and checkpoint
            runtime state periodically; None disables persistence.
        rebalancer: optional per-tick hook ``(now) -> None`` that
            re-derives data-plane split weights from fresh telemetry
            (see :class:`repro.traffic.splitting.SplitRebalancer`);
            None keeps single-path selection untouched.
        trust: peer-trust monitor (see :mod:`repro.trust.policy`) polled
            every tick; while the peer feed is distrusted the controller
            forces degraded local-RTT selection regardless of staleness.
            Requires ``degraded`` — distrust demotion needs a fallback
            estimate store to route on.
        scheduler: register the control loop into this shared
            :class:`~repro.netsim.ticks.TickScheduler` instead of a
            dedicated ``PeriodicTask`` — with N controllers the
            simulator heap carries one recurring event, not N.
            ``interval_s`` must be an integer multiple of the wheel's
            base interval; the tick sequence is otherwise identical.
    """

    def __init__(
        self,
        gateway: TangoGateway,
        sim: Simulator,
        interval_s: float = 0.1,
        staleness_s: float = 2.0,
        on_stale: Optional[Callable[[TunnelHealth], None]] = None,
        quarantine: Optional[QuarantinePolicy] = None,
        degraded: Optional[DegradedModeConfig] = None,
        journal: Optional["ControllerJournal"] = None,
        rebalancer: Optional[Callable[[float], None]] = None,
        trust: Optional["PeerTrustMonitor"] = None,
        frr: Optional["FastReroute"] = None,
        srlg_registry: Optional["SrlgRegistry"] = None,
        scheduler: Optional[TickScheduler] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        if trust is not None and degraded is None:
            raise ValueError(
                "trust demotion needs a degraded config: a distrusted peer "
                "feed leaves nothing to route on without local RTT fallback"
            )
        self.gateway = gateway
        self.sim = sim
        self.interval_s = interval_s
        self.staleness_s = staleness_s
        self.choice_trace = TimeSeries()
        self._task: Optional[PeriodicTask] = None
        self.scheduler = scheduler
        self._handle: Optional[TickHandle] = None
        self.ticks = 0
        #: Optional attached profiler; when set, control-loop ticks are
        #: counted per controller under ``controller.<name>.ticks``.
        #: The counter name is precomputed so a profiled tick pays a
        #: dict increment, not an f-string build.
        self.profiler: Optional["Profiler"] = None
        self._tick_counter = f"controller.{gateway.config.name}.ticks"
        #: Fired once per tunnel when it *becomes* stale (edge-triggered):
        #: the hook a deployment uses to alarm or re-run discovery.
        self.on_stale = on_stale
        self._stale_flags: dict[int, bool] = {}
        self.quarantine_policy = quarantine
        #: Path ids currently evicted from the data-plane candidate set.
        #: Shared by reference with the installed :class:`GuardedSelector`.
        self.quarantined: set[int] = set()
        #: Every state-machine transition, in tick order — the recovery log
        #: source (see ``repro.faults.recovery``).
        self.quarantine_log: list[QuarantineEvent] = []
        self._qstate: dict[int, _QuarantineRuntime] = {}
        self._guard: Optional[GuardedSelector] = None
        self._fallback_active = False
        self.degraded = degraded
        self.journal = journal
        self.rebalancer = rebalancer
        self.trust = trust
        #: Estimation source currently in use: cooperative | degraded.
        self.mode = MODE_COOPERATIVE
        #: Every downgrade/upgrade, in tick order (cumulative trace).
        self.mode_log: list[ModeTransition] = []
        #: True between :meth:`crash` and the next (re)start.
        self.crashed = False
        self._heal_streak = 0
        self._cooperative_store = None
        self._last_logged_choice: Optional[float] = None
        #: Fast reroute over shared-risk groups, ticked with the loop.
        self.frr = frr
        #: Failure-domain state feed; quarantine probation consults it
        #: before probing a tunnel whose risk group is still down.
        #: Defaults to the FRR engine's registry when one is attached.
        self.srlg_registry = srlg_registry
        if self.srlg_registry is None and frr is not None:
            self.srlg_registry = frr.registry
        #: Paths whose probation is currently held back by a down risk
        #: group (dedupes the "probation-hold" log line per outage).
        self._probation_held: set[int] = set()

    def start(self, warm: bool = False) -> None:
        """Begin (or restart) the control loop.

        Safe after :meth:`stop`: a cold start resets edge-trigger and
        quarantine runtime state so a tunnel that was stale or
        quarantined before the restart is re-evaluated from scratch (and
        will re-fire ``on_stale`` if still stale).  Cumulative traces are
        kept either way.

        Args:
            warm: keep the current runtime state — the supervisor's
                recovery path, used right after :meth:`restore_state` so
                a restart does not re-thrash tunnels.
        """
        if self._task is not None or self._handle is not None:
            raise RuntimeError("controller already started")
        if not warm:
            self._stale_flags.clear()
            self._reset_quarantine_runtime()
        if self.quarantine_policy is not None and self._guard is None:
            self._guard = GuardedSelector(
                self.gateway.data_selector, self.quarantined
            )
            self.gateway.set_data_selector(self._guard)
        self._capture_cooperative_store()
        # Re-point the selector at the restored mode's store: after a
        # warm restore the dataplane may still hold the pre-crash one.
        self._apply_mode(self.mode)
        self.crashed = False
        if self.scheduler is not None:
            self._handle = self.scheduler.register_every_s(
                self.interval_s,
                self._scheduled_tick,
                name=self.gateway.config.name,
            )
        else:
            self._task = self.sim.call_every(self.interval_s, self._tick)

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None
        if self._handle is not None:
            self._handle.stop()
            self._handle = None

    def _scheduled_tick(self, now: float) -> None:
        """Shared-wheel entry point (``TickScheduler`` callback shape)."""
        self._tick()

    @property
    def running(self) -> bool:
        """True while the control loop is scheduled — the supervisor's
        liveness primitive (alongside tick-counter progress)."""
        return self._task is not None or self._handle is not None

    def crash(self) -> None:
        """Model process death: the loop stops and runtime memory is lost.

        What survives is exactly what would survive a real crash: the
        data plane's installed state (the :class:`GuardedSelector`, its
        quarantined-set contents, whichever measurement store the
        selector was pointed at) and the experimenter's cumulative traces
        (``choice_trace``, ``quarantine_log``, ``mode_log``, ``ticks``).
        Everything the controller *knew* — quarantine machines, streaks,
        stale flags, estimation-mode bookkeeping — is wiped; recovery
        must come from the journal (see :meth:`restore_state`).
        """
        if self._task is not None:
            self._task.stop()
            self._task = None
        if self._handle is not None:
            self._handle.stop()
            self._handle = None
        self.crashed = True
        self._qstate.clear()
        self._stale_flags.clear()
        self._fallback_active = False
        self.mode = MODE_COOPERATIVE
        self._heal_streak = 0
        self._cooperative_store = None
        self._last_logged_choice = None

    def _reset_quarantine_runtime(self) -> None:
        self._qstate.clear()
        self.quarantined.clear()
        self._fallback_active = False
        self._heal_streak = 0
        if self.mode != MODE_COOPERATIVE:
            self._apply_mode(MODE_COOPERATIVE)

    def _tick(self) -> None:
        self.ticks += 1
        if self.profiler is not None:
            self.profiler.count(self._tick_counter)
        now = self.sim.now
        self.gateway.loss_monitor.sample(now)
        choice = getattr(self.gateway.selector, "last_choice", None)
        recorded = float(-1 if choice is None else choice)
        self.choice_trace.append(now, recorded)
        if self.journal is not None and recorded != self._last_logged_choice:
            self._last_logged_choice = recorded
            self.journal.record("choice", now, path_id=int(recorded))
        if self.trust is not None:
            if self.trust.poll(now) and self.journal is not None:
                self.journal.record("trust", now, state=self.trust.state)
        if self.frr is not None:
            # Fast reroute first: a group event should repoint the data
            # plane on *this* tick, before slower health machinery runs.
            self.frr.tick(now)
        needs_health = (
            self.on_stale is not None
            or self.quarantine_policy is not None
            or self.degraded is not None
        )
        if needs_health:
            healths = self.health()
            if self.on_stale is not None:
                self._check_staleness(healths)
            if self.degraded is not None:
                self._degraded_tick(healths, now)
            if self.quarantine_policy is not None:
                self._quarantine_tick(healths, now)
        if self.rebalancer is not None:
            self.rebalancer(now)
        if (
            self.journal is not None
            and self.ticks % self.journal.checkpoint_every_ticks == 0
        ):
            self.journal.checkpoint(self.snapshot_state())

    def _check_staleness(self, healths: list[TunnelHealth]) -> None:
        """Edge-triggered staleness notifications.

        A tunnel that has never been measured is not reported (it is
        still warming up); only a measured-then-silent tunnel fires.
        """
        for health in healths:
            was_stale = self._stale_flags.get(health.path_id, False)
            if health.last_measurement_age_s is None:
                continue
            if not health.fresh and not was_stale:
                self._stale_flags[health.path_id] = True
                self.on_stale(health)
            elif health.fresh:
                self._stale_flags[health.path_id] = False

    # -- degraded-mode estimation -------------------------------------------------

    @staticmethod
    def _peer_staleness(healths: list[TunnelHealth]) -> Optional[float]:
        """Age of the *freshest* mirrored sample across paths (None when
        nothing has ever been measured) — the feed-level health signal."""
        ages = [
            h.last_measurement_age_s
            for h in healths
            if h.last_measurement_age_s is not None
        ]
        return min(ages) if ages else None

    def _feed_outage(self, healths: list[TunnelHealth]) -> bool:
        """True when every measured path is stale at once: the mirror is
        down, not the tunnels.  Only meaningful with a degraded config —
        without a fallback estimator, staleness keeps quarantining."""
        if self.degraded is None:
            return False
        measured = [h for h in healths if h.last_measurement_age_s is not None]
        return bool(measured) and all(not h.fresh for h in measured)

    def _degraded_tick(self, healths: list[TunnelHealth], now: float) -> None:
        config = self.degraded
        staleness = self._peer_staleness(healths)
        if self.trust is not None and self.trust.distrusted:
            # A distrusted peer feed is worse than a stale one: force the
            # local-RTT fallback and suppress healing until the trust
            # machine readmits the peer (probation or better).
            if self.mode == MODE_COOPERATIVE:
                self._set_mode(MODE_DEGRADED, now, staleness)
            self._heal_streak = 0
            return
        if self.mode == MODE_COOPERATIVE:
            if staleness is not None and staleness > config.horizon_s:
                self._set_mode(MODE_DEGRADED, now, staleness)
        else:
            if staleness is not None and staleness <= config.horizon_s:
                self._heal_streak += 1
                if self._heal_streak >= config.heal_ticks:
                    self._set_mode(MODE_COOPERATIVE, now, staleness)
            else:
                self._heal_streak = 0

    def _set_mode(self, mode: str, now: float, staleness: Optional[float]) -> None:
        """Transition the estimation source, logging and journaling it."""
        if mode == self.mode:
            return
        self._apply_mode(mode)
        self._heal_streak = 0
        self.mode_log.append(
            ModeTransition(t=now, mode=mode, staleness_s=staleness)
        )
        if self.journal is not None:
            self.journal.record("mode", now, mode=mode)

    def _apply_mode(self, mode: str) -> None:
        """Point the measured selector at the mode's store (no logging)."""
        self.mode = mode
        selector = self._measured_selector()
        if selector is None or self.degraded is None:
            return
        if mode == MODE_DEGRADED:
            selector.store = self.degraded.estimates
        elif self._cooperative_store is not None:
            selector.store = self._cooperative_store

    def _measured_selector(self) -> Optional[MeasuredSelector]:
        """The store-reading selector deciding data traffic, if any."""
        selector = self.gateway.data_selector
        if isinstance(selector, GuardedSelector):
            selector = selector.inner
        return selector if isinstance(selector, MeasuredSelector) else None

    def _capture_cooperative_store(self) -> None:
        """Remember which store means "cooperative" for mode swaps.

        After a crash the dead controller's dataplane may still point at
        the degraded estimates; the mirrored store is then the gateway's
        outbound store by construction.
        """
        selector = self._measured_selector()
        if selector is None or self.degraded is None:
            return
        store = getattr(selector, "store", None)
        if store is None or store is self.degraded.estimates:
            if self._cooperative_store is None:
                self._cooperative_store = self.gateway.outbound
        else:
            self._cooperative_store = store

    # -- quarantine state machine -------------------------------------------------

    def _unhealthy_cause(
        self, health: TunnelHealth, suppress_stale: bool = False
    ) -> Optional[str]:
        """Why this tunnel counts as unhealthy, or None if it doesn't.

        Warming-up tunnels (never measured) are exempt from the staleness
        trigger, matching the edge-trigger semantics above.  During a
        feed-level outage (``suppress_stale``) staleness is not a
        per-path verdict either — the degraded estimator keeps routing
        instead of quarantining the whole candidate set.
        """
        if health.last_measurement_age_s is not None and not health.fresh:
            if not suppress_stale:
                return "stale"
        if health.recent_loss > self.quarantine_policy.loss_threshold:
            return "loss"
        return None

    def _quarantine_tick(self, healths: list[TunnelHealth], now: float) -> None:
        policy = self.quarantine_policy
        suppress_stale = self._feed_outage(healths)
        for health in healths:
            runtime = self._qstate.setdefault(
                health.path_id, _QuarantineRuntime(backoff_s=policy.probation_delay_s)
            )
            cause = self._unhealthy_cause(health, suppress_stale)
            if runtime.state == "healthy":
                if cause is None:
                    runtime.unhealthy_streak = 0
                else:
                    runtime.unhealthy_streak += 1
                    if runtime.unhealthy_streak >= policy.unhealthy_ticks:
                        self._enter_quarantine(health, runtime, now, cause)
            elif runtime.state == "quarantined":
                if now >= runtime.probation_at:
                    if self._risk_group_down(health.path_id):
                        # The failure domain is still down: probing the
                        # tunnel can only re-confirm the outage and burn
                        # a backoff doubling.  Hold probation (without
                        # growing backoff) until the group recovers.
                        if health.path_id not in self._probation_held:
                            self._probation_held.add(health.path_id)
                            self._log(
                                now, health, "probation-hold", cause="srlg-down"
                            )
                    else:
                        self._probation_held.discard(health.path_id)
                        runtime.state = "probation"
                        runtime.healthy_streak = 0
                        self.quarantined.discard(health.path_id)
                        self._log(now, health, "probation")
            elif runtime.state == "probation":
                if cause is not None:
                    self._enter_quarantine(health, runtime, now, cause)
                else:
                    runtime.healthy_streak += 1
                    if runtime.healthy_streak >= policy.probation_ticks:
                        runtime.state = "healthy"
                        runtime.backoff_s = policy.probation_delay_s
                        runtime.unhealthy_streak = 0
                        self._log(now, health, "restore")
        self._update_fallback(healths, now)

    def _risk_group_down(self, path_id: int) -> bool:
        """True when the tunnel's shared-risk group is known to be down."""
        if self.srlg_registry is None:
            return False
        down = self.srlg_registry.down_groups()
        if not down:
            return False
        tunnel = self.gateway.tunnel_table.by_id(path_id)
        return tunnel is not None and bool(tunnel.srlgs & down)

    def _enter_quarantine(
        self,
        health: TunnelHealth,
        runtime: _QuarantineRuntime,
        now: float,
        cause: str,
    ) -> None:
        policy = self.quarantine_policy
        backoff = runtime.backoff_s or policy.probation_delay_s
        runtime.state = "quarantined"
        runtime.unhealthy_streak = 0
        runtime.probation_at = now + backoff
        runtime.backoff_s = min(
            backoff * policy.backoff_factor, policy.max_probation_delay_s
        )
        self.quarantined.add(health.path_id)
        self._log(now, health, "quarantine", cause=cause, backoff_s=backoff)

    def _update_fallback(self, healths: list[TunnelHealth], now: float) -> None:
        all_ids = {h.path_id for h in healths}
        active = bool(all_ids) and all_ids <= self.quarantined
        if active == self._fallback_active:
            return
        self._fallback_active = active
        action = "fallback-on" if active else "fallback-off"
        self.quarantine_log.append(
            QuarantineEvent(t=now, path_id=-1, label="*", action=action)
        )
        if self.journal is not None:
            self.journal.record("fallback", now, active=active)

    def _log(
        self,
        now: float,
        health: TunnelHealth,
        action: str,
        cause: str = "",
        backoff_s: float = 0.0,
    ) -> None:
        self.quarantine_log.append(
            QuarantineEvent(
                t=now,
                path_id=health.path_id,
                label=health.label,
                action=action,
                cause=cause,
                backoff_s=backoff_s,
            )
        )
        if self.journal is not None:
            self.journal.record(
                action,
                now,
                path_id=health.path_id,
                label=health.label,
                cause=cause,
                backoff_s=backoff_s,
            )

    def quarantine_state(self, path_id: int) -> str:
        """Machine state for one tunnel: healthy | quarantined | probation."""
        runtime = self._qstate.get(path_id)
        return runtime.state if runtime is not None else "healthy"

    @property
    def fallback_active(self) -> bool:
        """True while every tunnel is quarantined (BGP-best last resort)."""
        return self._fallback_active

    # -- crash-safe persistence ----------------------------------------------------

    def snapshot_state(self) -> dict:
        """JSON-serializable runtime state — the checkpoint payload."""
        return {
            "ticks": self.ticks,
            "mode": self.mode,
            "fallback_active": self._fallback_active,
            "quarantined": sorted(self.quarantined),
            "stale_flags": {
                str(pid): flag for pid, flag in sorted(self._stale_flags.items())
            },
            "qstate": {
                str(pid): {
                    "state": rt.state,
                    "unhealthy_streak": rt.unhealthy_streak,
                    "healthy_streak": rt.healthy_streak,
                    "backoff_s": rt.backoff_s,
                    "probation_at": rt.probation_at,
                }
                for pid, rt in sorted(self._qstate.items())
            },
        }

    def restore_state(
        self,
        snapshot: Optional[Mapping],
        wal: Sequence[Mapping] = (),
    ) -> None:
        """Warm-restore from a checkpoint plus WAL replay.

        The snapshot rebuilds the quarantine machines, stale flags,
        fallback flag and estimation mode as of the last checkpoint; WAL
        entries then re-apply every decision made since, in order.
        Streak counters inside replayed transitions restart at zero — a
        conservative loss (hysteresis re-arms, state is exact).  Must be
        followed by ``start(warm=True)``; cumulative traces are never
        touched (they are the experimenter's record, not process state).
        """
        if self.running:
            raise RuntimeError("cannot restore a running controller")
        self._qstate.clear()
        self.quarantined.clear()
        self._stale_flags.clear()
        self._fallback_active = False
        self._heal_streak = 0
        self.mode = MODE_COOPERATIVE
        if snapshot is not None:
            for pid_str, raw in snapshot.get("qstate", {}).items():
                self._qstate[int(pid_str)] = _QuarantineRuntime(
                    state=str(raw["state"]),
                    unhealthy_streak=int(raw["unhealthy_streak"]),
                    healthy_streak=int(raw["healthy_streak"]),
                    backoff_s=float(raw["backoff_s"]),
                    probation_at=float(raw["probation_at"]),
                )
            self.quarantined.update(int(p) for p in snapshot.get("quarantined", ()))
            self._stale_flags.update(
                {int(k): bool(v) for k, v in snapshot.get("stale_flags", {}).items()}
            )
            self._fallback_active = bool(snapshot.get("fallback_active", False))
            self._apply_mode(str(snapshot.get("mode", MODE_COOPERATIVE)))
        for entry in wal:
            self._replay_wal_entry(entry)

    def _replay_wal_entry(self, entry: Mapping) -> None:
        kind = str(entry["kind"])
        policy = self.quarantine_policy
        if kind == "quarantine" and policy is not None:
            pid = int(entry["path_id"])
            runtime = self._qstate.setdefault(pid, _QuarantineRuntime())
            backoff = float(entry["backoff_s"]) or policy.probation_delay_s
            runtime.state = "quarantined"
            runtime.unhealthy_streak = 0
            runtime.probation_at = float(entry["t"]) + backoff
            runtime.backoff_s = min(
                backoff * policy.backoff_factor, policy.max_probation_delay_s
            )
            self.quarantined.add(pid)
        elif kind == "probation":
            pid = int(entry["path_id"])
            runtime = self._qstate.setdefault(pid, _QuarantineRuntime())
            runtime.state = "probation"
            runtime.healthy_streak = 0
            self.quarantined.discard(pid)
        elif kind == "restore" and policy is not None:
            pid = int(entry["path_id"])
            runtime = self._qstate.setdefault(pid, _QuarantineRuntime())
            runtime.state = "healthy"
            runtime.backoff_s = policy.probation_delay_s
            runtime.unhealthy_streak = 0
        elif kind == "fallback":
            self._fallback_active = bool(entry["active"])
        elif kind == "mode":
            self._apply_mode(str(entry["mode"]))
        # "choice" entries are informational (the data plane re-decides).

    # -- health -----------------------------------------------------------------

    def health(self) -> list[TunnelHealth]:
        """Per-tunnel health based on mirrored-measurement freshness."""
        now = self.sim.now
        out = []
        for tunnel in self.gateway.tunnel_table.all_tunnels():
            last = self.gateway.outbound.last_time(tunnel.path_id)
            age = None if last is None else now - last
            fresh = age is not None and age <= self.staleness_s
            out.append(
                TunnelHealth(
                    path_id=tunnel.path_id,
                    label=tunnel.label,
                    fresh=fresh,
                    last_measurement_age_s=age,
                    recent_loss=self.gateway.loss_monitor.recent_loss(
                        tunnel.path_id
                    ),
                )
            )
        return out

    def stale_tunnels(self) -> list[TunnelHealth]:
        """The unhealthy subset — a deployment's re-discovery trigger."""
        return [h for h in self.health() if not h.fresh]
