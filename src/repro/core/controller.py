"""Per-edge Tango controller: the local control loop.

The controller is deliberately thin — Tango's whole point is that the
per-packet decision lives in the data plane.  What remains for slow-path
software:

* sampling the loss monitor on a fixed cadence (turning raw sequence
  counters into time-binned loss rates policies can read),
* recording which tunnel the data plane is choosing over time (the
  decision trace that experiment reports plot against the delay series),
* health checks: flagging tunnels that have gone quiet (no mirrored
  measurements within a staleness horizon), the trigger a deployment
  would use to re-run discovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..netsim.events import PeriodicTask, Simulator
from ..telemetry.store import TimeSeries
from .gateway import TangoGateway

__all__ = ["TunnelHealth", "TangoController"]


@dataclass(frozen=True)
class TunnelHealth:
    """Health snapshot for one tunnel."""

    path_id: int
    label: str
    fresh: bool
    last_measurement_age_s: Optional[float]
    recent_loss: float


class TangoController:
    """Slow-path loop for one gateway.

    Args:
        gateway: the gateway to manage.
        sim: simulator whose clock drives the loop.
        interval_s: loop cadence.
        staleness_s: a tunnel with no mirrored measurement within this
            horizon is reported unhealthy.
    """

    def __init__(
        self,
        gateway: TangoGateway,
        sim: Simulator,
        interval_s: float = 0.1,
        staleness_s: float = 2.0,
        on_stale: Optional[Callable[[TunnelHealth], None]] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        self.gateway = gateway
        self.sim = sim
        self.interval_s = interval_s
        self.staleness_s = staleness_s
        self.choice_trace = TimeSeries()
        self._task: Optional[PeriodicTask] = None
        self.ticks = 0
        #: Fired once per tunnel when it *becomes* stale (edge-triggered):
        #: the hook a deployment uses to alarm or re-run discovery.
        self.on_stale = on_stale
        self._stale_flags: dict[int, bool] = {}

    def start(self) -> None:
        """Begin the control loop."""
        if self._task is not None:
            raise RuntimeError("controller already started")
        self._task = self.sim.call_every(self.interval_s, self._tick)

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _tick(self) -> None:
        self.ticks += 1
        now = self.sim.now
        self.gateway.loss_monitor.sample(now)
        selector = self.gateway.selector
        last_choice = getattr(selector, "_last_choice", None)
        if last_choice is None:
            last_choice = getattr(selector, "index", -1)
        self.choice_trace.append(now, float(last_choice))
        if self.on_stale is not None:
            self._check_staleness()

    def _check_staleness(self) -> None:
        """Edge-triggered staleness notifications.

        A tunnel that has never been measured is not reported (it is
        still warming up); only a measured-then-silent tunnel fires.
        """
        for health in self.health():
            was_stale = self._stale_flags.get(health.path_id, False)
            if health.last_measurement_age_s is None:
                continue
            if not health.fresh and not was_stale:
                self._stale_flags[health.path_id] = True
                self.on_stale(health)
            elif health.fresh:
                self._stale_flags[health.path_id] = False

    # -- health -----------------------------------------------------------------

    def health(self) -> list[TunnelHealth]:
        """Per-tunnel health based on mirrored-measurement freshness."""
        now = self.sim.now
        out = []
        for tunnel in self.gateway.tunnel_table.all_tunnels():
            series = self.gateway.outbound.series(tunnel.path_id)
            if len(series):
                age = now - float(series.times[-1])
            else:
                age = None
            fresh = age is not None and age <= self.staleness_s
            out.append(
                TunnelHealth(
                    path_id=tunnel.path_id,
                    label=tunnel.label,
                    fresh=fresh,
                    last_measurement_age_s=age,
                    recent_loss=self.gateway.loss_monitor.recent_loss(
                        tunnel.path_id
                    ),
                )
            )
        return out

    def stale_tunnels(self) -> list[TunnelHealth]:
        """The unhealthy subset — a deployment's re-discovery trigger."""
        return [h for h in self.health() if not h.fresh]
