"""A Tango pairing: control-plane establishment plus telemetry mirroring.

"It takes two": a :class:`TangoSession` joins two gateways.  Establishment
runs the paper's Section 4.1 procedure for both directions:

1. announce both edges' *host* prefixes plainly (reachability for
   everyone, including non-Tango endpoints);
2. run iterative suppression discovery in each direction;
3. pin each discovered path to one of the destination edge's route
   prefixes by re-announcing that prefix with the path's community set;
4. build the per-direction tunnels and install them in the gateways.

The session also owns the cooperative feedback loop the paper's routing
component needs: one-way delays are *measured at the receiver*, but the
routing decision for that direction is made at the *sender*.  A
:class:`TelemetryMirror` therefore periodically replays each gateway's
inbound measurements into its peer's outbound store — in deployment this
report rides piggybacked on reverse-direction traffic, so the cost is
freshness (one report interval plus the reverse path delay), not packets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional

import numpy as np

from ..bgp.attributes import RouteAttributes
from ..bgp.network import BgpNetwork
from ..bgp.snapshot import SnapshotCache
from ..netsim.events import Simulator
from ..telemetry.store import MeasurementStore
from .config import EdgeConfig, PairingConfig
from .discovery import DiscoveryResult, PathDiscovery
from .gateway import TangoGateway
from .tunnels import TangoTunnel, build_tunnels

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.channel import ChannelConfig, ReliableTelemetryChannel

__all__ = ["TelemetryMirror", "SessionState", "TangoSession"]

#: Path-id bases for the two directions of a pairing.
DIRECTION_A_TO_B = 0
DIRECTION_B_TO_A = 64


class TelemetryMirror:
    """Replays one store's new samples into another, with latency.

    Samples keep their original timestamps; a sample taken at time ``t``
    becomes visible in the sink once the mirror runs at or after
    ``t + latency_s``.  That models a report piggybacked on reverse
    traffic: the information is as fresh as the reverse path allows.
    """

    def __init__(
        self,
        source: MeasurementStore,
        sink: MeasurementStore,
        latency_s: float = 0.0,
        path_ids: Optional[set[int]] = None,
    ) -> None:
        """``path_ids`` restricts mirroring to those ids; ``None`` (the
        default) mirrors every id in the source — the two-party case,
        where source and sink belong to exactly one pairing.  A
        federation scopes each session's mirror to its own tunnel ids so
        N sessions sharing per-member stores do not cross-feed."""
        if latency_s < 0:
            raise ValueError(f"latency must be >= 0, got {latency_s}")
        self.source = source
        self.sink = sink
        self.latency_s = latency_s
        #: Mutable: the federation extends it when a stitched relay
        #: tunnel joins a session after establishment.
        self.path_ids = set(path_ids) if path_ids is not None else None
        self._copied: dict[int, int] = {}
        self.samples_mirrored = 0
        self.samples_discarded = 0

    def _mirrored_ids(self) -> list[int]:
        ids = self.source.path_ids()
        if self.path_ids is None:
            return ids
        return [path_id for path_id in ids if path_id in self.path_ids]

    def discard_before(self, t: float) -> int:
        """Drop all not-yet-mirrored samples older than ``t`` — lost reports.

        Fault injection uses this when un-silencing a mirror: reports that
        would have been delivered during the outage window are gone, they
        are not batched up and replayed.  Returns the number discarded.
        """
        discarded = 0
        for path_id in self._mirrored_ids():
            series = self.source.series(path_id)
            start = self._copied.get(path_id, 0)
            cut = int(np.searchsorted(series.times, t, side="left"))
            if cut > start:
                self._copied[path_id] = cut
                discarded += cut - start
        self.samples_discarded += discarded
        return discarded

    def sync(self, now: float) -> int:
        """Copy every source sample older than the latency horizon.

        Returns:
            Number of samples copied this call.
        """
        horizon = now - self.latency_s
        copied = 0
        for path_id in self._mirrored_ids():
            series = self.source.series(path_id)
            start = self._copied.get(path_id, 0)
            times = series.times
            end = int(np.searchsorted(times, horizon, side="right"))
            if end <= start:
                continue
            self.sink.extend(path_id, times[start:end], series.values[start:end])
            self._copied[path_id] = end
            copied += end - start
        self.samples_mirrored += copied
        return copied


@dataclass
class SessionState:
    """Everything establishment produced."""

    discovery_a_to_b: DiscoveryResult
    discovery_b_to_a: DiscoveryResult
    tunnels_a_to_b: list[TangoTunnel]
    tunnels_b_to_a: list[TangoTunnel]

    @property
    def path_counts(self) -> tuple[int, int]:
        return (len(self.tunnels_a_to_b), len(self.tunnels_b_to_a))


class TangoSession:
    """The cooperative pairing between two Tango gateways."""

    def __init__(
        self,
        pairing: PairingConfig,
        bgp: BgpNetwork,
        gateway_a: TangoGateway,
        gateway_b: TangoGateway,
        sim: Simulator,
        srlg_tags: Optional[
            Mapping[str, Mapping[str, tuple[str, ...]]]
        ] = None,
        snapshots: Optional[SnapshotCache] = None,
        direction_base_a_to_b: int = DIRECTION_A_TO_B,
        direction_base_b_to_a: int = DIRECTION_B_TO_A,
    ) -> None:
        """``srlg_tags`` maps sending-edge name -> path ``short_label``
        -> risk-group names; establishment stamps them (plus automatic
        ``transit:<AS>`` tags) onto that direction's tunnels.  Omit for
        tag-free legacy behaviour.

        ``snapshots`` injects a convergence cache shared beyond this
        pairing (a federation dedupes discovery across N sessions this
        way); ``None`` keeps the private two-party cache.  The direction
        bases carve this pairing's slice of path-id space — a federation
        assigns each pair a disjoint 128-id block so every session's
        tunnels coexist in the members' shared gateways."""
        if gateway_a.config.name != pairing.a.name:
            raise ValueError("gateway_a does not match pairing.a")
        if gateway_b.config.name != pairing.b.name:
            raise ValueError("gateway_b does not match pairing.b")
        self.pairing = pairing
        self.bgp = bgp
        self.gateway_a = gateway_a
        self.gateway_b = gateway_b
        self.sim = sim
        self.srlg_tags = dict(srlg_tags) if srlg_tags else {}
        self.direction_base_a_to_b = direction_base_a_to_b
        self.direction_base_b_to_a = direction_base_b_to_a
        self.state: Optional[SessionState] = None
        #: Convergence snapshot cache shared by both directions'
        #: discoveries — each one's closing withdraw-and-reconverge
        #: restores the converged base state instead of re-propagating.
        self.snapshots = snapshots if snapshots is not None else SnapshotCache()
        self._mirror_tasks = []
        #: edge name -> (mirror feeding that edge's outbound store, its task).
        self._mirrors_by_edge: dict[str, tuple[TelemetryMirror, object]] = {}
        #: edge name -> reliable channel feeding that edge (subset of above).
        self._channels_by_edge: dict[str, object] = {}

    # -- control plane ------------------------------------------------------------

    def establish(self, max_paths: int = 16) -> SessionState:
        """Run both directions' discovery and wire up the tunnels."""
        a, b = self.pairing.a, self.pairing.b

        # Step 0: host prefixes are plain announcements.
        self.bgp.router(a.tenant_router).originate(a.host_prefix)
        self.bgp.router(b.tenant_router).originate(b.host_prefix)
        self.snapshots.converge(self.bgp)

        # Discovery per direction.  The destination edge announces; the
        # source edge observes (paths carry source -> destination traffic).
        discovery_ab = PathDiscovery(
            self.bgp, b.provider_asn, snapshots=self.snapshots
        ).discover(
            announcer=b.tenant_router,
            observer=a.tenant_router,
            probe_prefix=b.route_prefixes[0],
            max_paths=max_paths,
        )
        discovery_ba = PathDiscovery(
            self.bgp, a.provider_asn, snapshots=self.snapshots
        ).discover(
            announcer=a.tenant_router,
            observer=b.tenant_router,
            probe_prefix=a.route_prefixes[0],
            max_paths=max_paths,
        )

        # Pin each path to a route prefix by announcing with its
        # communities.  Through the cache: the pinned state is the base
        # every later fault replay and rediscovery returns to.
        self._pin_route_prefixes(b, discovery_ab)
        self._pin_route_prefixes(a, discovery_ba)
        self.snapshots.converge(self.bgp)

        tunnels_ab = build_tunnels(
            discovery_ab.paths,
            local_route_prefixes=a.route_prefixes,
            remote_route_prefixes=b.route_prefixes,
            direction_base=self.direction_base_a_to_b,
            srlg_tags=self.srlg_tags.get(a.name),
        )
        tunnels_ba = build_tunnels(
            discovery_ba.paths,
            local_route_prefixes=b.route_prefixes,
            remote_route_prefixes=a.route_prefixes,
            direction_base=self.direction_base_b_to_a,
            srlg_tags=self.srlg_tags.get(b.name),
        )
        return self.install_established(
            discovery_ab, discovery_ba, tunnels_ab, tunnels_ba
        )

    def install_established(
        self,
        discovery_ab: DiscoveryResult,
        discovery_ba: DiscoveryResult,
        tunnels_ab: list[TangoTunnel],
        tunnels_ba: list[TangoTunnel],
    ) -> SessionState:
        """Adopt externally-produced establishment results.

        The federation registry drives the BGP phases itself (batched
        across all pairs so the shared snapshot cache dedupes announcer
        states); each session then installs the resulting tunnels and
        reaches the established state without re-running any control-
        plane work.  :meth:`establish` funnels through here too, so the
        two entry points cannot drift.
        """
        self.gateway_a.install_tunnels(self.pairing.b.host_prefix, tunnels_ab)
        self.gateway_b.install_tunnels(self.pairing.a.host_prefix, tunnels_ba)
        self.state = SessionState(
            discovery_a_to_b=discovery_ab,
            discovery_b_to_a=discovery_ba,
            tunnels_a_to_b=tunnels_ab,
            tunnels_b_to_a=tunnels_ba,
        )
        return self.state

    def _pin_route_prefixes(
        self, edge: EdgeConfig, discovery: DiscoveryResult
    ) -> None:
        """Announce the destination edge's route prefixes, one per path."""
        router = self.bgp.router(edge.tenant_router)
        for path in discovery.paths:
            router.originate(
                edge.route_prefixes[path.index],
                RouteAttributes().add_communities(large=path.communities),
            )

    # -- telemetry feedback ----------------------------------------------------------

    def start_telemetry_mirrors(
        self, scoped: bool = False
    ) -> tuple[TelemetryMirror, TelemetryMirror]:
        """Begin the cooperative measurement feedback loop.

        Mirror latency is the report interval (piggyback freshness); the
        reverse-path propagation component is dominated by it at the
        paper's parameters.  This is the idealized lossless feed; see
        :meth:`start_reliable_telemetry` for the transport that can
        actually lose, delay, reorder and duplicate reports.

        ``scoped=True`` restricts each mirror to this session's own
        tunnel path-ids (requires an established state) — mandatory when
        the gateways' stores are shared across a federation's sessions,
        harmless for a lone pairing.
        """
        path_ids_to_a: Optional[set[int]] = None
        path_ids_to_b: Optional[set[int]] = None
        if scoped:
            if self.state is None:
                raise RuntimeError(
                    "scoped mirrors need an established session "
                    "(tunnel ids define the scope)"
                )
            # The mirror feeding A reflects what B *received*: the a->b
            # direction's ids.  Symmetrically for B.
            path_ids_to_a = {t.path_id for t in self.state.tunnels_a_to_b}
            path_ids_to_b = {t.path_id for t in self.state.tunnels_b_to_a}
        latency = self.pairing.report_interval_s
        mirror_to_a = TelemetryMirror(
            source=self.gateway_b.inbound,
            sink=self.gateway_a.outbound,
            latency_s=latency,
            path_ids=path_ids_to_a,
        )
        mirror_to_b = TelemetryMirror(
            source=self.gateway_a.inbound,
            sink=self.gateway_b.outbound,
            latency_s=latency,
            path_ids=path_ids_to_b,
        )
        interval = self.pairing.report_interval_s
        task_a = self.sim.call_every(
            interval, lambda: mirror_to_a.sync(self.sim.now)
        )
        task_b = self.sim.call_every(
            interval, lambda: mirror_to_b.sync(self.sim.now)
        )
        self._mirror_tasks += [task_a, task_b]
        self._mirrors_by_edge[self.pairing.a.name] = (mirror_to_a, task_a)
        self._mirrors_by_edge[self.pairing.b.name] = (mirror_to_b, task_b)
        return mirror_to_a, mirror_to_b

    def start_reliable_telemetry(
        self, config: Optional[ChannelConfig] = None, seed: int = 0
    ) -> tuple[ReliableTelemetryChannel, ReliableTelemetryChannel]:
        """Begin the feedback loop over the sequenced, acked transport.

        Each direction's reports ride a
        :class:`~repro.resilience.channel.ReliableTelemetryChannel`
        simulated over the WAN — loss, delay, reordering and duplication
        are survivable rather than impossible.  Registered under the same
        per-edge handles as plain mirrors, so :meth:`mirror_to` (and the
        ``telemetry_drop`` fault built on it) works unchanged.

        Returns:
            ``(channel_to_a, channel_to_b)``.
        """
        from ..resilience.channel import ChannelConfig, ReliableTelemetryChannel

        if config is None:
            config = ChannelConfig(
                report_interval_s=self.pairing.report_interval_s
            )
        channel_to_a = ReliableTelemetryChannel(
            source=self.gateway_b.inbound,
            sink=self.gateway_a.outbound,
            sim=self.sim,
            config=config,
            seed=seed,
            name=f"telemetry->{self.pairing.a.name}",
        )
        channel_to_b = ReliableTelemetryChannel(
            source=self.gateway_a.inbound,
            sink=self.gateway_b.outbound,
            sim=self.sim,
            config=config,
            seed=seed + 1,
            name=f"telemetry->{self.pairing.b.name}",
        )
        task_a = channel_to_a.start()
        task_b = channel_to_b.start()
        self._mirror_tasks += [task_a, task_b]
        self._mirrors_by_edge[self.pairing.a.name] = (channel_to_a, task_a)
        self._mirrors_by_edge[self.pairing.b.name] = (channel_to_b, task_b)
        self._channels_by_edge[self.pairing.a.name] = channel_to_a
        self._channels_by_edge[self.pairing.b.name] = channel_to_b
        return channel_to_a, channel_to_b

    def channel_to(self, edge_name: str) -> ReliableTelemetryChannel:
        """The reliable channel feeding ``edge_name`` (the
        ``telemetry_loss`` fault's handle).  LookupError when the session
        runs plain lossless mirrors instead."""
        try:
            return self._channels_by_edge[edge_name]
        except KeyError:
            raise LookupError(
                f"no reliable telemetry channel for edge {edge_name!r}; "
                f"the session runs "
                + (
                    "plain lossless mirrors — establish with a channel "
                    "config (see start_reliable_telemetry)"
                    if not self._channels_by_edge
                    else f"channels for: {sorted(self._channels_by_edge)}"
                )
            ) from None

    def mirror_to(self, edge_name: str) -> tuple[TelemetryMirror, object]:
        """The mirror (and its task) feeding ``edge_name``'s outbound store.

        This is the OWD reflection that edge's policies and health checks
        depend on — the handle a fault injector silences to simulate
        telemetry loss.
        """
        try:
            return self._mirrors_by_edge[edge_name]
        except KeyError:
            raise KeyError(
                f"no mirror for edge {edge_name!r}; started mirrors: "
                f"{sorted(self._mirrors_by_edge)}"
            ) from None

    def stop(self) -> None:
        """Stop mirror tasks (teardown).

        Idempotent: registry teardown stops every session defensively —
        including ones a caller already stopped by hand — so repeat
        calls (and calls on a never-started session) are no-ops.
        """
        tasks, self._mirror_tasks = self._mirror_tasks, []
        for task in tasks:
            task.stop()
        self._mirrors_by_edge.clear()
        self._channels_by_edge.clear()
