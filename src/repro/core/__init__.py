"""Tango core: discovery, tunnels, policies, gateways, sessions, meshes."""

from .config import EdgeConfig, PairingConfig
from .controller import TangoController, TunnelHealth
from .discovery import AS_NAMES, DiscoveredPath, DiscoveryResult, PathDiscovery
from .ecmp_probing import EcmpCluster, EcmpMap, EcmpMapper
from .fibsync import FibSyncError, sync_fibs
from .gateway import TangoGateway
from .mesh import MeshPath, MeshRoute, TangoMesh
from .multipop import MultiPopStore, PopOffsetCalibrator, lan_offset_estimate
from .policy import (
    ApplicationSelector,
    HysteresisSelector,
    JitterAwareSelector,
    LossAwareSelector,
    LowestDelaySelector,
    StaticSelector,
)
from .slicing import NetworkSlice, SliceManager, TokenBucket
from .session import (
    DIRECTION_A_TO_B,
    DIRECTION_B_TO_A,
    SessionState,
    TangoSession,
    TelemetryMirror,
)
from .tunnels import TangoTunnel, TunnelTable, build_tunnels

__all__ = [
    "AS_NAMES",
    "ApplicationSelector",
    "DIRECTION_A_TO_B",
    "DIRECTION_B_TO_A",
    "DiscoveredPath",
    "DiscoveryResult",
    "EcmpCluster",
    "EcmpMap",
    "EcmpMapper",
    "EdgeConfig",
    "FibSyncError",
    "HysteresisSelector",
    "JitterAwareSelector",
    "LossAwareSelector",
    "LowestDelaySelector",
    "MeshPath",
    "MeshRoute",
    "MultiPopStore",
    "NetworkSlice",
    "PairingConfig",
    "PathDiscovery",
    "PopOffsetCalibrator",
    "SessionState",
    "SliceManager",
    "StaticSelector",
    "TangoController",
    "TangoGateway",
    "TangoMesh",
    "TangoSession",
    "TangoTunnel",
    "TokenBucket",
    "TelemetryMirror",
    "TunnelHealth",
    "TunnelTable",
    "build_tunnels",
    "lan_offset_estimate",
    "sync_fibs",
]
