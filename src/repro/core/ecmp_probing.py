"""ECMP reverse engineering (paper Section 6's other knob).

Beyond BGP-visible path diversity, backbone ECMP hides *additional*
parallel paths under each route.  They cannot be selected directly — the
hash is opaque — but they can be reverse-engineered: probe with many
source ports, cluster the resulting delays, and learn which ports land
on which physical sub-path.  Thereafter, picking a source port picks a
sub-path, and Tango's tunnel table can expose each cluster as an extra
tunnel (same outer prefix, different sport).

:class:`EcmpMapper` does the learning: feed it (sport, measured delay)
pairs; :meth:`build_map` 1-D-clusters the per-port mean delays (split at
gaps larger than ``cluster_gap_s``) and returns per-cluster statistics
with a representative port each.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EcmpCluster", "EcmpMap", "EcmpMapper"]


@dataclass(frozen=True)
class EcmpCluster:
    """One inferred physical sub-path."""

    cluster_id: int
    mean_delay_s: float
    ports: tuple[int, ...]

    @property
    def representative_port(self) -> int:
        """A port known to hash onto this sub-path (the lowest)."""
        return self.ports[0]


@dataclass(frozen=True)
class EcmpMap:
    """The learned port → sub-path mapping."""

    clusters: tuple[EcmpCluster, ...]

    @property
    def sub_path_count(self) -> int:
        return len(self.clusters)

    def cluster_for_port(self, sport: int) -> EcmpCluster:
        for cluster in self.clusters:
            if sport in cluster.ports:
                return cluster
        raise KeyError(f"port {sport} was never probed")

    @property
    def fastest(self) -> EcmpCluster:
        """The lowest-delay sub-path (clusters are sorted by delay)."""
        return self.clusters[0]

    def port_for_fastest(self) -> int:
        """A source port that pins traffic to the fastest sub-path."""
        return self.fastest.representative_port


class EcmpMapper:
    """Accumulates per-port delay observations and clusters them.

    Args:
        cluster_gap_s: two ports belong to different sub-paths when
            their mean delays differ by more than this.  Set it above
            the per-path jitter and below the smallest sub-path delay
            difference you care to distinguish (1 ms default suits
            backbone-scale disparities).
        min_samples_per_port: ports with fewer observations are ignored
            by :meth:`build_map` (noise guard).
    """

    def __init__(
        self, cluster_gap_s: float = 1e-3, min_samples_per_port: int = 1
    ) -> None:
        if cluster_gap_s <= 0:
            raise ValueError(f"cluster gap must be positive, got {cluster_gap_s}")
        if min_samples_per_port < 1:
            raise ValueError("min_samples_per_port must be >= 1")
        self.cluster_gap_s = cluster_gap_s
        self.min_samples_per_port = min_samples_per_port
        self._observations: dict[int, list[float]] = {}

    def observe(self, sport: int, delay_s: float) -> None:
        """Record one probe's measured delay for its source port."""
        self._observations.setdefault(sport, []).append(delay_s)

    @property
    def ports_probed(self) -> int:
        return len(self._observations)

    def build_map(self) -> EcmpMap:
        """Cluster the per-port means into sub-paths.

        Raises:
            ValueError: if no port has enough samples.
        """
        means = {
            port: float(np.mean(samples))
            for port, samples in self._observations.items()
            if len(samples) >= self.min_samples_per_port
        }
        if not means:
            raise ValueError("no port has enough samples to map")
        ordered = sorted(means.items(), key=lambda item: item[1])
        groups: list[list[tuple[int, float]]] = [[ordered[0]]]
        for port, mean in ordered[1:]:
            if mean - groups[-1][-1][1] > self.cluster_gap_s:
                groups.append([])
            groups[-1].append((port, mean))
        clusters = tuple(
            EcmpCluster(
                cluster_id=index,
                mean_delay_s=float(np.mean([m for _, m in group])),
                ports=tuple(sorted(p for p, _ in group)),
            )
            for index, group in enumerate(groups)
        )
        return EcmpMap(clusters=clusters)
