"""Static Tango configuration.

The paper's third architectural component: "a local configuration
containing the available routes to the other Tango switch and logic for
how a forwarding decision should be made based on path performance."

Configuration is static because both endpoints cooperate: each edge knows
the other's host prefix and the route prefixes it will announce, so no
discovery protocol is needed on the data path — a lookup table suffices.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Iterator

__all__ = ["EdgeConfig", "PairingConfig"]


@dataclass(frozen=True)
class EdgeConfig:
    """One edge network's identity and address plan.

    Attributes:
        name: short label ("ny", "la", "factory", ...).
        tenant_router: name of this edge's BGP speaker (the BIRD instance
            of the prototype).
        tenant_asn: the (typically private) ASN the edge peers with its
            provider under; the provider strips it on export.
        provider_router: name of the provider border router the edge has
            its eBGP session with (the co-located Vultr router).
        provider_asn: the provider's public ASN — the admin of the
            traffic-control communities the edge attaches.
        host_prefix: the prefix end-host addresses come from.  Announced
            normally so non-Tango endpoints can reach it.
        route_prefixes: prefixes reserved to *represent routes*: each one
            gets pinned to a distinct wide-area path and carries a tunnel
            endpoint.  (The prototype used four /48s per edge.)
        clock_offset_s: this edge's wall-clock offset — deliberately
            nonzero in scenarios, since surviving unsynchronized clocks is
            part of the design.
    """

    name: str
    tenant_router: str
    tenant_asn: int
    provider_router: str
    provider_asn: int
    host_prefix: ipaddress.IPv6Network
    route_prefixes: tuple[ipaddress.IPv6Network, ...]
    clock_offset_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.route_prefixes:
            raise ValueError(f"edge {self.name!r} needs at least one route prefix")
        overlapping = [
            p for p in self.route_prefixes if p.overlaps(self.host_prefix)
        ]
        if overlapping:
            raise ValueError(
                f"edge {self.name!r}: route prefixes {overlapping} overlap the "
                "host prefix; prefixes-as-routes must be disjoint from "
                "host addressing"
            )

    def host_address(self, index: int = 1) -> ipaddress.IPv6Address:
        """The ``index``-th host address inside the host prefix."""
        return self.host_prefix[index]

    def tunnel_endpoint(self, route_index: int) -> ipaddress.IPv6Address:
        """The tunnel endpoint address within route prefix ``route_index``.

        By convention the endpoint is the ``::1`` address of the prefix.
        """
        return self.route_prefixes[route_index][1]

    def iter_route_prefixes(self) -> Iterator[ipaddress.IPv6Network]:
        return iter(self.route_prefixes)


@dataclass(frozen=True)
class PairingConfig:
    """A Tango pairing: two cooperating edges plus measurement knobs.

    Attributes:
        a, b: the two edges.  All APIs treat the pairing symmetrically.
        probe_interval_s: measurement cadence; the paper used 10 ms.
        report_interval_s: how often each side mirrors its inbound
            measurements back to the peer (piggybacked on reverse
            traffic, so this costs no packets — only freshness).
        control_interval_s: the controllers' decision-loop cadence.
        auth_key: shared key enabling authenticated telemetry; empty
            disables it (the paper's prototype did not authenticate).
    """

    a: EdgeConfig
    b: EdgeConfig
    probe_interval_s: float = 0.010
    report_interval_s: float = 0.100
    control_interval_s: float = 0.100
    auth_key: bytes = b""

    def __post_init__(self) -> None:
        for name, value in (
            ("probe_interval_s", self.probe_interval_s),
            ("report_interval_s", self.report_interval_s),
            ("control_interval_s", self.control_interval_s),
        ):
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.a.name == self.b.name:
            raise ValueError("the two edges of a pairing must be distinct")

    def peer_of(self, edge_name: str) -> EdgeConfig:
        """The other edge of the pairing."""
        if edge_name == self.a.name:
            return self.b
        if edge_name == self.b.name:
            return self.a
        raise KeyError(f"{edge_name!r} is not part of this pairing")

    def edge(self, edge_name: str) -> EdgeConfig:
        if edge_name == self.a.name:
            return self.a
        if edge_name == self.b.name:
            return self.b
        raise KeyError(f"{edge_name!r} is not part of this pairing")
