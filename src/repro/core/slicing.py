"""Wide-area slicing: per-application QoS over Tango tunnels.

Paper Section 6: "Tango has the potential to act as a wide-area
dynamically slicable network allowing participants to enforce certain
QoS."  The border switch already sees every packet and already makes a
per-packet path decision; slicing adds two pieces on top:

* **classification + admission** — flows belong to named slices; each
  slice may carry a token-bucket rate limit, enforced at egress before
  encapsulation (a P4/eBPF meter in a real switch);
* **per-slice routing** — each slice has its own path selector, so a
  control slice can pin the stable low-jitter path while bulk transfers
  ride (and are limited to) whatever is left.

:class:`SliceManager` packages both: attach
:meth:`SliceManager.admission_program` as a gateway egress program (it
runs before the Tango sender program) and install the manager itself as
the gateway's selector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..netsim.node import ProgrammableSwitch
from ..netsim.packet import Packet
from .tunnels import TangoTunnel

__all__ = ["TokenBucket", "NetworkSlice", "SliceManager"]


class TokenBucket:
    """Classic token bucket: ``rate_bps`` sustained, ``burst_bytes`` deep.

    Deterministic and O(1): tokens are refilled lazily on each call.
    """

    def __init__(self, rate_bps: float, burst_bytes: int) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if burst_bytes <= 0:
            raise ValueError(f"burst must be positive, got {burst_bytes}")
        self.rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        self._tokens = float(burst_bytes)
        self._last_refill = 0.0

    def allow(self, now: float, size_bytes: int) -> bool:
        """Admit ``size_bytes`` at time ``now``?  Consumes on success."""
        elapsed = max(now - self._last_refill, 0.0)
        self._last_refill = now
        self._tokens = min(
            self.burst_bytes, self._tokens + elapsed * self.rate_bps / 8.0
        )
        if self._tokens >= size_bytes:
            self._tokens -= size_bytes
            return True
        return False

    @property
    def tokens(self) -> float:
        """Tokens currently available (bytes) — diagnostic only."""
        return self._tokens


@dataclass
class NetworkSlice:
    """One slice: a flow class, its routing policy, its rate contract.

    Attributes:
        name: slice label ("control", "bulk", ...).
        flow_labels: application flow labels belonging to the slice.
        selector: the slice's path selector (any
            :class:`~repro.dataplane.programs.PathSelector`).
        bucket: optional token bucket; None means unmetered.
    """

    name: str
    flow_labels: frozenset[int]
    selector: object
    bucket: Optional[TokenBucket] = None
    admitted: int = field(default=0, repr=False)
    dropped: int = field(default=0, repr=False)

    def admit(self, now: float, size_bytes: int) -> bool:
        if self.bucket is None or self.bucket.allow(now, size_bytes):
            self.admitted += 1
            return True
        self.dropped += 1
        return False


class SliceManager:
    """Classifies, meters, and routes per slice.

    Args:
        slices: the configured slices; flow labels must not overlap.
        default: the best-effort slice for unclassified traffic (its
            ``flow_labels`` are ignored).
    """

    def __init__(
        self, slices: Sequence[NetworkSlice], default: NetworkSlice
    ) -> None:
        self._by_label: dict[int, NetworkSlice] = {}
        for network_slice in slices:
            for label in network_slice.flow_labels:
                if label in self._by_label:
                    raise ValueError(
                        f"flow label {label} claimed by two slices"
                    )
                self._by_label[label] = network_slice
        self.slices = list(slices)
        self.default = default

    def slice_for(self, packet: Packet) -> NetworkSlice:
        return self._by_label.get(packet.flow_label, self.default)

    # -- the two attachment points -------------------------------------------------

    def admission_program(
        self, switch: ProgrammableSwitch, packet: Packet
    ) -> Optional[Packet]:
        """Egress program: meter the packet's slice; None drops it."""
        network_slice = self.slice_for(packet)
        if network_slice.admit(switch.sim.now, packet.wire_bytes):
            return packet
        return None

    def select(
        self, tunnels: Sequence[TangoTunnel], packet: Packet, now: float
    ) -> TangoTunnel:
        """PathSelector protocol: delegate to the packet's slice."""
        return self.slice_for(packet).selector.select(tunnels, packet, now)

    # -- reporting ------------------------------------------------------------------

    def report(self) -> list[dict]:
        rows = []
        for network_slice in [*self.slices, self.default]:
            total = network_slice.admitted + network_slice.dropped
            rows.append(
                {
                    "slice": network_slice.name,
                    "admitted": network_slice.admitted,
                    "dropped": network_slice.dropped,
                    "drop_fraction": (
                        network_slice.dropped / total if total else 0.0
                    ),
                    "metered": network_slice.bucket is not None,
                }
            )
        return rows
