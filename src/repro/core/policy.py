"""Forwarding policies: how a Tango switch picks among its tunnels.

Each policy implements the data plane's
:class:`~repro.dataplane.programs.PathSelector` protocol —
``select(tunnels, packet, now)`` — and reads the *outbound* measurement
store: one-way delays of this edge's transmissions, measured at the peer
and mirrored back (see :class:`repro.core.session.TelemetryMirror`).

Policies included:

* :class:`StaticSelector` — pin one path; index 0 reproduces the status
  quo (BGP default) and is the baseline every experiment compares against.
* :class:`LowestDelaySelector` — greedy best mean delay over a trailing
  window; maximally responsive, can flap.
* :class:`HysteresisSelector` — switch only when another path is better
  by a margin and a minimum dwell time has passed; the deployable default.
* :class:`JitterAwareSelector` — score = mean + weight × stddev; prefers
  stable paths for jitter-sensitive applications (paper Section 5 notes
  delay and jitter both matter).
* :class:`LossAwareSelector` — delay plus a per-unit-loss penalty.
* :class:`ApplicationSelector` — per-flow-class delegation ("distinct
  routes for different applications", paper Section 3).
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from ..dataplane.programs import PathSelector
from ..netsim.packet import Packet
from ..telemetry.loss import LossMonitor
from ..telemetry.store import MeasurementStore
from .tunnels import TangoTunnel, bgp_best

__all__ = [
    "MeasuredSelector",
    "StaticSelector",
    "LowestDelaySelector",
    "HysteresisSelector",
    "JitterAwareSelector",
    "LossAwareSelector",
    "ApplicationSelector",
    "GuardedSelector",
]


@runtime_checkable
class MeasuredSelector(PathSelector, Protocol):
    """A selector whose decisions read a swappable measurement store.

    Degraded mode (:mod:`repro.resilience.degraded`) repoints ``store`` at
    the local RTT estimates while the cooperative feed is stale, then back.
    """

    store: MeasurementStore


class StaticSelector:
    """Always the ``index``-th tunnel.  Index 0 = the BGP default path."""

    def __init__(self, index: int = 0) -> None:
        if index < 0:
            raise ValueError(f"index must be non-negative, got {index}")
        self.index = index

    @property
    def last_choice(self) -> Optional[int]:
        """The pinned index (a static selector never changes its mind)."""
        return self.index

    def select(
        self, tunnels: Sequence[TangoTunnel], packet: Packet, now: float
    ) -> TangoTunnel:
        if self.index >= len(tunnels):
            raise IndexError(
                f"static selector index {self.index} out of range "
                f"for {len(tunnels)} tunnels"
            )
        return tunnels[self.index]


class _MeasuredSelector:
    """Shared machinery: trailing-window statistics with a fallback."""

    def __init__(
        self,
        store: MeasurementStore,
        window_s: float = 1.0,
        fallback_index: int = 0,
    ) -> None:
        if window_s <= 0:
            raise ValueError(f"window must be positive, got {window_s}")
        self.store = store
        self.window_s = window_s
        self.fallback_index = fallback_index
        self.decisions = 0
        self.switches = 0
        self._last_choice: Optional[int] = None

    @property
    def last_choice(self) -> Optional[int]:
        """Path id of the most recent selection (None before the first)."""
        return self._last_choice

    def _mean_delay(self, tunnel: TangoTunnel, now: float) -> Optional[float]:
        return self.store.recent_delay(tunnel.path_id, self.window_s, now)

    def _window_values(self, tunnel: TangoTunnel, now: float) -> np.ndarray:
        series = self.store.series(tunnel.path_id)
        _, values = series.window(now - self.window_s, now + 1e-12)
        return values

    def _note_choice(self, tunnel: TangoTunnel) -> TangoTunnel:
        self.decisions += 1
        if self._last_choice is not None and self._last_choice != tunnel.path_id:
            self.switches += 1
        self._last_choice = tunnel.path_id
        return tunnel


class LowestDelaySelector(_MeasuredSelector):
    """Greedy: the tunnel with the lowest trailing-window mean delay.

    Tunnels without fresh measurements are skipped; if none has data, the
    fallback (BGP-default) tunnel is used — measurement must precede
    optimization.
    """

    def select(
        self, tunnels: Sequence[TangoTunnel], packet: Packet, now: float
    ) -> TangoTunnel:
        best: Optional[TangoTunnel] = None
        best_delay = float("inf")
        for tunnel in tunnels:
            delay = self._mean_delay(tunnel, now)
            if delay is not None and delay < best_delay:
                best, best_delay = tunnel, delay
        if best is None:
            best = tunnels[min(self.fallback_index, len(tunnels) - 1)]
        return self._note_choice(best)


class HysteresisSelector(_MeasuredSelector):
    """Stability-aware: switch only for a clear, durable win.

    A candidate must beat the current path's mean delay by ``margin_s``,
    and at least ``dwell_s`` must have passed since the last switch.
    This is the responsiveness-vs-stability control the policy-sweep
    ablation explores.
    """

    def __init__(
        self,
        store: MeasurementStore,
        window_s: float = 1.0,
        margin_s: float = 0.002,
        dwell_s: float = 1.0,
        fallback_index: int = 0,
    ) -> None:
        super().__init__(store, window_s, fallback_index)
        if margin_s < 0:
            raise ValueError(f"margin must be non-negative, got {margin_s}")
        if dwell_s < 0:
            raise ValueError(f"dwell must be non-negative, got {dwell_s}")
        self.margin_s = margin_s
        self.dwell_s = dwell_s
        self._current: Optional[int] = None
        self._last_switch_at = float("-inf")

    def select(
        self, tunnels: Sequence[TangoTunnel], packet: Packet, now: float
    ) -> TangoTunnel:
        by_id = {t.path_id: t for t in tunnels}
        current = by_id.get(self._current) if self._current is not None else None
        if current is None:
            current = tunnels[min(self.fallback_index, len(tunnels) - 1)]
            self._current = current.path_id
        current_delay = self._mean_delay(current, now)
        if now - self._last_switch_at >= self.dwell_s:
            best, best_delay = current, current_delay
            for tunnel in tunnels:
                delay = self._mean_delay(tunnel, now)
                if delay is None:
                    continue
                if best_delay is None or delay < best_delay - self.margin_s:
                    best, best_delay = tunnel, delay
            if best.path_id != current.path_id:
                self._current = best.path_id
                self._last_switch_at = now
                current = best
        return self._note_choice(current)


class JitterAwareSelector(_MeasuredSelector):
    """Score = mean + ``jitter_weight`` × standard deviation.

    With a large weight this reproduces the paper's observation that an
    application may prefer GTT (0.01 ms jitter) over a same-mean path
    like Telia (0.33 ms jitter).
    """

    def __init__(
        self,
        store: MeasurementStore,
        window_s: float = 1.0,
        jitter_weight: float = 10.0,
        fallback_index: int = 0,
    ) -> None:
        super().__init__(store, window_s, fallback_index)
        if jitter_weight < 0:
            raise ValueError(f"jitter_weight must be >= 0, got {jitter_weight}")
        self.jitter_weight = jitter_weight

    def select(
        self, tunnels: Sequence[TangoTunnel], packet: Packet, now: float
    ) -> TangoTunnel:
        best: Optional[TangoTunnel] = None
        best_score = float("inf")
        for tunnel in tunnels:
            values = self._window_values(tunnel, now)
            if values.size < 2:
                continue
            score = float(np.mean(values)) + self.jitter_weight * float(
                np.std(values)
            )
            if score < best_score:
                best, best_score = tunnel, score
        if best is None:
            best = tunnels[min(self.fallback_index, len(tunnels) - 1)]
        return self._note_choice(best)


class LossAwareSelector(_MeasuredSelector):
    """Delay plus a loss penalty: score = mean + penalty × loss_fraction.

    ``loss_penalty_s`` converts loss into delay-equivalents; 1.0 means
    "1% loss is as bad as 10 ms extra delay".
    """

    def __init__(
        self,
        store: MeasurementStore,
        loss_monitor: LossMonitor,
        window_s: float = 1.0,
        loss_penalty_s: float = 1.0,
        loss_bins: int = 5,
        fallback_index: int = 0,
    ) -> None:
        super().__init__(store, window_s, fallback_index)
        if loss_penalty_s < 0:
            raise ValueError(f"loss_penalty_s must be >= 0, got {loss_penalty_s}")
        self.loss_monitor = loss_monitor
        self.loss_penalty_s = loss_penalty_s
        self.loss_bins = loss_bins

    def select(
        self, tunnels: Sequence[TangoTunnel], packet: Packet, now: float
    ) -> TangoTunnel:
        best: Optional[TangoTunnel] = None
        best_score = float("inf")
        for tunnel in tunnels:
            delay = self._mean_delay(tunnel, now)
            if delay is None:
                continue
            loss = self.loss_monitor.recent_loss(tunnel.path_id, self.loss_bins)
            score = delay + self.loss_penalty_s * loss
            if score < best_score:
                best, best_score = tunnel, score
        if best is None:
            best = tunnels[min(self.fallback_index, len(tunnels) - 1)]
        return self._note_choice(best)


class ApplicationSelector:
    """Routes flow classes through different policies.

    ``classes`` maps a flow label to a selector; unmatched flows use the
    default.  This realizes the paper's "distinct routes for different
    applications" without any core support: the decision is local to the
    Tango switch.
    """

    def __init__(
        self,
        default: PathSelector,
        classes: Optional[dict[int, PathSelector]] = None,
    ) -> None:
        self.default = default
        self.classes: dict[int, PathSelector] = dict(classes or {})

    def assign(self, flow_label: int, selector: PathSelector) -> None:
        """Bind a flow class to its own selector."""
        self.classes[flow_label] = selector

    @property
    def last_choice(self) -> Optional[int]:
        """The default class's last choice (the data-traffic decision)."""
        return getattr(self.default, "last_choice", None)

    def select(
        self, tunnels: Sequence[TangoTunnel], packet: Packet, now: float
    ) -> TangoTunnel:
        selector = self.classes.get(packet.flow_label, self.default)
        return selector.select(tunnels, packet, now)


class GuardedSelector:
    """Graceful-degradation wrapper: filter quarantined paths, then delegate.

    The controller's quarantine state machine owns the ``quarantined`` set
    (shared by reference); this wrapper applies it on the per-packet path:

    * candidates in the set are evicted before the inner policy sees them;
    * if *every* tunnel is quarantined, the BGP-best (default-path) tunnel
      is offered as a last resort — identical to the pre-Tango status quo,
      so total quarantine can never do worse than plain BGP.

    Probes pinned via :class:`ApplicationSelector` classes bypass this
    wrapper by construction, so quarantined paths keep being measured and
    can prove themselves healthy again.
    """

    def __init__(
        self, inner: PathSelector, quarantined: Optional[set[int]] = None
    ) -> None:
        self.inner = inner
        self.quarantined: set[int] = quarantined if quarantined is not None else set()
        self.fallbacks = 0
        self._last_choice: Optional[int] = None

    @property
    def last_choice(self) -> Optional[int]:
        """Path id of the most recent selection (None before the first)."""
        return self._last_choice

    def select(
        self, tunnels: Sequence[TangoTunnel], packet: Packet, now: float
    ) -> TangoTunnel:
        candidates = [t for t in tunnels if t.path_id not in self.quarantined]
        if not candidates:
            self.fallbacks += 1
            candidates = [bgp_best(tunnels)]
        try:
            tunnel = self.inner.select(candidates, packet, now)
        except IndexError:
            # A static policy pinned past the filtered set degrades to the
            # best surviving candidate instead of dropping traffic.
            tunnel = bgp_best(candidates)
        self._last_choice = tunnel.path_id
        return tunnel
