"""Arming fault plans on a live deployment.

Two injection styles, chosen per fault kind:

* **Pure time-function wraps** for link-level faults: the link's loss or
  delay process is replaced by a wrapper that overrides it inside the
  fault window (:class:`~repro.netsim.links.OverrideLoss`,
  :func:`~repro.netsim.delaymodels.overlay`).  Nothing is scheduled;
  determinism is structural.
* **Scheduled callbacks at fixed simulation times** for control-plane
  faults (BGP session outage, prefix withdraw/re-announce, telemetry
  silence, clock steps).  The simulator's deterministic event ordering
  makes replays exact.

BGP faults additionally couple the control plane back to the data plane:
after every (dis)connect wave the injector re-checks which tunnels' route
prefixes are still reachable from the sending edge's tenant router and
blackholes the wide-area links of withdrawn ones — traffic to a prefix
the core no longer routes has nowhere to go.  (Simplification: a prefix
that stays reachable over a *different* core path keeps its calibrated
delay process.)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from ..bgp.messages import as_prefix
from ..bgp.snapshot import SnapshotCache
from ..netsim.delaymodels import AsymmetryEvent, overlay
from ..netsim.links import ConstantLoss, Link, LossModel, OverrideLoss
from .adversary import AdversaryChain, GrayLoss, TelemetryReplay, TelemetryTamper
from .plan import FaultEvent, FaultPlan, maintenance_drain_s

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..scenarios.deployment import PacketLevelDeployment

__all__ = ["FaultInjector"]


def _mix(seed: int, index: int) -> int:
    """Per-event draw stream: decorrelate events of one plan."""
    return (seed * 0x9E3779B1 + index * 0x85EBCA77) & 0x7FFFFFFF


class FaultInjector:
    """Arms a :class:`FaultPlan` on an established deployment.

    Args:
        deployment: a :class:`~repro.scenarios.deployment.PacketLevelDeployment`
            after ``establish()`` — tunnels and wide-area links must exist.
        plan: the campaign to arm.

    Call :meth:`arm` exactly once, before (or during) the simulation run;
    every event earlier than the current simulation time is rejected, so
    a plan cannot silently lose its past.
    """

    def __init__(
        self,
        deployment: "PacketLevelDeployment",
        plan: FaultPlan,
        use_snapshots: bool = True,
    ) -> None:
        if deployment.state is None:
            raise RuntimeError("deployment must be established before arming faults")
        self.deployment = deployment
        self.plan = plan
        self.armed: list[str] = []
        self._bgp_saved_loss: dict[str, LossModel] = {}
        self._armed = False
        # Overlap guard for stateful (save/apply/restore) faults: two
        # windows targeting the same state hold a shared refcount — the
        # first holder saves and applies, the *last* releaser restores.
        # Without this, the earlier window's expiry restores state out
        # from under the later window, and the later expiry double-
        # restores a stale snapshot.
        self._holds: dict[tuple, int] = {}
        self._held_state: dict[tuple, object] = {}
        # BGP faults alternate between a handful of configurations (the
        # base state and each fault's degraded state), so recovery
        # convergences are snapshot restores after the first occurrence.
        # Shared with the session when one exists: establishment has
        # already cached the pinned base state.  ``use_snapshots=False``
        # forces plain convergence (the perf baseline).
        self.snapshots: Optional[SnapshotCache] = None
        if use_snapshots:
            session = getattr(deployment, "session", None)
            self.snapshots = (
                session.snapshots if session is not None else SnapshotCache()
            )

    def _converge_bgp(self) -> None:
        """One control-plane convergence, through the snapshot cache."""
        if self.snapshots is not None:
            self.snapshots.converge(self.deployment.bgp)
        else:
            self.deployment.bgp.converge()

    # -- overlap-safe stateful transitions ----------------------------------------

    def _acquire(
        self, key: tuple, save: Callable[[], Any], apply: Callable[[], None]
    ) -> bool:
        """Take a hold on ``key``; save + apply only on the first hold.

        Returns True when this call actually changed state (the caller
        then converges/syncs); False when an earlier window already did.
        """
        count = self._holds.get(key, 0)
        self._holds[key] = count + 1
        if count == 0:
            self._held_state[key] = save()
            apply()
            return True
        return False

    def _release(self, key: tuple, restore: Callable[[Any], None]) -> bool:
        """Drop a hold on ``key``; restore only when the last hold clears."""
        count = self._holds.get(key, 0)
        if count <= 0:
            raise RuntimeError(f"release without matching acquire for {key!r}")
        if count == 1:
            del self._holds[key]
            restore(self._held_state.pop(key))
            return True
        self._holds[key] = count - 1
        return False

    def arm(self) -> int:
        """Arm every event of the plan.  Returns the number armed."""
        if self._armed:
            raise RuntimeError("fault plan already armed")
        self._armed = True
        now = self.deployment.sim.now
        for index, event in enumerate(self.plan.timeline):
            if event.at < now:
                raise ValueError(
                    f"fault at t={event.at} is in the past (now={now})"
                )
            handler = getattr(self, f"_arm_{event.kind}")
            handler(event, index)
            self.armed.append(f"{event.kind} {event.target} at={event.at:g}")
        return len(self.armed)

    # -- link-level faults: pure functions of time ---------------------------------

    def _link(self, event: FaultEvent) -> Link:
        return self.deployment.wan_link(event.params["src"], event.params["path"])

    def _arm_link_blackhole(self, event: FaultEvent, index: int) -> None:
        link = self._link(event)
        link.loss = OverrideLoss.blackhole(link.loss, event.at, event.end)

    def _arm_link_flap(self, event: FaultEvent, index: int) -> None:
        link = self._link(event)
        link.loss = OverrideLoss.flapping(
            link.loss,
            event.at,
            event.end,
            period=float(event.params["period"]),
            duty=float(event.params.get("duty", 0.5)),
        )

    def _arm_loss_burst(self, event: FaultEvent, index: int) -> None:
        link = self._link(event)
        link.loss = OverrideLoss.burst(
            link.loss,
            event.at,
            event.end,
            rate=float(event.params["rate"]),
            seed=_mix(self.plan.seed, index),
        )

    def _arm_delay_spike(self, event: FaultEvent, index: int) -> None:
        link = self._link(event)
        link.delay = overlay(
            link.delay,
            AsymmetryEvent(
                start=event.at,
                duration=event.duration,
                shift=float(event.params["extra_ms"]) * 1e-3,
            ),
        )

    # -- Byzantine-peer faults: on-path interceptor stages --------------------------

    def _arm_telemetry_tamper(self, event: FaultEvent, index: int) -> None:
        link = self._link(event)
        AdversaryChain.install_on(link).add(
            TelemetryTamper(
                start=event.at,
                end=event.end,
                bias_s=float(event.params["bias_ms"]) * 1e-3,
            )
        )

    def _arm_telemetry_replay(self, event: FaultEvent, index: int) -> None:
        link = self._link(event)
        AdversaryChain.install_on(link).add(
            TelemetryReplay(
                start=event.at,
                end=event.end,
                delay_s=float(event.params["delay_s"]),
                every=int(event.params.get("every", 2)),
            )
        )

    def _arm_gray_loss(self, event: FaultEvent, index: int) -> None:
        link = self._link(event)
        AdversaryChain.install_on(link).add(
            GrayLoss(
                start=event.at,
                end=event.end,
                rate=float(event.params["rate"]),
                seed=_mix(self.plan.seed, index),
            )
        )

    # -- control-plane faults: scheduled callbacks ---------------------------------

    def _arm_bgp_session_down(self, event: FaultEvent, index: int) -> None:
        bgp = self.deployment.bgp
        sim = self.deployment.sim
        a, b = str(event.params["a"]), str(event.params["b"])
        key = ("bgp-session",) + tuple(sorted((a, b)))

        def go_down() -> None:
            if self._acquire(
                key,
                save=lambda: bgp.session_config(a, b),
                apply=lambda: bgp.disconnect(a, b),
            ):
                self._converge_bgp()
                self._sync_bgp_blackholes()

        def come_up() -> None:
            if self._release(key, restore=lambda config: bgp.connect(*config)):
                self._converge_bgp()
                self._sync_bgp_blackholes()

        sim.schedule_at(event.at, go_down)
        sim.schedule_at(event.end, come_up)

    def _arm_prefix_withdraw(self, event: FaultEvent, index: int) -> None:
        deployment = self.deployment
        sim = deployment.sim
        edge = deployment.pairing.edge(str(event.params["edge"]))
        prefix_index = int(event.params["prefix_index"])
        if not 0 <= prefix_index < len(edge.route_prefixes):
            raise ValueError(
                f"prefix_index {prefix_index} out of range for edge "
                f"{edge.name!r} with {len(edge.route_prefixes)} route prefixes"
            )
        prefix = str(edge.route_prefixes[prefix_index])
        router = deployment.bgp.router(edge.tenant_router)
        key = ("origination", edge.name, prefix_index)

        def withdraw() -> None:
            if self._acquire(
                key,
                save=lambda: router.originated.get(as_prefix(prefix)),
                apply=lambda: router.withdraw_origination(prefix),
            ):
                self._converge_bgp()
                self._sync_bgp_blackholes()

        def reannounce() -> None:
            if self._release(
                key, restore=lambda attributes: router.originate(prefix, attributes)
            ):
                self._converge_bgp()
                self._sync_bgp_blackholes()

        sim.schedule_at(event.at, withdraw)
        sim.schedule_at(event.end, reannounce)

    def _arm_telemetry_drop(self, event: FaultEvent, index: int) -> None:
        deployment = self.deployment
        sim = deployment.sim
        edge_name = str(event.params["edge"])
        mirror, task = deployment.session.mirror_to(edge_name)
        key = ("telemetry-mirror", edge_name)

        def silence() -> None:
            self._acquire(key, save=lambda: None, apply=task.pause)

        def unsilence() -> None:
            def restore(_saved: object) -> None:
                # Reports that should have been delivered during the
                # outage are lost, not batched: discard everything
                # already eligible.
                mirror.discard_before(sim.now - mirror.latency_s)
                task.resume()

            self._release(key, restore=restore)

        sim.schedule_at(event.at, silence)
        sim.schedule_at(event.end, unsilence)

    def _arm_telemetry_loss(self, event: FaultEvent, index: int) -> None:
        """Elevated report-frame loss on the reliable telemetry channel.

        Unlike ``telemetry_drop`` (mirror silenced, reports gone for
        good) this exercises the transport: frames are lost but the
        channel retransmits, so the feed degrades to late rather than
        absent.  Pure time-function wrap — nothing scheduled.
        """
        channel = self.deployment.session.channel_to(str(event.params["edge"]))
        channel.add_loss_window(event.at, event.end, float(event.params["rate"]))

    def _arm_controller_crash(self, event: FaultEvent, index: int) -> None:
        """Kill the edge's controller at the event time.  One-shot: the
        fault has no duration; recovery is the supervisor's job (or
        nobody's, which the run then shows)."""
        deployment = self.deployment
        deployment.controller_for(str(event.params["edge"]))  # fail at arm time
        deployment.sim.schedule_at(
            event.at,
            lambda: deployment.crash_controller(str(event.params["edge"])),
        )

    def _arm_clock_step(self, event: FaultEvent, index: int) -> None:
        deployment = self.deployment
        sim = deployment.sim
        switch = deployment.switches[str(event.params["edge"])]
        step = float(event.params["step_ms"]) * 1e-3

        def apply() -> None:
            switch.clock.offset += step

        def revert() -> None:
            switch.clock.offset -= step

        sim.schedule_at(event.at, apply)
        if event.duration > 0:
            sim.schedule_at(event.end, revert)

    def _arm_clock_drift(self, event: FaultEvent, index: int) -> None:
        """Oscillator misbehaviour: ppm drift, with an optional step.

        Onset bends the edge's wall clock (continuity preserved by
        :meth:`~repro.netsim.simclock.NodeClock.set_drift`); the optional
        ``step_ms`` adds a discontinuous jump at onset.  A positive
        duration ends the drift at ``event.end`` but the accumulated
        offset error *remains* — exactly the residual the
        ClockIntegrityMonitor has to re-estimate away.
        """
        deployment = self.deployment
        sim = deployment.sim
        clock = deployment.switches[str(event.params["edge"])].clock
        ppm = float(event.params["ppm"])
        step_s = float(event.params.get("step_ms", 0.0)) * 1e-3
        saved: dict[str, float] = {}

        def onset() -> None:
            saved["ppm"] = clock.drift_ppm
            clock.set_drift(ppm, at=sim.now)
            if step_s:
                clock.step(step_s)

        def settle() -> None:
            clock.set_drift(saved["ppm"], at=sim.now)

        sim.schedule_at(event.at, onset)
        if event.duration > 0:
            sim.schedule_at(event.end, settle)

    def _arm_demand_surge(self, event: FaultEvent, index: int) -> None:
        """Multiply offered demand at an edge during the fault window.

        Routed through the fluid traffic engine: a pure data mutation of
        its demand model (a :class:`~repro.traffic.demand.SurgeWindow`),
        nothing scheduled — the engine evaluates the surge as a function
        of time, so replays are structurally deterministic.  Requires a
        :class:`~repro.traffic.fluid.FluidEngine` attached at the edge
        (LookupError at arm time otherwise, the CLI's exit-2 path).
        """
        engine = self.deployment.traffic_engine(str(event.params["edge"]))
        factor = float(event.params["factor"])
        if factor <= 0:
            raise ValueError(f"demand_surge factor must be > 0, got {factor}")
        flow_label = event.params.get("flow_label")
        engine.demand.add_surge(
            event.at,
            event.end,
            factor,
            flow_label=None if flow_label is None else int(flow_label),
        )

    # -- correlated failures: shared-fate domains ----------------------------------

    def _srlg_links(self, group: str) -> list[Link]:
        """Member links of ``group``, or a loud error for unknown/empty
        groups (the CLI's exit-2 path — a typo'd group name must not arm
        as a silent no-op)."""
        registry = self.deployment.srlg
        members = registry.link_members(group)
        if not members:
            raise ValueError(
                f"SRLG {group!r} has no member links in this deployment; "
                f"known groups: {sorted(registry.groups())}"
            )
        return [self.deployment.net.links[name] for name in members]

    def _arm_srlg_failure(self, event: FaultEvent, index: int) -> None:
        """Shared-fate failure: every member link of one risk group goes
        dark together for the window (fiber cut on a shared conduit).

        Link loss is a pure time-function wrap per member; the registry's
        refcounted down-marks are scheduled so overlapping windows on the
        same group compose (the group stays down until the last clears).
        """
        sim = self.deployment.sim
        registry = self.deployment.srlg
        group = str(event.params["group"])
        for link in self._srlg_links(group):
            link.loss = OverrideLoss.blackhole(link.loss, event.at, event.end)
        sim.schedule_at(event.at, lambda: registry.mark_down(group))
        sim.schedule_at(event.end, lambda: registry.clear_down(group))

    def _arm_regional_outage(self, event: FaultEvent, index: int) -> None:
        """Node-scoped correlated failure: a region loses power — its
        risk-group links blackhole AND every BGP session touching its
        routers drops, so the control plane inside the domain vanishes
        with the data plane.  Session teardown shares the refcounted
        ``bgp-session`` holds with ``bgp_session_down``, so cross-kind
        overlaps restore exactly once."""
        deployment = self.deployment
        sim = deployment.sim
        bgp = deployment.bgp
        registry = deployment.srlg
        region = registry.region(str(event.params["region"]))
        for group in region.groups:
            for link in self._srlg_links(group):
                link.loss = OverrideLoss.blackhole(link.loss, event.at, event.end)
        sessions = sorted(
            {
                tuple(sorted((router, neighbor)))
                for router in region.routers
                for neighbor in bgp.router(router).neighbors
            }
        )

        def onset() -> None:
            for group in region.groups:
                registry.mark_down(group)
            changed = False
            for a, b in sessions:
                if self._acquire(
                    ("bgp-session", a, b),
                    save=lambda a=a, b=b: bgp.session_config(a, b),
                    apply=lambda a=a, b=b: bgp.disconnect(a, b),
                ):
                    changed = True
            if changed:
                self._converge_bgp()
                self._sync_bgp_blackholes()

        def clear() -> None:
            for group in region.groups:
                registry.clear_down(group)
            changed = False
            for a, b in sessions:
                if self._release(
                    ("bgp-session", a, b),
                    restore=lambda config: bgp.connect(*config),
                ):
                    changed = True
            if changed:
                self._converge_bgp()
                self._sync_bgp_blackholes()

        sim.schedule_at(event.at, onset)
        sim.schedule_at(event.end, clear)

    def _arm_relay_outage(self, event: FaultEvent, index: int) -> None:
        """Federation-scale shared fate: one member edge goes dark.

        Every WAN link touching the member blackholes for the window —
        its own direct traffic dies *and* any stitched relay tunnel
        transiting it loses a segment, which is the failure mode E20's
        fast-reroute gate measures.  The member's ``member:<name>`` fate
        tag is down-marked for the window so SRLG-aware selection and
        quarantine probation see the shared cause.  No BGP state is
        touched: the edge's control plane is assumed to die with its
        data plane only in ``regional_outage``; a relay outage models a
        site-level forwarding loss (power, upstream cut) where paths
        stay advertised but dark — the harder case for detection.
        """
        deployment = self.deployment
        member_links = getattr(deployment, "member_links", None)
        if member_links is None:
            raise ValueError(
                "relay_outage requires a federation deployment exposing "
                "member_links(); two-party deployments have no members"
            )
        sim = deployment.sim
        registry = deployment.srlg
        member = str(event.params["member"])
        links = member_links(member)
        if not links:
            raise ValueError(f"member {member!r} has no WAN links to fail")
        for link in links:
            link.loss = OverrideLoss.blackhole(link.loss, event.at, event.end)
        group = f"member:{member}"
        sim.schedule_at(event.at, lambda: registry.mark_down(group))
        sim.schedule_at(event.end, lambda: registry.clear_down(group))

    def _arm_maintenance_window(self, event: FaultEvent, index: int) -> None:
        """Scheduled maintenance: drain-then-fail on one risk group.

        The window is announced at ``at`` (group marked *draining* —
        links still forward, a make-before-break controller moves
        traffic losslessly), the links actually fail at ``at + drain``,
        and everything clears at ``end``."""
        sim = self.deployment.sim
        registry = self.deployment.srlg
        group = str(event.params["group"])
        drain_s = maintenance_drain_s(event)
        if not 0.0 <= drain_s < event.duration:
            raise ValueError(
                f"maintenance drain_s must satisfy 0 <= drain < duration, "
                f"got drain={drain_s} duration={event.duration}"
            )
        fail_at = event.at + drain_s
        for link in self._srlg_links(group):
            link.loss = OverrideLoss.blackhole(link.loss, fail_at, event.end)

        def begin_failure() -> None:
            registry.clear_draining(group)
            registry.mark_down(group)

        sim.schedule_at(event.at, lambda: registry.mark_draining(group))
        sim.schedule_at(fail_at, begin_failure)
        sim.schedule_at(event.end, lambda: registry.clear_down(group))

    # -- BGP reachability -> data-plane coupling -----------------------------------

    def _sync_bgp_blackholes(self) -> None:
        """Blackhole wide-area links whose route prefix the core withdrew,
        and restore them when reachability returns."""
        deployment = self.deployment
        for src in (deployment.pairing.a.name, deployment.pairing.b.name):
            tenant = deployment.pairing.edge(src).tenant_router
            for tunnel in deployment.tunnels(src):
                link = deployment.wan_link(src, tunnel.short_label)
                reachable = deployment.bgp.reachable(
                    tenant, str(tunnel.remote_prefix)
                )
                if not reachable and link.name not in self._bgp_saved_loss:
                    self._bgp_saved_loss[link.name] = link.loss
                    link.loss = ConstantLoss(1.0)
                elif reachable and link.name in self._bgp_saved_loss:
                    link.loss = self._bgp_saved_loss.pop(link.name)
