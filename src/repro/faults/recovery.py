"""Recovery logs: joining a fault plan with the controller's reactions.

Metric definitions (also documented in EXPERIMENTS.md):

* **detection** — first ``quarantine`` transition of the faulted path at
  or after fault onset; ``detection_s`` is measured from onset.
* **reroute** — first control tick at or after detection whose recorded
  data-plane choice is *not* the faulted path; ``reroute_s`` (onset →
  reroute) is the time user traffic kept hitting the fault.  **MTTR** is
  the mean ``reroute_s`` over all detected path faults.
* **repair** — first ``restore`` transition after the fault cleared;
  ``repair_s`` (clear → restore) is how long backoff re-probation takes
  to put the path back in service.

Only path-targeted faults (``link_*``, ``loss_burst``, ``delay_spike``)
carry these timings; control-plane faults are listed with ``-`` fields —
their effects show up indirectly through the path faults they induce.
Correlated kinds (``srlg_failure``, ``regional_outage``,
``maintenance_window``) target a failure *domain* instead of a path:
they expand to one attributed record per affected tunnel per controller
(``group:g/<edge>:<path>``), timed from the effective onset (for
maintenance, the end of the drain).

All values are simulation times, so :meth:`RecoveryLog.format` output is
byte-identical across replays of the same plan and seed — the property
the CLI's ``faults run`` acceptance test pins down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..core.controller import TangoController
from .plan import FaultEvent, FaultPlan, maintenance_drain_s

__all__ = ["RecoveryRecord", "RecoveryLog"]

#: Fault kinds whose target names a single wide-area path.
_PATH_KINDS = frozenset({"link_blackhole", "link_flap", "loss_burst", "delay_spike"})

#: Correlated kinds whose target is a failure domain; recovery emits one
#: attributed record per affected tunnel per controller.
_GROUP_KINDS = frozenset({"srlg_failure", "regional_outage", "maintenance_window"})


def _fmt(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.6f}"


@dataclass(frozen=True)
class RecoveryRecord:
    """Per-fault recovery timings (all absolute simulation seconds)."""

    kind: str
    target: str
    at: float
    cleared: float
    detected_at: Optional[float] = None
    rerouted_at: Optional[float] = None
    restored_at: Optional[float] = None

    @property
    def detection_s(self) -> Optional[float]:
        return None if self.detected_at is None else self.detected_at - self.at

    @property
    def reroute_s(self) -> Optional[float]:
        return None if self.rerouted_at is None else self.rerouted_at - self.at

    @property
    def repair_s(self) -> Optional[float]:
        return None if self.restored_at is None else self.restored_at - self.cleared

    def as_line(self) -> str:
        return " ".join(
            (
                self.kind,
                self.target,
                _fmt(self.at),
                _fmt(self.cleared),
                _fmt(self.detected_at),
                _fmt(self.rerouted_at),
                _fmt(self.restored_at),
                _fmt(self.detection_s),
                _fmt(self.reroute_s),
                _fmt(self.repair_s),
            )
        )


class RecoveryLog:
    """The outcome of one chaos campaign against one or more controllers."""

    def __init__(self, plan: FaultPlan, records: list[RecoveryRecord]) -> None:
        self.plan = plan
        self.records = records

    @classmethod
    def build(
        cls, plan: FaultPlan, controllers: Mapping[str, TangoController]
    ) -> "RecoveryLog":
        """Join ``plan`` with quarantine transitions and choice traces.

        Args:
            plan: the armed campaign.
            controllers: sending-edge name -> that edge's controller (the
                edge named by each path fault's ``src`` parameter).
        """
        records = []
        for event in plan.timeline:
            if event.kind in _GROUP_KINDS:
                records.extend(cls._group_records(event, controllers))
            else:
                records.append(cls._record_for(event, controllers))
        return cls(plan, records)

    @staticmethod
    def _record_for(
        event: FaultEvent, controllers: Mapping[str, TangoController]
    ) -> RecoveryRecord:
        base = RecoveryRecord(
            kind=event.kind, target=event.target, at=event.at, cleared=event.end
        )
        if event.kind not in _PATH_KINDS:
            return base
        controller = controllers.get(str(event.params["src"]))
        if controller is None:
            return base
        path_id = _path_id_for(controller, str(event.params["path"]))
        if path_id is None:
            return base
        detected_at, rerouted_at, restored_at = _join_timings(
            controller, path_id, onset=event.at, cleared=event.end
        )
        return RecoveryRecord(
            kind=event.kind,
            target=event.target,
            at=event.at,
            cleared=event.end,
            detected_at=detected_at,
            rerouted_at=rerouted_at,
            restored_at=restored_at,
        )

    @staticmethod
    def _group_records(
        event: FaultEvent, controllers: Mapping[str, TangoController]
    ) -> list[RecoveryRecord]:
        """Per-group attribution: one record per affected tunnel per
        controller, target ``<event.target>/<edge>:<path>``.

        A tunnel is affected when its risk groups intersect the event's.
        ``maintenance_window`` timings are measured from the *effective*
        onset (end of the drain) — during the drain nothing has failed
        yet, so detection latency before it would be noise.  Falls back
        to a single untimed record when no tunnel matches (e.g. an
        untagged scenario)."""
        groups = _event_groups(event, controllers)
        onset = event.at
        if event.kind == "maintenance_window":
            onset = event.at + maintenance_drain_s(event)
        records: list[RecoveryRecord] = []
        for edge in sorted(controllers):
            controller = controllers[edge]
            for tunnel in controller.gateway.tunnel_table.all_tunnels():
                if not (tunnel.srlgs & groups):
                    continue
                detected_at, rerouted_at, restored_at = _join_timings(
                    controller, tunnel.path_id, onset=onset, cleared=event.end
                )
                records.append(
                    RecoveryRecord(
                        kind=event.kind,
                        target=f"{event.target}/{edge}:{tunnel.short_label}",
                        at=onset,
                        cleared=event.end,
                        detected_at=detected_at,
                        rerouted_at=rerouted_at,
                        restored_at=restored_at,
                    )
                )
        if not records:
            records.append(
                RecoveryRecord(
                    kind=event.kind,
                    target=event.target,
                    at=event.at,
                    cleared=event.end,
                )
            )
        return records

    # -- summary metrics ----------------------------------------------------------

    def mttr(self) -> Optional[float]:
        """Mean time-to-reroute over detected path faults (None if none)."""
        samples = [r.reroute_s for r in self.records if r.reroute_s is not None]
        if not samples:
            return None
        return sum(samples) / len(samples)

    @property
    def detected_count(self) -> int:
        return sum(1 for r in self.records if r.detected_at is not None)

    @property
    def path_fault_count(self) -> int:
        return sum(
            1
            for r in self.records
            if r.kind in _PATH_KINDS
            or (r.kind in _GROUP_KINDS and "/" in r.target)
        )

    # -- deterministic rendering --------------------------------------------------

    def format(
        self, controllers: Optional[Mapping[str, TangoController]] = None
    ) -> str:
        """Render the log; byte-identical for identical (plan, seed) runs.

        When ``controllers`` is given, every quarantine transition is
        appended after the per-fault table, keyed by edge name.
        """
        lines = [
            "# tango-repro fault recovery log",
            f"# plan={self.plan.name} seed={self.plan.seed} "
            f"events={len(self.plan.events)}",
            "# columns: kind target at cleared detected rerouted restored "
            "detection_s reroute_s repair_s",
        ]
        lines += [record.as_line() for record in self.records]
        mttr = self.mttr()
        lines.append(
            f"# mttr_s={_fmt(mttr)} "
            f"detected={self.detected_count}/{self.path_fault_count}"
        )
        if controllers:
            lines.append("# transitions")
            for edge in sorted(controllers):
                for q in controllers[edge].quarantine_log:
                    lines.append(
                        f"{edge} {q.t:.6f} path={q.path_id} label={q.label} "
                        f"{q.action} cause={q.cause or '-'} "
                        f"backoff={q.backoff_s:.6f}"
                    )
        return "\n".join(lines) + "\n"


def _path_id_for(controller: TangoController, short_label: str) -> Optional[int]:
    for tunnel in controller.gateway.tunnel_table.all_tunnels():
        if tunnel.short_label == short_label or tunnel.label == short_label:
            return tunnel.path_id
    return None


def _event_groups(
    event: FaultEvent, controllers: Mapping[str, TangoController]
) -> frozenset[str]:
    """Risk groups a correlated event covers.

    ``regional_outage`` needs a registry to expand the region; any
    attached controller carrying one (``srlg_registry``) resolves it —
    an undefended stack without a registry yields no groups, and the
    event falls back to a single untimed record."""
    if "group" in event.params:
        return frozenset({str(event.params["group"])})
    region_name = str(event.params["region"])
    for edge in sorted(controllers):
        registry = getattr(controllers[edge], "srlg_registry", None)
        if registry is not None:
            try:
                return frozenset(registry.region(region_name).groups)
            except LookupError:
                continue
    return frozenset()


def _join_timings(
    controller: TangoController,
    path_id: int,
    onset: float,
    cleared: float,
) -> tuple[Optional[float], Optional[float], Optional[float]]:
    """(detected_at, rerouted_at, restored_at) for one path fault."""
    detected_at = next(
        (
            q.t
            for q in controller.quarantine_log
            if q.path_id == path_id and q.action == "quarantine" and q.t >= onset
        ),
        None,
    )
    rerouted_at = None
    if detected_at is not None:
        times = controller.choice_trace.times
        values = controller.choice_trace.values
        for t, choice in zip(times, values):
            if t >= detected_at and choice != float(path_id) and choice >= 0:
                rerouted_at = float(t)
                break
    restored_at = next(
        (
            q.t
            for q in controller.quarantine_log
            if q.path_id == path_id and q.action == "restore" and q.t >= cleared
        ),
        None,
    )
    return detected_at, rerouted_at, restored_at
