"""Deterministic fault injection for Tango deployments.

The paper's claim is about behavior *under failure* — route changes and
instability "BGP cannot react to".  This package makes such failures a
first-class, scriptable input:

* :mod:`repro.faults.plan` — a declarative, seed-deterministic
  :class:`FaultPlan`: a named list of timed :class:`FaultEvent`\\ s
  (link blackholes, flaps, loss bursts, delay spikes, BGP session
  outages, prefix withdraw/re-announce, telemetry-mirror silence,
  telemetry-channel frame loss, clock steps, controller crashes), JSON
  round-trippable for CLI campaigns.
* :mod:`repro.faults.injector` — :class:`FaultInjector` arms a plan on an
  established :class:`~repro.scenarios.deployment.PacketLevelDeployment`.
  Link-level faults become pure functions of simulation time (wrapping
  the link's loss/delay processes), control-plane faults are scheduled
  callbacks at fixed simulation times; either way a replay with the same
  seed reproduces the campaign bit for bit.
* :mod:`repro.faults.recovery` — :class:`RecoveryLog` joins a plan with
  the controller's quarantine transitions into per-fault detection /
  reroute / repair timings and the MTTR headline metric.
"""

from .injector import FaultInjector
from .plan import FAULT_KINDS, FaultEvent, FaultPlan, maintenance_drain_s
from .recovery import RecoveryLog, RecoveryRecord

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "RecoveryLog",
    "RecoveryRecord",
    "maintenance_drain_s",
]
