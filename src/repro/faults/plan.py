"""Declarative fault plans: what breaks, when, and for how long.

A :class:`FaultPlan` is data, not code — it can be written as JSON, kept
next to an experiment, and replayed exactly.  Determinism contract: a
plan armed on a freshly built deployment and run with the same seed
produces the identical packet-level outcome every time (the repo-wide
invariant stated in ``repro.netsim.links``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["FAULT_KINDS", "FaultEvent", "FaultPlan", "maintenance_drain_s"]

#: Kind -> parameters that must be present in ``FaultEvent.params``.
_REQUIRED_PARAMS: dict[str, tuple[str, ...]] = {
    "link_blackhole": ("src", "path"),
    "link_flap": ("src", "path", "period"),
    "loss_burst": ("src", "path", "rate"),
    "delay_spike": ("src", "path", "extra_ms"),
    "bgp_session_down": ("a", "b"),
    "prefix_withdraw": ("edge", "prefix_index"),
    "telemetry_drop": ("edge",),
    "telemetry_loss": ("edge", "rate"),
    "clock_step": ("edge", "step_ms"),
    "controller_crash": ("edge",),
    "demand_surge": ("edge", "factor"),
    # Byzantine-peer kinds: an on-path adversary or a misbehaving clock.
    "telemetry_tamper": ("src", "path", "bias_ms"),
    "telemetry_replay": ("src", "path", "delay_s"),
    "gray_loss": ("src", "path", "rate"),
    "clock_drift": ("edge", "ppm"),
    # Correlated-failure kinds: shared-fate domains, not single links.
    "srlg_failure": ("group",),
    "regional_outage": ("region",),
    "maintenance_window": ("group",),
    # Federation kind: a whole member edge goes dark, including any
    # stitched relay tunnels transiting it.
    "relay_outage": ("member",),
}

FAULT_KINDS = frozenset(_REQUIRED_PARAMS)

#: Kinds that require a positive duration (a zero-length blackhole is a
#: no-op and almost certainly a plan-authoring mistake).
_NEEDS_DURATION = frozenset(
    {
        "link_blackhole",
        "link_flap",
        "loss_burst",
        "delay_spike",
        "bgp_session_down",
        "prefix_withdraw",
        "telemetry_drop",
        "telemetry_loss",
        "demand_surge",
        "telemetry_tamper",
        "telemetry_replay",
        "gray_loss",
        "srlg_failure",
        "regional_outage",
        "maintenance_window",
        "relay_outage",
    }
)


def maintenance_drain_s(event: "FaultEvent") -> float:
    """Effective drain lead-time of a ``maintenance_window`` event.

    During ``[at, at + drain)`` the group is *draining* — links still
    forward, but the maintenance calendar has announced the window, so a
    make-before-break controller can move traffic with zero loss.  The
    links actually fail at ``at + drain``.  Defaults to half the window
    capped at 0.5 s.
    """
    raw = event.params.get("drain_s")
    if raw is None:
        return min(0.5, event.duration / 2.0)
    return float(raw)


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        at: onset, in simulation seconds.
        duration: how long the fault persists; the injector clears it at
            ``at + duration``.  ``clock_step`` treats 0 as permanent.
        params: kind-specific parameters (see ``_REQUIRED_PARAMS``), e.g.
            ``src``/``path`` naming a wide-area link, ``rate`` for bursts.
    """

    kind: str
    at: float
    duration: float = 0.0
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; have {sorted(FAULT_KINDS)}"
            )
        if self.at < 0:
            raise ValueError(f"fault onset must be >= 0, got {self.at}")
        if self.duration < 0:
            raise ValueError(f"duration must be >= 0, got {self.duration}")
        if self.kind in _NEEDS_DURATION and self.duration <= 0:
            raise ValueError(f"{self.kind} fault needs a positive duration")
        missing = [
            name for name in _REQUIRED_PARAMS[self.kind] if name not in self.params
        ]
        if missing:
            raise ValueError(
                f"{self.kind} fault missing parameter(s): {', '.join(missing)}"
            )
        object.__setattr__(self, "params", dict(self.params))

    @property
    def end(self) -> float:
        return self.at + self.duration

    @property
    def target(self) -> str:
        """Human-readable target, e.g. ``ny:GTT`` — used in recovery logs."""
        p = self.params
        if "path" in p:
            return f"{p['src']}:{p['path']}"
        if "a" in p:
            return f"{p['a']}~{p['b']}"
        if "prefix_index" in p:
            return f"{p['edge']}:route[{p['prefix_index']}]"
        if "group" in p:
            return f"group:{p['group']}"
        if "region" in p:
            return f"region:{p['region']}"
        if "member" in p:
            return f"member:{p['member']}"
        return str(p.get("edge", "?"))

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"kind": self.kind, "at": self.at}
        if self.duration:
            out["duration"] = self.duration
        out.update(sorted(self.params.items()))
        return out


@dataclass(frozen=True)
class FaultPlan:
    """An ordered chaos campaign: events plus the seed that replays it.

    Events are stored in authoring order; :attr:`timeline` yields them
    sorted by onset (ties broken by authoring order), which is the order
    the injector arms them in.
    """

    name: str
    events: tuple[FaultEvent, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("plan needs a non-empty name")
        object.__setattr__(self, "events", tuple(self.events))

    @property
    def timeline(self) -> tuple[FaultEvent, ...]:
        indexed = sorted(enumerate(self.events), key=lambda p: (p[1].at, p[0]))
        return tuple(event for _, event in indexed)

    @property
    def horizon(self) -> float:
        """When the last fault has cleared (0.0 for an empty plan)."""
        return max((e.end for e in self.events), default=0.0)

    # -- JSON round trip ----------------------------------------------------------

    def to_json(self) -> str:
        """Stable serialization: sorted keys, no insignificant whitespace."""
        payload = {
            "name": self.name,
            "seed": self.seed,
            "events": [e.as_dict() for e in self.events],
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValueError("fault plan must be a JSON object")
        raw_events = payload.get("events", [])
        if not isinstance(raw_events, list):
            raise ValueError("fault plan 'events' must be a list")
        events = []
        for i, raw in enumerate(raw_events):
            if not isinstance(raw, dict):
                raise ValueError(f"event #{i} must be a JSON object")
            entry = dict(raw)
            try:
                kind = entry.pop("kind")
                at = float(entry.pop("at"))
            except KeyError as exc:
                raise ValueError(f"event #{i} missing field {exc}") from None
            duration = float(entry.pop("duration", 0.0))
            try:
                events.append(
                    FaultEvent(kind=kind, at=at, duration=duration, params=entry)
                )
            except ValueError as exc:
                # FaultEvent's own validation knows nothing about list
                # position; re-raise with the index so a 40-event plan's
                # author learns *which* event is malformed.
                raise ValueError(f"event #{i}: {exc}") from None
        return cls(
            name=str(payload.get("name", "unnamed")),
            seed=int(payload.get("seed", 0)),
            events=tuple(events),
        )

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())
