"""On-path adversary stages for Byzantine-peer fault injection.

The paper's Section 6 threat: an on-path attacker who can read and edit
Tango headers can "make every path but mine look bad" and steer a victim's
routing.  These stages model that attacker as
:class:`~repro.netsim.links.PacketInterceptor` implementations installed on
a wide-area link:

* :class:`TelemetryTamper` biases the piggybacked timestamp so the path's
  measured one-way delay looks better (or worse) than reality.  The stale
  auth tag is left in place — under authentication the MAC check fails and
  the defense sees forgeries instead of believable telemetry.
* :class:`TelemetryReplay` captures passing packets and re-injects aged
  copies.  Replayed packets carry *valid* tags; only the authenticator's
  ``(timestamp, seq)`` replay window or the plausibility layer's age check
  catches them.
* :class:`GrayLoss` silently consumes a fraction of packets and rewrites
  the sequence numbers of survivors to hide the gap from the receiver's
  loss ledger — loss the victim pays for but never sees.  Rewritten
  sequence numbers invalidate the MAC, so authentication converts the
  stealth into visible forgeries.

All stages are deterministic functions of (packet, time, internal
counters) seeded from the fault plan; replays are bit-exact.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Callable, Optional

from ..netsim.links import Link, PacketInterceptor
from ..netsim.packet import Packet, TangoHeader

__all__ = [
    "AdversaryChain",
    "TelemetryTamper",
    "TelemetryReplay",
    "GrayLoss",
]


def _uniform(seed: int, index: int) -> float:
    """Counter-based uniform draw in [0, 1) — splitmix64 finalizer."""
    x = (seed * 0x9E3779B97F4A7C15 + index * 0xBF58476D1CE4E5B9) & (2**64 - 1)
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & (2**64 - 1)
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & (2**64 - 1)
    x ^= x >> 31
    return x / 2**64


class _Stage(PacketInterceptor):
    """Shared windowing: a stage acts only inside [start, end)."""

    def __init__(self, start: float, end: float) -> None:
        if end < start:
            raise ValueError(f"stage window end before start: ({start}, {end})")
        self.start = start
        self.end = end

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


class AdversaryChain(PacketInterceptor):
    """Composes stages on one link; any stage may consume the packet.

    Stages run in installation order.  A plan with several adversarial
    events on the same wide-area link grows one chain, mirroring how
    :class:`~repro.netsim.links.OverrideLoss` wraps compose.
    """

    def __init__(self) -> None:
        self.stages: list[PacketInterceptor] = []

    def add(self, stage: PacketInterceptor) -> None:
        self.stages.append(stage)

    def process(
        self, packet: Packet, now: float, inject: Callable[[Packet], None]
    ) -> Optional[Packet]:
        current: Optional[Packet] = packet
        for stage in self.stages:
            if current is None:
                return None
            current = stage.process(current, now, inject)
        return current

    @classmethod
    def install_on(cls, link: Link) -> "AdversaryChain":
        """The link's chain, creating (and installing) one if absent."""
        chain = link.interceptor
        if not isinstance(chain, AdversaryChain):
            chain = cls()
            link.interceptor = chain
        return chain


class TelemetryTamper(_Stage):
    """Bias the Tango timestamp in flight.

    A positive ``bias_s`` moves the timestamp *forward*, so the receiver's
    ``wall_clock - timestamp`` shrinks and the path looks ``bias_s``
    better than it is — the "favor my path" attack.  Negative bias makes
    the path look worse ("make every path but mine look bad" is a set of
    negative-bias tampers).  The original auth tag is preserved verbatim:
    it no longer matches the edited fields, which is the whole point.
    """

    def __init__(self, start: float, end: float, bias_s: float) -> None:
        super().__init__(start, end)
        self.bias_ns = round(bias_s * 1e9)
        self.tampered = 0

    def process(
        self, packet: Packet, now: float, inject: Callable[[Packet], None]
    ) -> Optional[Packet]:
        if not self.active(now):
            return packet
        tango = packet.tango
        if tango is None:
            return packet
        index = packet.headers.index(tango)
        packet.headers[index] = replace(
            tango, timestamp_ns=tango.timestamp_ns + self.bias_ns
        )
        self.tampered += 1
        return packet


class TelemetryReplay(_Stage):
    """Capture-and-replay of authentic packets.

    Every ``every``-th passing Tango packet triggers re-injection of a
    captured copy at least ``delay_s`` old (the oldest eligible one).
    The copy is byte-identical — valid tag, stale timestamp, duplicate
    sequence number — so it sails past a MAC-only verifier and poisons
    the delay series with inflated samples.
    """

    CAPTURE_BUFFER = 512

    def __init__(self, start: float, end: float, delay_s: float, every: int) -> None:
        super().__init__(start, end)
        if delay_s <= 0:
            raise ValueError(f"replay delay must be positive, got {delay_s}")
        if every < 1:
            raise ValueError(f"replay cadence must be >= 1, got {every}")
        self.delay_s = delay_s
        self.every = every
        self.replayed = 0
        self._passed = 0
        self._captured: deque[tuple[float, Packet]] = deque(
            maxlen=self.CAPTURE_BUFFER
        )

    def process(
        self, packet: Packet, now: float, inject: Callable[[Packet], None]
    ) -> Optional[Packet]:
        if not self.active(now):
            return packet
        if packet.tango is None:
            return packet
        self._captured.append((now, packet.copy()))
        self._passed += 1
        if self._passed % self.every == 0:
            while self._captured and now - self._captured[0][0] >= self.delay_s:
                _, stale = self._captured.popleft()
                inject(stale.copy())
                self.replayed += 1
                break
        return packet


class GrayLoss(_Stage):
    """Silent partial drop that evades sequence-based loss ledgers.

    Dropped packets are consumed without a loss-ledger trace: the stage
    rewrites every surviving packet's sequence number downward by the
    number of packets dropped so far on its path, so the receiver's
    tracker sees a perfectly contiguous sequence.  Under authentication
    the rewrite invalidates the MAC and the stealth collapses into
    forgery counts.
    """

    def __init__(self, start: float, end: float, rate: float, seed: int) -> None:
        super().__init__(start, end)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"gray loss rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.seed = seed
        self.dropped = 0
        self._draws = 0
        self._hidden: dict[int, int] = {}

    def process(
        self, packet: Packet, now: float, inject: Callable[[Packet], None]
    ) -> Optional[Packet]:
        tango = packet.tango
        if tango is None:
            return packet
        if self.active(now):
            self._draws += 1
            if _uniform(self.seed, self._draws) < self.rate:
                self._hidden[tango.path_id] = (
                    self._hidden.get(tango.path_id, 0) + 1
                )
                self.dropped += 1
                return None
        # The rewrite outlives the drop window: if survivors reverted to
        # their true sequence numbers when dropping stops, the hidden gap
        # would surface as one visible burst at window end.
        hidden = self._hidden.get(tango.path_id, 0)
        if hidden:
            index = packet.headers.index(tango)
            packet.headers[index] = replace(tango, seq=tango.seq - hidden)
        return packet
