"""Packets and header stacks.

The Tango data plane works by *encapsulation*: a data packet destined to a
host prefix is wrapped in an outer IP header (whose destination address
selects the wide-area route, because each Tango prefix propagates over a
distinct AS path), a UDP header (whose fixed 5-tuple pins ECMP behaviour),
and a Tango header carrying a wall-clock timestamp and per-tunnel sequence
number.

We model headers as small frozen dataclasses pushed onto / popped off a
packet's header stack, mirroring how a P4 or eBPF program parses and edits a
real packet.  Header sizes are bytes-on-the-wire accurate so that
serialization overhead computations (tunnel tax, MTU checks) are honest.
"""

from __future__ import annotations

import ipaddress
import itertools
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional, Union

__all__ = [
    "IPAddress",
    "Ipv4Header",
    "Ipv6Header",
    "UdpHeader",
    "TangoHeader",
    "Header",
    "Packet",
    "FiveTuple",
    "TANGO_UDP_PORT",
]

IPAddress = Union[ipaddress.IPv4Address, ipaddress.IPv6Address]

#: UDP destination port Tango tunnels use.  Any fixed value works; what
#: matters is that all packets of a tunnel share one 5-tuple so ECMP hashes
#: them onto a single physical path (paper Section 3).
TANGO_UDP_PORT = 6112


@dataclass(frozen=True)
class Ipv4Header:
    """Minimal IPv4 header (20 bytes, no options)."""

    src: ipaddress.IPv4Address
    dst: ipaddress.IPv4Address
    ttl: int = 64
    protocol: int = 17

    WIRE_BYTES = 20

    @property
    def version(self) -> int:
        return 4


@dataclass(frozen=True)
class Ipv6Header:
    """Minimal IPv6 header (40 bytes).

    Tango's prototype announces IPv6 /48s from the edge, so IPv6 is the
    default address family throughout this repository.
    """

    src: ipaddress.IPv6Address
    dst: ipaddress.IPv6Address
    hop_limit: int = 64
    next_header: int = 17

    WIRE_BYTES = 40

    @property
    def version(self) -> int:
        return 6


@dataclass(frozen=True)
class UdpHeader:
    """UDP header (8 bytes).  Present in every Tango encapsulation."""

    sport: int
    dport: int

    WIRE_BYTES = 8

    def __post_init__(self) -> None:
        for name, port in (("sport", self.sport), ("dport", self.dport)):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"{name} out of range: {port}")


@dataclass(frozen=True)
class TangoHeader:
    """The Tango telemetry header piggybacked on data packets.

    Attributes:
        timestamp_ns: sender wall-clock timestamp (nanoseconds).  The
            receiving switch subtracts this from its own wall clock to get
            a (constant-offset-distorted) one-way delay.
        seq: per-tunnel sequence number, enabling loss and reordering
            detection without probing (paper Sections 3 and 6).
        path_id: identifier of the Tango tunnel/path the sender chose;
            lets the receiver attribute the measurement to a path even if
            tunnels share an egress prefix.
        auth_tag: optional truncated MAC over (timestamp, seq, path_id);
            models the "trustworthy telemetry" extension of Section 6.
    """

    timestamp_ns: int
    seq: int
    path_id: int
    auth_tag: Optional[bytes] = None

    #: 8B timestamp + 4B seq + 2B path id + 2B flags/reserved.
    WIRE_BYTES = 16
    #: Truncated MAC length when authentication is enabled.
    AUTH_TAG_BYTES = 8

    @property
    def wire_bytes(self) -> int:
        """Actual on-wire size including the optional auth tag."""
        if self.auth_tag is None:
            return self.WIRE_BYTES
        return self.WIRE_BYTES + self.AUTH_TAG_BYTES


Header = Union[Ipv4Header, Ipv6Header, UdpHeader, TangoHeader]


@dataclass(frozen=True)
class FiveTuple:
    """The classic ECMP hash input."""

    src: str
    dst: str
    protocol: int
    sport: int
    dport: int


_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """A simulated packet: a header stack plus an opaque payload size.

    The header stack is ordered outermost-first, like bytes on the wire.
    Forwarding elements only ever look at ``outer_ip`` (index of the first
    IP header); Tango programs push and pop encapsulation headers.

    Attributes:
        headers: outermost-first header list.
        payload_bytes: size of the application payload.
        flow_label: opaque application flow identifier used by traffic
            generators and the TCP model to group packets.
        created_at: simulation time the packet entered the network.
        meta: free-form annotations (measurements, trace tags).  Kept in a
            dict so substrates stay decoupled.
    """

    headers: list[Header]
    payload_bytes: int = 0
    flow_label: int = 0
    created_at: float = 0.0
    meta: dict = field(default_factory=dict)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError(f"payload_bytes must be >= 0, got {self.payload_bytes}")

    # -- header stack operations -------------------------------------------

    def push(self, header: Header) -> None:
        """Encapsulate: add ``header`` as the new outermost header."""
        self.headers.insert(0, header)

    def pop(self) -> Header:
        """Decapsulate: remove and return the outermost header."""
        if not self.headers:
            raise IndexError("pop from empty header stack")
        return self.headers.pop(0)

    def peek(self) -> Header:
        """Return the outermost header without removing it."""
        if not self.headers:
            raise IndexError("peek at empty header stack")
        return self.headers[0]

    # -- convenience accessors ----------------------------------------------

    @property
    def outer_ip(self) -> Union[Ipv4Header, Ipv6Header]:
        """The outermost IP header — what routers route on."""
        for header in self.headers:
            if isinstance(header, (Ipv4Header, Ipv6Header)):
                return header
        raise ValueError("packet has no IP header")

    @property
    def dst(self) -> IPAddress:
        """Destination address of the outermost IP header."""
        return self.outer_ip.dst

    @property
    def src(self) -> IPAddress:
        """Source address of the outermost IP header."""
        return self.outer_ip.src

    def find(self, header_type: type) -> Optional[Header]:
        """First header of the given type, or None."""
        for header in self.headers:
            if isinstance(header, header_type):
                return header
        return None

    def headers_of(self, header_type: type) -> Iterator[Header]:
        """All headers of the given type, outermost first."""
        return (h for h in self.headers if isinstance(h, header_type))

    @property
    def tango(self) -> Optional[TangoHeader]:
        """The outermost Tango header if present."""
        header = self.find(TangoHeader)
        return header if isinstance(header, TangoHeader) else None

    @property
    def wire_bytes(self) -> int:
        """Total serialized size: headers + payload."""
        total = self.payload_bytes
        for header in self.headers:
            if isinstance(header, TangoHeader):
                total += header.wire_bytes
            else:
                total += header.WIRE_BYTES
        return total

    def five_tuple(self) -> FiveTuple:
        """5-tuple of the outermost IP (+UDP if present) headers.

        This is what an ECMP hash in the core sees.  Note that an
        encapsulated Tango packet exposes only the *outer* tunnel 5-tuple —
        precisely the mechanism the paper uses to defeat unpredictable
        ECMP spraying.
        """
        ip = self.outer_ip
        ip_index = self.headers.index(ip)
        sport = dport = 0
        if ip_index + 1 < len(self.headers):
            nxt = self.headers[ip_index + 1]
            if isinstance(nxt, UdpHeader):
                sport, dport = nxt.sport, nxt.dport
        protocol = ip.protocol if isinstance(ip, Ipv4Header) else ip.next_header
        return FiveTuple(str(ip.src), str(ip.dst), protocol, sport, dport)

    def copy(self) -> "Packet":
        """Deep-enough copy: fresh header list and meta dict, new packet id.

        Headers themselves are immutable so sharing them is safe.
        """
        return Packet(
            headers=list(self.headers),
            payload_bytes=self.payload_bytes,
            flow_label=self.flow_label,
            created_at=self.created_at,
            meta=dict(self.meta),
        )

    def decrement_ttl(self) -> "Packet":
        """Return a packet whose outer IP TTL/hop-limit is one lower.

        Raises:
            ValueError: when the TTL would drop to zero (packet must be
                discarded by the caller; loops surface loudly, not silently).
        """
        ip = self.outer_ip
        index = self.headers.index(ip)
        if isinstance(ip, Ipv4Header):
            if ip.ttl <= 1:
                raise ValueError(f"TTL expired for packet {self.packet_id}")
            new_ip: Header = replace(ip, ttl=ip.ttl - 1)
        else:
            if ip.hop_limit <= 1:
                raise ValueError(f"hop limit expired for packet {self.packet_id}")
            new_ip = replace(ip, hop_limit=ip.hop_limit - 1)
        self.headers[index] = new_ip
        return self
