"""Discrete-event simulation core.

A small, deterministic event loop: events are ``(time, sequence, callback)``
triples kept in a binary heap.  The sequence number makes ordering of
same-time events deterministic (FIFO), which keeps every experiment in the
repository reproducible bit-for-bit for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Callable, Optional

from .simclock import SimClock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..profiling.core import Profiler

__all__ = ["Event", "Simulator", "PeriodicTask"]


class Event:
    """A scheduled callback.

    Events are cancellable: :meth:`cancel` marks the event dead and the
    event loop skips it when popped.  This is how retransmission timers and
    probe generators are torn down.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark this event dead; it will be skipped by the loop."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.9f}, seq={self.seq}, {state})"


class Simulator:
    """Deterministic discrete-event simulator.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule_at(1.5, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [1.5]
    """

    #: Queues shorter than this are never compacted: the rebuild would
    #: cost more than lazily skipping a handful of tombstones.
    _COMPACT_MIN_SIZE = 8

    def __init__(self, start: float = 0.0) -> None:
        self.clock = SimClock(start)
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._cancelled_pending = 0
        #: Profiling counters (cheap ints, always on).
        self.compactions = 0
        self.tombstones_reaped = 0
        #: Optional attached profiler; when set, :meth:`run` calls are timed.
        self.profiler: Optional["Profiler"] = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self.clock.now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for diagnostics)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    @property
    def live_pending(self) -> int:
        """Number of queued events that have not been cancelled."""
        return len(self._queue) - self._cancelled_pending

    def _note_cancelled(self) -> None:
        """A queued event was cancelled; compact once tombstones dominate.

        Without this, a repeatedly paused-and-resumed :class:`PeriodicTask`
        leaks one cancelled event per cycle until its firing time drains
        from the heap — unbounded for long intervals.
        """
        self._cancelled_pending += 1
        if (
            len(self._queue) >= self._COMPACT_MIN_SIZE
            and self._cancelled_pending * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without tombstones.  Pop order is unaffected:
        heap order is the total order (time, seq), independent of the
        internal array layout."""
        self.tombstones_reaped += self._cancelled_pending
        self.compactions += 1
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._cancelled_pending = 0

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run at absolute simulation time ``time``.

        Raises:
            ValueError: if ``time`` is before the current simulation time.
        """
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule in the past: {time} < {self.clock.now}"
            )
        event = Event(time, next(self._seq), callback, sim=self)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self.clock.now + delay, callback)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the event queue.

        Args:
            until: stop once the next event would fire after this time; the
                clock is left at ``until``.  ``None`` runs to exhaustion.
            max_events: safety valve against runaway schedules.
        """
        if self.profiler is not None:
            with self.profiler.time("sim.run"):
                self._run(until, max_events)
        else:
            self._run(until, max_events)

    def _run(self, until: Optional[float], max_events: Optional[int]) -> None:
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                self._cancelled_pending -= 1
                continue
            if until is not None and event.time > until:
                break
            heapq.heappop(self._queue)
            # Detach so a cancel() from inside the callback (a task
            # pausing itself) is not counted as a queued tombstone.
            event._sim = None
            self.clock.advance_to(event.time)
            event.callback()
            self._events_processed += 1
            executed += 1
        if until is not None and self.clock.now < until:
            self.clock.advance_to(until)

    def step(self) -> bool:
        """Execute the single next live event.

        Returns:
            True if an event ran, False if the queue is empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            event._sim = None
            self.clock.advance_to(event.time)
            event.callback()
            self._events_processed += 1
            return True
        return False

    def call_every(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> "PeriodicTask":
        """Run ``callback`` every ``interval`` seconds.

        This is the workhorse behind probe generators (the paper sends one
        probe per path every 10 ms).  The returned handle can be stopped.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        task = PeriodicTask(self, interval, callback, end=end)
        first = self.clock.now if start is None else start
        task._arm(first)
        return task


class PeriodicTask:
    """Handle for a repeating event created by :meth:`Simulator.call_every`."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], None],
        end: Optional[float] = None,
    ) -> None:
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._end = end
        self._event: Optional[Event] = None
        self._stopped = False
        self._paused = False

    def _arm(self, time: float) -> None:
        if self._stopped or self._paused:
            return
        # Tolerate float accumulation: N * interval can exceed `end` by
        # an ulp, which would silently drop the final tick.
        if self._end is not None and time > self._end + 1e-9:
            return
        self._event = self._sim.schedule_at(time, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        self._arm(self._sim.now + self._interval)

    def pause(self) -> None:
        """Suspend firing without tearing the task down.

        Unlike :meth:`stop`, a paused task can be resumed later; fault
        injection uses this to silence a telemetry mirror for a window.
        Pausing an already-paused or stopped task is a no-op.
        """
        if self._stopped or self._paused:
            return
        self._paused = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def resume(self) -> None:
        """Resume a paused task; the next firing is one interval from now.

        Occurrences skipped while paused are *not* replayed — a silenced
        reporter loses its reports, it does not batch them.
        """
        if self._stopped or not self._paused:
            return
        self._paused = False
        self._arm(self._sim.now + self._interval)

    @property
    def paused(self) -> bool:
        return self._paused

    def stop(self) -> None:
        """Stop firing; any queued occurrence is cancelled."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
