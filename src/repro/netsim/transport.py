"""A Reno-style TCP transport over the packet simulator.

The paper's Section 5 argues that delay spikes hurt TCP twice: in-order
delivery stalls the application, and spurious reordering/timeouts shrink
the congestion window.  :mod:`repro.analysis.tcp_model` captures the
first effect analytically; this module provides the real thing — an
event-driven sender/receiver pair with slow start, congestion avoidance,
fast retransmit on three duplicate ACKs, and RFC 6298 RTO estimation —
so the claim can be validated packet-by-packet over Tango tunnels.

Deliberately simplified where the simplification cannot change the
studied phenomena: no SACK, no delayed ACKs, no Nagle, byte-counting
window arithmetic in MSS-sized segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .events import Event, Simulator
from .packet import Packet

__all__ = ["TcpStats", "TcpSender", "TcpReceiver", "connect_tcp"]

#: meta keys used on segment/ack packets.
META_SEQ = "tcp_seq"
META_ACK = "tcp_ack"
META_IS_ACK = "tcp_is_ack"
META_CONN = "tcp_conn"


@dataclass
class TcpStats:
    """Transfer outcome counters."""

    segments_sent: int = 0
    retransmissions: int = 0
    timeouts: int = 0
    fast_retransmits: int = 0
    acked_bytes: int = 0
    completed_at: Optional[float] = None

    def goodput_bps(self, started_at: float = 0.0) -> float:
        """Acked payload bits per second (nan until completion)."""
        if self.completed_at is None or self.completed_at <= started_at:
            return float("nan")
        return self.acked_bytes * 8.0 / (self.completed_at - started_at)


class TcpSender:
    """Reno sender transferring ``transfer_bytes`` then stopping.

    Args:
        sim: the event loop (timers).
        send: transmits a data segment toward the receiver.
        build_packet: returns a fresh packet shell for one segment
            (headers set; payload/meta filled in here).
        transfer_bytes: total payload to deliver.
        mss: segment payload size.
        conn_id: connection identifier carried in packet meta.
        initial_cwnd_segments: IW (RFC 6928's 10 by default).
        min_rto_s: RTO floor (RFC 6298 says 1 s; practical stacks use
            ~200 ms, which suits simulation timescales).
    """

    def __init__(
        self,
        sim: Simulator,
        send: Callable[[Packet], None],
        build_packet: Callable[[], Packet],
        transfer_bytes: int,
        mss: int = 1400,
        conn_id: int = 1,
        initial_cwnd_segments: int = 10,
        min_rto_s: float = 0.2,
    ) -> None:
        if transfer_bytes <= 0:
            raise ValueError("transfer_bytes must be positive")
        if mss <= 0:
            raise ValueError("mss must be positive")
        self.sim = sim
        self.send = send
        self.build_packet = build_packet
        self.transfer_bytes = transfer_bytes
        self.mss = mss
        self.conn_id = conn_id
        self.min_rto_s = min_rto_s

        self.cwnd = float(initial_cwnd_segments * mss)
        self.ssthresh = float(64 * 1024)
        self.send_base = 0  # lowest unacked byte
        self.next_seq = 0  # next byte to transmit
        self.dup_acks = 0
        self.stats = TcpStats()
        self.started_at: Optional[float] = None

        self._srtt: Optional[float] = None
        self._rttvar = 0.0
        self._rto = 3 * min_rto_s
        self._timer: Optional[Event] = None
        self._send_times: dict[int, float] = {}  # seq -> first-send time
        self._retransmitted: set[int] = set()

    # -- driving ------------------------------------------------------------------

    def start(self) -> None:
        """Begin the transfer now."""
        self.started_at = self.sim.now
        self._pump()

    @property
    def inflight(self) -> int:
        return self.next_seq - self.send_base

    @property
    def done(self) -> bool:
        return self.send_base >= self.transfer_bytes

    def _pump(self) -> None:
        while (
            not self.done
            and self.next_seq < self.transfer_bytes
            and self.inflight + self.mss <= self.cwnd
        ):
            self._transmit(self.next_seq)
            self.next_seq += self._segment_size(self.next_seq)
        self._arm_timer()

    def _segment_size(self, seq: int) -> int:
        return min(self.mss, self.transfer_bytes - seq)

    def _transmit(self, seq: int, retransmission: bool = False) -> None:
        packet = self.build_packet()
        packet.payload_bytes = self._segment_size(seq)
        packet.meta[META_SEQ] = seq
        packet.meta[META_CONN] = self.conn_id
        packet.meta[META_IS_ACK] = False
        self.stats.segments_sent += 1
        if retransmission:
            self.stats.retransmissions += 1
            self._retransmitted.add(seq)
        else:
            self._send_times.setdefault(seq, self.sim.now)
        self.send(packet)

    # -- ACK processing ------------------------------------------------------------

    def on_ack(self, ack: int) -> None:
        """Process a cumulative ACK for bytes below ``ack``."""
        if ack > self.send_base:
            newly = ack - self.send_base
            self.stats.acked_bytes += newly
            # Karn's algorithm: only sample RTT on never-retransmitted
            # segments.
            sample_seq = self.send_base
            if sample_seq in self._send_times and (
                sample_seq not in self._retransmitted
            ):
                self._update_rto(self.sim.now - self._send_times[sample_seq])
            for seq in [s for s in self._send_times if s < ack]:
                del self._send_times[seq]
            self.send_base = ack
            self.dup_acks = 0
            if self.cwnd < self.ssthresh:
                self.cwnd += newly  # slow start
            else:
                self.cwnd += self.mss * self.mss / self.cwnd  # AIMD
            if self.done:
                self._complete()
                return
            # RFC 6298 (5.3): restart the retransmission timer when an
            # ACK acknowledges new data.
            self._arm_timer(restart=True)
            self._pump()
        elif ack == self.send_base and self.inflight > 0:
            self.dup_acks += 1
            if self.dup_acks == 3:
                self._fast_retransmit()

    def _fast_retransmit(self) -> None:
        self.stats.fast_retransmits += 1
        self.ssthresh = max(self.cwnd / 2.0, 2.0 * self.mss)
        self.cwnd = self.ssthresh + 3 * self.mss
        self._transmit(self.send_base, retransmission=True)
        self._arm_timer(restart=True)

    # -- timers -------------------------------------------------------------------

    def _update_rto(self, sample: float) -> None:
        if self._srtt is None:
            self._srtt = sample
            self._rttvar = sample / 2.0
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - sample)
            self._srtt = 0.875 * self._srtt + 0.125 * sample
        self._rto = max(self._srtt + 4.0 * self._rttvar, self.min_rto_s)

    def _arm_timer(self, restart: bool = False) -> None:
        if self.done or self.inflight == 0:
            self._cancel_timer()
            return
        if self._timer is not None and not restart:
            return
        self._cancel_timer()
        self._timer = self.sim.schedule_in(self._rto, self._on_timeout)

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _on_timeout(self) -> None:
        self._timer = None
        if self.done or self.inflight == 0:
            return
        self.stats.timeouts += 1
        self.ssthresh = max(self.cwnd / 2.0, 2.0 * self.mss)
        self.cwnd = float(self.mss)
        self.next_seq = self.send_base + self._segment_size(self.send_base)
        self._transmit(self.send_base, retransmission=True)
        self._rto = min(self._rto * 2.0, 60.0)  # exponential backoff
        self._arm_timer(restart=True)

    def _complete(self) -> None:
        if self.stats.completed_at is None:
            self.stats.completed_at = self.sim.now
        self._cancel_timer()


class TcpReceiver:
    """In-order receiver emitting cumulative ACKs.

    Out-of-order segments are buffered; every arrival triggers one ACK
    carrying the next expected byte (so reordering manufactures the
    duplicate ACKs fast retransmit keys on — the mechanism behind the
    paper's "reduction in TCP throughput").
    """

    def __init__(
        self,
        send_ack: Callable[[Packet], None],
        build_packet: Callable[[], Packet],
        conn_id: int = 1,
    ) -> None:
        self.send_ack = send_ack
        self.build_packet = build_packet
        self.conn_id = conn_id
        self.expected = 0
        self._buffered: dict[int, int] = {}  # seq -> size
        self.received_segments = 0
        self.duplicate_segments = 0

    def on_segment(self, packet: Packet, _now: float) -> None:
        """Feed one arriving data segment (host delivery callback)."""
        if packet.meta.get(META_CONN) != self.conn_id or packet.meta.get(
            META_IS_ACK, False
        ):
            return
        seq = packet.meta[META_SEQ]
        size = packet.payload_bytes
        self.received_segments += 1
        if seq == self.expected:
            self.expected += size
            while self.expected in self._buffered:
                self.expected += self._buffered.pop(self.expected)
        elif seq > self.expected:
            self._buffered.setdefault(seq, size)
        else:
            self.duplicate_segments += 1
        ack = self.build_packet()
        ack.payload_bytes = 0
        ack.meta[META_CONN] = self.conn_id
        ack.meta[META_IS_ACK] = True
        ack.meta[META_ACK] = self.expected
        self.send_ack(ack)


def connect_tcp(
    sim: Simulator,
    send_data: Callable[[Packet], None],
    send_ack: Callable[[Packet], None],
    build_data_packet: Callable[[], Packet],
    build_ack_packet: Callable[[], Packet],
    transfer_bytes: int,
    conn_id: int = 1,
    **sender_kwargs,
) -> tuple[TcpSender, TcpReceiver, Callable[[Packet, float], None], Callable[[Packet, float], None]]:
    """Wire a sender/receiver pair; returns them plus the two delivery
    callbacks to install at the respective hosts.

    ``data_delivery`` goes on the receiver-side host, ``ack_delivery``
    on the sender-side host.
    """
    sender = TcpSender(
        sim,
        send_data,
        build_data_packet,
        transfer_bytes,
        conn_id=conn_id,
        **sender_kwargs,
    )
    receiver = TcpReceiver(send_ack, build_ack_packet, conn_id=conn_id)

    def data_delivery(packet: Packet, now: float) -> None:
        receiver.on_segment(packet, now)

    def ack_delivery(packet: Packet, _now: float) -> None:
        if packet.meta.get(META_CONN) == conn_id and packet.meta.get(
            META_IS_ACK, False
        ):
            sender.on_ack(packet.meta[META_ACK])

    return sender, receiver, data_delivery, ack_delivery
