"""Simulation time and per-node wall clocks.

Tango's measurement soundness rests on a simple observation from the paper
(Section 3): the sending and receiving switches need not share a synchronized
clock, because the *offset* between two free-running clocks is (approximately)
constant, so one-way delays measured through them are all distorted by the
same additive amount and remain comparable *relative to each other*.

This module models that explicitly:

* :class:`SimClock` is the single global simulation clock, advanced by the
  event loop.  All physics (link delays, event timing) happen in simulation
  time.
* :class:`NodeClock` is a node's *wall clock*: the clock an eBPF program or
  a switch ASIC would read.  It maps simulation time to local time through a
  constant offset and an optional frequency drift.  Timestamps carried in
  Tango tunnel headers are wall-clock values, never simulation time, so the
  measurement pipeline sees exactly the distortion a real deployment sees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SimClock", "NodeClock"]


class SimClock:
    """Monotonic global simulation clock, in seconds.

    Only the event loop (:class:`repro.netsim.events.Simulator`) should
    advance it; everything else reads it.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to ``t``.

        Raises:
            ValueError: if ``t`` is in the past; simulation time is monotonic.
        """
        if t < self._now:
            raise ValueError(
                f"cannot move simulation time backwards: {t} < {self._now}"
            )
        self._now = t

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.9f})"


@dataclass
class NodeClock:
    """A node's free-running wall clock.

    Attributes:
        sim_clock: the global simulation clock this wall clock derives from.
        offset: constant offset in seconds added to simulation time.  Two
            Tango endpoints typically have different offsets; the difference
            is the constant distortion the paper discusses.
        drift_ppm: frequency error in parts-per-million.  Real oscillators
            drift by tens of ppm; the paper's constant-offset argument holds
            only approximately under drift, which the telemetry layer's
            relative comparisons tolerate.  Defaults to a perfect oscillator.
    """

    sim_clock: SimClock
    offset: float = 0.0
    drift_ppm: float = 0.0
    _epoch: float = field(default=0.0, repr=False)

    def now(self) -> float:
        """Wall-clock reading in seconds for the current simulation time."""
        return self.at(self.sim_clock.now)

    def at(self, sim_time: float) -> float:
        """Wall-clock reading for an arbitrary simulation time."""
        elapsed = sim_time - self._epoch
        return sim_time + self.offset + elapsed * (self.drift_ppm * 1e-6)

    def now_ns(self) -> int:
        """Wall-clock reading in integer nanoseconds.

        Tango's tunnel header carries nanosecond timestamps (the eBPF
        prototype reads ``bpf_ktime_get_ns``); quantizing here reproduces
        the precision of the real data plane.
        """
        return round(self.now() * 1e9)

    def set_drift(self, drift_ppm: float, at: float) -> None:
        """Change the oscillator's frequency error at simulation time ``at``.

        The drift accumulated so far is folded into ``offset`` and the
        drift epoch is reset, so the wall-clock reading is continuous at
        the change point — an oscillator retrained by a thermal event does
        not step, it *bends*.  Step changes are a separate operation
        (:meth:`step`).
        """
        self.offset += (at - self._epoch) * (self.drift_ppm * 1e-6)
        self._epoch = at
        self.drift_ppm = drift_ppm

    def step(self, seconds: float) -> None:
        """Discontinuous jump of the wall clock (e.g. an NTP slam)."""
        self.offset += seconds
