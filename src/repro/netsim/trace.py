"""Workload generators.

The paper generates measurement traffic by sending one probe per path every
10 ms for eight days; application traffic in the motivating example is
drone telemetry (small, periodic, latency-critical).  This module provides
those workloads plus a Poisson generator for background traffic, all
deterministic under a seed.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from .events import PeriodicTask, Simulator
from .packet import Ipv6Header, Packet, UdpHeader

__all__ = [
    "PacketFactory",
    "ProbeGenerator",
    "PoissonTraffic",
    "DroneTelemetryWorkload",
]


@dataclass
class PacketFactory:
    """Builds plain (pre-encapsulation) data packets for a host pair."""

    src: str
    dst: str
    sport: int = 40000
    dport: int = 50000
    payload_bytes: int = 64
    flow_label: int = 0

    def build(self) -> Packet:
        """A fresh packet with an IPv6+UDP header stack."""
        return Packet(
            headers=[
                Ipv6Header(
                    src=ipaddress.IPv6Address(self.src),
                    dst=ipaddress.IPv6Address(self.dst),
                ),
                UdpHeader(sport=self.sport, dport=self.dport),
            ],
            payload_bytes=self.payload_bytes,
            flow_label=self.flow_label,
        )


class ProbeGenerator:
    """Constant-rate probe stream, one packet every ``interval`` seconds.

    This is the paper's measurement workload ("we ran a ping along each
    path every 10ms"), except that Tango needs no ping: any packet gets
    timestamped by the sender-side program, so probes here are ordinary
    small UDP packets.
    """

    def __init__(
        self,
        sim: Simulator,
        factory: PacketFactory,
        send: Callable[[Packet], None],
        interval: float = 0.010,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._sim = sim
        self._factory = factory
        self._send = send
        self._interval = interval
        self._task: Optional[PeriodicTask] = None
        self.sent = 0

    def start(self, at: Optional[float] = None, until: Optional[float] = None) -> None:
        """Begin emitting probes (immediately or at ``at``)."""
        if self._task is not None:
            raise RuntimeError("probe generator already started")
        self._task = self._sim.call_every(
            self._interval, self._emit, start=at, end=until
        )

    def stop(self) -> None:
        """Stop emitting."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _emit(self) -> None:
        packet = self._factory.build()
        packet.created_at = self._sim.now
        self.sent += 1
        self._send(packet)


class PoissonTraffic:
    """Poisson packet arrivals — background/application load.

    Inter-arrival times are exponential with the given rate; the stream is
    reproducible for a fixed seed.
    """

    def __init__(
        self,
        sim: Simulator,
        factory: PacketFactory,
        send: Callable[[Packet], None],
        rate_pps: float,
        seed: int = 0,
    ) -> None:
        if rate_pps <= 0:
            raise ValueError(f"rate must be positive, got {rate_pps}")
        self._sim = sim
        self._factory = factory
        self._send = send
        self._rate = rate_pps
        self._rng = np.random.default_rng(seed)
        self._stopped = False
        self._until: Optional[float] = None
        self.sent = 0

    def start(self, until: Optional[float] = None) -> None:
        """Begin the arrival process, optionally ending at ``until``."""
        self._until = until
        self._schedule_next()

    def stop(self) -> None:
        self._stopped = True

    def _schedule_next(self) -> None:
        gap = float(self._rng.exponential(1.0 / self._rate))
        when = self._sim.now + gap
        if self._until is not None and when > self._until:
            return
        self._sim.schedule_at(when, self._emit)

    def _emit(self) -> None:
        if self._stopped:
            return
        packet = self._factory.build()
        packet.created_at = self._sim.now
        self.sent += 1
        self._send(packet)
        self._schedule_next()


class DroneTelemetryWorkload:
    """The paper's motivating application (Section 2.2).

    An access network (ASX) streams drone sensor data to cloud VMs (ASY)
    for real-time analytics and adaptive control.  Control loops run at a
    fixed rate; occasionally a burst (e.g. a video keyframe or an event
    upload) multiplies the packet size.

    Deadline accounting is left to the caller: packets carry a
    ``deadline_s`` annotation in ``meta`` so sinks can classify arrivals
    as on-time or late.
    """

    def __init__(
        self,
        sim: Simulator,
        factory: PacketFactory,
        send: Callable[[Packet], None],
        rate_hz: float = 100.0,
        deadline_s: float = 0.050,
        burst_every: int = 50,
        burst_multiplier: int = 10,
    ) -> None:
        if rate_hz <= 0:
            raise ValueError(f"rate must be positive, got {rate_hz}")
        if deadline_s <= 0:
            raise ValueError(f"deadline must be positive, got {deadline_s}")
        if burst_every <= 0:
            raise ValueError(f"burst_every must be positive, got {burst_every}")
        self._sim = sim
        self._factory = factory
        self._send = send
        self._interval = 1.0 / rate_hz
        self.deadline_s = deadline_s
        self._burst_every = burst_every
        self._burst_multiplier = burst_multiplier
        self._task: Optional[PeriodicTask] = None
        self.sent = 0

    def start(self, until: Optional[float] = None) -> None:
        if self._task is not None:
            raise RuntimeError("workload already started")
        self._task = self._sim.call_every(self._interval, self._emit, end=until)

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _emit(self) -> None:
        packet = self._factory.build()
        self.sent += 1
        if self.sent % self._burst_every == 0:
            packet.payload_bytes *= self._burst_multiplier
        packet.created_at = self._sim.now
        packet.meta["deadline_s"] = self.deadline_s
        packet.meta["sent_at"] = self._sim.now
        self._send(packet)
