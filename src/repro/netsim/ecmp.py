"""ECMP hashing.

Backbone routers spray flows over parallel equal-cost links by hashing the
packet 5-tuple.  The paper's Section 3 points out why this is hostile to
measurement: probes with varying ports land on *different* physical paths,
so an end-to-end series blends several paths into one.  Tango defeats this
by encapsulating all traffic of a tunnel in a single fixed UDP 5-tuple.

The hash here is deterministic (no per-process randomization) so that
experiments replay identically; the per-router ``salt`` models vendor hash
seed diversity.
"""

from __future__ import annotations

import zlib

from .packet import FiveTuple

__all__ = ["ecmp_hash", "select_index"]


def ecmp_hash(five_tuple: FiveTuple, salt: int = 0) -> int:
    """Deterministic 32-bit hash of a flow 5-tuple.

    CRC32 over the canonical field encoding; real switches use CRC or
    xor-fold hashes, so collision behaviour is comparable.
    """
    key = (
        f"{five_tuple.src}|{five_tuple.dst}|{five_tuple.protocol}"
        f"|{five_tuple.sport}|{five_tuple.dport}|{salt}"
    )
    return zlib.crc32(key.encode("ascii")) & 0xFFFFFFFF


def select_index(five_tuple: FiveTuple, fanout: int, salt: int = 0) -> int:
    """Pick one of ``fanout`` equal-cost next hops for this flow.

    Raises:
        ValueError: if ``fanout`` is not positive.
    """
    if fanout <= 0:
        raise ValueError(f"fanout must be positive, got {fanout}")
    return ecmp_hash(five_tuple, salt) % fanout
