"""Forwarding nodes: hosts, routers, and programmable border switches.

Three node flavours cover everything the reproduction needs:

* :class:`HostNode` — traffic sources/sinks inside an edge network.
* :class:`RouterNode` — longest-prefix-match forwarding with optional ECMP
  groups; models both edge gateways and backbone routers.
* :class:`ProgrammableSwitch` — a router that additionally runs ingress and
  egress *programs* on every packet, the stand-in for the paper's
  eBPF/programmable-switch data plane.  Tango's sender and receiver
  programs (``repro.dataplane.programs``) attach here.

Every node owns a :class:`~repro.netsim.simclock.NodeClock`; programs read
wall-clock time only through it, which is how the unsynchronized-clock
semantics of the paper are preserved end to end.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Union

from .ecmp import select_index
from .packet import IPAddress, Packet
from .simclock import NodeClock

if TYPE_CHECKING:  # pragma: no cover
    from .events import Simulator
    from .links import Link

__all__ = [
    "Fib",
    "FibEntry",
    "Node",
    "HostNode",
    "RouterNode",
    "ProgrammableSwitch",
    "NodeStats",
]

IPNetwork = Union[ipaddress.IPv4Network, ipaddress.IPv6Network]

#: A data-plane program: called as ``program(switch, packet)``; returns the
#: (possibly re-encapsulated) packet to keep processing, or None to consume
#: it (measurement extraction, drops).
Program = Callable[["ProgrammableSwitch", Packet], Optional[Packet]]


@dataclass
class FibEntry:
    """A FIB route: destination prefix -> one or more egress links."""

    prefix: IPNetwork
    links: list["Link"]

    def __post_init__(self) -> None:
        if not self.links:
            raise ValueError(f"FIB entry for {self.prefix} has no egress links")


class Fib:
    """Longest-prefix-match forwarding table.

    Small and explicit rather than trie-based: edge and backbone tables in
    these experiments hold tens of routes, and an ordered scan keeps the
    matching semantics obvious.
    """

    def __init__(self) -> None:
        self._entries: list[FibEntry] = []

    def add_route(
        self, prefix: Union[str, IPNetwork], links: Union["Link", Sequence["Link"]]
    ) -> FibEntry:
        """Install (or replace) the route for ``prefix``.

        Accepts a single link or a sequence (an ECMP group).
        """
        network = ipaddress.ip_network(prefix) if isinstance(prefix, str) else prefix
        from .links import Link as _Link  # local import to avoid cycle

        link_list = [links] if isinstance(links, _Link) else list(links)
        self.remove_route(network)
        entry = FibEntry(prefix=network, links=link_list)
        self._entries.append(entry)
        # Keep longest prefixes first so the first containment hit wins.
        self._entries.sort(key=lambda e: e.prefix.prefixlen, reverse=True)
        return entry

    def remove_route(self, prefix: Union[str, IPNetwork]) -> bool:
        """Remove the exact route for ``prefix``; True if one existed."""
        network = ipaddress.ip_network(prefix) if isinstance(prefix, str) else prefix
        before = len(self._entries)
        self._entries = [e for e in self._entries if e.prefix != network]
        return len(self._entries) != before

    def lookup(self, address: IPAddress) -> Optional[FibEntry]:
        """Longest-prefix match, or None if no route covers ``address``."""
        for entry in self._entries:
            if entry.prefix.version == address.version and address in entry.prefix:
                return entry
        return None

    def routes(self) -> list[FibEntry]:
        """All installed entries, longest prefix first."""
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class NodeStats:
    """Per-node counters."""

    received: int = 0
    forwarded: int = 0
    delivered_local: int = 0
    dropped_no_route: int = 0
    dropped_ttl: int = 0
    consumed_by_program: int = 0


class Node:
    """Base node: a name, a wall clock, and a receive hook."""

    def __init__(self, name: str, sim: "Simulator", clock_offset: float = 0.0):
        self.name = name
        self.sim = sim
        self.clock = NodeClock(sim.clock, offset=clock_offset)
        self.stats = NodeStats()

    def receive(self, packet: Packet, ingress: Optional["Link"] = None) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class HostNode(Node):
    """An end host: delivers every received packet to an application sink."""

    def __init__(
        self,
        name: str,
        sim: "Simulator",
        clock_offset: float = 0.0,
        on_packet: Optional[Callable[[Packet, float], None]] = None,
    ) -> None:
        super().__init__(name, sim, clock_offset)
        self.received_packets: list[Packet] = []
        self._on_packet = on_packet
        #: Retain packets for inspection; long runs can disable this.
        self.keep_packets = True

    def receive(self, packet: Packet, ingress: Optional["Link"] = None) -> None:
        self.stats.received += 1
        self.stats.delivered_local += 1
        if self.keep_packets:
            self.received_packets.append(packet)
        if self._on_packet is not None:
            self._on_packet(packet, self.sim.now)


class RouterNode(Node):
    """Longest-prefix-match router with ECMP groups.

    Addresses in ``local_addresses`` terminate here (the packet is handed to
    :meth:`deliver_local`, which subclasses override).
    """

    def __init__(
        self,
        name: str,
        sim: "Simulator",
        clock_offset: float = 0.0,
        ecmp_salt: int = 0,
    ) -> None:
        super().__init__(name, sim, clock_offset)
        self.fib = Fib()
        self.local_networks: list[IPNetwork] = []
        self.ecmp_salt = ecmp_salt

    def add_local_network(self, prefix: Union[str, IPNetwork]) -> None:
        """Declare a prefix as locally terminated (host-facing)."""
        network = ipaddress.ip_network(prefix) if isinstance(prefix, str) else prefix
        self.local_networks.append(network)

    def is_local(self, address: IPAddress) -> bool:
        return any(
            n.version == address.version and address in n for n in self.local_networks
        )

    def receive(self, packet: Packet, ingress: Optional["Link"] = None) -> None:
        self.stats.received += 1
        self.process(packet, ingress)

    def process(self, packet: Packet, ingress: Optional["Link"]) -> None:
        """Route the packet: local delivery or FIB forwarding."""
        if self.is_local(packet.dst):
            self.stats.delivered_local += 1
            self.deliver_local(packet, ingress)
            return
        self.forward(packet)

    def deliver_local(self, packet: Packet, ingress: Optional["Link"]) -> None:
        """Terminate a packet addressed to this node.  Default: record only."""

    def forward(self, packet: Packet) -> None:
        """FIB lookup + ECMP selection + transmit."""
        entry = self.fib.lookup(packet.dst)
        if entry is None:
            self.stats.dropped_no_route += 1
            return
        try:
            packet.decrement_ttl()
        except ValueError:
            self.stats.dropped_ttl += 1
            return
        if len(entry.links) == 1:
            link = entry.links[0]
        else:
            index = select_index(packet.five_tuple(), len(entry.links), self.ecmp_salt)
            link = entry.links[index]
        link.transmit(self.sim, packet)
        self.stats.forwarded += 1


class ProgrammableSwitch(RouterNode):
    """A border switch running attachable data-plane programs.

    Mirrors the structure of the paper's eBPF deployment: an *ingress*
    program sees packets arriving from the wide area or the edge before
    routing, an *egress* program sees packets just before transmission.
    Programs may rewrite the header stack (encap/decap) or consume packets.

    Program ordering is the attachment order; each program receives the
    output of the previous one.
    """

    def __init__(
        self,
        name: str,
        sim: "Simulator",
        clock_offset: float = 0.0,
        ecmp_salt: int = 0,
    ) -> None:
        super().__init__(name, sim, clock_offset, ecmp_salt)
        self.ingress_programs: list[Program] = []
        self.egress_programs: list[Program] = []

    def attach_ingress(self, program: Program) -> None:
        """Run ``program`` on every packet entering this switch."""
        self.ingress_programs.append(program)

    def attach_egress(self, program: Program) -> None:
        """Run ``program`` on every packet about to be forwarded."""
        self.egress_programs.append(program)

    def receive(self, packet: Packet, ingress: Optional["Link"] = None) -> None:
        self.stats.received += 1
        current: Optional[Packet] = packet
        for program in self.ingress_programs:
            current = program(self, current)
            if current is None:
                self.stats.consumed_by_program += 1
                return
        self.process(current, ingress)

    def forward(self, packet: Packet) -> None:
        current: Optional[Packet] = packet
        for program in self.egress_programs:
            current = program(self, current)
            if current is None:
                self.stats.consumed_by_program += 1
                return
        super().forward(current)
