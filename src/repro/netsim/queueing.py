"""Queued links: bandwidth contention and drop-tail buffers.

The base :class:`~repro.netsim.links.Link` models delay as an exogenous
process — appropriate for wide-area paths whose congestion the paper
injects as calibrated events.  Edge uplinks are different: they are
*owned* by the edge network, and self-induced queueing there is a real
confounder Tango's border placement must not mismeasure.

:class:`QueuedLink` adds an M/D/1-style FIFO: packets serialize at
``bandwidth_bps``, wait behind earlier packets, and are dropped when the
buffered backlog would exceed ``buffer_bytes`` (drop-tail).  Everything
else (delay process, loss process, MTU, stats) behaves like the base
link, so it is a drop-in replacement in scenario builders.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .delaymodels import DelayModel
from .links import Link, LossModel
from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from .events import Simulator
    from .node import Node

__all__ = ["QueuedLink"]


class QueuedLink(Link):
    """FIFO link with finite bandwidth and a drop-tail buffer.

    Args:
        bandwidth_bps: link rate; serialization time is
            ``wire_bytes * 8 / bandwidth_bps``.  Mandatory here — a queue
            without a service rate is meaningless.
        buffer_bytes: maximum backlog excluding the packet in service;
            arrivals that would exceed it are dropped (``dropped_queue``).
    """

    def __init__(
        self,
        name: str,
        src: "Node",
        dst: "Node",
        delay: DelayModel,
        bandwidth_bps: float,
        buffer_bytes: int = 64 * 1024,
        loss: Optional[LossModel] = None,
        mtu: int = 1500,
        seed: int = 0,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if buffer_bytes < 0:
            raise ValueError(f"buffer must be >= 0, got {buffer_bytes}")
        super().__init__(
            name=name,
            src=src,
            dst=dst,
            delay=delay,
            loss=loss,
            bandwidth_bps=None,  # serialization handled by the queue
            mtu=mtu,
            seed=seed,
        )
        self.rate_bps = bandwidth_bps
        self.buffer_bytes = buffer_bytes
        self._busy_until = 0.0
        self._backlog_bytes = 0
        self._busy_seconds = 0.0
        self.dropped_queue = 0
        self.max_backlog_bytes = 0

    def transmit(self, sim: "Simulator", packet: Packet) -> bool:
        now = sim.now
        self.stats.transmitted += 1
        if packet.wire_bytes > self.mtu:
            self.stats.dropped_mtu += 1
            self._notify_drop(packet, "mtu")
            return False
        if self.loss.drops(self.seed, now, self.stats.transmitted):
            self.stats.dropped_loss += 1
            self._notify_drop(packet, "loss")
            return False
        if self._busy_until > now and (
            self._backlog_bytes + packet.wire_bytes > self.buffer_bytes
        ):
            self.dropped_queue += 1
            self._notify_drop(packet, "queue")
            return False

        serialization = packet.wire_bytes * 8.0 / self.rate_bps
        self._busy_seconds += serialization
        start = max(now, self._busy_until)
        departure = start + serialization
        if start > now:
            self._backlog_bytes += packet.wire_bytes
            self.max_backlog_bytes = max(
                self.max_backlog_bytes, self._backlog_bytes
            )
            sim.schedule_at(
                start, lambda size=packet.wire_bytes: self._dequeue(size)
            )
        self._busy_until = departure
        propagation = self.delay.delay_at(now)
        sim.schedule_at(departure + propagation, lambda: self._deliver(packet))
        return True

    def _dequeue(self, size: int) -> None:
        self._backlog_bytes -= size

    @property
    def queue_depth_bytes(self) -> int:
        """Current buffered backlog (excludes the packet in service)."""
        return self._backlog_bytes

    # ------------------------------------------------------------------
    # Observables (pure accounting, no behavioral effect on packet mode).
    # The fluid traffic engine and the equivalence harness read these to
    # compare aggregate predictions against the packet-level ground
    # truth; they are also useful for scenario debugging.
    # ------------------------------------------------------------------

    def utilization(self, now: float) -> float:
        """Fraction of [0, now] the link spent serializing packets.

        This is the packet-mode analogue of the fluid model's ``rho``
        (accepted-load utilization, capped at 1.0 since the link cannot
        serialize faster than its rate).
        """
        if now <= 0:
            return 0.0
        return min(self._busy_seconds / now, 1.0)

    def pending_wait_s(self, now: float) -> float:
        """Time a packet arriving at ``now`` would wait before service."""
        return max(0.0, self._busy_until - now)

    @property
    def busy_seconds(self) -> float:
        """Cumulative serialization time accepted onto the wire."""
        return self._busy_seconds
