"""Packet trace recording (a tcpdump for the simulator).

A :class:`TraceRecorder` attaches to programmable switches (as an
ingress and/or egress program that passes packets through unchanged) and
to links' drop hooks, accumulating a bounded in-memory trace that can be
filtered and exported to CSV.  Invaluable when a benchmark's numbers
look wrong and the question is "where did that packet actually go?".
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from .links import Link
from .node import ProgrammableSwitch
from .packet import Packet, TangoHeader

__all__ = ["TraceEntry", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEntry:
    """One observed packet event."""

    t: float
    where: str  # "<node>:ingress" / "<node>:egress" / "<link>:drop"
    packet_id: int
    src: str
    dst: str
    flow_label: int
    wire_bytes: int
    tango_path_id: Optional[int]
    tango_seq: Optional[int]
    note: str = ""

    def as_row(self) -> dict:
        return {
            "t": self.t,
            "where": self.where,
            "packet_id": self.packet_id,
            "src": self.src,
            "dst": self.dst,
            "flow": self.flow_label,
            "bytes": self.wire_bytes,
            "path_id": "" if self.tango_path_id is None else self.tango_path_id,
            "seq": "" if self.tango_seq is None else self.tango_seq,
            "note": self.note,
        }


class TraceRecorder:
    """Bounded in-memory packet trace.

    Args:
        max_entries: oldest entries are evicted beyond this bound, so a
            forgotten recorder cannot eat the heap on a long campaign.
    """

    def __init__(self, max_entries: int = 100_000) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self.entries: list[TraceEntry] = []
        self.evicted = 0

    # -- attachment ------------------------------------------------------------

    def tap(
        self, switch: ProgrammableSwitch, direction: str = "ingress"
    ) -> None:
        """Attach to a programmable switch (pass-through program)."""
        if direction not in ("ingress", "egress"):
            raise ValueError(f"direction must be ingress/egress, got {direction}")
        where = f"{switch.name}:{direction}"

        def program(sw: ProgrammableSwitch, packet: Packet) -> Packet:
            self._record(sw.sim.now, where, packet)
            return packet

        if direction == "ingress":
            switch.attach_ingress(program)
        else:
            switch.attach_egress(program)

    def tap_drops(self, link: Link) -> None:
        """Record every packet a link drops, with the reason."""

        def hook(packet: Packet, reason: str) -> None:
            # Link drop hooks do not carry time; the entry records the
            # moment of the drop via the owning simulator if reachable,
            # else -1 (links always have src nodes with sims).
            now = link.src.sim.now if hasattr(link.src, "sim") else -1.0
            self._record(now, f"{link.name}:drop", packet, note=reason)

        link.on_drop(hook)

    # -- recording --------------------------------------------------------------

    def _record(
        self, t: float, where: str, packet: Packet, note: str = ""
    ) -> None:
        tango = packet.find(TangoHeader)
        entry = TraceEntry(
            t=t,
            where=where,
            packet_id=packet.packet_id,
            src=str(packet.src),
            dst=str(packet.dst),
            flow_label=packet.flow_label,
            wire_bytes=packet.wire_bytes,
            tango_path_id=tango.path_id if isinstance(tango, TangoHeader) else None,
            tango_seq=tango.seq if isinstance(tango, TangoHeader) else None,
            note=note,
        )
        self.entries.append(entry)
        if len(self.entries) > self.max_entries:
            overflow = len(self.entries) - self.max_entries
            del self.entries[:overflow]
            self.evicted += overflow

    # -- queries ------------------------------------------------------------------

    def packet_journey(self, packet_id: int) -> list[TraceEntry]:
        """Every recorded hop of one packet, in time order."""
        return sorted(
            (e for e in self.entries if e.packet_id == packet_id),
            key=lambda e: e.t,
        )

    def filter(
        self,
        where: Optional[str] = None,
        flow_label: Optional[int] = None,
        path_id: Optional[int] = None,
    ) -> list[TraceEntry]:
        """Entries matching every given criterion."""
        out = self.entries
        if where is not None:
            out = [e for e in out if e.where == where]
        if flow_label is not None:
            out = [e for e in out if e.flow_label == flow_label]
        if path_id is not None:
            out = [e for e in out if e.tango_path_id == path_id]
        return list(out)

    def save_csv(self, path: Union[str, Path]) -> Path:
        """Write the trace as CSV; returns the path."""
        target = Path(path)
        with target.open("w", newline="") as handle:
            writer = csv.DictWriter(
                handle,
                fieldnames=[
                    "t",
                    "where",
                    "packet_id",
                    "src",
                    "dst",
                    "flow",
                    "bytes",
                    "path_id",
                    "seq",
                    "note",
                ],
            )
            writer.writeheader()
            for entry in self.entries:
                writer.writerow(entry.as_row())
        return target

    def __len__(self) -> int:
        return len(self.entries)
