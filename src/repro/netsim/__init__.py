"""Discrete-event packet-level network simulator.

The substrate beneath Tango's data plane: a deterministic event loop,
packets with real header stacks, links driven by calibrated delay/loss
processes, LPM routers with ECMP, and programmable border switches that
host eBPF-style programs.
"""

from .delaymodels import (
    AsymmetryEvent,
    CompositeDelay,
    ConstantDelay,
    DelayEvent,
    DelayModel,
    DiurnalVariation,
    GaussianJitterDelay,
    InstabilityEvent,
    RouteChangeEvent,
    SpikeProcess,
)
from .ecmp import ecmp_hash, select_index
from .events import Event, PeriodicTask, Simulator
from .links import ConstantLoss, Link, LinkStats, LossModel, WindowedLoss
from .node import (
    Fib,
    FibEntry,
    HostNode,
    Node,
    NodeStats,
    ProgrammableSwitch,
    RouterNode,
)
from .pcap import TraceEntry, TraceRecorder
from .queueing import QueuedLink
from .packet import (
    TANGO_UDP_PORT,
    FiveTuple,
    Header,
    Ipv4Header,
    Ipv6Header,
    Packet,
    TangoHeader,
    UdpHeader,
)
from .simclock import NodeClock, SimClock
from .ticks import TickHandle, TickScheduler
from .topology import Network
from .transport import TcpReceiver, TcpSender, TcpStats, connect_tcp
from .trace import (
    DroneTelemetryWorkload,
    PacketFactory,
    PoissonTraffic,
    ProbeGenerator,
)

__all__ = [
    "AsymmetryEvent",
    "CompositeDelay",
    "ConstantDelay",
    "ConstantLoss",
    "DelayEvent",
    "DelayModel",
    "DiurnalVariation",
    "DroneTelemetryWorkload",
    "Event",
    "Fib",
    "FibEntry",
    "FiveTuple",
    "GaussianJitterDelay",
    "Header",
    "HostNode",
    "InstabilityEvent",
    "Ipv4Header",
    "Ipv6Header",
    "Link",
    "LinkStats",
    "LossModel",
    "Network",
    "Node",
    "NodeClock",
    "NodeStats",
    "Packet",
    "PacketFactory",
    "PeriodicTask",
    "PoissonTraffic",
    "ProbeGenerator",
    "ProgrammableSwitch",
    "QueuedLink",
    "RouteChangeEvent",
    "RouterNode",
    "SimClock",
    "SpikeProcess",
    "Simulator",
    "TangoHeader",
    "TcpReceiver",
    "TcpSender",
    "TcpStats",
    "TickHandle",
    "TickScheduler",
    "TraceEntry",
    "TraceRecorder",
    "TANGO_UDP_PORT",
    "UdpHeader",
    "WindowedLoss",
    "connect_tcp",
    "ecmp_hash",
    "select_index",
]
