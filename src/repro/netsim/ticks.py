"""Batched periodic scheduling: one heap event drives N registrants.

With one :class:`~repro.netsim.events.PeriodicTask` per controller, a
simulation of a thousand edge pairs keeps a thousand recurring events in
the simulator heap — every push/pop pays O(log n) against *all* of them,
and each tick is a separate heap round-trip.  The
:class:`TickScheduler` collapses this to a single recurring event: a
time-bucketed wheel fires once per base interval and dispatches every
registrant due in that round, in **registration order** (determinism:
the callback sequence within a round is a pure function of registration
history, never of heap layout or pause/resume timing).

Registrants with coarser periods pass ``every=k`` (an integer multiple
of the base interval) and land in one bucket per k rounds, so an idle
round costs one dict lookup, not an O(registrants) scan.

Pause/resume parity with :class:`PeriodicTask`: a paused handle skips
occurrences without replaying them, and ``resume()`` schedules the next
firing one full period from *now* — quantized up to the next wheel
round, so at round-aligned times the firing sequence is identical to a
dedicated ``PeriodicTask``.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Optional

from .events import PeriodicTask, Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..profiling.core import Profiler

__all__ = ["TickScheduler", "TickHandle"]

#: Float-accumulation tolerance when mapping an absolute time onto a
#: wheel round (mirrors PeriodicTask's end-of-window tolerance).
_ROUND_EPS = 1e-9


class TickHandle:
    """One registrant of a :class:`TickScheduler`.

    Mirrors the :class:`~repro.netsim.events.PeriodicTask` control
    surface (``pause`` / ``resume`` / ``stop`` / ``paused``) so callers
    can swap a dedicated task for a shared-wheel registration without
    touching their lifecycle code.
    """

    __slots__ = (
        "_scheduler",
        "callback",
        "every",
        "name",
        "seq",
        "_paused",
        "_stopped",
        "_armed_round",
        "_last_run_round",
    )

    def __init__(
        self,
        scheduler: "TickScheduler",
        callback: Callable[[float], None],
        every: int,
        name: str,
        seq: int,
    ) -> None:
        self._scheduler = scheduler
        self.callback = callback
        self.every = every
        self.name = name
        self.seq = seq
        self._paused = False
        self._stopped = False
        # The round this handle is currently armed for; a bucket entry
        # whose round no longer matches is stale (the handle was paused
        # and re-armed elsewhere) and is skipped.
        self._armed_round = -1
        self._last_run_round = -1

    @property
    def paused(self) -> bool:
        return self._paused

    @property
    def stopped(self) -> bool:
        return self._stopped

    def pause(self) -> None:
        """Suspend firing; missed rounds are not replayed (PeriodicTask
        parity).  No-op when already paused or stopped."""
        if self._stopped or self._paused:
            return
        self._paused = True
        self._armed_round = -1

    def resume(self) -> None:
        """Resume firing one full period from now (quantized to the
        wheel).  No-op when not paused or already stopped."""
        if self._stopped or not self._paused:
            return
        self._paused = False
        self._scheduler._arm_after_resume(self)

    def stop(self) -> None:
        """Permanently deregister; the scheduler forgets the handle at
        its next due round."""
        if self._stopped:
            return
        self._stopped = True
        self._armed_round = -1
        self._scheduler._note_stopped()

    def __repr__(self) -> str:
        state = (
            "stopped" if self._stopped else "paused" if self._paused else "armed"
        )
        return f"TickHandle({self.name!r}, every={self.every}, {state})"


class TickScheduler:
    """A time-bucketed wheel multiplexing N periodic callbacks onto one
    simulator event.

    Args:
        sim: the simulator to drive.
        interval_s: base wheel period; every registrant's period is an
            integer multiple (``every``).
        start: absolute time of round 0 (defaults to ``sim.now``,
            matching ``call_every``'s immediate first fire).
        end: stop firing after this time (PeriodicTask semantics).

    Callbacks take the current simulation time: ``callback(now)`` —
    the signature :class:`~repro.traffic.splitting.SplitRebalancer`
    already exposes.
    """

    def __init__(
        self,
        sim: Simulator,
        interval_s: float,
        *,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.sim = sim
        self.interval_s = interval_s
        self._buckets: dict[int, list[TickHandle]] = {}
        self._seq = 0
        self._round = 0
        self._next_round_time = sim.now if start is None else start
        self._registered = 0
        #: Always-on counters (pulled by Profiler.capture_scheduler).
        self.rounds = 0
        self.callbacks_run = 0
        #: Optional wall-clock profiler; near-zero-cost when None.
        self.profiler: Optional["Profiler"] = None
        self._task: PeriodicTask = sim.call_every(
            interval_s, self._tick, start=self._next_round_time, end=end
        )

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    @property
    def registered(self) -> int:
        """Number of live (non-stopped) handles."""
        return self._registered

    def register(
        self,
        callback: Callable[[float], None],
        *,
        every: int = 1,
        name: str = "",
    ) -> TickHandle:
        """Add a callback firing every ``every`` wheel rounds.

        The first firing is the next wheel round at or after *now* —
        for a scheduler and registrant created at the same instant this
        matches ``call_every``'s immediate first fire.
        """
        if not isinstance(every, int) or every < 1:
            raise ValueError(f"every must be a positive int, got {every!r}")
        handle = TickHandle(self, callback, every, name, self._seq)
        self._seq += 1
        self._registered += 1
        self._arm(handle, self._round_at_or_after(self.sim.now))
        return handle

    def register_every_s(
        self,
        interval_s: float,
        callback: Callable[[float], None],
        *,
        name: str = "",
    ) -> TickHandle:
        """Register by period in seconds; must be an integer multiple of
        the wheel's base interval (within float tolerance)."""
        ratio = interval_s / self.interval_s
        every = int(round(ratio))
        if every < 1 or abs(ratio - every) > 1e-9 * max(1.0, abs(ratio)):
            raise ValueError(
                f"period {interval_s}s is not an integer multiple of the "
                f"wheel interval {self.interval_s}s"
            )
        return self.register(callback, every=every, name=name)

    def stop(self) -> None:
        """Tear down the wheel: the underlying task is cancelled and no
        registrant fires again."""
        self._task.stop()
        self._buckets.clear()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _round_at_or_after(self, time: float) -> int:
        """Index of the first wheel round firing at or after ``time``."""
        ahead = (time - self._next_round_time - _ROUND_EPS) / self.interval_s
        if ahead <= 0:
            return self._round
        return self._round + math.ceil(ahead)

    def _arm(self, handle: TickHandle, round_index: int) -> None:
        handle._armed_round = round_index
        bucket = self._buckets.get(round_index)
        if bucket is None:
            bucket = self._buckets[round_index] = []
        bucket.append(handle)

    def _arm_after_resume(self, handle: TickHandle) -> None:
        # PeriodicTask.resume arms at now + interval; quantize that
        # target up to the wheel.  At round-aligned resume times the
        # two fire at identical instants.
        target = self.sim.now + handle.every * self.interval_s
        self._arm(handle, self._round_at_or_after(target))

    def _note_stopped(self) -> None:
        self._registered -= 1

    def _tick(self) -> None:
        now = self.sim.now
        current = self._round
        self._round = current + 1
        self._next_round_time = now + self.interval_s
        self.rounds += 1
        bucket = self._buckets.pop(current, None)
        if not bucket:
            return
        # Registration order within the round, regardless of the order
        # pause/resume cycles appended entries.
        bucket.sort(key=lambda h: h.seq)
        run = 0
        for handle in bucket:
            if handle._stopped or handle._paused:
                continue
            if handle._armed_round != current:
                continue  # stale entry from a pause/resume cycle
            if handle._last_run_round == current:
                continue  # duplicate bucket entry
            handle._last_run_round = current
            handle.callback(now)
            run += 1
            if not handle._stopped and not handle._paused:
                self._arm(handle, current + handle.every)
        if run:
            self.callbacks_run += run
            profiler = self.profiler
            if profiler is not None:
                profiler.count("ticks.rounds_with_work")
                profiler.count("ticks.callbacks", run)
