"""Stochastic one-way-delay processes for simulated wide-area paths.

The paper measures real transit networks (NTT, Telia, GTT, Cogent, Level3)
between two Vultr datacenters.  We cannot reach those networks, so each
AS-level path is driven by a *delay process*: a deterministic function from
time to one-way delay, built from a base propagation delay, Gaussian jitter,
an optional diurnal swell, and injected events (route changes, instability
windows) that reproduce the paper's Figure 4 phenomenology.

Design requirements, and how they are met:

* **Determinism at arbitrary times.**  Measurement campaigns sample the
  process at millions of points, and benchmarks must be reproducible.  We
  derive per-sample noise from a counter-based generator (SplitMix64 over
  ``(seed, quantized time)``), so ``delay_at(t)`` is a pure function —
  no RNG state, no order dependence, and vectorized evaluation over numpy
  arrays is exact, not approximate.
* **Composability.**  A path's process is a :class:`CompositeDelay` of a
  base model plus any number of :class:`DelayEvent` overlays, mirroring how
  the paper narrates its traces (steady path + route change + instability).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
from scipy.special import ndtri

__all__ = [
    "DelayModel",
    "ConstantDelay",
    "GaussianJitterDelay",
    "DiurnalVariation",
    "SpikeProcess",
    "DelayEvent",
    "RouteChangeEvent",
    "InstabilityEvent",
    "AsymmetryEvent",
    "CompositeDelay",
    "overlay",
    "deterministic_uniform",
    "deterministic_normal",
]

#: Grid onto which sample times are quantized before hashing.  Finer than
#: the paper's 10 ms probe interval so consecutive probes always draw fresh
#: noise.
_NOISE_QUANTUM = 1e-4


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 finalizer: uint64 -> well-mixed uint64.

    uint64 wraparound is the point of the algorithm, so numpy's overflow
    warning is suppressed locally.
    """
    with np.errstate(over="ignore"):
        x = (x + np.uint64(0x9E3779B97F4A7C15)) & np.uint64(0xFFFFFFFFFFFFFFFF)
        x = ((x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & np.uint64(
            0xFFFFFFFFFFFFFFFF
        )
        x = ((x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & np.uint64(
            0xFFFFFFFFFFFFFFFF
        )
        return x ^ (x >> np.uint64(31))


def _time_indices(times: np.ndarray) -> np.ndarray:
    """Quantize times (seconds) to noise-grid indices."""
    return np.floor(np.asarray(times, dtype=np.float64) / _NOISE_QUANTUM).astype(
        np.int64
    )


def deterministic_uniform(seed: int, times: np.ndarray) -> np.ndarray:
    """Uniform(0, 1) noise that is a pure function of (seed, time).

    Args:
        seed: stream identifier; different paths use different seeds.
        times: array of sample times in seconds.

    Returns:
        Array of floats in the open interval (0, 1) — never exactly 0 or 1,
        so it can feed the normal inverse CDF safely.
    """
    idx = _time_indices(times).astype(np.uint64)
    mixed = _splitmix64(idx ^ _splitmix64(np.uint64(seed & 0xFFFFFFFFFFFFFFFF)))
    # 53-bit mantissa precision, shifted into (0, 1).
    u = (mixed >> np.uint64(11)).astype(np.float64) * (1.0 / 9007199254740992.0)
    return np.clip(u, 1e-12, 1.0 - 1e-12)


def deterministic_normal(seed: int, times: np.ndarray) -> np.ndarray:
    """Standard-normal noise that is a pure function of (seed, time)."""
    return ndtri(deterministic_uniform(seed, times))


class DelayModel(ABC):
    """A one-way-delay process: time (seconds) -> delay (seconds)."""

    @abstractmethod
    def delays(self, times: np.ndarray) -> np.ndarray:
        """Vectorized evaluation: delay for each sample time."""

    def delay_at(self, t: float) -> float:
        """Scalar evaluation, used on the packet-level forwarding path."""
        return float(self.delays(np.asarray([t], dtype=np.float64))[0])

    @property
    @abstractmethod
    def floor(self) -> float:
        """Minimum achievable delay (propagation floor), in seconds."""


@dataclass(frozen=True)
class ConstantDelay(DelayModel):
    """A fixed delay — ideal fiber, used in tests and intra-edge links."""

    base: float

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError(f"delay must be non-negative, got {self.base}")

    def delays(self, times: np.ndarray) -> np.ndarray:
        return np.full(np.shape(times), self.base, dtype=np.float64)

    @property
    def floor(self) -> float:
        return self.base


@dataclass(frozen=True)
class GaussianJitterDelay(DelayModel):
    """Base propagation delay plus zero-mean Gaussian jitter.

    The paper quantifies sub-second jitter as the mean standard deviation of
    a one-second rolling window of one-way delays; for this process that
    statistic converges to ``sigma``, which makes calibration to the
    reported numbers (GTT 0.01 ms, Telia 0.33 ms) direct.

    Delays are clipped from below at ``floor`` (no faster-than-light
    samples); with the calibrated sigmas, clipping essentially never fires.
    """

    base: float
    sigma: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError(f"base delay must be non-negative, got {self.base}")
        if self.sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {self.sigma}")

    def delays(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=np.float64)
        noise = deterministic_normal(self.seed, times) * self.sigma
        return np.maximum(self.base + noise, self.floor)

    @property
    def floor(self) -> float:
        # Allow a little downside so the distribution isn't one-sided, but
        # never below 90% of base (propagation cannot be beaten).
        return self.base * 0.9 if self.sigma > 0 else self.base


@dataclass(frozen=True)
class DiurnalVariation(DelayModel):
    """Sinusoidal slow swell modeling daily congestion cycles.

    Added on top of a base model via :class:`CompositeDelay`; evaluates to
    a non-negative offset with mean ``amplitude / 2``.
    """

    amplitude: float
    period: float = 86400.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.amplitude < 0:
            raise ValueError(f"amplitude must be non-negative, got {self.amplitude}")
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")

    def delays(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=np.float64)
        swing = np.sin(2.0 * math.pi * (times / self.period) + self.phase)
        return (swing + 1.0) * (self.amplitude / 2.0)

    @property
    def floor(self) -> float:
        return 0.0


@dataclass(frozen=True)
class SpikeProcess(DelayModel):
    """Sparse random delay spikes (transient queue build-ups).

    Each quantized sample independently spikes with probability
    ``rate_per_second * quantum``; spike magnitudes are uniform in
    ``(min_magnitude, max_magnitude)``.
    """

    rate_per_second: float
    min_magnitude: float
    max_magnitude: float
    seed: int = 1

    def __post_init__(self) -> None:
        if self.rate_per_second < 0:
            raise ValueError("rate_per_second must be non-negative")
        if not 0 <= self.min_magnitude <= self.max_magnitude:
            raise ValueError(
                "need 0 <= min_magnitude <= max_magnitude, got "
                f"{self.min_magnitude}, {self.max_magnitude}"
            )

    def delays(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=np.float64)
        probability = min(self.rate_per_second * _NOISE_QUANTUM, 1.0)
        gate = deterministic_uniform(self.seed, times) < probability
        magnitude = deterministic_uniform(self.seed + 1, times)
        spikes = self.min_magnitude + magnitude * (
            self.max_magnitude - self.min_magnitude
        )
        return np.where(gate, spikes, 0.0)

    @property
    def floor(self) -> float:
        return 0.0


class DelayEvent(ABC):
    """A time-windowed overlay added to a path's base delay process."""

    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active_during(self, t0: float, t1: float) -> bool:
        """True if the event window overlaps [t0, t1)."""
        return self.start < t1 and t0 < self.end

    @abstractmethod
    def extra_delays(self, times: np.ndarray) -> np.ndarray:
        """Additional delay contributed at each sample time."""


@dataclass(frozen=True)
class RouteChangeEvent(DelayEvent):
    """An intra-provider route change (paper Fig. 4, middle).

    The paper observed GTT's route at hour ~121.25: a brief period of
    erratic delay during convergence, then a new stable minimum ``shift``
    seconds higher, persisting ~10 minutes before reverting to the original
    path.

    Timeline (relative to ``start``):
        [0, transition)              erratic extra delay in (0, churn_max)
        [transition, duration)       constant +shift
        [duration, ...)              back to zero
    """

    start: float
    duration: float = 600.0
    shift: float = 5e-3
    transition: float = 30.0
    churn_max: float = 10e-3
    seed: int = 2

    def __post_init__(self) -> None:
        if self.transition > self.duration:
            raise ValueError("transition period cannot exceed event duration")

    def extra_delays(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=np.float64)
        rel = times - self.start
        extra = np.zeros_like(times)
        in_transition = (rel >= 0) & (rel < self.transition)
        in_plateau = (rel >= self.transition) & (rel < self.duration)
        if np.any(in_transition):
            churn = deterministic_uniform(self.seed, times[in_transition])
            extra[in_transition] = churn * self.churn_max
        extra[in_plateau] = self.shift
        return extra


@dataclass(frozen=True)
class InstabilityEvent(DelayEvent):
    """A period of network instability with latency spikes (Fig. 4, right).

    The paper's event lasts ~5 minutes on GTT: minor increases in one-way
    delay punctuated by major spikes reaching 78 ms against a 28 ms floor —
    while all other paths stay quiet.  ``spike_probability`` is the chance
    that any quantized sample inside the window is a major spike; remaining
    samples get a minor uniform bump.
    """

    start: float
    duration: float = 300.0
    spike_probability: float = 0.02
    spike_min: float = 10e-3
    spike_max: float = 50e-3
    minor_max: float = 2e-3
    seed: int = 3

    def __post_init__(self) -> None:
        if not 0 <= self.spike_probability <= 1:
            raise ValueError("spike_probability must be in [0, 1]")
        if not 0 <= self.spike_min <= self.spike_max:
            raise ValueError("need 0 <= spike_min <= spike_max")

    def extra_delays(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=np.float64)
        rel = times - self.start
        inside = (rel >= 0) & (rel < self.duration)
        extra = np.zeros_like(times)
        if not np.any(inside):
            return extra
        window = times[inside]
        is_spike = deterministic_uniform(self.seed, window) < self.spike_probability
        magnitude = deterministic_uniform(self.seed + 1, window)
        spikes = self.spike_min + magnitude * (self.spike_max - self.spike_min)
        minor = deterministic_uniform(self.seed + 2, window) * self.minor_max
        extra[inside] = np.where(is_spike, spikes, minor)
        return extra


@dataclass(frozen=True)
class AsymmetryEvent(DelayEvent):
    """A constant delay increase in *one direction only*.

    Used by the one-way-vs-RTT ablation (DESIGN.md E7): applied to the
    forward process but not the reverse, it is invisible to RTT/2 probing
    when paired with an equal decrease on the reverse path, yet obvious to
    Tango's one-way measurements.
    """

    start: float
    duration: float
    shift: float

    def extra_delays(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=np.float64)
        rel = times - self.start
        inside = (rel >= 0) & (rel < self.duration)
        return np.where(inside, self.shift, 0.0)


@dataclass
class CompositeDelay(DelayModel):
    """Base process plus overlays: events, diurnal swell, spike noise.

    This is the model every simulated wide-area path uses.  ``components``
    are additional always-on processes (e.g. :class:`DiurnalVariation`),
    ``events`` are time-windowed overlays.
    """

    base: DelayModel
    components: Sequence[DelayModel] = field(default_factory=tuple)
    events: Sequence[DelayEvent] = field(default_factory=tuple)

    def delays(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=np.float64)
        total = self.base.delays(times)
        for component in self.components:
            total = total + component.delays(times)
        for event in self.events:
            total = total + event.extra_delays(times)
        return total

    @property
    def floor(self) -> float:
        return self.base.floor

    def with_event(self, event: DelayEvent) -> "CompositeDelay":
        """Return a copy with one more event overlay."""
        return CompositeDelay(
            base=self.base,
            components=tuple(self.components),
            events=tuple(self.events) + (event,),
        )

    def events_overlapping(self, t0: float, t1: float) -> list[DelayEvent]:
        """Events whose windows intersect [t0, t1); used by reports."""
        return [e for e in self.events if e.active_during(t0, t1)]


def overlay(model: DelayModel, *events: DelayEvent) -> CompositeDelay:
    """Wrap any delay model with additional event overlays.

    :class:`CompositeDelay` instances gain the events in place of a fresh
    wrapper (so repeated injections don't nest); other models become the
    base of a new composite.  This is how fault injection adds delay
    spikes to an existing link without rebuilding its calibrated process.
    """
    if isinstance(model, CompositeDelay):
        return CompositeDelay(
            base=model.base,
            components=tuple(model.components),
            events=tuple(model.events) + tuple(events),
        )
    return CompositeDelay(base=model, events=tuple(events))
