"""Network container: simulator + nodes + links, with builder helpers.

A :class:`Network` owns the discrete-event :class:`Simulator` and the node
and link registries.  Scenario code (``repro.scenarios``) uses the builder
methods to assemble the data-plane topology that matches the converged BGP
control plane.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from .delaymodels import ConstantDelay, DelayModel
from .events import Simulator
from .links import Link, LossModel
from .node import HostNode, Node, ProgrammableSwitch, RouterNode
from .packet import Packet

__all__ = ["Network"]


class Network:
    """A simulated network: nodes, links, and the event loop that runs them.

    Example:
        >>> net = Network()
        >>> a = net.add_router("a")
        >>> b = net.add_router("b")
        >>> link = net.add_link("a->b", "a", "b", delay_s=0.010)
    """

    def __init__(self, sim: Optional[Simulator] = None) -> None:
        self.sim = sim or Simulator()
        self.nodes: dict[str, Node] = {}
        self.links: dict[str, Link] = {}
        self._link_seed = 1000

    # -- node builders --------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        """Register an externally constructed node."""
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name: {node.name}")
        self.nodes[node.name] = node
        return node

    def add_host(
        self,
        name: str,
        clock_offset: float = 0.0,
        on_packet: Optional[Callable[[Packet, float], None]] = None,
    ) -> HostNode:
        """Create and register a host."""
        host = HostNode(name, self.sim, clock_offset, on_packet)
        self.add_node(host)
        return host

    def add_router(
        self, name: str, clock_offset: float = 0.0, ecmp_salt: int = 0
    ) -> RouterNode:
        """Create and register a plain LPM router."""
        router = RouterNode(name, self.sim, clock_offset, ecmp_salt)
        self.add_node(router)
        return router

    def add_switch(
        self, name: str, clock_offset: float = 0.0, ecmp_salt: int = 0
    ) -> ProgrammableSwitch:
        """Create and register a programmable border switch."""
        switch = ProgrammableSwitch(name, self.sim, clock_offset, ecmp_salt)
        self.add_node(switch)
        return switch

    # -- link builders --------------------------------------------------------

    def add_link(
        self,
        name: str,
        src: Union[str, Node],
        dst: Union[str, Node],
        delay: Optional[DelayModel] = None,
        delay_s: Optional[float] = None,
        loss: Optional[LossModel] = None,
        bandwidth_bps: Optional[float] = None,
        mtu: int = 1500,
        srlgs: tuple[str, ...] = (),
    ) -> Link:
        """Create a unidirectional link.

        Exactly one of ``delay`` (a model) or ``delay_s`` (a constant in
        seconds) must be given.
        """
        if (delay is None) == (delay_s is None):
            raise ValueError("specify exactly one of delay / delay_s")
        if name in self.links:
            raise ValueError(f"duplicate link name: {name}")
        model = delay if delay is not None else ConstantDelay(delay_s)
        self._link_seed += 1
        link = Link(
            name=name,
            src=self._resolve(src),
            dst=self._resolve(dst),
            delay=model,
            loss=loss,
            bandwidth_bps=bandwidth_bps,
            mtu=mtu,
            seed=self._link_seed,
            srlgs=srlgs,
        )
        self.links[name] = link
        return link

    def add_duplex_link(
        self,
        name: str,
        a: Union[str, Node],
        b: Union[str, Node],
        delay: Optional[DelayModel] = None,
        delay_s: Optional[float] = None,
        **kwargs,
    ) -> tuple[Link, Link]:
        """Create a pair of opposite unidirectional links ``name:fwd/rev``.

        Both directions share the same delay model instance; asymmetric
        wide-area paths should instead create two :meth:`add_link` calls
        with separate calibrated models.
        """
        fwd = self.add_link(f"{name}:fwd", a, b, delay=delay, delay_s=delay_s, **kwargs)
        rev = self.add_link(f"{name}:rev", b, a, delay=delay, delay_s=delay_s, **kwargs)
        return fwd, rev

    # -- operation ------------------------------------------------------------

    def node(self, name: str) -> Node:
        """Look up a node by name (KeyError with context if missing)."""
        try:
            return self.nodes[name]
        except KeyError:
            raise KeyError(
                f"unknown node {name!r}; have {sorted(self.nodes)}"
            ) from None

    def inject(self, node: Union[str, Node], packet: Packet) -> None:
        """Hand a packet to a node as if an attached host emitted it now."""
        packet.created_at = self.sim.now
        self._resolve(node).receive(packet)

    def run(self, until: Optional[float] = None) -> None:
        """Run the event loop (see :meth:`Simulator.run`)."""
        self.sim.run(until=until)

    def _resolve(self, node: Union[str, Node]) -> Node:
        return self.node(node) if isinstance(node, str) else node
