"""Unidirectional links with delay, loss, and serialization.

A :class:`Link` is the only way packets move between nodes.  Each link owns
a :class:`~repro.netsim.delaymodels.DelayModel` (sampled at transmit time)
and a :class:`LossModel`.  Both are deterministic functions of time, so a
campaign replayed with the same seed drops exactly the same packets.

Wide-area AS-level paths are modeled as single links whose delay process is
the calibrated end-to-end one-way-delay of that path (see
``repro.scenarios.vultr``); intra-edge hops use constant-delay links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

import numpy as np

from .delaymodels import DelayEvent, DelayModel, deterministic_uniform
from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .events import Simulator
    from .node import Node

__all__ = [
    "LossModel",
    "ConstantLoss",
    "WindowedLoss",
    "OverrideLoss",
    "PacketInterceptor",
    "Link",
    "LinkStats",
]


class PacketInterceptor:
    """In-flight packet manipulation hook — the on-path attacker's seat.

    Installed on a :class:`Link`, an interceptor sees every packet that
    survives the loss draw, *before* the delay sample.  It may return the
    packet (possibly mutated), return ``None`` to silently consume it
    (a drop no loss ledger attributes), and/or call ``inject`` to place
    additional packets onto the link (replay).  Injected packets take
    their own delay sample but bypass loss and interception — they are
    already "past" the attacker.

    Implementations must be deterministic functions of (packet, time,
    internal counters); wall-clock or unseeded randomness would break
    campaign replay.
    """

    def process(
        self,
        packet: Packet,
        now: float,
        inject: Callable[[Packet], None],
    ) -> Optional[Packet]:
        raise NotImplementedError


class LossModel:
    """Base class: probability that a packet sent at time ``t`` is lost."""

    def loss_probability(self, t: float) -> float:
        raise NotImplementedError

    def drops(self, seed: int, t: float, nonce: int = 0) -> bool:
        """Deterministic Bernoulli draw for one transmission.

        ``nonce`` (the link's transmission counter) decorrelates draws
        for packets sent within the same time quantum — bursts must not
        share one coin flip.
        """
        p = self.loss_probability(t)
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        stream = (seed ^ (nonce * 0x9E3779B1)) & 0x7FFFFFFFFFFFFFFF
        u = float(deterministic_uniform(stream, np.asarray([t]))[0])
        return u < p


@dataclass(frozen=True)
class ConstantLoss(LossModel):
    """Time-invariant random loss."""

    rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {self.rate}")

    def loss_probability(self, t: float) -> float:
        return self.rate


@dataclass(frozen=True)
class WindowedLoss(LossModel):
    """Baseline loss plus elevated loss inside event windows.

    Instability periods in the paper coincide with latency spikes; elevated
    loss during the same windows lets the loss/reordering telemetry see the
    event too.
    """

    baseline: float = 0.0
    elevated: float = 0.05
    windows: Sequence[tuple[float, float]] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for name, rate in (("baseline", self.baseline), ("elevated", self.elevated)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} loss rate must be in [0, 1], got {rate}")

    @classmethod
    def around_events(
        cls, events: Sequence[DelayEvent], baseline: float = 0.0, elevated: float = 0.05
    ) -> "WindowedLoss":
        """Build windows matching a delay process's event overlays."""
        return cls(
            baseline=baseline,
            elevated=elevated,
            windows=tuple((e.start, e.end) for e in events),
        )

    def loss_probability(self, t: float) -> float:
        for start, end in self.windows:
            if start <= t < end:
                return self.elevated
        return self.baseline


@dataclass(frozen=True)
class OverrideLoss(LossModel):
    """Time-windowed loss override wrapping another loss process.

    Inside any of the (start, end) ``windows`` the override ``rate``
    applies (with its own draw stream, so injected faults never perturb
    the baseline loss draws); outside them the wrapped model is consulted
    unchanged.  This is the primitive behind fault injection — blackholes
    (rate 1.0), flaps (periodic windows), and loss bursts are all pure
    functions of time, so a replayed campaign drops exactly the same
    packets.
    """

    inner: LossModel
    windows: tuple[tuple[float, float], ...]
    rate: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"override rate must be in [0, 1], got {self.rate}")
        for start, end in self.windows:
            if end < start:
                raise ValueError(f"window end before start: ({start}, {end})")

    @classmethod
    def blackhole(cls, inner: LossModel, start: float, end: float) -> "OverrideLoss":
        """Total loss inside [start, end)."""
        return cls(inner=inner, windows=((start, end),), rate=1.0)

    @classmethod
    def flapping(
        cls,
        inner: LossModel,
        start: float,
        end: float,
        period: float,
        duty: float = 0.5,
    ) -> "OverrideLoss":
        """Link up/down cycling: down for ``duty`` of every ``period``."""
        if period <= 0:
            raise ValueError(f"flap period must be positive, got {period}")
        if not 0.0 < duty <= 1.0:
            raise ValueError(f"duty must be in (0, 1], got {duty}")
        windows = []
        t = start
        while t < end:
            windows.append((t, min(t + period * duty, end)))
            t += period
        return cls(inner=inner, windows=tuple(windows), rate=1.0)

    @classmethod
    def burst(
        cls, inner: LossModel, start: float, end: float, rate: float, seed: int = 0
    ) -> "OverrideLoss":
        """Elevated (partial) random loss inside [start, end)."""
        return cls(inner=inner, windows=((start, end),), rate=rate, seed=seed)

    def _active(self, t: float) -> bool:
        return any(start <= t < end for start, end in self.windows)

    def loss_probability(self, t: float) -> float:
        if self._active(t):
            return self.rate
        return self.inner.loss_probability(t)

    def drops(self, seed: int, t: float, nonce: int = 0) -> bool:
        if self._active(t):
            # Dedicated stream: a fault plan's seed decorrelates its draws
            # from the link's baseline ones without disturbing them.
            return super().drops(seed ^ self.seed, t, nonce)
        return self.inner.drops(seed, t, nonce)


@dataclass
class LinkStats:
    """Counters every link keeps; cheap enough to be always on."""

    transmitted: int = 0
    delivered: int = 0
    dropped_loss: int = 0
    dropped_mtu: int = 0
    dropped_intercept: int = 0
    injected: int = 0
    bytes_delivered: int = 0

    @property
    def loss_fraction(self) -> float:
        if self.transmitted == 0:
            return 0.0
        return 1.0 - self.delivered / self.transmitted


class Link:
    """A unidirectional link from ``src`` to ``dst``.

    Args:
        name: human-readable identifier used in traces and stats output.
        src: transmitting node.
        dst: receiving node.
        delay: one-way delay process.
        loss: loss process; defaults to lossless.
        bandwidth_bps: if set, serialization delay ``bytes*8/bandwidth`` is
            added per packet.  Wide-area links leave this None — the paper's
            bottleneck phenomena are injected through the delay process.
        mtu: maximum packet size in bytes; oversized packets are dropped
            (and counted), which is how tunnel-overhead bugs surface.
        seed: loss-draw stream identifier.
        srlgs: shared-risk link groups this link belongs to — named
            physical failure domains (conduits, landing stations,
            regional grids) that correlated faults take down together.
    """

    def __init__(
        self,
        name: str,
        src: "Node",
        dst: "Node",
        delay: DelayModel,
        loss: Optional[LossModel] = None,
        bandwidth_bps: Optional[float] = None,
        mtu: int = 1500,
        seed: int = 0,
        srlgs: tuple[str, ...] = (),
    ) -> None:
        if bandwidth_bps is not None and bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if mtu <= 0:
            raise ValueError(f"mtu must be positive, got {mtu}")
        self.name = name
        self.src = src
        self.dst = dst
        self.delay = delay
        self.loss = loss or ConstantLoss(0.0)
        self.bandwidth_bps = bandwidth_bps
        self.mtu = mtu
        self.seed = seed
        self.srlgs = tuple(srlgs)
        self.stats = LinkStats()
        self._drop_hook: Optional[Callable[[Packet, str], None]] = None
        self.interceptor: Optional[PacketInterceptor] = None

    def on_drop(self, hook: Callable[[Packet, str], None]) -> None:
        """Register a callback invoked as ``hook(packet, reason)`` on drops."""
        self._drop_hook = hook

    def transmit(self, sim: "Simulator", packet: Packet) -> bool:
        """Send ``packet``; deliver it to ``dst`` after the sampled delay.

        Returns:
            True if the packet was scheduled for delivery, False if dropped
            (loss or MTU).  Callers needing per-packet fate (e.g. the TCP
            model) use the return value; fire-and-forget callers ignore it.
        """
        now = sim.now
        self.stats.transmitted += 1
        if packet.wire_bytes > self.mtu:
            self.stats.dropped_mtu += 1
            self._notify_drop(packet, "mtu")
            return False
        if self.loss.drops(self.seed, now, self.stats.transmitted):
            self.stats.dropped_loss += 1
            self._notify_drop(packet, "loss")
            return False
        if self.interceptor is not None:
            maybe = self.interceptor.process(
                packet, now, lambda extra: self._inject(sim, extra)
            )
            if maybe is None:
                self.stats.dropped_intercept += 1
                self._notify_drop(packet, "intercept")
                return False
            packet = maybe
        latency = self.delay.delay_at(now)
        if self.bandwidth_bps is not None:
            latency += packet.wire_bytes * 8.0 / self.bandwidth_bps
        sim.schedule_in(latency, lambda: self._deliver(packet))
        return True

    def _inject(self, sim: "Simulator", packet: Packet) -> None:
        """Place an interceptor-originated packet onto the link.

        Bypasses loss and interception (the attacker does not attack its
        own packets) but takes a fresh delay sample at the current time.
        """
        self.stats.injected += 1
        latency = self.delay.delay_at(sim.now)
        if self.bandwidth_bps is not None:
            latency += packet.wire_bytes * 8.0 / self.bandwidth_bps
        sim.schedule_in(latency, lambda: self._deliver(packet))

    def _deliver(self, packet: Packet) -> None:
        self.stats.delivered += 1
        self.stats.bytes_delivered += packet.wire_bytes
        self.dst.receive(packet, ingress=self)

    def _notify_drop(self, packet: Packet, reason: str) -> None:
        if self._drop_hook is not None:
            self._drop_hook(packet, reason)

    def __repr__(self) -> str:
        return f"Link({self.name}: {self.src.name} -> {self.dst.name})"
