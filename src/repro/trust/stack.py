"""One-call assembly of the Byzantine-peer defense for a deployment edge.

The full stack for an edge ``E`` defending its outbound direction:

* the data plane authenticates piggybacked telemetry end-to-end (enabled
  by the deployment's ``auth_key``); the *peer's* receiver gateway is
  where tampered packets fail their MACs, and its forgery counters are
  the cooperatively-shared evidence ``E``'s trust monitor polls;
* the reliable telemetry channel feeding ``E`` tags and verifies its
  report records, and gates every delivered sample through a
  :class:`~repro.trust.plausibility.PlausibilityFilter` backed by ``E``'s
  own :class:`~repro.resilience.degraded.RttFallbackEstimator` envelope
  and (optionally) a :class:`~repro.trust.clock.ClockIntegrityMonitor`;
* a :class:`~repro.trust.policy.PeerTrustMonitor` accumulates the
  evidence and, wired into ``E``'s controller together with the degraded
  config, demotes selection to local-RTT mode while distrusted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..resilience.channel import ReliableTelemetryChannel
from ..resilience.degraded import DegradedModeConfig, RttFallbackEstimator
from ..telemetry.auth import TelemetryAuthenticator
from .clock import ClockIntegrityMonitor
from .plausibility import PlausibilityFilter
from .policy import PeerTrustMonitor, PeerTrustPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..scenarios.deployment import PacketLevelDeployment

__all__ = ["DefenseStack", "install_defense"]


@dataclass
class DefenseStack:
    """Everything :func:`install_defense` built for one edge."""

    edge: str
    estimator: RttFallbackEstimator
    monitor: Optional[ClockIntegrityMonitor]
    gate: PlausibilityFilter
    trust: PeerTrustMonitor
    degraded: DegradedModeConfig
    channel: ReliableTelemetryChannel

    def controller_kwargs(self) -> dict:
        """Keyword arguments to pass into ``TangoController(...)``."""
        return {"degraded": self.degraded, "trust": self.trust}


def install_defense(
    deployment: "PacketLevelDeployment",
    edge: str,
    key: bytes,
    clock_monitor: bool = True,
    policy: Optional[PeerTrustPolicy] = None,
    horizon_s: float = 1.0,
    heal_ticks: int = 2,
    probe_interval_s: float = 0.25,
    estimator_seed: int = 900,
) -> DefenseStack:
    """Arm the full defense stack for ``edge``'s outbound direction.

    Requires an established deployment running the reliable telemetry
    channel (the gate and record MACs live in its delivery path).  The
    returned stack's :meth:`DefenseStack.controller_kwargs` plugs into
    the edge's :class:`~repro.core.controller.TangoController`.

    Args:
        deployment: established :class:`PacketLevelDeployment`.
        edge: the defended (victim) edge name.
        key: shared MAC key for the channel's record tags (the data-plane
            tags use the deployment's ``auth_key``; passing the same key
            models one per-pairing secret).
        clock_monitor: attach the drift/step re-estimator; False freezes
            the calibration offset (the drift-fragile E17 ablation).
        policy: trust state-machine tuning (defaults are campaign-tuned).
        horizon_s: degraded-mode staleness horizon.
        heal_ticks: degraded-mode upgrade hysteresis.
        probe_interval_s: local RTT fallback probing cadence.
        estimator_seed: deterministic noise stream for the fallback probes.
    """
    if deployment.state is None:
        raise RuntimeError("deployment must be established before arming defense")
    peer = deployment.peer_of(edge)
    estimator = RttFallbackEstimator.for_deployment(
        deployment, edge, probe_interval_s=probe_interval_s, seed=estimator_seed
    )
    estimator.start()
    monitor = ClockIntegrityMonitor() if clock_monitor else None
    gate = PlausibilityFilter(envelope=estimator.estimates, monitor=monitor)
    channel = deployment.session.channel_to(edge)
    channel.authenticator = TelemetryAuthenticator(key)
    channel.gate = gate

    sources = {
        "channel-auth": lambda: channel.stats.records_forged,
        "plausibility": lambda: gate.rejected,
    }
    peer_auth = deployment.gateways[peer].authenticator
    if peer_auth is not None:
        # Forgery evidence accumulates where our outbound packets are
        # *received* — at the peer.  The edges cooperate by configuration,
        # so the peer shares its counters (in deployment: over the report
        # channel; here: read directly).
        sources["dataplane-auth"] = lambda: (
            peer_auth.stats.rejected + peer_auth.stats.replayed
        )
    trust = PeerTrustMonitor(
        policy or PeerTrustPolicy(), sources, name=f"{edge}<-{peer}"
    )
    degraded = DegradedModeConfig(
        estimates=estimator.estimates, horizon_s=horizon_s, heal_ticks=heal_ticks
    )
    stack = DefenseStack(
        edge=edge,
        estimator=estimator,
        monitor=monitor,
        gate=gate,
        trust=trust,
        degraded=degraded,
        channel=channel,
    )
    deployment.defenses[edge] = stack
    return stack
