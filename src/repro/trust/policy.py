"""Peer-trust state machine: rate the feed, not just the tunnels.

Quarantine (PR 2) evicts individual *tunnels*; this module rates the
*peer relationship* itself.  Anomaly evidence — MAC rejections, replay
hits, plausibility rejections — accumulates per control tick, and the
state machine walks ``trusted → suspect → distrusted`` with the same
hysteresis-plus-probation discipline as
:class:`~repro.core.controller.QuarantinePolicy`: demotions need
sustained evidence, re-trust is earned through a clean probation, and
repeat offenders face exponentially longer distrust periods.  While
distrusted, the controller demotes selection to degraded local-RTT mode
(the measurement status quo needs no peer honesty); healing restores the
cooperative feed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

__all__ = [
    "TRUST_TRUSTED",
    "TRUST_SUSPECT",
    "TRUST_DISTRUSTED",
    "TRUST_PROBATION",
    "PeerTrustPolicy",
    "TrustEvent",
    "PeerTrustMonitor",
]

TRUST_TRUSTED = "trusted"
TRUST_SUSPECT = "suspect"
TRUST_DISTRUSTED = "distrusted"
TRUST_PROBATION = "probation"


@dataclass(frozen=True)
class PeerTrustPolicy:
    """Tuning knobs of the peer-trust state machine.

    Attributes:
        suspect_anomalies: anomalies within a single poll that move a
            trusted peer to suspect (a lone bit-flip stays trusted).
        distrust_anomalies: cumulative anomalies while suspect that
            demote to distrusted.
        clean_polls: consecutive anomaly-free polls for a suspect peer
            to be re-trusted without ever being demoted.
        probation_delay_s: initial distrust duration before probation.
        backoff_factor: distrust-duration multiplier per re-demotion.
        max_probation_delay_s: distrust-duration ceiling.
        probation_polls: consecutive clean polls on probation required
            to restore full trust (and reset the backoff).
    """

    suspect_anomalies: int = 3
    distrust_anomalies: int = 12
    clean_polls: int = 5
    probation_delay_s: float = 3.0
    backoff_factor: float = 2.0
    max_probation_delay_s: float = 60.0
    probation_polls: int = 3

    def __post_init__(self) -> None:
        if self.suspect_anomalies < 1:
            raise ValueError("suspect_anomalies must be >= 1")
        if self.distrust_anomalies < self.suspect_anomalies:
            raise ValueError("distrust_anomalies below suspect_anomalies")
        if self.clean_polls < 1:
            raise ValueError("clean_polls must be >= 1")
        if self.probation_delay_s <= 0:
            raise ValueError("probation_delay_s must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_probation_delay_s < self.probation_delay_s:
            raise ValueError("max_probation_delay_s below probation_delay_s")
        if self.probation_polls < 1:
            raise ValueError("probation_polls must be >= 1")


@dataclass(frozen=True)
class TrustEvent:
    """One transition of the trust state machine."""

    t: float
    state: str
    anomalies: int  # cumulative anomaly count at transition time
    cause: str = ""


class PeerTrustMonitor:
    """Polls anomaly sources and walks the trust state machine.

    Args:
        policy: state-machine tuning.
        sources: name -> zero-argument callable returning a *cumulative*
            anomaly count (e.g. an authenticator's rejected+replayed, a
            plausibility filter's rejected).  Deltas between polls are
            the evidence stream.
        name: label used in diagnostics.
    """

    def __init__(
        self,
        policy: PeerTrustPolicy,
        sources: Mapping[str, Callable[[], int]],
        name: str = "peer",
    ) -> None:
        if not sources:
            raise ValueError("need at least one anomaly source")
        self.policy = policy
        self.sources = dict(sources)
        self.name = name
        self.state = TRUST_TRUSTED
        self.events: list[TrustEvent] = []
        self.anomalies_total = 0
        self._last_counts = {key: 0 for key in self.sources}
        self._suspect_accum = 0
        self._clean_streak = 0
        self._backoff_s = policy.probation_delay_s
        self._probation_at = 0.0

    @property
    def distrusted(self) -> bool:
        """True while the controller must not route on the peer feed."""
        return self.state == TRUST_DISTRUSTED

    def anomaly_breakdown(self) -> dict[str, int]:
        """Cumulative anomalies seen per source (diagnostics)."""
        return dict(self._last_counts)

    def poll(self, now: float) -> bool:
        """Advance the machine one control tick.  Returns True when the
        state changed (the controller's journaling trigger)."""
        delta = 0
        for key, source in self.sources.items():
            count = int(source())
            delta += max(0, count - self._last_counts[key])
            self._last_counts[key] = count
        self.anomalies_total += delta
        before = self.state
        handler = getattr(self, f"_poll_{self.state}")
        handler(now, delta)
        return self.state != before

    # -- per-state steps -----------------------------------------------------------

    def _poll_trusted(self, now: float, delta: int) -> None:
        if delta >= self.policy.suspect_anomalies:
            self._suspect_accum = delta
            self._clean_streak = 0
            self._transition(TRUST_SUSPECT, now, "anomaly-burst")
            if self._suspect_accum >= self.policy.distrust_anomalies:
                # One overwhelming burst: no reason to wait a poll.
                self._demote(now)

    def _poll_suspect(self, now: float, delta: int) -> None:
        self._suspect_accum += delta
        if self._suspect_accum >= self.policy.distrust_anomalies:
            self._demote(now)
        elif delta == 0:
            self._clean_streak += 1
            if self._clean_streak >= self.policy.clean_polls:
                self._suspect_accum = 0
                self._transition(TRUST_TRUSTED, now, "cleared")
        else:
            self._clean_streak = 0

    def _poll_distrusted(self, now: float, delta: int) -> None:
        if now >= self._probation_at:
            self._clean_streak = 0
            self._transition(TRUST_PROBATION, now, "probation")

    def _poll_probation(self, now: float, delta: int) -> None:
        if delta > 0:
            self._demote(now)
            return
        self._clean_streak += 1
        if self._clean_streak >= self.policy.probation_polls:
            self._backoff_s = self.policy.probation_delay_s
            self._suspect_accum = 0
            self._transition(TRUST_TRUSTED, now, "healed")

    def _demote(self, now: float) -> None:
        backoff = self._backoff_s
        self._probation_at = now + backoff
        self._backoff_s = min(
            backoff * self.policy.backoff_factor,
            self.policy.max_probation_delay_s,
        )
        self._transition(TRUST_DISTRUSTED, now, "evidence")

    def _transition(self, state: str, now: float, cause: str) -> None:
        self.state = state
        self.events.append(
            TrustEvent(
                t=now, state=state, anomalies=self.anomalies_total, cause=cause
            )
        )

    def __repr__(self) -> str:
        return (
            f"PeerTrustMonitor({self.name}, state={self.state}, "
            f"anomalies={self.anomalies_total})"
        )
