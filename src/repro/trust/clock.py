"""Clock-integrity monitoring: track the offset instead of trusting it.

Tango's soundness argument assumes the offset between the two edges'
free-running clocks is constant.  Real oscillators drift (tens of ppm)
and get slammed by NTP steps; either breaks any *absolute* check on
peer-reported one-way delays — which is exactly what the plausibility
layer performs.  Without compensation, a drifting peer clock makes every
honest sample look implausible and an honest peer look Byzantine.

:class:`ClockIntegrityMonitor` closes the loop: it observes the residual
``measured_owd - local_rtt_half`` (which equals clock offset plus path
asymmetry plus noise), fits a robust line through a rolling window —
Theil–Sen split-pair slopes and a median intercept, so a minority of
tampered samples cannot steer the fit — and exposes the *predicted*
residual for any time.  The plausibility filter subtracts the prediction
before judging a sample, so drift is re-estimated away rather than
misread as an attack; genuine steps are detected by per-path consensus
(the median path deviation jumps) and the window is rebased.
"""

from __future__ import annotations

import statistics
from collections import deque
from dataclasses import dataclass
from typing import Optional

__all__ = ["ClockEvent", "ClockIntegrityMonitor"]


@dataclass(frozen=True)
class ClockEvent:
    """One detected clock anomaly.

    Attributes:
        t: simulation time of detection.
        kind: ``drift`` (slope beyond threshold) or ``step`` (level jump).
        magnitude: slope in ppm for drift; for step, the consensus
            deviation (s) at detection — a conservative estimate that is
            at least the threshold and at most the full jump.
    """

    t: float
    kind: str
    magnitude: float


class ClockIntegrityMonitor:
    """Robust residual tracker for one peer direction.

    Samples from *all* paths of the direction are pooled: a clock problem
    shifts every path's residual identically, while an attacker tampering
    with one tunnel only contributes a minority of outliers that the
    median-based fit ignores.

    Args:
        window: rolling buffer size (samples kept for the fit).
        min_samples: observations required before predictions are made.
        step_threshold_s: median per-path deviation that counts as a step.
        drift_threshold_ppm: fitted slope (ppm) that raises a drift event.
        min_span_s: seconds of observation required before a drift event
            may be reported — early slopes are noise amplified (the
            prediction is unaffected; only event reporting waits).
    """

    #: Largest drift the re-estimation loop can track before honest
    #: samples drift out of the plausibility envelope faster than the
    #: rolling fit converges.  TNG105 rejects ``clock_drift`` plans past
    #: this bound — such a plan tests nothing but the filter's slack.
    MAX_TRACKABLE_PPM = 500.0

    #: Consecutive above-threshold fit evaluations required before a
    #: drift event is reported — one noisy slope estimate is not drift.
    DRIFT_CONFIRM = 12

    def __init__(
        self,
        window: int = 128,
        min_samples: int = 12,
        step_threshold_s: float = 2.5e-3,
        drift_threshold_ppm: float = 50.0,
        min_span_s: float = 3.0,
    ) -> None:
        if window < 8:
            raise ValueError(f"window must be >= 8, got {window}")
        if not 2 <= min_samples <= window:
            raise ValueError("need 2 <= min_samples <= window")
        if step_threshold_s <= 0:
            raise ValueError("step_threshold_s must be positive")
        if drift_threshold_ppm <= 0:
            raise ValueError("drift_threshold_ppm must be positive")
        if min_span_s < 0:
            raise ValueError("min_span_s must be >= 0")
        self.window = window
        self.min_samples = min_samples
        self.step_threshold_s = step_threshold_s
        self.drift_threshold_ppm = drift_threshold_ppm
        self.min_span_s = min_span_s
        self.samples = 0
        self.events: list[ClockEvent] = []
        self._buffer: deque[tuple[float, float]] = deque(maxlen=window)
        self._path_dev: dict[int, float] = {}
        self._paths_seen: set[int] = set()
        self._first_t: Optional[float] = None
        self._fit: Optional[tuple[float, float]] = None  # (slope, intercept)
        self._fit_dirty = True
        self._drift_flagged = False
        self._drift_streak = 0

    # -- observation ---------------------------------------------------------------

    def observe(self, path_id: int, t: float, residual_s: float) -> None:
        """Fold in one residual sample (admitted or not — the fit is the
        robust consensus, and it must see drift even while the envelope
        rejects everything)."""
        self.samples += 1
        if self._first_t is None:
            self._first_t = t
        self._paths_seen.add(path_id)
        prediction = self.predicted_residual(t)
        self._buffer.append((t, residual_s))
        self._fit_dirty = True
        if prediction is None:
            return
        self._path_dev[path_id] = residual_s - prediction
        self._maybe_step(t)
        self._maybe_drift(t)

    def _maybe_step(self, t: float) -> None:
        """Step = every path's residual jumped together (median consensus);
        a single tampered tunnel cannot move the median of 4 paths."""
        # Wait until every known path has a recorded deviation: with a
        # partial sweep, one tampered tunnel is not yet a minority.
        if len(self._path_dev) < max(2, len(self._paths_seen)):
            return
        consensus = statistics.median(self._path_dev.values())
        if abs(consensus) <= self.step_threshold_s:
            return
        self.events.append(ClockEvent(t=t, kind="step", magnitude=consensus))
        # Rebase: the pre-step window is history from a different clock
        # era; keep only the most recent few samples so the fit converges
        # on the post-step level immediately.
        keep = list(self._buffer)[-self.min_samples :]
        self._buffer.clear()
        self._buffer.extend(keep)
        self._path_dev.clear()
        self._fit_dirty = True

    def _maybe_drift(self, t: float) -> None:
        ppm = self.drift_ppm()
        if ppm is None:
            return
        if self._first_t is None or t - self._first_t < self.min_span_s:
            return
        if abs(ppm) > self.drift_threshold_ppm:
            self._drift_streak += 1
            if self._drift_streak >= self.DRIFT_CONFIRM:
                if not self._drift_flagged:
                    self._drift_flagged = True
                    self.events.append(
                        ClockEvent(t=t, kind="drift", magnitude=ppm)
                    )
        else:
            self._drift_streak = 0
            if abs(ppm) < self.drift_threshold_ppm / 2.0:
                self._drift_flagged = False  # re-arm once the clock settles

    # -- estimation ----------------------------------------------------------------

    def _fit_line(self) -> Optional[tuple[float, float]]:
        if not self._fit_dirty:
            return self._fit
        self._fit_dirty = False
        n = len(self._buffer)
        if n < self.min_samples:
            self._fit = None
            return None
        points = list(self._buffer)
        half = n // 2
        slopes = []
        for i in range(half):
            t0, r0 = points[i]
            t1, r1 = points[i + half]
            if t1 > t0:
                slopes.append((r1 - r0) / (t1 - t0))
        slope = statistics.median(slopes) if slopes else 0.0
        intercept = statistics.median(r - slope * t for t, r in points)
        self._fit = (slope, intercept)
        return self._fit

    def predicted_residual(self, t: float) -> Optional[float]:
        """Expected residual at time ``t`` (None while calibrating)."""
        fit = self._fit_line()
        if fit is None:
            return None
        slope, intercept = fit
        return intercept + slope * t

    def drift_ppm(self) -> Optional[float]:
        """Current fitted slope in parts-per-million (None while calibrating)."""
        fit = self._fit_line()
        if fit is None:
            return None
        return fit[0] * 1e6

    def __repr__(self) -> str:
        ppm = self.drift_ppm()
        return (
            f"ClockIntegrityMonitor(samples={self.samples}, "
            f"drift_ppm={'?' if ppm is None else f'{ppm:.1f}'}, "
            f"events={len(self.events)})"
        )
