"""Plausibility gating of peer-reported one-way delays.

Authentication proves a sample came from the peer; it does not prove the
sample is *sane* — a compromised peer, a replayed frame that beat the MAC
window, or a corrupted store can still report nonsense.  The filter
cross-checks every mirrored sample against knowledge the local edge owns
outright:

* **continuity** — per-path sample times must advance; a duplicate or
  rewound timestamp is a replay artifact, not a measurement;
* **freshness** — a sample older than ``max_age_s`` at delivery carries
  no routing information (and is the signature of a replay attack);
* **envelope** — the measured OWD, minus the expected clock-offset
  residual, must land within a tolerance band around the local RTT/2
  estimate for the same path (the
  :class:`~repro.resilience.degraded.RttFallbackEstimator` the degraded
  mode already maintains).

The expected residual comes from a
:class:`~repro.trust.clock.ClockIntegrityMonitor` when one is attached —
drift and steps are then re-estimated away instead of poisoning the
verdicts.  Without a monitor the filter freezes the offset it saw during
calibration, which is exactly the drift-fragile behaviour the E17
ablation demonstrates.
"""

from __future__ import annotations

import statistics
from typing import Optional

from ..telemetry.store import MeasurementStore
from .clock import ClockIntegrityMonitor

__all__ = ["PlausibilityFilter"]


class PlausibilityFilter:
    """Admit-or-reject gate for one peer direction's mirrored samples.

    Args:
        envelope: local RTT/2 estimate store (per path) — the bound
            reality check no peer can forge.
        monitor: clock-integrity tracker; None freezes the first
            calibrated offset forever (drift-fragile, for ablations).
        abs_slack_s: absolute tolerance around the predicted value.
        rel_slack: additional tolerance as a fraction of the local
            estimate (wide-area jitter scales with path length).
        max_age_s: sample age at delivery beyond which it is rejected.
        calibration_samples: residuals collected before the frozen-offset
            fallback starts judging (ignored when a monitor is attached).
    """

    def __init__(
        self,
        envelope: MeasurementStore,
        monitor: Optional[ClockIntegrityMonitor] = None,
        abs_slack_s: float = 2e-3,
        rel_slack: float = 0.35,
        max_age_s: float = 2.0,
        calibration_samples: int = 12,
    ) -> None:
        if abs_slack_s <= 0:
            raise ValueError("abs_slack_s must be positive")
        if rel_slack < 0:
            raise ValueError("rel_slack must be >= 0")
        if max_age_s <= 0:
            raise ValueError("max_age_s must be positive")
        if calibration_samples < 2:
            raise ValueError("calibration_samples must be >= 2")
        self.envelope = envelope
        self.monitor = monitor
        self.abs_slack_s = abs_slack_s
        self.rel_slack = rel_slack
        self.max_age_s = max_age_s
        self.calibration_samples = calibration_samples
        self.admitted = 0
        self.rejected_stale = 0
        self.rejected_discontinuity = 0
        self.rejected_envelope = 0
        self._last_t: dict[int, float] = {}
        self._calibration: list[float] = []
        self._frozen_offset: Optional[float] = None

    @property
    def rejected(self) -> int:
        """Total rejections — the trust policy's anomaly source."""
        return (
            self.rejected_stale
            + self.rejected_discontinuity
            + self.rejected_envelope
        )

    def admit(self, path_id: int, t: float, value: float, now: float) -> bool:
        """Judge one mirrored sample ``(path_id, t, value)`` at delivery
        time ``now``.  Only admitted samples advance the per-path
        continuity horizon — rejected ones must not be able to push it."""
        last = self._last_t.get(path_id)
        if last is not None and t <= last:
            self.rejected_discontinuity += 1
            return False
        if now - t > self.max_age_s:
            self.rejected_stale += 1
            return False
        local = self.envelope.last_value(path_id)
        if local is None:
            # No envelope yet for this path: admit, learn nothing.
            self._last_t[path_id] = t
            self.admitted += 1
            return True
        residual = value - local
        predicted = self._predicted_residual(path_id, t, residual)
        if predicted is not None:
            tolerance = self.abs_slack_s + self.rel_slack * local
            if abs(residual - predicted) > tolerance:
                self.rejected_envelope += 1
                return False
        self._last_t[path_id] = t
        self.admitted += 1
        return True

    def _predicted_residual(
        self, path_id: int, t: float, residual: float
    ) -> Optional[float]:
        """Expected offset residual at ``t`` — monitor-tracked when one is
        attached, otherwise frozen at the calibration-window median.

        The monitor observes *every* sample, judged or not: the robust
        fit is the consensus that must keep following a drifting clock
        even while individual samples are being rejected.
        """
        if self.monitor is not None:
            predicted = self.monitor.predicted_residual(t)
            self.monitor.observe(path_id, t, residual)
            return predicted
        if self._frozen_offset is None:
            self._calibration.append(residual)
            if len(self._calibration) >= self.calibration_samples:
                self._frozen_offset = statistics.median(self._calibration)
            return None
        return self._frozen_offset

    def __repr__(self) -> str:
        return (
            f"PlausibilityFilter(admitted={self.admitted}, "
            f"stale={self.rejected_stale}, "
            f"discontinuity={self.rejected_discontinuity}, "
            f"envelope={self.rejected_envelope})"
        )
