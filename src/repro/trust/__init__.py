"""Byzantine-peer defense: authenticate, sanity-check, and rate the feed.

The cooperative loop is Tango's attack surface (paper Section 6): the
controller routes on measurements its *peer* reports.  This package adds
the layers that let it keep routing when those reports are forged,
replayed, implausible, or distorted by a misbehaving clock:

* :mod:`repro.trust.plausibility` — cross-check every mirrored sample
  against the local RTT envelope and timestamp continuity before it
  reaches the policy store;
* :mod:`repro.trust.clock` — robust regression over OWD residuals that
  detects offset drift and steps, and re-estimates the offset so a
  drifting peer clock does not read as a lying peer;
* :mod:`repro.trust.policy` — the trusted → suspect → distrusted state
  machine (hysteresis + probation, mirroring
  :class:`~repro.core.controller.QuarantinePolicy`) that demotes the
  selector to degraded local-RTT mode while the peer feed is distrusted;
* :mod:`repro.trust.stack` — one-call assembly of the full defense for a
  deployment edge.
"""

from .clock import ClockEvent, ClockIntegrityMonitor
from .plausibility import PlausibilityFilter
from .policy import (
    TRUST_DISTRUSTED,
    TRUST_PROBATION,
    TRUST_SUSPECT,
    TRUST_TRUSTED,
    PeerTrustMonitor,
    PeerTrustPolicy,
    TrustEvent,
)
from .stack import DefenseStack, install_defense

__all__ = [
    "ClockEvent",
    "ClockIntegrityMonitor",
    "PlausibilityFilter",
    "PeerTrustMonitor",
    "PeerTrustPolicy",
    "TrustEvent",
    "TRUST_TRUSTED",
    "TRUST_SUSPECT",
    "TRUST_DISTRUSTED",
    "TRUST_PROBATION",
    "DefenseStack",
    "install_defense",
]
