"""Relay encapsulation hop: stitch two Tango tunnels at a member edge.

A stitched transit tunnel carries A's traffic to B *through* a third
cooperating member R when the pair lacks a disjoint direct path: the
packet rides an A→R tunnel to R's border switch, where this program
swaps the outer tunnel coordinates for an R→B tunnel — the moral
equivalent of a segment-routing label swap done with Tango's existing
prefixes-as-routes machinery ("Stitching Inter-Domain Paths over IXPs").

The Tango header is deliberately left untouched: the stitched tunnel's
own ``path_id`` and the *origin* timestamp survive the swap, so the
final receiver's measurement is the true end-to-end one-way delay (the
per-edge clock offsets telescope exactly as in the direct case) and the
stitched route participates unmodified in selectors, quarantine, SRLG
scoring and fast reroute at the sender.

The program must run *before* the relay gateway's own receiver — the
arrival endpoint is one of R's local tunnel endpoints, and the receiver
would otherwise decapsulate-and-terminate the packet.  Use
:func:`attach_relay_program`, which inserts at ingress position 0.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Optional

from ..netsim.packet import Ipv6Header, Packet, UdpHeader

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..netsim.node import ProgrammableSwitch

__all__ = ["RelayBinding", "RelayForwardProgram", "attach_relay_program"]


@dataclass(frozen=True)
class RelayBinding:
    """One stitched tunnel's swap entry at the relay switch.

    Attributes:
        path_id: the stitched tunnel's end-to-end path id (matched
            against the Tango header; never a default ``% 64 == 0`` id).
        arrival_endpoint: segment-1 remote endpoint at the relay — the
            outer destination a stitched packet arrives with.
        next_src: segment-2 local endpoint (rewritten outer source).
        next_dst: segment-2 remote endpoint at the final edge
            (rewritten outer destination; the relay FIB already routes
            it, because it is a plain R→B tunnel endpoint).
        next_sport: segment-2 tunnel source port (keeps the stitched
            flow on one ECMP sub-path of the second segment).
    """

    path_id: int
    arrival_endpoint: ipaddress.IPv6Address
    next_src: ipaddress.IPv6Address
    next_dst: ipaddress.IPv6Address
    next_sport: int


class RelayForwardProgram:
    """Ingress program performing the outer-header swap for bound ids."""

    def __init__(
        self,
        on_transit: Optional[Callable[[int, float], None]] = None,
    ) -> None:
        """``on_transit(path_id, relay_wall_clock)`` fires per relayed
        packet — the hook segment telemetry composition taps to record
        the segment-1 arrival in the relay's own clock."""
        self._bindings: dict[int, RelayBinding] = {}
        self.on_transit = on_transit
        self.relayed = 0
        self.passed_through = 0

    def bind(self, binding: RelayBinding) -> None:
        if binding.path_id in self._bindings:
            raise ValueError(f"path id {binding.path_id} already bound")
        self._bindings[binding.path_id] = binding

    def unbind(self, path_id: int) -> None:
        self._bindings.pop(path_id, None)

    @property
    def bound_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._bindings))

    def __call__(
        self, switch: "ProgrammableSwitch", packet: Packet
    ) -> Optional[Packet]:
        tango = packet.tango
        if tango is None:
            self.passed_through += 1
            return packet
        binding = self._bindings.get(tango.path_id)
        if binding is None or packet.dst != binding.arrival_endpoint:
            self.passed_through += 1
            return packet
        outer = packet.headers[0]
        udp = packet.headers[1]
        if not isinstance(outer, Ipv6Header) or not isinstance(udp, UdpHeader):
            self.passed_through += 1
            return packet
        if self.on_transit is not None:
            self.on_transit(tango.path_id, switch.clock.now())
        packet.headers[0] = replace(
            outer, src=binding.next_src, dst=binding.next_dst
        )
        packet.headers[1] = replace(udp, sport=binding.next_sport)
        self.relayed += 1
        return packet


def attach_relay_program(
    switch: "ProgrammableSwitch",
    on_transit: Optional[Callable[[int, float], None]] = None,
) -> RelayForwardProgram:
    """Install (or return the already-installed) relay program.

    Inserted at ingress position 0 so the swap happens before the
    gateway's receiver can terminate the packet at the relay.
    """
    for program in switch.ingress_programs:
        if isinstance(program, RelayForwardProgram):
            return program
    program = RelayForwardProgram(on_transit=on_transit)
    switch.ingress_programs.insert(0, program)
    return program
