"""Tango data plane: tunnel encapsulation and eBPF-style switch programs."""

from .encap import (
    TUNNEL_OVERHEAD_BYTES,
    TunnelDecapError,
    decapsulate,
    encapsulate,
    is_tango_encapsulated,
)
from .flowlet import FlowletSelector
from .programs import (
    MeasurementSink,
    PathSelector,
    TangoReceiverProgram,
    TangoSenderProgram,
    Tunnel,
    TunnelLookup,
)
from .seqnum import SequenceStamper, SequenceStats, SequenceTracker

__all__ = [
    "FlowletSelector",
    "MeasurementSink",
    "PathSelector",
    "SequenceStamper",
    "SequenceStats",
    "SequenceTracker",
    "TUNNEL_OVERHEAD_BYTES",
    "TangoReceiverProgram",
    "TangoSenderProgram",
    "Tunnel",
    "TunnelDecapError",
    "TunnelLookup",
    "decapsulate",
    "encapsulate",
    "is_tango_encapsulated",
]
