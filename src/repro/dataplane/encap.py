"""Tango tunnel encapsulation and decapsulation.

The encapsulation format follows the paper's Section 3/4.2 exactly: an
outer IP header whose *destination address selects the wide-area route*
(each Tango prefix propagates over a distinct AS path), a UDP header with
a fixed 5-tuple (pinning ECMP), and a Tango header carrying the sender
wall-clock timestamp, a per-tunnel sequence number, and a path id.
"""

from __future__ import annotations

import ipaddress
from typing import Optional, Union

from ..netsim.packet import (
    TANGO_UDP_PORT,
    Ipv6Header,
    Packet,
    TangoHeader,
    UdpHeader,
)

__all__ = [
    "TunnelDecapError",
    "encapsulate",
    "decapsulate",
    "is_tango_encapsulated",
    "TUNNEL_OVERHEAD_BYTES",
]

#: Fixed per-packet tunnel tax for IPv6 outer encapsulation (40 + 8 + 16).
TUNNEL_OVERHEAD_BYTES = (
    Ipv6Header.WIRE_BYTES + UdpHeader.WIRE_BYTES + TangoHeader.WIRE_BYTES
)


class TunnelDecapError(ValueError):
    """Raised when a packet presented for decapsulation is not a
    well-formed Tango tunnel packet."""


def encapsulate(
    packet: Packet,
    src: Union[str, ipaddress.IPv6Address],
    dst: Union[str, ipaddress.IPv6Address],
    path_id: int,
    timestamp_ns: int,
    seq: int,
    sport: int = TANGO_UDP_PORT,
    dport: int = TANGO_UDP_PORT,
    auth_tag: Optional[bytes] = None,
) -> Packet:
    """Wrap ``packet`` in a Tango tunnel toward ``dst``.

    Args:
        packet: the inner (host-addressed) packet; mutated in place.
        src: tunnel source — an address in the local edge's route prefix
            for this path.
        dst: tunnel destination — an address in the remote edge's route
            prefix for this path; this choice *is* the routing decision.
        path_id: Tango path identifier carried for attribution.
        timestamp_ns: sender wall-clock timestamp.
        seq: per-tunnel sequence number.
        sport, dport: tunnel UDP ports.  All packets of a tunnel share
            them, so core ECMP sees one flow.
        auth_tag: optional authenticated-telemetry MAC.

    Returns:
        The same packet object with three headers pushed.
    """
    tango = TangoHeader(
        timestamp_ns=timestamp_ns, seq=seq, path_id=path_id, auth_tag=auth_tag
    )
    packet.push(tango)
    packet.push(UdpHeader(sport=sport, dport=dport))
    packet.push(
        Ipv6Header(
            src=ipaddress.IPv6Address(src) if isinstance(src, str) else src,
            dst=ipaddress.IPv6Address(dst) if isinstance(dst, str) else dst,
        )
    )
    return packet


def is_tango_encapsulated(packet: Packet) -> bool:
    """True when the packet's outer headers form a Tango tunnel."""
    if len(packet.headers) < 3:
        return False
    outer, udp, tango = packet.headers[0], packet.headers[1], packet.headers[2]
    return (
        isinstance(outer, Ipv6Header)  # the prototype tunnels over IPv6
        and isinstance(udp, UdpHeader)
        and udp.dport == TANGO_UDP_PORT
        and isinstance(tango, TangoHeader)
    )


def decapsulate(packet: Packet) -> tuple[Packet, TangoHeader, Ipv6Header]:
    """Strip the tunnel headers, returning (inner packet, tango, outer IP).

    Raises:
        TunnelDecapError: if the packet is not Tango-encapsulated.
    """
    if not is_tango_encapsulated(packet):
        raise TunnelDecapError(
            f"packet {packet.packet_id} is not a Tango tunnel packet: "
            f"{[type(h).__name__ for h in packet.headers[:3]]}"
        )
    outer = packet.pop()
    packet.pop()  # UDP
    tango = packet.pop()
    assert isinstance(tango, TangoHeader) and isinstance(outer, Ipv6Header)
    return packet, tango, outer
