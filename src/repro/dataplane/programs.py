"""The Tango switch programs (eBPF stand-ins).

Two programs, exactly as in the paper's prototype (Section 4.2):

* :class:`TangoSenderProgram` — attached at *egress* of the border switch.
  Packets destined to the remote edge's host prefix are encapsulated into
  the tunnel chosen by the installed path selector, stamped with the local
  wall-clock time and a per-tunnel sequence number.
* :class:`TangoReceiverProgram` — attached at *ingress*.  Tango tunnel
  packets addressed to a local tunnel endpoint are measured (one-way delay
  = local wall clock minus carried timestamp — distorted by the constant
  clock offset, which relative comparisons cancel), tracked for loss and
  reordering, decapsulated, and forwarded on to the end host.

Both programs are plain callables matching the
:class:`~repro.netsim.node.ProgrammableSwitch` program signature, and both
run on *every* packet: Tango needs no probe traffic when data is flowing.
"""

from __future__ import annotations

import ipaddress
from typing import Callable, Iterable, Optional, Protocol

from ..netsim.node import ProgrammableSwitch
from ..netsim.packet import Packet, TangoHeader
from ..telemetry.auth import TelemetryAuthenticator
from .encap import decapsulate, encapsulate, is_tango_encapsulated
from .seqnum import SequenceStamper, SequenceTracker

__all__ = [
    "Tunnel",
    "TunnelLookup",
    "PathSelector",
    "MeasurementSink",
    "TangoSenderProgram",
    "TangoReceiverProgram",
]


class Tunnel(Protocol):
    """What the data plane needs to know about a tunnel (duck-typed;
    the concrete class lives in :mod:`repro.core.tunnels`)."""

    path_id: int
    local_endpoint: ipaddress.IPv6Address
    remote_endpoint: ipaddress.IPv6Address
    sport: int


#: Looks up the tunnels available toward a destination host address;
#: returns an empty sequence for non-Tango destinations.
TunnelLookup = Callable[[ipaddress.IPv6Address], list]


class PathSelector(Protocol):
    """The routing-decision hook (paper component 3: "logic for how a
    forwarding decision should be made based on path performance")."""

    def select(self, tunnels: list, packet: Packet, now: float) -> Tunnel:
        """Choose one tunnel from ``tunnels`` for ``packet``."""


#: Measurement delivery: (path_id, receive_wall_time_s, one_way_delay_s, header).
MeasurementSink = Callable[[int, float, float, TangoHeader], None]


class TangoSenderProgram:
    """Egress program: tunnel selection + timestamping + encapsulation."""

    def __init__(
        self,
        tunnel_lookup: TunnelLookup,
        selector: PathSelector,
        stamper: Optional[SequenceStamper] = None,
        authenticator: Optional[TelemetryAuthenticator] = None,
        on_transmit: Optional[Callable[[int, Packet], None]] = None,
    ) -> None:
        self.tunnel_lookup = tunnel_lookup
        self.selector = selector
        self.stamper = stamper or SequenceStamper()
        self.authenticator = authenticator
        self.on_transmit = on_transmit
        self.encapsulated = 0
        self.passed_through = 0

    def __call__(self, switch: ProgrammableSwitch, packet: Packet) -> Optional[Packet]:
        if is_tango_encapsulated(packet):
            # Already tunneled (e.g. re-forwarded transit traffic).
            self.passed_through += 1
            return packet
        dst = packet.dst
        if not isinstance(dst, ipaddress.IPv6Address):
            self.passed_through += 1
            return packet
        tunnels = self.tunnel_lookup(dst)
        if not tunnels:
            # Not a Tango destination: normal BGP forwarding applies.
            self.passed_through += 1
            return packet
        tunnel = self.selector.select(tunnels, packet, switch.sim.now)
        seq = self.stamper.next_for(tunnel.path_id)
        timestamp_ns = switch.clock.now_ns()
        auth_tag = None
        if self.authenticator is not None:
            auth_tag = self.authenticator.tag(timestamp_ns, seq, tunnel.path_id)
        encapsulate(
            packet,
            src=tunnel.local_endpoint,
            dst=tunnel.remote_endpoint,
            path_id=tunnel.path_id,
            timestamp_ns=timestamp_ns,
            seq=seq,
            sport=tunnel.sport,
            auth_tag=auth_tag,
        )
        self.encapsulated += 1
        if self.on_transmit is not None:
            self.on_transmit(tunnel.path_id, packet)
        return packet


class TangoReceiverProgram:
    """Ingress program: measurement extraction + decapsulation."""

    def __init__(
        self,
        local_endpoints: Iterable[ipaddress.IPv6Address],
        on_measurement: Optional[MeasurementSink] = None,
        tracker: Optional[SequenceTracker] = None,
        authenticator: Optional[TelemetryAuthenticator] = None,
    ) -> None:
        self.local_endpoints = set(local_endpoints)
        self.on_measurement = on_measurement
        self.tracker = tracker or SequenceTracker()
        self.authenticator = authenticator
        self.decapsulated = 0
        self.rejected_auth = 0
        self.passed_through = 0

    def add_endpoint(self, address: ipaddress.IPv6Address) -> None:
        """Register one more local tunnel endpoint address."""
        self.local_endpoints.add(address)

    def __call__(self, switch: ProgrammableSwitch, packet: Packet) -> Optional[Packet]:
        if not is_tango_encapsulated(packet) or packet.dst not in self.local_endpoints:
            self.passed_through += 1
            return packet
        inner, tango, _outer = decapsulate(packet)
        if self.authenticator is not None and not self.authenticator.verify(
            tango.timestamp_ns, tango.seq, tango.path_id, tango.auth_tag
        ):
            # Forged or tampered telemetry (Section 6): drop and count.
            self.rejected_auth += 1
            return None
        receive_wall = switch.clock.now()
        one_way_delay = receive_wall - tango.timestamp_ns * 1e-9
        self.tracker.observe(tango.path_id, tango.seq)
        if self.on_measurement is not None:
            self.on_measurement(tango.path_id, receive_wall, one_way_delay, tango)
        inner.meta["tango_owd_s"] = one_way_delay
        inner.meta["tango_path_id"] = tango.path_id
        inner.meta["tango_seq"] = tango.seq
        self.decapsulated += 1
        return inner
