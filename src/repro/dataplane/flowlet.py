"""Flowlet-switched load balancing across Tango tunnels.

Section 6 of the paper calls out "effective load balancing across multiple
paths in the data plane" as future work.  The standard switch-friendly
technique is *flowlet switching* (Kandula et al., "Walking the tightrope"):
a flow may be moved to a different path only when a sufficiently long gap
separates two of its packets, so reordering cannot occur as long as the
gap exceeds the path-delay disparity.

:class:`FlowletSelector` implements the
:class:`~repro.dataplane.programs.PathSelector` protocol, so it drops into
the Tango sender program in place of a single-path policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..netsim.delaymodels import deterministic_uniform
from ..netsim.packet import Packet
from .programs import Tunnel

__all__ = ["FlowletSelector"]

#: Computes relative weights for the candidate tunnels (higher = more
#: traffic).  Defaults to uniform.
WeightFunction = Callable[[list, float], list]


@dataclass
class _FlowletState:
    last_packet_at: float
    tunnel_index: int
    flowlet_count: int


class FlowletSelector:
    """Weighted flowlet-based tunnel selection.

    Args:
        gap_s: minimum inter-packet gap that opens a new flowlet.  Must
            exceed the worst-case delay difference between the tunnels for
            reordering-freedom; 50 ms is safe for the Vultr paths.
        weights: optional function ``(tunnels, now) -> [w, ...]``; called
            when a new flowlet starts.  Performance-aware policies pass
            inverse-delay weights here.
        seed: stream for the deterministic weighted draw.
    """

    def __init__(
        self,
        gap_s: float = 0.050,
        weights: Optional[WeightFunction] = None,
        seed: int = 0,
    ) -> None:
        if gap_s <= 0:
            raise ValueError(f"flowlet gap must be positive, got {gap_s}")
        self.gap_s = gap_s
        self.weights = weights
        self.seed = seed
        self._flows: dict[int, _FlowletState] = {}
        self.flowlets_started = 0
        self.switches = 0
        #: Draws where the weight vector was degenerate (all zero, or
        #: negative after clamping) and the selector fell back to uniform.
        self.uniform_fallbacks = 0
        #: Draws where at least one negative weight had to be clamped to 0.
        self.clamped_weight_draws = 0
        #: Flowlet assignments per tunnel path id, for telemetry.
        self.split_counts: dict[int, int] = {}

    def select(self, tunnels: list, packet: Packet, now: float) -> Tunnel:
        if not tunnels:
            raise ValueError("no tunnels to select from")
        key = self._flow_key(packet)
        state = self._flows.get(key)
        if state is not None and (now - state.last_packet_at) < self.gap_s:
            # Same flowlet: stickiness guarantees in-order delivery.
            state.last_packet_at = now
            index = min(state.tunnel_index, len(tunnels) - 1)
            return tunnels[index]
        flowlet_count = state.flowlet_count + 1 if state else 0
        index = self._pick(tunnels, now, key, flowlet_count)
        if state is not None and index != state.tunnel_index:
            self.switches += 1
        self._flows[key] = _FlowletState(
            last_packet_at=now, tunnel_index=index, flowlet_count=flowlet_count
        )
        self.flowlets_started += 1
        chosen = tunnels[index]
        path_id = getattr(chosen, "path_id", index)
        self.split_counts[path_id] = self.split_counts.get(path_id, 0) + 1
        return chosen

    def split_fractions(self) -> dict[int, float]:
        """Observed flowlet-split fractions per tunnel path id."""
        total = sum(self.split_counts.values())
        if total == 0:
            return {}
        return {
            path_id: count / total
            for path_id, count in sorted(self.split_counts.items())
        }

    def _flow_key(self, packet: Packet) -> int:
        if packet.flow_label:
            return packet.flow_label
        five = packet.five_tuple()
        return hash((five.src, five.dst, five.protocol, five.sport, five.dport))

    def _pick(self, tunnels: list, now: float, key: int, flowlet: int) -> int:
        if self.weights is not None:
            raw = [float(w) for w in self.weights(tunnels, now)]
            if len(raw) != len(tunnels):
                raise ValueError(
                    f"weight function returned {len(raw)} weights "
                    f"for {len(tunnels)} tunnels"
                )
            # Negative weights would corrupt the cumulative draw (the
            # running sum could decrease past u and double-select early
            # tunnels): clamp them to zero, then renormalize.  A vector
            # that is degenerate after clamping falls back to uniform.
            if any(w < 0 for w in raw):
                self.clamped_weight_draws += 1
                raw = [max(w, 0.0) for w in raw]
            total = float(sum(raw))
            if total <= 0:
                self.uniform_fallbacks += 1
                weights = [1.0 / len(tunnels)] * len(tunnels)
            else:
                weights = [w / total for w in raw]
        else:
            weights = [1.0 / len(tunnels)] * len(tunnels)
        draw_seed = (self.seed * 0x9E3779B1) ^ (key & 0xFFFFFFFF) ^ (flowlet << 32)
        u = float(deterministic_uniform(draw_seed, np.asarray([now]))[0])
        cumulative = 0.0
        for index, weight in enumerate(weights):
            cumulative += weight
            if u < cumulative:
                return index
        return len(tunnels) - 1
