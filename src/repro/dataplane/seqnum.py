"""Per-tunnel sequence numbers: loss and reordering detection.

The paper (Section 3): "adding tunnel-specific sequence numbers on packets
can allow Tango to additionally compute loss and reordering."  The sender
stamps a monotonically increasing sequence per tunnel; the receiver tracks
gaps (presumed losses) and late arrivals (reordering), reconciling a
presumed loss back into a reordering event if the packet shows up late.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["SequenceStamper", "SequenceTracker", "SequenceStats"]


class SequenceStamper:
    """Sender side: hands out the next sequence number per path."""

    def __init__(self) -> None:
        self._next: dict[int, int] = {}

    def next_for(self, path_id: int) -> int:
        """Next sequence number for ``path_id`` (starts at 0)."""
        value = self._next.get(path_id, 0)
        self._next[path_id] = value + 1
        return value

    def current(self, path_id: int) -> int:
        """How many packets have been stamped on ``path_id``."""
        return self._next.get(path_id, 0)


@dataclass
class SequenceStats:
    """Receiver-side counters for one path."""

    received: int = 0
    duplicates: int = 0
    reordered: int = 0
    presumed_lost: int = 0
    highest_seen: int = -1

    @property
    def loss_fraction(self) -> float:
        """Fraction of sent packets (by sequence space) presumed lost."""
        sent = self.highest_seen + 1
        if sent <= 0:
            return 0.0
        return self.presumed_lost / sent

    @property
    def reorder_fraction(self) -> float:
        if self.received == 0:
            return 0.0
        return self.reordered / self.received


@dataclass
class _PathState:
    stats: SequenceStats = field(default_factory=SequenceStats)
    missing: set[int] = field(default_factory=set)


class SequenceTracker:
    """Receiver side: classifies arrivals per path.

    Semantics (per path):

    * An arrival above ``highest_seen`` opens a gap: the skipped sequence
      numbers become *presumed lost*.
    * An arrival inside a known gap is a *reordering*: the presumed loss
      is reconciled away.
    * An arrival at or below ``highest_seen`` that is not in a gap is a
      *duplicate*.

    The missing-set is unbounded in theory; ``max_gap_tracking`` bounds it
    (oldest entries are forgotten and remain counted as lost), which is
    what a switch implementation with finite state would do.
    """

    def __init__(self, max_gap_tracking: int = 4096) -> None:
        if max_gap_tracking <= 0:
            raise ValueError("max_gap_tracking must be positive")
        self._paths: dict[int, _PathState] = {}
        self._max_gap_tracking = max_gap_tracking

    def observe(self, path_id: int, seq: int) -> str:
        """Record an arrival.  Returns its classification:
        ``"in-order"``, ``"reordered"``, or ``"duplicate"``.
        """
        state = self._paths.setdefault(path_id, _PathState())
        stats = state.stats
        stats.received += 1
        if seq > stats.highest_seen:
            for gap_seq in range(stats.highest_seen + 1, seq):
                state.missing.add(gap_seq)
                stats.presumed_lost += 1
            stats.highest_seen = seq
            self._trim(state)
            return "in-order"
        if seq in state.missing:
            state.missing.discard(seq)
            stats.presumed_lost -= 1
            stats.reordered += 1
            return "reordered"
        stats.duplicates += 1
        return "duplicate"

    def record_aggregate(self, path_id: int, delivered: int, lost: int) -> None:
        """Fold an aggregate observation into one path's counters.

        The fluid traffic engine (:mod:`repro.traffic.fluid`) models
        millions of packets per step and cannot stamp individual
        sequence numbers; it reports per-step delivered/lost packet
        totals instead.  Aggregate losses are final — they are *not*
        added to the missing-set, so they can never be reconciled back
        into reorderings — but they advance the sequence space exactly
        as ``delivered + lost`` individually observed packets would,
        keeping :attr:`SequenceStats.loss_fraction` and the downstream
        ``LossMonitor`` bins consistent between packet and fluid modes.
        """
        if delivered < 0 or lost < 0:
            raise ValueError("delivered and lost must be >= 0")
        if delivered == 0 and lost == 0:
            return
        state = self._paths.setdefault(path_id, _PathState())
        stats = state.stats
        stats.received += delivered
        stats.presumed_lost += lost
        stats.highest_seen += delivered + lost

    def record_aggregate_many(
        self,
        path_ids: Sequence[int],
        delivered: Sequence[int],
        lost: Sequence[int],
    ) -> None:
        """Fold aligned per-path aggregate observations into the counters.

        The batched twin of :meth:`record_aggregate` for the vectorized
        fluid engine: paths are processed in the given order and
        all-zero pairs are skipped, so the resulting counters are
        identical to an equivalent loop of scalar calls guarded by
        ``if delivered or lost``.
        """
        if not (len(path_ids) == len(delivered) == len(lost)):
            raise ValueError(
                f"length mismatch: {len(path_ids)} paths vs "
                f"{len(delivered)} delivered / {len(lost)} lost"
            )
        paths = self._paths
        for path_id, delivered_n, lost_n in zip(path_ids, delivered, lost):
            if delivered_n < 0 or lost_n < 0:
                raise ValueError("delivered and lost must be >= 0")
            if delivered_n == 0 and lost_n == 0:
                continue
            state = paths.get(path_id)
            if state is None:
                state = paths[path_id] = _PathState()
            stats = state.stats
            stats.received += delivered_n
            stats.presumed_lost += lost_n
            stats.highest_seen += delivered_n + lost_n

    def _trim(self, state: _PathState) -> None:
        if len(state.missing) <= self._max_gap_tracking:
            return
        overflow = len(state.missing) - self._max_gap_tracking
        for seq in sorted(state.missing)[:overflow]:
            state.missing.discard(seq)

    def stats_for(self, path_id: int) -> SequenceStats:
        """Counters for one path (zeros if never seen)."""
        state = self._paths.get(path_id)
        return state.stats if state else SequenceStats()

    def all_paths(self) -> dict[int, SequenceStats]:
        return {path_id: s.stats for path_id, s in self._paths.items()}
