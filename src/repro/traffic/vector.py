"""Vectorized fluid engine: per-tunnel state as contiguous float64 vectors.

:class:`VectorFluidEngine` evolves every (flow-class, tunnel) bucket of
the fluid congestion model with numpy array operations instead of the
scalar engine's per-tunnel Python loop.  The closed forms are exactly
those of :class:`~repro.traffic.fluid.FluidEngine` — M/D/1
Pollaczek–Khinchine wait, fluid backlog with the buffer bound, the
``1 - 1/rho`` overload shedding, Little's-law equilibrium seeding — and
the implementation is arranged so each elementwise operation evaluates
the *same IEEE-754 expression tree* the scalar engine does:

* vectorization runs across tunnels while the (few) flow classes keep
  the scalar engine's Python loop, so offered load accumulates per
  element in the same order (``offered += rate * fraction`` per class,
  with ``rate * 0.0`` adds for unselected tunnels, which are bitwise
  no-ops);
* reductions that the scalar engine performs with left-to-right Python
  ``sum()`` are reproduced with ``sum(vec.tolist())`` rather than
  numpy's pairwise ``np.sum``;
* integer ledger truncation uses ``astype(int64)``, which matches
  ``int()`` for the non-negative packet counts involved.

The scalar engine therefore serves as a seeded **bit-equivalence
oracle**: same deployment, same demand seed, same selector ⇒ identical
per-step rho/backlog/delay/loss, byte-identical telemetry series and
loss ledgers (see ``tests/traffic/test_vector.py``).

Telemetry leaves the engine through the batched store paths
(:meth:`~repro.telemetry.store.MeasurementStore.record_aggregate_many`,
:meth:`~repro.dataplane.seqnum.SequenceTracker.record_aggregate_many`)
so a step costs O(array ops) plus one store call per direction instead
of O(tunnels) attribute-resolved scalar calls.

Base link models are identity-cached: a :class:`ConstantDelay` /
:class:`ConstantLoss` model is evaluated once and the cached value
reused until the fault injector swaps the link's model object (swaps
are detected by an ``is`` check every step, so ``OverrideLoss``
blackholes and delay overlays behave exactly as in the scalar engine).

Engine selection mirrors the PR-4 ``use_engine("rounds")`` pattern:
:func:`create_fluid_engine` keys the :data:`ENGINES` registry with an
``engine=`` knob (``"scalar"`` | ``"vector"``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.netsim.delaymodels import ConstantDelay
from repro.netsim.links import ConstantLoss

from .demand import DemandModel
from .fluid import BLACKHOLE_LOSS, RHO_WAIT_CAP, FluidEngine, TunnelLoad

__all__ = ["VectorFluidEngine", "create_fluid_engine", "ENGINES"]


class VectorFluidEngine(FluidEngine):
    """Drop-in vectorized twin of :class:`FluidEngine`.

    Same constructor, lifecycle, observables and traces; only the step
    kernel differs.  ``last_loads`` is materialized lazily — the step
    stores the raw vectors and the per-tunnel :class:`TunnelLoad`
    dataclasses are built on first access, so steps whose loads nobody
    reads pay nothing for them.
    """

    def __init__(
        self,
        deployment: object,
        src: str,
        demand: DemandModel,
        **kwargs: object,
    ) -> None:
        super().__init__(deployment, src, demand, **kwargs)
        n = len(self.tunnels)
        self._pids: list[int] = [t.path_id for t in self.tunnels]
        self._pid_index = {pid: i for i, pid in enumerate(self._pids)}
        self._labels = [t.short_label for t in self.tunnels]
        self._cap_vec = np.array(
            [self._capacity[pid] for pid in self._pids], dtype=np.float64
        )
        self._bits_per_packet = self.packet_bytes * 8.0
        self._service_vec = self._bits_per_packet / self._cap_vec
        self._buffer_vec = self._cap_vec * self.buffer_delay_s
        self._backlog_vec = np.zeros(n, dtype=np.float64)
        self._lost_carry_vec = np.zeros(n, dtype=np.float64)
        self._delivered_carry_vec = np.zeros(n, dtype=np.float64)

        # Identity-keyed base-model caches (see module docstring).
        self._link_list = [self._links[pid] for pid in self._pids]
        self._delay_models: list[object] = [None] * n
        self._delay_const: list[bool] = [False] * n
        self._delay_vals = np.zeros(n, dtype=np.float64)
        self._loss_models: list[object] = [None] * n
        self._loss_const: list[bool] = [False] * n
        self._loss_vals = np.zeros(n, dtype=np.float64)

        # Per-class fraction vectors, keyed by the resolver's cached
        # items tuple (identity): rebuilt only when the split actually
        # changed (SplitResolver bumps its generation).
        self._frac_cache: dict[
            int, tuple[tuple[tuple[int, float], ...], np.ndarray]
        ] = {}
        self._step_arrays: Optional[
            tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = None

    # ------------------------------------------------------------------
    # Lazy last_loads
    # ------------------------------------------------------------------

    @property
    def last_loads(self) -> dict[int, TunnelLoad]:  # type: ignore[override]
        if self._loads is None:
            self._loads = self._build_loads()
        return self._loads

    @last_loads.setter
    def last_loads(self, value: dict[int, TunnelLoad]) -> None:
        # The base constructor assigns the initial empty dict through
        # this setter before the subclass state exists.
        self._loads: Optional[dict[int, TunnelLoad]] = value

    def _build_loads(self) -> dict[int, TunnelLoad]:
        arrays = self._step_arrays
        if arrays is None:
            return {}
        offered, rho, backlog, delay, loss = arrays
        loads: dict[int, TunnelLoad] = {}
        for i, pid in enumerate(self._pids):
            loads[pid] = TunnelLoad(
                path_id=pid,
                label=self._labels[i],
                offered_bps=float(offered[i]),
                capacity_bps=float(self._cap_vec[i]),
                utilization=float(rho[i]),
                backlog_bits=float(backlog[i]),
                delay_s=float(delay[i]),
                loss=float(loss[i]),
            )
        return loads

    # ------------------------------------------------------------------
    # Step kernel
    # ------------------------------------------------------------------

    def _base_models(self, now: float) -> tuple[np.ndarray, np.ndarray]:
        """Per-tunnel base delay/loss with identity-cached constants."""
        delay_vals = self._delay_vals
        loss_vals = self._loss_vals
        delay_models = self._delay_models
        delay_const = self._delay_const
        loss_models = self._loss_models
        loss_const = self._loss_const
        for i, link in enumerate(self._link_list):
            dm = link.delay
            if dm is not delay_models[i]:
                delay_models[i] = dm
                delay_const[i] = type(dm) is ConstantDelay
                if delay_const[i]:
                    delay_vals[i] = dm.delay_at(now)
            if not delay_const[i]:
                delay_vals[i] = dm.delay_at(now)
            lm = link.loss
            if lm is not loss_models[i]:
                loss_models[i] = lm
                loss_const[i] = type(lm) is ConstantLoss
                if loss_const[i]:
                    loss_vals[i] = lm.loss_probability(now)
            if not loss_const[i]:
                loss_vals[i] = lm.loss_probability(now)
        return delay_vals, loss_vals

    def _step(self) -> None:
        now = self.sim.now
        dt = now - self._last
        self._last = now
        if dt <= 0:
            return
        self.steps += 1

        # 1. Offered load: scalar class loop, vector accumulate.  The
        #    fraction vector for a class is cached until SplitResolver
        #    hands back a different items tuple.
        n = len(self._pids)
        offered = np.zeros(n, dtype=np.float64)
        for cls in self.demand.classes:
            rate = (
                self._flows[cls.flow_label]
                * cls.rate_bps
                * self.demand.surge_factor(cls.flow_label, now)
            )
            if rate <= 0:
                continue
            items = self._resolver.resolve(cls, now)
            cached = self._frac_cache.get(cls.flow_label)
            if cached is not None and cached[0] is items:
                vec = cached[1]
            else:
                vec = np.zeros(n, dtype=np.float64)
                index = self._pid_index
                for pid, fraction in items:
                    vec[index[pid]] = fraction
                self._frac_cache[cls.flow_label] = (items, vec)
            offered += rate * vec

        offered_list = offered.tolist()
        total_offered = sum(offered_list)

        # 2. Fluid queue update — same expression tree as the scalar
        #    engine, elementwise across tunnels.
        base_delay, base_loss = self._base_models(now)
        rho = offered / self._cap_vec
        inflow = offered * dt
        backlog = self._backlog_vec + inflow - self._cap_vec * dt
        over = backlog > self._buffer_vec
        lost_bits = np.where(over, backlog - self._buffer_vec, 0.0)
        backlog = np.where(over, self._buffer_vec, backlog)
        backlog = np.maximum(backlog, 0.0)
        self._backlog_vec = backlog

        overload = np.zeros(n, dtype=np.float64)
        np.divide(lost_bits, inflow, out=overload, where=inflow > 0.0)
        loss = 1.0 - (1.0 - base_loss) * (1.0 - overload)

        wait_rho = np.minimum(np.maximum(rho, 0.0), RHO_WAIT_CAP)
        wait = wait_rho / (2.0 * (1.0 - wait_rho)) * self._service_vec
        queue_wait = np.minimum(
            wait + backlog / self._cap_vec, self.buffer_delay_s
        )
        delay = base_delay + self._service_vec + queue_wait

        # 3. Telemetry: one batched store call per step (blackholed
        #    tunnels excluded, preserving staleness semantics).
        owd = delay + self._offset
        alive = loss < BLACKHOLE_LOSS
        if alive.all():
            self.receiver.inbound.record_aggregate_many(
                self._pids, now, owd.tolist()
            )
        elif alive.any():
            keep = np.flatnonzero(alive).tolist()
            self.receiver.inbound.record_aggregate_many(
                [self._pids[i] for i in keep], now, owd[keep].tolist()
            )

        # 4. Loss ledger: carries computed for every tunnel (a zero
        #    inflow contributes rate*0.0 terms that leave the carry
        #    bit-unchanged), folded in via the batched tracker path
        #    which skips all-zero pairs exactly like the scalar guard.
        packets = inflow / self._bits_per_packet
        lost_f = packets * loss + self._lost_carry_vec
        delivered_f = packets * (1.0 - loss) + self._delivered_carry_vec
        lost_n = lost_f.astype(np.int64)
        delivered_n = delivered_f.astype(np.int64)
        self._lost_carry_vec = lost_f - lost_n
        self._delivered_carry_vec = delivered_f - delivered_n
        self.sender.tracker.record_aggregate_many(
            self._pids, delivered_n.tolist(), lost_n.tolist()
        )

        # 5. Lazy loads + class bucket evolution + traces (identical to
        #    the scalar engine).
        self._step_arrays = (offered, rho, backlog, delay, loss)
        self._loads = None

        for cls in self.demand.classes:
            flows = self._flows[cls.flow_label]
            arrivals = self.demand.arrivals_between(cls, now - dt, now)
            departures = flows * dt / cls.mean_duration_s
            self._flows[cls.flow_label] = max(0.0, flows + arrivals - departures)

        self.peak_concurrent_flows = max(
            self.peak_concurrent_flows, self.concurrent_flows
        )

        if self.record_traces:
            if total_offered > 0:
                split = {
                    pid: off / total_offered
                    for pid, off in zip(self._pids, offered_list)
                }
            else:
                split = {pid: 0.0 for pid in self._pids}
            self.split_trace.append((now, split))
            self.concurrency_trace.append((now, self.concurrent_flows))

        profiler = self.profiler
        if profiler is not None:
            profiler.count("fluid.steps")
            profiler.count("fluid.bucket_updates", self._updates_per_step)


#: Engine registry for the ``engine=`` knob (PR-4 ``use_engine`` pattern).
ENGINES: dict[str, type[FluidEngine]] = {
    "scalar": FluidEngine,
    "vector": VectorFluidEngine,
}


def create_fluid_engine(
    deployment: object,
    src: str,
    demand: DemandModel,
    *,
    engine: str = "scalar",
    **kwargs: object,
) -> FluidEngine:
    """Build a fluid engine by name: ``"scalar"`` (oracle) or ``"vector"``."""
    try:
        engine_cls = ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown fluid engine {engine!r}; expected one of {sorted(ENGINES)}"
        ) from None
    return engine_cls(deployment, src, demand, **kwargs)
