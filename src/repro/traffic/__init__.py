"""Flow-level traffic engine: demand, fluid congestion, load-aware splits.

The packet-level simulator (:mod:`repro.netsim`) is exact but caps
scenarios at thousands of packets; serving "heavy traffic from millions
of users" (ROADMAP north star) needs an aggregate model.  This package
adds one:

* :mod:`repro.traffic.demand` — seeded traffic-matrix and flow-arrival
  generators (heavy-tailed sizes, diurnal curves, surge windows).
* :mod:`repro.traffic.fluid` — a deterministic fixed-step fluid engine
  pushing aggregate offered load through the Tango tunnels, computing
  per-link utilization, queueing delay inflation, and loss beyond
  capacity, and feeding the results into the existing telemetry stores
  so every selector and quarantine policy works unchanged.
* :mod:`repro.traffic.splitting` — load-aware split weights and a
  weighted-split path selector.
* :mod:`repro.traffic.equivalence` — the fluid-vs-packet validation
  harness.
* :mod:`repro.traffic.bench` — standard workloads and the
  ``BENCH_TRAFFIC.json`` emitter.
"""

from .demand import DemandModel, FlowClass, SurgeWindow, standard_flow_classes
from .fluid import (
    FluidEngine,
    SplitResolver,
    TunnelLoad,
    fluid_overload_loss,
    fluid_wait_s,
)
from .splitting import LoadAwareWeights, SplitRebalancer, WeightedSplitSelector
from .vector import ENGINES, VectorFluidEngine, create_fluid_engine

__all__ = [
    "DemandModel",
    "FlowClass",
    "SurgeWindow",
    "standard_flow_classes",
    "FluidEngine",
    "SplitResolver",
    "TunnelLoad",
    "fluid_wait_s",
    "fluid_overload_loss",
    "LoadAwareWeights",
    "SplitRebalancer",
    "WeightedSplitSelector",
    "ENGINES",
    "VectorFluidEngine",
    "create_fluid_engine",
]
