"""Fluid-vs-packet equivalence: validating the aggregate model.

Runs the same single-bottleneck workload through both models:

* **packet** — deterministic-Poisson arrivals into a
  :class:`~repro.netsim.queueing.QueuedLink` (fixed-size packets, FIFO,
  drop-tail), measuring mean sojourn delay and delivered fraction;
* **fluid** — the closed-form predictions the fluid engine uses
  (:func:`~repro.traffic.fluid.fluid_wait_s` below capacity,
  :func:`~repro.traffic.fluid.fluid_overload_loss` above).

The acceptance gate (EXPERIMENTS.md E16) requires per-tunnel mean delay
within 10% and loss within 2 percentage points across the standard
utilization sweep; :func:`run_equivalence` returns structured points the
bench and CLI check against those tolerances.

Scaled-down capacities on purpose: at 10 Mbps a 1500-byte packet
serializes in 1.2 ms, so queueing effects are large relative to the
propagation delay and a mismatch between the models cannot hide in the
noise (at 10 Gbps the P-K term is microseconds and everything "matches"
trivially).
"""

from __future__ import annotations

import ipaddress
import math
from dataclasses import dataclass

import numpy as np

from repro.netsim.delaymodels import ConstantDelay, deterministic_uniform
from repro.netsim.events import Simulator
from repro.netsim.node import HostNode
from repro.netsim.packet import TANGO_UDP_PORT, Ipv6Header, Packet, UdpHeader
from repro.netsim.queueing import QueuedLink

from .fluid import fluid_overload_loss, fluid_wait_s

__all__ = ["EquivalencePoint", "run_equivalence"]

#: Header overhead of the test packets (IPv6 + UDP).
_HEADER_BYTES = 48


@dataclass(frozen=True)
class EquivalencePoint:
    """One utilization point of the fluid-vs-packet comparison."""

    rho: float
    packets: int
    packet_delay_s: float
    fluid_delay_s: float
    delay_rel_error: float
    packet_loss: float
    fluid_loss: float
    loss_error_pp: float


def _poisson_gaps(seed: int, n: int, rate_per_s: float) -> np.ndarray:
    """Deterministic exponential inter-arrival gaps (inverse CDF).

    Counter-based: draw i uses quantized time ``i`` of the seed's
    stream, so the schedule is a pure function of (seed, n, rate).
    """
    u = deterministic_uniform(seed, np.arange(n, dtype=np.float64))
    return -np.log(u) / rate_per_s


def _packet_run(
    rho: float,
    *,
    capacity_bps: float,
    base_delay_s: float,
    packet_bytes: int,
    packets: int,
    buffer_delay_s: float,
    seed: int,
    warmup_fraction: float = 0.1,
) -> tuple[float, float]:
    """Mean sojourn delay and loss of one packet-level QueuedLink run."""
    sim = Simulator()
    delays: list[float] = []

    def on_packet(packet: Packet, now: float) -> None:
        delays.append(now - packet.created_at)

    src = HostNode("src", sim)
    dst = HostNode("dst", sim, on_packet=on_packet)
    dst.keep_packets = False
    link = QueuedLink(
        "bottleneck",
        src,
        dst,
        delay=ConstantDelay(base_delay_s),
        bandwidth_bps=capacity_bps,
        buffer_bytes=int(capacity_bps * buffer_delay_s / 8.0),
        seed=seed,
    )

    rate_per_s = rho * capacity_bps / (packet_bytes * 8.0)
    gaps = _poisson_gaps(seed ^ 0x7A11, packets, rate_per_s)
    send_times = np.cumsum(gaps)
    payload = packet_bytes - _HEADER_BYTES

    def send(at: float) -> None:
        packet = Packet(
            headers=[
                Ipv6Header(
                    src=ipaddress.IPv6Address("2001:db8:1::1"),
                    dst=ipaddress.IPv6Address("2001:db8:2::1"),
                ),
                UdpHeader(sport=40_000, dport=TANGO_UDP_PORT),
            ],
            payload_bytes=payload,
            created_at=at,
        )
        link.transmit(sim, packet)

    for at in send_times:
        sim.schedule_at(float(at), lambda at=float(at): send(at))
    sim.run(until=float(send_times[-1]) + 5.0)

    warmup = int(len(delays) * warmup_fraction)
    steady = delays[warmup:] if len(delays) > warmup else delays
    mean_delay = float(np.mean(steady)) if steady else math.inf
    loss = 1.0 - len(delays) / packets
    return mean_delay, loss


def run_equivalence(
    utilizations: tuple[float, ...] = (0.3, 0.6, 0.8),
    overloads: tuple[float, ...] = (1.3,),
    *,
    packets: int = 40_000,
    capacity_bps: float = 10e6,
    base_delay_s: float = 0.028,
    packet_bytes: int = 1500,
    buffer_delay_s: float = 0.1,
    seed: int = 7,
) -> list[EquivalencePoint]:
    """Sweep utilizations through both models and compare.

    Below capacity the fluid prediction is ``base + service +
    fluid_wait_s(rho)`` against the packet run's mean sojourn; above it
    the loss comparison is ``fluid_overload_loss(rho)`` against the
    delivered fraction (and the delay comparison adds one full buffer
    drain, the saturated queue's wait).
    """
    points: list[EquivalencePoint] = []
    service_s = packet_bytes * 8.0 / capacity_bps
    for rho in tuple(utilizations) + tuple(overloads):
        measured_delay, measured_loss = _packet_run(
            rho,
            capacity_bps=capacity_bps,
            base_delay_s=base_delay_s,
            packet_bytes=packet_bytes,
            packets=packets,
            buffer_delay_s=buffer_delay_s,
            seed=seed,
        )
        backlog_wait = buffer_delay_s if rho > 1.0 else 0.0
        queue_wait = min(
            fluid_wait_s(rho, service_s) + backlog_wait, buffer_delay_s
        )
        fluid_delay = base_delay_s + service_s + queue_wait
        fluid_loss = fluid_overload_loss(rho)
        points.append(
            EquivalencePoint(
                rho=rho,
                packets=packets,
                packet_delay_s=measured_delay,
                fluid_delay_s=fluid_delay,
                delay_rel_error=abs(fluid_delay - measured_delay)
                / max(measured_delay, 1e-12),
                packet_loss=measured_loss,
                fluid_loss=fluid_loss,
                loss_error_pp=abs(fluid_loss - measured_loss) * 100.0,
            )
        )
    return points
