"""Deterministic fixed-step fluid congestion engine.

Pushes aggregate offered load (from :mod:`repro.traffic.demand`) through
the Tango tunnels of an established deployment, computing per-tunnel
utilization, queueing-delay inflation, and loss beyond capacity, and
feeding the results into the *existing* telemetry path:

* per-tunnel delay samples land in the receiver gateway's ``inbound``
  :class:`~repro.telemetry.store.MeasurementStore` (with the calibrated
  clock offset applied), so the deployment's ``TelemetryMirror`` reports
  them back to the sender and every delay-based selector
  (``LowestDelaySelector``, ``HysteresisSelector``, ...) works unchanged;
* aggregate delivered/lost packet counts land in the sender's
  ``SequenceTracker`` via :meth:`record_aggregate`, so ``LossMonitor``,
  ``LossAwareSelector`` and ``QuarantinePolicy`` see fluid-mode loss.

The congestion model is a fluid queue with a Pollaczek–Khinchine
stochastic term: below capacity the expected M/D/1 wait
``rho / (2 (1 - rho)) * service`` applies; above capacity a fluid
backlog grows at ``(offered - capacity)`` until the buffer bound
(``capacity * buffer_delay_s``), after which the excess is lost —
yielding the classic steady-state overload loss ``1 - 1/rho`` and a
delay inflation of one full buffer drain.  Both regimes are validated
against the packet-level :class:`~repro.netsim.queueing.QueuedLink` by
:mod:`repro.traffic.equivalence`.

Scale: flows are aggregated into per-(flow-class, tunnel) buckets of
*float* counts, so a step costs O(classes x tunnels) regardless of how
many million concurrent flows the buckets represent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.netsim.packet import TANGO_UDP_PORT, Ipv6Header, Packet, UdpHeader

from .demand import DemandModel, FlowClass

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.profiling.core import Profiler

__all__ = [
    "FluidEngine",
    "SplitResolver",
    "TunnelLoad",
    "fluid_wait_s",
    "fluid_overload_loss",
]

#: Utilization cap for the stochastic (P-K) wait term: beyond capacity
#: the *fluid backlog* models the delay growth, so the stochastic term
#: is clamped instead of diverging.
RHO_WAIT_CAP = 0.995

#: A sample whose loss reaches this level is treated as a blackhole: no
#: telemetry sample is recorded, so staleness detection fires exactly as
#: it does in packet mode when every probe is dropped.
BLACKHOLE_LOSS = 0.999


def fluid_wait_s(rho: float, service_s: float) -> float:
    """Expected M/D/1 queueing wait at utilization ``rho``.

    Pollaczek–Khinchine with deterministic service (the packet
    simulator serializes fixed-size packets): ``W = rho / (2 (1 - rho))
    * service``.  Clamped at :data:`RHO_WAIT_CAP` — overload delay is
    carried by the explicit fluid backlog, not this term.
    """
    if service_s < 0:
        raise ValueError("service_s must be >= 0")
    rho = min(max(rho, 0.0), RHO_WAIT_CAP)
    return rho / (2.0 * (1.0 - rho)) * service_s


def fluid_overload_loss(rho: float) -> float:
    """Steady-state loss fraction of a full buffer at utilization ``rho``.

    With offered rate ``rho * C`` and drain rate ``C``, a saturated
    buffer sheds ``1 - 1/rho`` of arrivals; below capacity there is no
    steady-state overload loss.
    """
    if rho <= 1.0:
        return 0.0
    return 1.0 - 1.0 / rho


@dataclass(frozen=True)
class TunnelLoad:
    """One tunnel's load snapshot for one engine step."""

    path_id: int
    label: str
    offered_bps: float
    capacity_bps: float
    utilization: float
    backlog_bits: float
    delay_s: float
    loss: float


class SplitResolver:
    """Per-class split resolution with an unchanged-weights cache.

    Both fluid engines resolve one split per (flow class, step).  For
    static or slowly-refreshing selectors the resolved fractions are
    identical step after step, yet the scalar engine used to rebuild and
    ``sorted()`` the dict every time.  The resolver keys a cache on the
    selector identity plus the *raw* selector output (the weight vector,
    or the chosen path id), so the normalized items are rebuilt only
    when the selector actually moved.  Selectors that implement the
    optional ``split_token(tunnels, now)`` protocol (e.g.
    :class:`~repro.traffic.splitting.WeightedSplitSelector`) shortcut
    even the O(tunnels) weight scan: a stable token means the cached
    items are provably current, and a ``None`` token (refresh due,
    fallback possible) drops to the full path, so policy refresh clocks
    still advance exactly on schedule.  For selectors without a token,
    ``split_weights``/``select`` is invoked every step — only the
    normalization and sort are skipped — so selector-internal state
    (refresh clocks, split counters, flowlet tables) evolves exactly as
    before.

    ``splits_recomputed`` counts rebuilds (the cache observability the
    profiling tests assert on); ``generation`` increments with every
    rebuild so the vectorized engine can cache a fraction *vector* and
    cheaply detect staleness.
    """

    __slots__ = (
        "sender",
        "tunnels",
        "_packets",
        "_cache",
        "splits_recomputed",
        "generation",
    )

    def __init__(
        self,
        sender: object,
        tunnels: list,
        packets: dict[int, Packet],
    ) -> None:
        self.sender = sender
        self.tunnels = tunnels
        self._packets = packets
        # flow_label -> (selector, raw key, sorted (path_id, fraction) items)
        self._cache: dict[
            int, tuple[object, object, tuple[tuple[int, float], ...]]
        ] = {}
        self.splits_recomputed = 0
        self.generation = 0

    def resolve(
        self, cls: FlowClass, now: float
    ) -> tuple[tuple[int, float], ...]:
        """Sorted ``(path_id, fraction)`` items for one class at ``now``."""
        selector = self.sender.selector
        weights_fn = getattr(selector, "split_weights", None)
        if callable(weights_fn):
            token_fn = getattr(selector, "split_token", None)
            if token_fn is not None:
                token = token_fn(self.tunnels, now)
                if token is not None:
                    cached = self._cache.get(cls.flow_label)
                    if (
                        cached is not None
                        and cached[0] is selector
                        and (cached[1] is token or cached[1] == token)
                    ):
                        return cached[2]
            raw = [max(0.0, float(w)) for w in weights_fn(self.tunnels, now)]
            total = sum(raw)
            if total > 0:
                key: object = tuple(raw)
                if token_fn is not None:
                    key = token_fn(self.tunnels, now) or key
                cached = self._cache.get(cls.flow_label)
                if (
                    cached is not None
                    and cached[0] is selector
                    and cached[1] == key
                ):
                    return cached[2]
                items = tuple(
                    sorted(
                        (t.path_id, w / total)
                        for t, w in zip(self.tunnels, raw)
                    )
                )
                self._remember(cls.flow_label, selector, key, items)
                return items
        chosen = selector.select(self.tunnels, self._packets[cls.flow_label], now)
        key = ("select", chosen.path_id)
        cached = self._cache.get(cls.flow_label)
        if cached is not None and cached[0] is selector and cached[1] == key:
            return cached[2]
        items = ((chosen.path_id, 1.0),)
        self._remember(cls.flow_label, selector, key, items)
        return items

    def _remember(
        self,
        flow_label: int,
        selector: object,
        key: object,
        items: tuple[tuple[int, float], ...],
    ) -> None:
        self._cache[flow_label] = (selector, key, items)
        self.splits_recomputed += 1
        self.generation += 1


class FluidEngine:
    """Fixed-step fluid traffic engine for one direction of a deployment.

    Args:
        deployment: an established scenario deployment (e.g.
            ``VultrDeployment``) exposing ``sim``, ``gateway``,
            ``tunnels``, ``wan_link``, ``peer_of`` and
            ``clock_offset_delta``.
        src: sending edge name (``"ny"`` sends NY→LA).
        demand: the demand model driving offered load.
        step_s: engine step; also the telemetry sampling period.
        default_capacity_bps: capacity for paths whose calibration does
            not declare ``capacity_bps``.
        packet_bytes: wire size used to convert bits to packets for the
            loss ledger and the service time in the P-K term.
        buffer_delay_s: bottleneck buffer depth expressed as drain time
            (buffer_bits = capacity * buffer_delay_s).
        record_traces: keep per-step split/concurrency traces (cheap;
            disable only for very long runs).
    """

    def __init__(
        self,
        deployment: object,
        src: str,
        demand: DemandModel,
        *,
        step_s: float = 0.1,
        default_capacity_bps: float = 10e9,
        packet_bytes: int = 1500,
        buffer_delay_s: float = 0.1,
        record_traces: bool = True,
    ) -> None:
        if step_s <= 0:
            raise ValueError("step_s must be > 0")
        self.deployment = deployment
        self.src = src
        self.demand = demand
        self.step_s = step_s
        self.packet_bytes = packet_bytes
        self.buffer_delay_s = buffer_delay_s
        self.record_traces = record_traces

        self.sim = deployment.sim
        self.sender = deployment.gateway(src)
        self.peer = deployment.peer_of(src)
        self.receiver = deployment.gateway(self.peer)
        self.tunnels = list(deployment.tunnels(src))
        self._offset = deployment.clock_offset_delta(src)

        self._links = {
            t.path_id: deployment.wan_link(src, t.short_label) for t in self.tunnels
        }
        calibrations = getattr(deployment, "calibrations", {}).get(src, {})
        self._capacity: dict[int, float] = {}
        for tunnel in self.tunnels:
            calibration = calibrations.get(tunnel.short_label)
            capacity = getattr(calibration, "capacity_bps", 0.0) or 0.0
            self._capacity[tunnel.path_id] = capacity or default_capacity_bps

        # Per-(flow-class) aggregate buckets: float concurrency counts.
        self._flows: dict[int, float] = {cls.flow_label: 0.0 for cls in demand.classes}
        self._backlog_bits: dict[int, float] = {t.path_id: 0.0 for t in self.tunnels}
        # Fractional packet carries for the loss ledger, so integer
        # delivered/lost counts conserve totals across steps.
        self._delivered_carry: dict[int, float] = {t.path_id: 0.0 for t in self.tunnels}
        self._lost_carry: dict[int, float] = {t.path_id: 0.0 for t in self.tunnels}
        self._packets: dict[int, Packet] = {
            cls.flow_label: self._synthetic_packet(cls) for cls in demand.classes
        }
        self._resolver = SplitResolver(self.sender, self.tunnels, self._packets)

        #: Optional wall-clock profiler; when None the step path pays a
        #: single attribute check (the near-zero-cost guarantee the
        #: profiling tests assert on).
        self.profiler: Optional["Profiler"] = None
        self._updates_per_step = len(demand.classes) * len(self.tunnels)

        self.steps = 0
        self.peak_concurrent_flows = 0.0
        self.last_loads: dict[int, TunnelLoad] = {}
        self.split_trace: list[tuple[float, dict[int, float]]] = []
        self.concurrency_trace: list[tuple[float, float]] = []
        self._task = None
        self._last = self.sim.now

        attach = getattr(deployment, "attach_traffic_engine", None)
        if callable(attach):
            attach(src, self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, *, at_equilibrium: bool = True) -> None:
        """Begin stepping; optionally seed buckets at Little's-law level.

        Seeding at equilibrium is what makes "≥1M concurrent flows" hold
        from the first step without simulating a multi-minute warm-up.
        """
        now = self.sim.now
        if at_equilibrium:
            for cls in self.demand.classes:
                self._flows[cls.flow_label] = self.demand.equilibrium_flows(cls, now)
            self.peak_concurrent_flows = max(
                self.peak_concurrent_flows, self.concurrent_flows
            )
        self._last = now
        # call_every fires immediately at `now` unless start is given;
        # the first step must cover one full dt.
        self._task = self.sim.call_every(
            self.step_s, self._step, start=now + self.step_s
        )

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    # ------------------------------------------------------------------
    # Observables
    # ------------------------------------------------------------------

    @property
    def concurrent_flows(self) -> float:
        """Total modeled concurrent flows across all class buckets."""
        return sum(self._flows[cls.flow_label] for cls in self.demand.classes)

    def flows_for(self, flow_label: int) -> float:
        return self._flows[flow_label]

    @property
    def splits_recomputed(self) -> int:
        """How many times a split was actually rebuilt (cache misses)."""
        return self._resolver.splits_recomputed

    def utilization(self, path_id: int) -> float:
        """Last computed utilization of ``path_id`` (0.0 before any step)."""
        load = self.last_loads.get(path_id)
        return load.utilization if load is not None else 0.0

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def _synthetic_packet(self, cls: FlowClass) -> Packet:
        """A representative packet for selector dispatch.

        Selectors only read the flow label (``ApplicationSelector``) and
        the five-tuple (``FlowletSelector`` keying); one packet per
        class keeps each class a stable flow.
        """
        anchor = self.tunnels[0]
        return Packet(
            headers=[
                Ipv6Header(src=anchor.local_endpoint, dst=anchor.remote_endpoint),
                UdpHeader(sport=49_152 + cls.flow_label, dport=TANGO_UDP_PORT),
            ],
            payload_bytes=max(0, self.packet_bytes - 48),
            flow_label=cls.flow_label,
        )

    def _split_for(self, cls: FlowClass, now: float) -> dict[int, float]:
        """Resolve the per-tunnel split for one class.

        Selectors exposing ``split_weights(tunnels, now)`` (e.g.
        :class:`~repro.traffic.splitting.WeightedSplitSelector`) yield a
        fractional split; any other ``PathSelector`` is called once per
        class per step and gets an all-to-one split — which is exactly
        how existing single-path selectors behave, unchanged.  Resolution
        is cached across steps by :class:`SplitResolver` while the
        selector's raw output is unchanged.
        """
        return dict(self._resolver.resolve(cls, now))

    def _step(self) -> None:
        now = self.sim.now
        dt = now - self._last
        self._last = now
        if dt <= 0:
            return
        self.steps += 1

        # 1. Resolve splits and accumulate per-tunnel offered load.  The
        #    surge factor scales the instantaneous per-flow rate too, so
        #    a demand_surge fault changes load within one step instead of
        #    waiting a mean flow lifetime for concurrency to ramp.
        offered: dict[int, float] = {t.path_id: 0.0 for t in self.tunnels}
        for cls in self.demand.classes:
            rate = (
                self._flows[cls.flow_label]
                * cls.rate_bps
                * self.demand.surge_factor(cls.flow_label, now)
            )
            if rate <= 0:
                continue
            for path_id, fraction in self._resolver.resolve(cls, now):
                offered[path_id] += rate * fraction

        total_offered = sum(offered[t.path_id] for t in self.tunnels)

        # 2. Per-tunnel fluid queue update, telemetry, and loss ledger.
        loads: dict[int, TunnelLoad] = {}
        bits_per_packet = self.packet_bytes * 8.0
        for tunnel in self.tunnels:
            pid = tunnel.path_id
            capacity = self._capacity[pid]
            link = self._links[pid]
            rho = offered[pid] / capacity
            service_s = bits_per_packet / capacity

            inflow_bits = offered[pid] * dt
            backlog = self._backlog_bits[pid] + inflow_bits - capacity * dt
            buffer_bits = capacity * self.buffer_delay_s
            lost_bits = 0.0
            if backlog > buffer_bits:
                lost_bits = backlog - buffer_bits
                backlog = buffer_bits
            backlog = max(backlog, 0.0)
            self._backlog_bits[pid] = backlog

            overload_loss = lost_bits / inflow_bits if inflow_bits > 0 else 0.0
            base_loss = link.loss.loss_probability(now)
            loss = 1.0 - (1.0 - base_loss) * (1.0 - overload_loss)

            base_delay = link.delay.delay_at(now)
            # Stochastic (P-K) wait plus the fluid backlog drain, capped
            # at one full buffer — a finite queue cannot delay a packet
            # longer than its own drain time.
            queue_wait = min(
                fluid_wait_s(rho, service_s) + backlog / capacity,
                self.buffer_delay_s,
            )
            delay = base_delay + service_s + queue_wait
            loads[pid] = TunnelLoad(
                path_id=pid,
                label=tunnel.short_label,
                offered_bps=offered[pid],
                capacity_bps=capacity,
                utilization=rho,
                backlog_bits=backlog,
                delay_s=delay,
                loss=loss,
            )

            # Telemetry: one delay sample per tunnel per step, recorded
            # at step time (TimeSeries requires monotonic times) in the
            # receiver's clock, mirrored back by the existing
            # TelemetryMirror.  A blackholed tunnel records nothing, so
            # staleness detection fires exactly as in packet mode.
            if loss < BLACKHOLE_LOSS:
                self.receiver.inbound.record(pid, now, delay + self._offset)

            # Loss ledger: aggregate delivered/lost packets into the
            # *sender's* tracker so LossMonitor / LossAwareSelector /
            # QuarantinePolicy become actionable in fluid mode.
            if inflow_bits > 0:
                packets = inflow_bits / bits_per_packet
                lost_f = packets * loss + self._lost_carry[pid]
                delivered_f = packets * (1.0 - loss) + self._delivered_carry[pid]
                lost_n = int(lost_f)
                delivered_n = int(delivered_f)
                self._lost_carry[pid] = lost_f - lost_n
                self._delivered_carry[pid] = delivered_f - delivered_n
                if lost_n or delivered_n:
                    self.sender.tracker.record_aggregate(pid, delivered_n, lost_n)

        self.last_loads = loads

        # 3. Evolve class buckets: arrivals minus mean-field departures
        #    (flows drain at 1/mean_duration; using per-step heavy-tail
        #    draws here would bias the drain upward since E[1/X] >
        #    1/E[X]).  Burstiness enters through the Poisson-scale
        #    arrival noise; the heavy-tailed size distribution itself is
        #    exposed by DemandModel.size_draw_bytes for per-flow
        #    consumers.
        for cls in self.demand.classes:
            flows = self._flows[cls.flow_label]
            arrivals = self.demand.arrivals_between(cls, now - dt, now)
            departures = flows * dt / cls.mean_duration_s
            self._flows[cls.flow_label] = max(0.0, flows + arrivals - departures)

        self.peak_concurrent_flows = max(
            self.peak_concurrent_flows, self.concurrent_flows
        )

        if self.record_traces:
            if total_offered > 0:
                split = {
                    t.path_id: offered[t.path_id] / total_offered
                    for t in self.tunnels
                }
            else:
                split = {t.path_id: 0.0 for t in self.tunnels}
            self.split_trace.append((now, split))
            self.concurrency_trace.append((now, self.concurrent_flows))

        profiler = self.profiler
        if profiler is not None:
            profiler.count("fluid.steps")
            profiler.count("fluid.bucket_updates", self._updates_per_step)

    # ------------------------------------------------------------------

    def dominant_path(self, at: Optional[float] = None) -> Optional[int]:
        """Path id carrying the largest offered share at/near time ``at``.

        ``None`` before the first recorded step.  With ``at=None`` the
        latest step is used; otherwise the last trace entry at or before
        ``at``.
        """
        if not self.split_trace:
            return None
        entry = self.split_trace[-1]
        if at is not None:
            for t, split in reversed(self.split_trace):
                if t <= at:
                    entry = (t, split)
                    break
        _, split = entry
        return max(sorted(split), key=lambda pid: split[pid])
