"""Seeded demand generation: flow classes, arrival processes, surges.

The demand side of the fluid traffic engine.  A :class:`FlowClass`
describes an aggregate of statistically identical flows (web fetches,
video sessions, IoT keepalives, ...) with a Poisson arrival process,
heavy-tailed (bounded Pareto) sizes, and an optional diurnal modulation.
A :class:`DemandModel` groups classes and layers :class:`SurgeWindow`
multipliers on top — the ``demand_surge`` fault kind is a pure data
mutation of the model, nothing is scheduled.

Everything is a deterministic function of (seed, time): arrivals use
counter-based draws from :func:`repro.netsim.delaymodels.deterministic_normal`
and sizes invert the Pareto CDF on
:func:`repro.netsim.delaymodels.deterministic_uniform`, so replaying a
scenario with the same seed reproduces the demand exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.netsim.delaymodels import deterministic_normal, deterministic_uniform

_SECONDS_PER_DAY = 86_400.0
# Bounded-Pareto cap: individual size draws never exceed this multiple of
# the class mean, keeping aggregate-rate estimates finite-variance.
_SIZE_CAP_MULTIPLE = 50.0


@dataclass(frozen=True)
class FlowClass:
    """An aggregate of statistically identical flows.

    ``arrival_rate_per_s`` is the base Poisson arrival rate; by Little's
    law the equilibrium concurrency is ``arrival_rate_per_s *
    mean_duration_s``, which is how the engine seeds ≥1M concurrent
    flows without simulating a warm-up.
    """

    name: str
    flow_label: int
    arrival_rate_per_s: float
    mean_size_bytes: float
    rate_bps: float
    pareto_alpha: float = 1.5
    diurnal_fraction: float = 0.0
    diurnal_phase_s: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrival_rate_per_s < 0:
            raise ValueError("arrival_rate_per_s must be >= 0")
        if self.mean_size_bytes <= 0:
            raise ValueError("mean_size_bytes must be > 0")
        if self.rate_bps <= 0:
            raise ValueError("rate_bps must be > 0")
        if self.pareto_alpha <= 1.0:
            raise ValueError("pareto_alpha must be > 1 (finite mean)")
        if not 0.0 <= self.diurnal_fraction < 1.0:
            raise ValueError("diurnal_fraction must be in [0, 1)")

    @property
    def mean_duration_s(self) -> float:
        """Mean flow lifetime at the class transfer rate."""
        return self.mean_size_bytes * 8.0 / self.rate_bps

    @property
    def equilibrium_flows(self) -> float:
        """Little's-law steady-state concurrency at the base rate."""
        return self.arrival_rate_per_s * self.mean_duration_s

    def diurnal_factor(self, t: float) -> float:
        """Sinusoidal day curve around 1.0 (>= 0 by construction)."""
        if self.diurnal_fraction == 0.0:
            return 1.0
        phase = 2.0 * math.pi * (t + self.diurnal_phase_s) / _SECONDS_PER_DAY
        return 1.0 + self.diurnal_fraction * math.sin(phase)


@dataclass(frozen=True)
class SurgeWindow:
    """Multiplicative demand surge over [start, end).

    ``flow_label=None`` applies to every class; otherwise only the
    matching class is scaled.  Stacked windows multiply.
    """

    start: float
    end: float
    factor: float
    flow_label: Optional[int] = None

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("surge end must be after start")
        if self.factor <= 0:
            raise ValueError("surge factor must be > 0")

    def active(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclass
class DemandModel:
    """Traffic matrix for one edge: flow classes plus surge overlays."""

    classes: tuple[FlowClass, ...]
    seed: int = 0
    surges: list[SurgeWindow] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("DemandModel needs at least one FlowClass")
        labels = [cls.flow_label for cls in self.classes]
        if len(set(labels)) != len(labels):
            raise ValueError("flow_label values must be unique per class")

    def class_for(self, flow_label: int) -> FlowClass:
        for cls in self.classes:
            if cls.flow_label == flow_label:
                return cls
        raise LookupError(f"no flow class with label {flow_label}")

    def add_surge(
        self,
        start: float,
        end: float,
        factor: float,
        flow_label: Optional[int] = None,
    ) -> SurgeWindow:
        """Register a surge window (the ``demand_surge`` fault hook)."""
        window = SurgeWindow(start=start, end=end, factor=factor, flow_label=flow_label)
        self.surges.append(window)
        return window

    def surge_factor(self, flow_label: int, t: float) -> float:
        factor = 1.0
        for window in self.surges:
            if window.active(t) and window.flow_label in (None, flow_label):
                factor *= window.factor
        return factor

    def arrival_rate(self, cls: FlowClass, t: float) -> float:
        """Instantaneous arrival rate: base x diurnal x surges."""
        return (
            cls.arrival_rate_per_s
            * cls.diurnal_factor(t)
            * self.surge_factor(cls.flow_label, t)
        )

    def arrivals_between(self, cls: FlowClass, t0: float, t1: float) -> float:
        """Expected arrivals in [t0, t1) with Poisson-scale jitter.

        Midpoint-rule mean plus a sqrt(lambda)-scaled deterministic
        normal perturbation — the fluid analogue of Poisson count
        variance, reproducible per (seed, class, interval).
        """
        if t1 <= t0:
            return 0.0
        mid = 0.5 * (t0 + t1)
        lam = self.arrival_rate(cls, mid) * (t1 - t0)
        if lam <= 0.0:
            return 0.0
        stream = _mix_seed(self.seed, cls.seed, cls.flow_label)
        noise = float(deterministic_normal(stream, np.asarray([mid]))[0])
        return max(0.0, lam + math.sqrt(lam) * noise)

    def size_draw_bytes(self, cls: FlowClass, t: float) -> float:
        """One heavy-tailed (bounded Pareto) size draw at time ``t``."""
        alpha = cls.pareto_alpha
        xm = cls.mean_size_bytes * (alpha - 1.0) / alpha
        stream = _mix_seed(self.seed, cls.seed, cls.flow_label) ^ 0x5EED
        u = float(deterministic_uniform(stream, np.asarray([t]))[0])
        size = xm * (1.0 - u) ** (-1.0 / alpha)
        return min(size, cls.mean_size_bytes * _SIZE_CAP_MULTIPLE)

    def equilibrium_flows(self, cls: FlowClass, t: float) -> float:
        """Little's-law concurrency at the instantaneous rate."""
        return self.arrival_rate(cls, t) * cls.mean_duration_s

    def total_equilibrium_flows(self, t: float = 0.0) -> float:
        return sum(self.equilibrium_flows(cls, t) for cls in self.classes)

    def offered_bps(self, t: float = 0.0) -> float:
        """Aggregate equilibrium offered load across all classes."""
        return sum(
            self.equilibrium_flows(cls, t) * cls.rate_bps for cls in self.classes
        )


def _mix_seed(*parts: int) -> int:
    """Fold seed components into one 64-bit stream id (SplitMix-style)."""
    acc = 0x9E3779B97F4A7C15
    for part in parts:
        acc ^= (part & 0xFFFFFFFFFFFFFFFF) + 0x9E3779B97F4A7C15 + ((acc << 6) & 0xFFFFFFFFFFFFFFFF) + (acc >> 2)
        acc &= 0xFFFFFFFFFFFFFFFF
    return acc


def standard_flow_classes(
    target_concurrent_flows: float = 1_050_000.0,
    seed: int = 0,
) -> tuple[FlowClass, ...]:
    """The standard web/video/iot mix, scaled to a target concurrency.

    At scale 1.0 the mix models ~1.05M concurrent flows offering ~14
    Gbps: 40k web fetches (100 kbps), 10k video sessions (800 kbps),
    and 1M thin long-lived IoT/background flows (2 kbps).  The offered
    load sits well under the ~36 Gbps Vultr aggregate capacity so
    congestion comes from surges and skewed splits, not raw demand.
    """
    scale = target_concurrent_flows / 1_050_000.0
    if scale <= 0:
        raise ValueError("target_concurrent_flows must be > 0")
    web = FlowClass(
        name="web",
        flow_label=1,
        arrival_rate_per_s=26_667.0 * scale,
        mean_size_bytes=18_750.0,
        rate_bps=100e3,
        pareto_alpha=1.3,
        diurnal_fraction=0.2,
        seed=seed,
    )
    video = FlowClass(
        name="video",
        flow_label=2,
        arrival_rate_per_s=83.3 * scale,
        mean_size_bytes=12e6,
        rate_bps=800e3,
        pareto_alpha=1.5,
        diurnal_fraction=0.3,
        diurnal_phase_s=21_600.0,
        seed=seed + 1,
    )
    iot = FlowClass(
        name="iot",
        flow_label=3,
        arrival_rate_per_s=2_500.0 * scale,
        mean_size_bytes=100e3,
        rate_bps=2e3,
        pareto_alpha=1.5,
        seed=seed + 2,
    )
    return (web, video, iot)
