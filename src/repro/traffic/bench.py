"""Standard traffic workloads and the BENCH_TRAFFIC.json report.

Gated workloads (EXPERIMENTS.md E16 and E19):

* **scale** / **scale_vector** — a fluid engine (scalar oracle or the
  vectorized engine, via the ``engine=`` knob) drives the full Vultr
  deployment with the standard web/video/iot mix seeded at ≥1M
  concurrent modeled flows, load-aware splitting under a controller,
  and a mid-run demand surge.  Gate: the simulated window completes in
  under :data:`SCALE_MAX_WALL_S` wall-clock seconds while peak
  concurrency stays at or above :data:`SCALE_TARGET_FLOWS`.
* **equivalence** — the fluid-vs-packet sweep of
  :mod:`repro.traffic.equivalence`.  Gate: mean delay within
  :data:`EQUIV_DELAY_TOL` (relative) and loss within
  :data:`EQUIV_LOSS_TOL_PP` percentage points at every utilization.
* **vector** (E19) — scalar and vectorized engines over a synthetic
  many-tunnel edge pair.  Gates: the vectorized engine sustains at
  least :data:`VECTOR_TARGET_UPDATES_PER_S` flow-updates/s, beats the
  scalar oracle by :data:`VECTOR_MIN_SPEEDUP`×, and stays byte-identical
  to it (telemetry series and loss ledgers).
* **ticks** (E19) — :data:`TICK_CONTROLLERS` report-only controllers on
  one shared :class:`~repro.netsim.ticks.TickScheduler` versus one
  ``PeriodicTask`` each.  Gates: the shared wheel keeps exactly one
  recurring heap event, reproduces every controller's tick count, and
  drives a full round within :data:`TICK_BUDGET_S` wall seconds.

Wall-clock is read through the profiler's injectable clock (TNG001).
Used by ``tango-repro traffic run``, ``tango-repro profile --traffic``
and the ``perf`` CI job (``benchmarks/test_bench_traffic.py``,
``benchmarks/test_bench_vector.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from ..core.controller import QuarantinePolicy, TangoController
from ..dataplane.seqnum import SequenceTracker
from ..netsim.delaymodels import ConstantDelay
from ..netsim.events import Simulator
from ..netsim.links import ConstantLoss
from ..netsim.ticks import TickScheduler
from ..profiling.core import Profiler
from ..scenarios.vultr import VultrDeployment
from ..telemetry.loss import LossMonitor
from ..telemetry.store import MeasurementStore
from .demand import DemandModel, standard_flow_classes
from .equivalence import run_equivalence
from .splitting import LoadAwareWeights, WeightedSplitSelector
from .vector import create_fluid_engine

__all__ = [
    "SCALE_TARGET_FLOWS",
    "SCALE_MAX_WALL_S",
    "EQUIV_DELAY_TOL",
    "EQUIV_LOSS_TOL_PP",
    "VECTOR_TARGET_UPDATES_PER_S",
    "VECTOR_MIN_SPEEDUP",
    "TICK_CONTROLLERS",
    "TICK_BUDGET_S",
    "TrafficWorkloadResult",
    "TrafficReport",
    "run_scale_workload",
    "run_equivalence_workload",
    "run_vector_workload",
    "run_tick_workload",
    "run_traffic_suite",
]

#: The scale gate: at least this many concurrent modeled flows...
SCALE_TARGET_FLOWS = 1_000_000
#: ...simulated end to end in under this much wall-clock time.
SCALE_MAX_WALL_S = 10.0
#: Equivalence gates: per-point mean-delay relative tolerance and loss
#: tolerance in percentage points.
EQUIV_DELAY_TOL = 0.10
EQUIV_LOSS_TOL_PP = 2.0
#: E19 vector gates: minimum sustained flow-updates/s (modeled
#: concurrent flows × steps / wall) in the vectorized engine, and the
#: minimum step-throughput speedup over the scalar oracle.
VECTOR_TARGET_UPDATES_PER_S = 10_000_000.0
VECTOR_MIN_SPEEDUP = 5.0
#: E19 tick gates: this many controllers on one shared wheel, each
#: round completing within this wall budget (one control interval).
TICK_CONTROLLERS = 1000
TICK_BUDGET_S = 0.1


@dataclass
class TrafficWorkloadResult:
    """One workload's outcome: pass/fail plus the numbers behind it."""

    name: str
    passed: bool
    detail: dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        return {"passed": self.passed, "detail": dict(sorted(self.detail.items()))}


@dataclass
class TrafficReport:
    """Everything one traffic-suite run measured."""

    smoke: bool
    workloads: dict[str, TrafficWorkloadResult]

    @property
    def passed(self) -> bool:
        return all(wl.passed for wl in self.workloads.values())

    def as_dict(self) -> dict[str, object]:
        return {
            "schema": "tango-repro/bench-traffic/v1",
            "smoke": self.smoke,
            "passed": self.passed,
            "gates": {
                "scale_target_flows": SCALE_TARGET_FLOWS,
                "scale_max_wall_s": SCALE_MAX_WALL_S,
                "equivalence_delay_tol": EQUIV_DELAY_TOL,
                "equivalence_loss_tol_pp": EQUIV_LOSS_TOL_PP,
                "vector_target_updates_per_s": VECTOR_TARGET_UPDATES_PER_S,
                "vector_min_speedup": VECTOR_MIN_SPEEDUP,
                "tick_controllers": TICK_CONTROLLERS,
                "tick_budget_s": TICK_BUDGET_S,
            },
            "workloads": {
                name: wl.as_dict() for name, wl in sorted(self.workloads.items())
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"


def run_scale_workload(
    *,
    target_flows: int = SCALE_TARGET_FLOWS,
    duration_s: float = 60.0,
    step_s: float = 0.1,
    surge_factor: float = 2.5,
    engine: str = "scalar",
    profiler: Optional[Profiler] = None,
) -> TrafficWorkloadResult:
    """Vultr NY→LA under ≥``target_flows`` flows with a mid-run surge.

    Seeds the standard flow mix ~5% above the target (Little's-law
    equilibrium), splits it with load-aware weights under a
    quarantine-enabled controller, surges demand over the middle third
    of the run, and times the simulated window end to end.  ``engine``
    selects the fluid implementation (``"scalar"`` | ``"vector"``) —
    the E19 acceptance check runs the same gates under both.
    """
    profiler = profiler or Profiler()
    deployment = VultrDeployment(include_events=False)
    deployment.establish()
    sim = deployment.sim
    gateway = deployment.gateway_ny

    demand = DemandModel(
        classes=standard_flow_classes(target_flows * 1.05), seed=42
    )
    fluid = create_fluid_engine(
        deployment, "ny", demand, engine=engine, step_s=step_s
    )
    selector = WeightedSplitSelector(
        LoadAwareWeights(
            gateway.outbound, window_s=1.0, utilization=fluid.utilization
        ),
        seed=9,
    )
    deployment.set_data_policy("ny", selector)
    controller = TangoController(
        gateway, sim, interval_s=0.1, quarantine=QuarantinePolicy()
    )
    deployment.attach_controller("ny", controller)
    controller.start()

    start = sim.now
    surge_at = start + duration_s / 3.0
    surge_end = start + 2.0 * duration_s / 3.0
    demand.add_surge(surge_at, surge_end, surge_factor)
    fluid.start()

    clock = profiler.clock
    wall_start = clock()
    sim.run(until=start + duration_s)
    wall_s = clock() - wall_start
    fluid.stop()
    controller.stop()

    pre = fluid.dominant_path(at=surge_at - step_s)
    during = fluid.dominant_path(at=surge_end - step_s)
    peak = fluid.peak_concurrent_flows
    passed = peak >= target_flows and wall_s < SCALE_MAX_WALL_S
    return TrafficWorkloadResult(
        name="scale" if engine == "scalar" else f"scale_{engine}",
        passed=passed,
        detail={
            "engine": engine,
            "target_flows": target_flows,
            "peak_concurrent_flows": peak,
            "final_concurrent_flows": fluid.concurrent_flows,
            "wall_s": wall_s,
            "sim_s": duration_s,
            "sim_s_per_wall_s": duration_s / wall_s if wall_s > 0 else float("inf"),
            "steps": fluid.steps,
            "splits_recomputed": fluid.splits_recomputed,
            "surge_factor": surge_factor,
            "dominant_path_pre_surge": pre,
            "dominant_path_during_surge": during,
            "split_shifted": pre != during,
            "controller_ticks": controller.ticks,
        },
    )


def run_equivalence_workload(
    *,
    packets: int = 40_000,
    profiler: Optional[Profiler] = None,
) -> TrafficWorkloadResult:
    """The fluid-vs-packet sweep, checked against the E16 tolerances."""
    profiler = profiler or Profiler()
    clock = profiler.clock
    wall_start = clock()
    points = run_equivalence(packets=packets)
    wall_s = clock() - wall_start

    rows = []
    passed = True
    for point in points:
        ok = (
            point.delay_rel_error <= EQUIV_DELAY_TOL
            and point.loss_error_pp <= EQUIV_LOSS_TOL_PP
        )
        passed = passed and ok
        rows.append(
            {
                "rho": point.rho,
                "packet_delay_ms": point.packet_delay_s * 1e3,
                "fluid_delay_ms": point.fluid_delay_s * 1e3,
                "delay_rel_error": point.delay_rel_error,
                "packet_loss": point.packet_loss,
                "fluid_loss": point.fluid_loss,
                "loss_error_pp": point.loss_error_pp,
                "within_tolerance": ok,
            }
        )
    return TrafficWorkloadResult(
        name="equivalence",
        passed=passed,
        detail={"packets": packets, "wall_s": wall_s, "points": rows},
    )


# ----------------------------------------------------------------------
# E19: synthetic many-tunnel edge pair for engine throughput
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _BenchTunnel:
    """Tunnel stand-in exposing exactly what the fluid engines read."""

    path_id: int
    short_label: str
    label: str
    local_endpoint: str
    remote_endpoint: str


class _BenchLink:
    """Link stand-in: constant delay/loss models (the cacheable case)."""

    __slots__ = ("delay", "loss")

    def __init__(self, delay_s: float, loss: float) -> None:
        self.delay = ConstantDelay(delay_s)
        self.loss = ConstantLoss(loss)


class _BenchGatewayConfig:
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name


class _BenchGateway:
    """Gateway stand-in: real stores/trackers, no packet machinery."""

    def __init__(self, name: str) -> None:
        self.config = _BenchGatewayConfig(name)
        self.inbound = MeasurementStore()
        self.tracker = SequenceTracker()
        self.loss_monitor = LossMonitor(self.tracker)
        self.selector = WeightedSplitSelector()
        self.data_selector = None

    @property
    def outbound(self) -> MeasurementStore:
        return self.inbound


class _SyntheticDeployment:
    """Minimal deployment-protocol implementation with N parallel tunnels.

    The Vultr scenario has four transit paths; engine throughput at the
    "dozens of edges" regime needs hundreds of (class, tunnel) buckets,
    so the benchmark fabricates an edge pair with ``n_tunnels`` constant
    delay/loss WAN paths and real telemetry stores.
    """

    def __init__(
        self,
        sim: Simulator,
        n_tunnels: int,
        *,
        capacity_bps: float = 8e9,
        delay_s: float = 0.02,
        loss: float = 0.0,
    ) -> None:
        self.sim = sim
        self._gateways = {"a": _BenchGateway("a"), "b": _BenchGateway("b")}
        self._tunnels = [
            _BenchTunnel(
                path_id=i,
                short_label=f"p{i}",
                label=f"path-{i}",
                local_endpoint=f"2001:db8:a::{i:x}",
                remote_endpoint=f"2001:db8:b::{i:x}",
            )
            for i in range(n_tunnels)
        ]
        self._links = {
            t.short_label: _BenchLink(delay_s, loss) for t in self._tunnels
        }
        self.capacity_bps = capacity_bps

    def gateway(self, name: str) -> _BenchGateway:
        return self._gateways[name]

    def peer_of(self, name: str) -> str:
        return "b" if name == "a" else "a"

    def tunnels(self, name: str) -> list:
        return list(self._tunnels)

    def wan_link(self, name: str, short_label: str) -> _BenchLink:
        return self._links[short_label]

    def clock_offset_delta(self, name: str) -> float:
        return 0.0


def _run_synthetic_engine(
    engine: str,
    *,
    n_tunnels: int,
    target_flows: float,
    duration_s: float,
    step_s: float,
    clock,
):
    """One timed engine run over the synthetic edge pair."""
    sim = Simulator()
    deployment = _SyntheticDeployment(sim, n_tunnels)
    demand = DemandModel(
        classes=standard_flow_classes(target_flows * 1.05), seed=7
    )
    fluid = create_fluid_engine(
        deployment,
        "a",
        demand,
        engine=engine,
        step_s=step_s,
        default_capacity_bps=deployment.capacity_bps,
        record_traces=False,
    )
    fluid.start()
    wall_start = clock()
    sim.run(until=sim.now + duration_s)
    wall_s = clock() - wall_start
    fluid.stop()
    return deployment, fluid, wall_s


def run_vector_workload(
    *,
    n_tunnels: int = 256,
    target_flows: float = 2_000_000.0,
    duration_s: float = 30.0,
    step_s: float = 0.1,
    profiler: Optional[Profiler] = None,
) -> TrafficWorkloadResult:
    """E19 engine gate: vectorized throughput + oracle equivalence.

    Runs the scalar oracle and the vectorized engine over the identical
    seeded synthetic workload, times both, and cross-checks that the
    vectorized run produced byte-identical telemetry series and
    identical loss-ledger counters.  Gates:
    ``flow-updates/s >= VECTOR_TARGET_UPDATES_PER_S`` and
    ``speedup >= VECTOR_MIN_SPEEDUP``.
    """
    profiler = profiler or Profiler()
    clock = profiler.clock
    dep_scalar, scalar_engine, wall_scalar = _run_synthetic_engine(
        "scalar",
        n_tunnels=n_tunnels,
        target_flows=target_flows,
        duration_s=duration_s,
        step_s=step_s,
        clock=clock,
    )
    dep_vector, vector_engine, wall_vector = _run_synthetic_engine(
        "vector",
        n_tunnels=n_tunnels,
        target_flows=target_flows,
        duration_s=duration_s,
        step_s=step_s,
        clock=clock,
    )
    profiler.capture_traffic_engine(vector_engine, prefix="fluid.vector")

    # Oracle cross-check: telemetry byte-identical, ledgers identical.
    store_s = dep_scalar.gateway("b").inbound
    store_v = dep_vector.gateway("b").inbound
    equivalent = store_s.path_ids() == store_v.path_ids()
    if equivalent:
        for pid in store_s.path_ids():
            a, b = store_s.series(pid), store_v.series(pid)
            if (
                a.times.tobytes() != b.times.tobytes()
                or a.values.tobytes() != b.values.tobytes()
            ):
                equivalent = False
                break
    equivalent = equivalent and (
        dep_scalar.gateway("a").tracker.all_paths()
        == dep_vector.gateway("a").tracker.all_paths()
    )

    # The wall-clock ratio can transiently dip on a loaded host (the
    # whole test suite shares one core in CI).  Re-time — never
    # re-judge equivalence — and keep each engine's best wall, the
    # standard best-of-N defense against scheduler noise.
    timing_retries = 0
    while (
        wall_vector > 0
        and wall_scalar / wall_vector < VECTOR_MIN_SPEEDUP
        and timing_retries < 2
    ):
        timing_retries += 1
        for engine_name in ("scalar", "vector"):
            _, _, wall = _run_synthetic_engine(
                engine_name,
                n_tunnels=n_tunnels,
                target_flows=target_flows,
                duration_s=duration_s,
                step_s=step_s,
                clock=clock,
            )
            if engine_name == "scalar":
                wall_scalar = min(wall_scalar, wall)
            else:
                wall_vector = min(wall_vector, wall)

    steps = vector_engine.steps
    classes = len(standard_flow_classes(target_flows * 1.05))
    flows = vector_engine.peak_concurrent_flows
    flow_updates_per_s = (
        flows * steps / wall_vector if wall_vector > 0 else float("inf")
    )
    bucket_updates_per_s = (
        classes * n_tunnels * steps / wall_vector
        if wall_vector > 0
        else float("inf")
    )
    speedup = wall_scalar / wall_vector if wall_vector > 0 else float("inf")
    passed = (
        equivalent
        and steps == scalar_engine.steps
        and flow_updates_per_s >= VECTOR_TARGET_UPDATES_PER_S
        and speedup >= VECTOR_MIN_SPEEDUP
    )
    return TrafficWorkloadResult(
        name="vector",
        passed=passed,
        detail={
            "n_tunnels": n_tunnels,
            "classes": classes,
            "buckets": classes * n_tunnels,
            "steps": steps,
            "modeled_flows": flows,
            "wall_scalar_s": wall_scalar,
            "wall_vector_s": wall_vector,
            "speedup": speedup,
            "flow_updates_per_s": flow_updates_per_s,
            "bucket_updates_per_s": bucket_updates_per_s,
            "bit_equivalent": equivalent,
            "splits_recomputed": vector_engine.splits_recomputed,
            "timing_retries": timing_retries,
        },
    )


def _run_controller_farm(
    shared: bool,
    *,
    controllers: int,
    duration_s: float,
    interval_s: float,
    clock,
):
    """N report-only controllers, dedicated tasks or one shared wheel."""
    sim = Simulator()
    scheduler = TickScheduler(sim, interval_s) if shared else None
    farm = []
    for i in range(controllers):
        gateway = _BenchGateway(f"edge{i}")
        controller = TangoController(
            gateway, sim, interval_s=interval_s, scheduler=scheduler
        )
        controller.start()
        farm.append(controller)
    live_pending = sim.live_pending
    wall_start = clock()
    sim.run(until=sim.now + duration_s)
    wall_s = clock() - wall_start
    for controller in farm:
        controller.stop()
    return farm, scheduler, live_pending, wall_s


def run_tick_workload(
    *,
    controllers: int = TICK_CONTROLLERS,
    duration_s: float = 10.0,
    interval_s: float = 0.1,
    profiler: Optional[Profiler] = None,
) -> TrafficWorkloadResult:
    """E19 control-plane gate: ≥1k controllers within one tick budget.

    Same farm twice — once with a dedicated ``PeriodicTask`` per
    controller (the old shape), once multiplexed onto one
    :class:`TickScheduler`.  Gates: the shared wheel keeps exactly one
    live recurring heap event, every controller ticks exactly as often
    as in the dedicated run, and the mean wall time per wheel round
    stays within :data:`TICK_BUDGET_S`.
    """
    profiler = profiler or Profiler()
    clock = profiler.clock
    dedicated_farm, _, dedicated_live, wall_dedicated = _run_controller_farm(
        False,
        controllers=controllers,
        duration_s=duration_s,
        interval_s=interval_s,
        clock=clock,
    )
    shared_farm, scheduler, shared_live, wall_shared = _run_controller_farm(
        True,
        controllers=controllers,
        duration_s=duration_s,
        interval_s=interval_s,
        clock=clock,
    )
    assert scheduler is not None
    profiler.capture_scheduler(scheduler)

    rounds = scheduler.rounds
    per_round_s = wall_shared / rounds if rounds else float("inf")
    ticks_match = [c.ticks for c in shared_farm] == [
        c.ticks for c in dedicated_farm
    ]
    passed = (
        shared_live == 1
        and ticks_match
        and rounds > 0
        and per_round_s <= TICK_BUDGET_S
    )
    return TrafficWorkloadResult(
        name="ticks",
        passed=passed,
        detail={
            "controllers": controllers,
            "interval_s": interval_s,
            "rounds": rounds,
            "callbacks_run": scheduler.callbacks_run,
            "ticks_per_controller": shared_farm[0].ticks if shared_farm else 0,
            "ticks_match_dedicated": ticks_match,
            "heap_live_dedicated": dedicated_live,
            "heap_live_shared": shared_live,
            "wall_dedicated_s": wall_dedicated,
            "wall_shared_s": wall_shared,
            "speedup": (
                wall_dedicated / wall_shared if wall_shared > 0 else float("inf")
            ),
            "per_round_s": per_round_s,
            "budget_s": TICK_BUDGET_S,
        },
    )


def run_traffic_suite(
    *,
    smoke: bool = False,
    target_flows: int = SCALE_TARGET_FLOWS,
    engines: tuple[str, ...] = ("scalar", "vector"),
    profiler: Optional[Profiler] = None,
) -> TrafficReport:
    """All gated workloads; smoke mode shortens the simulated windows
    and the packet-level comparison run (the gates stay identical).

    ``engines`` restricts which fluid implementations run the scale
    workload (the E19 acceptance run keeps both).
    """
    profiler = profiler or Profiler()
    workloads: dict[str, TrafficWorkloadResult] = {}
    for engine in engines:
        scale = run_scale_workload(
            target_flows=target_flows,
            duration_s=10.0 if smoke else 60.0,
            engine=engine,
            profiler=profiler,
        )
        workloads[scale.name] = scale
    workloads["equivalence"] = run_equivalence_workload(
        packets=10_000 if smoke else 40_000, profiler=profiler
    )
    workloads["vector"] = run_vector_workload(
        duration_s=10.0 if smoke else 30.0, profiler=profiler
    )
    workloads["ticks"] = run_tick_workload(
        duration_s=2.0 if smoke else 10.0, profiler=profiler
    )
    return TrafficReport(smoke=smoke, workloads=workloads)
