"""Standard traffic workloads and the BENCH_TRAFFIC.json report.

Two gated workloads (EXPERIMENTS.md E16):

* **scale** — the fluid engine drives the full Vultr deployment with the
  standard web/video/iot mix seeded at ≥1M concurrent modeled flows,
  load-aware splitting under a controller, and a mid-run demand surge.
  Gate: the simulated window completes in under
  :data:`SCALE_MAX_WALL_S` wall-clock seconds while peak concurrency
  stays at or above :data:`SCALE_TARGET_FLOWS`.
* **equivalence** — the fluid-vs-packet sweep of
  :mod:`repro.traffic.equivalence`.  Gate: mean delay within
  :data:`EQUIV_DELAY_TOL` (relative) and loss within
  :data:`EQUIV_LOSS_TOL_PP` percentage points at every utilization.

Wall-clock is read through the profiler's injectable clock (TNG001).
Used by ``tango-repro traffic run`` and the ``traffic`` CI job
(``benchmarks/test_bench_traffic.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from ..core.controller import QuarantinePolicy, TangoController
from ..profiling.core import Profiler
from ..scenarios.vultr import VultrDeployment
from .demand import DemandModel, standard_flow_classes
from .equivalence import run_equivalence
from .fluid import FluidEngine
from .splitting import LoadAwareWeights, WeightedSplitSelector

__all__ = [
    "SCALE_TARGET_FLOWS",
    "SCALE_MAX_WALL_S",
    "EQUIV_DELAY_TOL",
    "EQUIV_LOSS_TOL_PP",
    "TrafficWorkloadResult",
    "TrafficReport",
    "run_scale_workload",
    "run_equivalence_workload",
    "run_traffic_suite",
]

#: The scale gate: at least this many concurrent modeled flows...
SCALE_TARGET_FLOWS = 1_000_000
#: ...simulated end to end in under this much wall-clock time.
SCALE_MAX_WALL_S = 10.0
#: Equivalence gates: per-point mean-delay relative tolerance and loss
#: tolerance in percentage points.
EQUIV_DELAY_TOL = 0.10
EQUIV_LOSS_TOL_PP = 2.0


@dataclass
class TrafficWorkloadResult:
    """One workload's outcome: pass/fail plus the numbers behind it."""

    name: str
    passed: bool
    detail: dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        return {"passed": self.passed, "detail": dict(sorted(self.detail.items()))}


@dataclass
class TrafficReport:
    """Everything one traffic-suite run measured."""

    smoke: bool
    workloads: dict[str, TrafficWorkloadResult]

    @property
    def passed(self) -> bool:
        return all(wl.passed for wl in self.workloads.values())

    def as_dict(self) -> dict[str, object]:
        return {
            "schema": "tango-repro/bench-traffic/v1",
            "smoke": self.smoke,
            "passed": self.passed,
            "gates": {
                "scale_target_flows": SCALE_TARGET_FLOWS,
                "scale_max_wall_s": SCALE_MAX_WALL_S,
                "equivalence_delay_tol": EQUIV_DELAY_TOL,
                "equivalence_loss_tol_pp": EQUIV_LOSS_TOL_PP,
            },
            "workloads": {
                name: wl.as_dict() for name, wl in sorted(self.workloads.items())
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"


def run_scale_workload(
    *,
    target_flows: int = SCALE_TARGET_FLOWS,
    duration_s: float = 60.0,
    step_s: float = 0.1,
    surge_factor: float = 2.5,
    profiler: Optional[Profiler] = None,
) -> TrafficWorkloadResult:
    """Vultr NY→LA under ≥``target_flows`` flows with a mid-run surge.

    Seeds the standard flow mix ~5% above the target (Little's-law
    equilibrium), splits it with load-aware weights under a
    quarantine-enabled controller, surges demand over the middle third
    of the run, and times the simulated window end to end.
    """
    profiler = profiler or Profiler()
    deployment = VultrDeployment(include_events=False)
    deployment.establish()
    sim = deployment.sim
    gateway = deployment.gateway_ny

    demand = DemandModel(
        classes=standard_flow_classes(target_flows * 1.05), seed=42
    )
    engine = FluidEngine(deployment, "ny", demand, step_s=step_s)
    selector = WeightedSplitSelector(
        LoadAwareWeights(
            gateway.outbound, window_s=1.0, utilization=engine.utilization
        ),
        seed=9,
    )
    deployment.set_data_policy("ny", selector)
    controller = TangoController(
        gateway, sim, interval_s=0.1, quarantine=QuarantinePolicy()
    )
    deployment.attach_controller("ny", controller)
    controller.start()

    start = sim.now
    surge_at = start + duration_s / 3.0
    surge_end = start + 2.0 * duration_s / 3.0
    demand.add_surge(surge_at, surge_end, surge_factor)
    engine.start()

    clock = profiler.clock
    wall_start = clock()
    sim.run(until=start + duration_s)
    wall_s = clock() - wall_start
    engine.stop()
    controller.stop()

    pre = engine.dominant_path(at=surge_at - step_s)
    during = engine.dominant_path(at=surge_end - step_s)
    peak = engine.peak_concurrent_flows
    passed = peak >= target_flows and wall_s < SCALE_MAX_WALL_S
    return TrafficWorkloadResult(
        name="scale",
        passed=passed,
        detail={
            "target_flows": target_flows,
            "peak_concurrent_flows": peak,
            "final_concurrent_flows": engine.concurrent_flows,
            "wall_s": wall_s,
            "sim_s": duration_s,
            "sim_s_per_wall_s": duration_s / wall_s if wall_s > 0 else float("inf"),
            "steps": engine.steps,
            "surge_factor": surge_factor,
            "dominant_path_pre_surge": pre,
            "dominant_path_during_surge": during,
            "split_shifted": pre != during,
            "controller_ticks": controller.ticks,
        },
    )


def run_equivalence_workload(
    *,
    packets: int = 40_000,
    profiler: Optional[Profiler] = None,
) -> TrafficWorkloadResult:
    """The fluid-vs-packet sweep, checked against the E16 tolerances."""
    profiler = profiler or Profiler()
    clock = profiler.clock
    wall_start = clock()
    points = run_equivalence(packets=packets)
    wall_s = clock() - wall_start

    rows = []
    passed = True
    for point in points:
        ok = (
            point.delay_rel_error <= EQUIV_DELAY_TOL
            and point.loss_error_pp <= EQUIV_LOSS_TOL_PP
        )
        passed = passed and ok
        rows.append(
            {
                "rho": point.rho,
                "packet_delay_ms": point.packet_delay_s * 1e3,
                "fluid_delay_ms": point.fluid_delay_s * 1e3,
                "delay_rel_error": point.delay_rel_error,
                "packet_loss": point.packet_loss,
                "fluid_loss": point.fluid_loss,
                "loss_error_pp": point.loss_error_pp,
                "within_tolerance": ok,
            }
        )
    return TrafficWorkloadResult(
        name="equivalence",
        passed=passed,
        detail={"packets": packets, "wall_s": wall_s, "points": rows},
    )


def run_traffic_suite(
    *,
    smoke: bool = False,
    target_flows: int = SCALE_TARGET_FLOWS,
    profiler: Optional[Profiler] = None,
) -> TrafficReport:
    """Both workloads; smoke mode shortens the simulated window and the
    packet-level comparison run (the gates stay identical)."""
    profiler = profiler or Profiler()
    scale = run_scale_workload(
        target_flows=target_flows,
        duration_s=10.0 if smoke else 60.0,
        profiler=profiler,
    )
    equivalence = run_equivalence_workload(
        packets=10_000 if smoke else 40_000, profiler=profiler
    )
    return TrafficReport(
        smoke=smoke,
        workloads={"scale": scale, "equivalence": equivalence},
    )
