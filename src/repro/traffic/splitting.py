"""Load-aware split weights and the weighted-split path selector.

The paper's Section 6 defers "effective load balancing across multiple
paths in the data plane"; this module supplies the policy half:

* :class:`LoadAwareWeights` — inverse-delay x headroom weights computed
  from the sender's measurement store (and, optionally, the fluid
  engine's utilization observable).  Matches the
  ``FlowletSelector.WeightFunction`` signature, so the same policy
  drives both flowlet-level and fluid-level splitting.
* :class:`WeightedSplitSelector` — a ``PathSelector`` that splits
  traffic across all candidate tunnels by weight: per-packet it makes a
  deterministic weighted draw keyed by flow (so one flow stays on one
  tunnel between weight updates), and it exposes ``split_weights`` so
  the fluid engine can apply the split fractionally.
* :class:`SplitRebalancer` — a controller tick hook that recomputes the
  weights as congestion shifts and records the rebalance history.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.netsim.delaymodels import deterministic_uniform
from repro.netsim.packet import Packet
from repro.telemetry.store import MeasurementStore

__all__ = ["LoadAwareWeights", "WeightedSplitSelector", "SplitRebalancer"]


class LoadAwareWeights:
    """Inverse-delay, headroom-scaled split weights.

    ``w_i = (1 / max(delay_i, delay_floor_s)) * max(1 - rho_i,
    headroom_floor)`` — lower-delay paths attract more traffic, but a
    path running hot is discounted toward its remaining headroom even
    if its delay has not inflated yet.  Tunnels with no recent
    measurement get the mean weight of the measured ones (never starve
    a path into permanent staleness).

    Args:
        store: the sender-side measurement store (mirror-fed).
        window_s: trailing window for the delay estimate.
        utilization: optional ``path_id -> rho`` callable, typically
            ``FluidEngine.utilization``.
        headroom_floor: minimum headroom factor — keeps a saturated
            path probeable instead of zero-weighted.
        delay_floor_s: guards the inverse against ~0 delays.
    """

    def __init__(
        self,
        store: MeasurementStore,
        *,
        window_s: float = 1.0,
        utilization: Optional[Callable[[int], float]] = None,
        headroom_floor: float = 0.05,
        delay_floor_s: float = 1e-4,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be > 0")
        if not 0.0 < headroom_floor <= 1.0:
            raise ValueError("headroom_floor must be in (0, 1]")
        self.store = store
        self.window_s = window_s
        self.utilization = utilization
        self.headroom_floor = headroom_floor
        self.delay_floor_s = delay_floor_s

    def __call__(self, tunnels: list, now: float) -> list:
        inverses: list[Optional[float]] = []
        for tunnel in tunnels:
            delay = self.store.recent_delay(tunnel.path_id, self.window_s, now)
            if delay is None:
                inverses.append(None)
                continue
            weight = 1.0 / max(delay, self.delay_floor_s)
            if self.utilization is not None:
                rho = self.utilization(tunnel.path_id)
                weight *= max(1.0 - rho, self.headroom_floor)
            inverses.append(weight)
        measured = [w for w in inverses if w is not None]
        if not measured:
            return [1.0] * len(tunnels)
        neutral = sum(measured) / len(measured)
        return [w if w is not None else neutral for w in inverses]


class WeightedSplitSelector:
    """Split traffic across all candidate tunnels by weight.

    Implements the ``PathSelector`` protocol.  Per-packet selection is
    a deterministic weighted draw keyed by the packet's flow, so any
    single flow is stable between weight updates while the aggregate
    matches the weight vector.  The fluid engine bypasses the per-flow
    draw entirely via :meth:`split_weights` and applies the split as
    exact fractions.

    Args:
        weights: optional dynamic policy ``(tunnels, now) -> [w, ...]``
            (e.g. :class:`LoadAwareWeights`), re-evaluated at most every
            ``refresh_s``.  Without one, the static vector installed by
            :meth:`update_weights` (initially uniform) applies.
        refresh_s: minimum interval between policy re-evaluations.
        seed: stream for the deterministic per-flow draw.
    """

    def __init__(
        self,
        weights: Optional[Callable[[list, float], list]] = None,
        *,
        refresh_s: float = 0.25,
        seed: int = 0,
    ) -> None:
        if refresh_s < 0:
            raise ValueError("refresh_s must be >= 0")
        self.weights = weights
        self.refresh_s = refresh_s
        self.seed = seed
        self._static: Optional[tuple[float, ...]] = None
        self._cached: Optional[tuple[float, ...]] = None
        self._cached_at: Optional[float] = None
        self._last_choice: Optional[int] = None
        self.uniform_fallbacks = 0
        self.split_counts: dict[int, int] = {}

    @property
    def last_choice(self) -> Optional[int]:
        """Path id of the most recent per-packet draw."""
        return self._last_choice

    def update_weights(self, weights: Sequence[float]) -> None:
        """Install a static weight vector (e.g. from a rebalancer)."""
        self._static = tuple(float(w) for w in weights)
        self._cached = None
        self._cached_at = None

    def split_token(self, tunnels: list, now: float) -> Optional[object]:
        """Cheap split-stability token for resolver caches.

        Returns an object that compares equal for as long as
        :meth:`split_weights` is guaranteed to return the same fractions
        for ``tunnels``, or ``None`` when no such guarantee holds (a
        policy refresh is due, the weight vector does not match the
        tunnel count, or a non-positive weight sum would trigger the
        uniform fallback).  Lets
        :class:`~repro.traffic.fluid.SplitResolver` skip the O(tunnels)
        weight scan on the steady-state path.
        """
        if self.weights is not None:
            if (
                self._cached is None
                or len(self._cached) != len(tunnels)
                or self._cached_at is None
                or now - self._cached_at >= self.refresh_s
            ):
                return None
            return self._cached if sum(self._cached) > 0 else None
        if self._static is not None:
            if len(self._static) != len(tunnels):
                return None
            return self._static if sum(self._static) > 0 else None
        return ("uniform", len(tunnels))

    def split_weights(self, tunnels: list, now: float) -> list:
        """Normalized split fractions over ``tunnels`` (sums to 1)."""
        raw = self._raw_weights(tunnels, now)
        clamped = [max(0.0, w) for w in raw]
        total = sum(clamped)
        if total <= 0:
            self.uniform_fallbacks += 1
            return [1.0 / len(tunnels)] * len(tunnels)
        return [w / total for w in clamped]

    def _raw_weights(self, tunnels: list, now: float) -> list:
        if self.weights is not None:
            stale = (
                self._cached is None
                or len(self._cached) != len(tunnels)
                or self._cached_at is None
                or now - self._cached_at >= self.refresh_s
            )
            if stale:
                raw = [float(w) for w in self.weights(tunnels, now)]
                if len(raw) != len(tunnels):
                    raise ValueError(
                        f"weight policy returned {len(raw)} weights "
                        f"for {len(tunnels)} tunnels"
                    )
                self._cached = tuple(raw)
                self._cached_at = now
            assert self._cached is not None
            return list(self._cached)
        if self._static is not None and len(self._static) == len(tunnels):
            return list(self._static)
        return [1.0] * len(tunnels)

    def select(self, tunnels: list, packet: Packet, now: float):
        if not tunnels:
            raise ValueError("no tunnels to select from")
        weights = self.split_weights(tunnels, now)
        key = self._flow_key(packet)
        draw_seed = (self.seed * 0x9E3779B1) ^ (key & 0xFFFFFFFFFFFF)
        u = float(deterministic_uniform(draw_seed, np.asarray([now]))[0])
        cumulative = 0.0
        index = len(tunnels) - 1
        for i, weight in enumerate(weights):
            cumulative += weight
            if u < cumulative:
                index = i
                break
        chosen = tunnels[index]
        self._last_choice = chosen.path_id
        self.split_counts[chosen.path_id] = (
            self.split_counts.get(chosen.path_id, 0) + 1
        )
        return chosen

    def _flow_key(self, packet: Packet) -> int:
        if packet.flow_label:
            return packet.flow_label
        five = packet.five_tuple()
        return hash((five.src, five.dst, five.protocol, five.sport, five.dport))


class SplitRebalancer:
    """Controller hook: re-derive split weights as congestion shifts.

    Constructed with the tunnel set it balances, a weight policy, and
    the selector to steer; pass the instance as
    ``TangoController(rebalancer=...)`` and each controller tick
    installs fresh weights and appends ``(now, normalized_weights)`` to
    :attr:`history`.
    """

    def __init__(
        self,
        selector: WeightedSplitSelector,
        policy: Callable[[list, float], list],
        tunnels: list,
    ) -> None:
        if not tunnels:
            raise ValueError("rebalancer needs at least one tunnel")
        self.selector = selector
        self.policy = policy
        self.tunnels = list(tunnels)
        self.history: list[tuple[float, tuple[float, ...]]] = []

    def __call__(self, now: float) -> None:
        raw = [max(0.0, float(w)) for w in self.policy(self.tunnels, now)]
        total = sum(raw)
        if total <= 0:
            raw = [1.0] * len(self.tunnels)
            total = float(len(self.tunnels))
        self.selector.update_weights(raw)
        self.history.append((now, tuple(w / total for w in raw)))

    def attach(self, scheduler, *, every: int = 1, name: str = "rebalancer"):
        """Register this hook on a shared tick wheel.

        ``__call__`` already has the ``TickScheduler`` callback shape, so
        a rebalancer can run standalone on the wheel (every ``every``
        rounds) instead of riding a controller's tick.  Returns the
        :class:`~repro.netsim.ticks.TickHandle`.
        """
        return scheduler.register(self, every=every, name=name)
