"""Stitched transit tunnels: first-class relay routes through members.

When a pair lacks a disjoint direct path (or its SRLG-diverse backup is
down), the federation composes a relay route through an intermediate
member: an existing src→relay tunnel carries the packet to the relay's
border switch, where a :class:`~repro.dataplane.relay.RelayForwardProgram`
swaps the outer header onto an existing relay→dst tunnel.  The result is
represented as an ordinary :class:`~repro.core.tunnels.TangoTunnel` —
with its own path id, the union of both segments' risk groups plus a
``member:<relay>`` fate tag, and the concatenated transit view — so
selectors, quarantine, SRLG diversity scoring and fast reroute treat it
exactly like a direct route.

For the fluid traffic engine the stitched route is backed by a
:class:`StitchedWanLink`: a virtual WAN link whose delay and loss are
live compositions of the two real segment links.  Blackholing the relay
member's links therefore drives the composed loss to 1 within the same
step — telemetry goes silent, staleness fires, and the sender reroutes,
with no stitching-specific failure handling anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.mesh import DEFAULT_RELAY_OVERHEAD_S
from ..core.tunnels import TangoTunnel
from .segments import compose_delay, compose_loss

__all__ = ["StitchedWanLink", "RelayPlan", "build_stitched_tunnel"]


class _ComposedDelay:
    def __init__(self, link: "StitchedWanLink") -> None:
        self._link = link

    def delay_at(self, now: float) -> float:
        link = self._link
        return compose_delay(
            link.seg1.delay.delay_at(now),
            link.seg2.delay.delay_at(now),
            link.overhead_s,
        )


class _ComposedLoss:
    def __init__(self, link: "StitchedWanLink") -> None:
        self._link = link

    def loss_probability(self, now: float) -> float:
        link = self._link
        return compose_loss(
            link.seg1.loss.loss_probability(now),
            link.seg2.loss.loss_probability(now),
        )


class StitchedWanLink:
    """Virtual WAN link over two real segment links.

    Duck-types the slice of the netsim ``Link`` surface the fluid engine
    consumes (``.name``, ``.delay.delay_at``, ``.loss.loss_probability``).
    Both components read the segment links *live* — an
    :class:`~repro.netsim.links.OverrideLoss` blackhole installed on a
    segment by a fault (e.g. ``relay_outage``) is visible through the
    composition on the very next evaluation.
    """

    def __init__(
        self,
        name: str,
        seg1,
        seg2,
        overhead_s: float = DEFAULT_RELAY_OVERHEAD_S,
    ) -> None:
        self.name = name
        self.seg1 = seg1
        self.seg2 = seg2
        self.overhead_s = overhead_s
        self.delay = _ComposedDelay(self)
        self.loss = _ComposedLoss(self)


@dataclass(frozen=True)
class RelayPlan:
    """A chosen relay composition for one ordered pair."""

    src: str
    dst: str
    relay: str
    seg1: TangoTunnel  # src -> relay
    seg2: TangoTunnel  # relay -> dst
    path_id: int
    sport: int
    #: Sum of segment base delays plus the relay swap overhead — the
    #: planning metric (live delay comes from telemetry once running).
    composed_base_delay_s: float


def build_stitched_tunnel(plan: RelayPlan) -> TangoTunnel:
    """Materialize a relay plan as a first-class tunnel.

    The wire coordinates are segment 1's (the packet physically rides
    src→relay first; the relay swap substitutes segment 2's), but the
    path id, source port, risk groups and transit view are the stitched
    route's own — distinct from either segment, so its telemetry,
    quarantine state and fate tags never alias a direct route's.
    """
    seg1, seg2 = plan.seg1, plan.seg2
    if plan.path_id % 64 == 0:
        raise ValueError(
            f"stitched path id {plan.path_id} would alias a BGP-default "
            "id (multiple-of-64 ids are reserved for direction bases)"
        )
    return TangoTunnel(
        path_id=plan.path_id,
        label=f"{seg1.label} | via {plan.relay} | {seg2.label}",
        local_endpoint=seg1.local_endpoint,
        remote_endpoint=seg1.remote_endpoint,
        remote_prefix=seg1.remote_prefix,
        transit_asns=seg1.transit_asns + seg2.transit_asns,
        communities=seg1.communities,
        sport=plan.sport,
        short_label=f"via-{plan.relay}",
        srlgs=seg1.srlgs | seg2.srlgs | {f"member:{plan.relay}"},
    )
