"""Segment telemetry composition for stitched relay tunnels.

A stitched tunnel's end-to-end behaviour is observable two ways.  The
*in-band* way needs nothing new: the origin timestamp survives the relay
swap, so the final receiver's measurement is already end-to-end (clock
offsets telescope).  The *out-of-band* way — this module — composes the
two segments' own per-segment telemetry, which every pair already
produces for its direct traffic.  That matters because segment telemetry
keeps flowing even when nobody is currently sending on the stitched
tunnel, giving the registry a warm end-to-end estimate before the first
stitched packet and a second opinion afterwards.

Segments are measured in different clock domains (each at its receiving
edge), so naive addition double-counts the relay's offset.  We reuse the
:mod:`repro.core.multipop` offset model: with calibrated per-member
offsets (``clock_member − clock_reference``), each segment's measured
delay is corrected by ``− offset(receiver) + offset(sender)``, restoring
the true one-way delay, and the corrected segments add.  Loss composes
as independent Bernoulli stages: ``1 − (1−p₁)(1−p₂)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..core.mesh import DEFAULT_RELAY_OVERHEAD_S
from ..core.multipop import MultiPopStore
from ..telemetry.store import MeasurementStore

__all__ = [
    "compose_delay",
    "compose_loss",
    "Segment",
    "SegmentComposer",
]


def compose_delay(
    d1_s: float, d2_s: float, overhead_s: float = DEFAULT_RELAY_OVERHEAD_S
) -> float:
    """End-to-end OWD of two stitched segments plus the relay swap cost."""
    return d1_s + d2_s + overhead_s


def compose_loss(p1: float, p2: float) -> float:
    """Loss of two independent segments in series: 1-(1-p1)(1-p2)."""
    for p in (p1, p2):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {p}")
    return 1.0 - (1.0 - p1) * (1.0 - p2)


@dataclass(frozen=True)
class Segment:
    """One hop of a stitched tunnel, as its receiver measures it.

    ``store`` holds the segment's receiver-side series under
    ``path_id``; timestamps and values are in ``receiver_pop``'s clock
    (the measured OWD includes ``offset(receiver) − offset(sender)``).
    """

    sender_pop: str
    receiver_pop: str
    store: MeasurementStore
    path_id: int


class SegmentComposer:
    """Folds per-segment series into an end-to-end OWD estimate series.

    Args:
        path_id: the stitched tunnel's id — the composed series' key.
        segments: hops in forwarding order (any count ≥ 1; a relay
            chain through two members is three segments).
        offsets: calibrated per-member clock offsets relative to the
            composer's reference clock (normally the stitched tunnel's
            sending edge).  See :class:`~repro.core.multipop.MultiPopStore`.
        window_s: trailing window each segment's mean is taken over.
        overhead_s: per-relay-swap forwarding cost; ``n_segments − 1``
            swaps are charged.
    """

    def __init__(
        self,
        path_id: int,
        segments: Iterable[Segment],
        offsets: MultiPopStore,
        window_s: float = 1.0,
        overhead_s: float = DEFAULT_RELAY_OVERHEAD_S,
    ) -> None:
        self.path_id = path_id
        self.segments = list(segments)
        if not self.segments:
            raise ValueError("composer needs at least one segment")
        self.offsets = offsets
        self.window_s = window_s
        self.overhead_s = overhead_s
        #: Composed true end-to-end OWD series, in the reference clock.
        self.composed = MeasurementStore()

    def compose_at(self, now: float) -> Optional[float]:
        """True end-to-end OWD estimate at reference time ``now``.

        ``None`` until every segment has at least one sample inside its
        window — a half-warm composition would silently understate delay.
        """
        total = self.overhead_s * (len(self.segments) - 1)
        for segment in self.segments:
            # The segment's series lives in its receiver's clock; query
            # the trailing window at that clock's "now".
            local_now = now + self.offsets.offset(segment.receiver_pop)
            mean = segment.store.recent_delay(
                segment.path_id, self.window_s, local_now
            )
            if mean is None:
                return None
            total += (
                mean
                - self.offsets.offset(segment.receiver_pop)
                + self.offsets.offset(segment.sender_pop)
            )
        return total

    def tick(self, now: float) -> None:
        """Tick-wheel callback: append one composed sample when warm."""
        value = self.compose_at(now)
        if value is not None:
            self.composed.record(self.path_id, now, value)

    def attach(self, scheduler, *, every: int = 1, name: str = "segments"):
        """Register on a shared tick wheel; returns the handle."""
        return scheduler.register(self.tick, every=every, name=name)

    def composed_loss(self, losses: Iterable[float]) -> float:
        """Fold per-segment loss estimates into the end-to-end loss."""
        total = 0.0
        for p in losses:
            total = compose_loss(total, p)
        return total
