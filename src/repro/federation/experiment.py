"""E20 — federation diversity, dedup and relay failover at scale.

The two-party experiments (E1–E19) measure one Tango pairing.  E20 asks
what cooperation buys as the *number* of cooperating edges grows:

1. **Dedup** — establishing all N·(N−1)/2 pairs through one shared
   snapshot cache versus independently (each pair its own cache).  The
   announcer-major phased establishment makes every announcer's
   suppression states recur across its observers, so the shared cache's
   hit rate — and wall-clock — improve with N while the independent
   baseline pays full price per pair.
2. **Stitched rescue** — a deliberately degraded pair (both endpoints
   single-homed to the same transit) has exactly one direct path and no
   diversity; a stitched relay tunnel through the best intermediate
   member gives it a second usable route, measured live.
3. **Relay failover** — the relay member is killed mid-run
   (``relay_outage``); the stitched tunnel must be quarantined away
   within one telemetry horizon (staleness + two control ticks), with
   the ``member:<relay>`` fate tag holding it out of probation until
   the relay returns.
4. **Scaling** — projecting the live federation onto the analytical
   mesh reproduces the "Tango of N" diversity/delay-gain curve from
   measured (calibrated) tunnels rather than the offline model.

Everything is a pure function of the scenario seed: the report is
byte-identical across reruns, which the federation benchmark asserts.
"""

from __future__ import annotations

from typing import Optional

from ..core.controller import QuarantinePolicy
from ..faults.injector import FaultInjector
from ..faults.plan import FaultEvent, FaultPlan
from ..scenarios.topologies import build_live_federation
from .registry import FederationRegistry, StitchResult

__all__ = ["run_federation_experiment", "REPORT_SCHEMA"]

REPORT_SCHEMA = "tango-repro/e20-federation/v1"

#: Experiment timeline (seconds of simulation).
_WARMUP_END_S = 1.95
_KILL_AT_S = 2.0
_KILL_DURATION_S = 2.0
_RUN_END_S = 6.0
_STALENESS_S = 0.5
_CONTROL_INTERVAL_S = 0.1


def _diversity_stats(mesh, names: list[str]) -> dict:
    """The example's table row, computed from an analytical mesh."""
    pairs = [(a, b) for a in names for b in names if a != b]
    routes = [mesh.diversity(a, b) for a, b in pairs]
    gains = [mesh.diversity_gain(a, b) for a, b in pairs]
    return {
        "members": len(names),
        "ordered_pairs": len(pairs),
        "mean_routes_per_pair": sum(routes) / len(pairs),
        "mean_gain_ms": sum(gains) / len(pairs) * 1e3,
        "max_gain_ms": max(gains) * 1e3,
        "pairs_gaining": sum(1 for g in gains if g > 1e-9),
    }


def run_federation_experiment(
    n_edges: int = 8,
    seed: int = 42,
    smoke: bool = False,
    scaling_sizes: Optional[tuple[int, ...]] = None,
) -> dict:
    """Run E20 and return its (deterministic, JSON-able) report."""
    if scaling_sizes is None:
        scaling_sizes = (n_edges,) if smoke else (4, 6, n_edges)

    # -- establishment: shared cache vs independent pairwise ------------------
    scenario = build_live_federation(n_edges, seed=seed)
    registry = FederationRegistry(scenario)
    state = registry.establish()
    shared_stats = registry.snapshot_stats()

    baseline = FederationRegistry(
        build_live_federation(n_edges, seed=seed), share_snapshots=False
    )
    baseline.establish()
    baseline_stats = baseline.snapshot_stats()
    baseline.stop()

    established = sum(
        1 for s in registry.sessions.values() if s.state is not None
    )

    # -- stitched rescue of the degraded pair ---------------------------------
    assert scenario.degraded_pair is not None
    deg_src, deg_dst = scenario.degraded_pair
    direct = registry.direction_tunnels(deg_src, deg_dst)
    stitch: StitchResult = registry.stitch_pair(deg_src, deg_dst)
    relay = stitch.plan.relay

    registry.start_telemetry()
    registry.start_control_plane(
        focus=[(deg_src, deg_dst)],
        staleness_s=_STALENESS_S,
        # One-tick quarantine (the blackhole is unambiguous) and short
        # probation: the outage outlives the first probation attempt, so
        # the ``member:<relay>`` down-mark must hold the stitched tunnel
        # out — and release it after the relay returns, inside the run.
        quarantine=QuarantinePolicy(unhealthy_ticks=1, probation_delay_s=1.0),
    )
    registry.start_traffic(deg_src, deg_dst)
    # Segment directions carry their own traffic so the composer always
    # has per-segment telemetry, stitched load or not.
    registry.start_traffic(deg_src, relay)
    registry.start_traffic(relay, deg_dst)

    # Warm up, then count *usable* routes while everything is healthy.
    registry.sim.run(until=_WARMUP_END_S)
    controller = registry.controllers[deg_src]
    sender_tunnels = registry.direction_tunnels(deg_src, deg_dst)
    sender_ids = {t.path_id for t in sender_tunnels}
    usable = [
        h
        for h in controller.health()
        if h.path_id in sender_ids and h.fresh and h.recent_loss < 0.5
    ]
    composed_warm = stitch.composer.compose_at(registry.sim.now)
    direct_warm = registry.gateways[deg_src].outbound.recent_delay(
        stitch.tunnel.path_id, 1.0, registry.sim.now
    )

    # -- relay failover -------------------------------------------------------
    plan = FaultPlan(
        name="e20-relay-kill",
        events=(
            FaultEvent(
                kind="relay_outage",
                at=_KILL_AT_S,
                duration=_KILL_DURATION_S,
                params={"member": relay},
            ),
        ),
        seed=seed,
    )
    FaultInjector(registry, plan).arm()
    registry.sim.run(until=_RUN_END_S)

    stitched_id = stitch.tunnel.path_id
    quarantines = [
        ev
        for ev in controller.quarantine_log
        if ev.path_id == stitched_id
        and ev.action == "quarantine"
        and ev.t >= _KILL_AT_S
    ]
    budget_s = _STALENESS_S + 2 * _CONTROL_INTERVAL_S
    detected_at = quarantines[0].t if quarantines else None
    restores = [
        ev
        for ev in controller.quarantine_log
        if ev.path_id == stitched_id
        and ev.action == "restore"
        and ev.t >= _KILL_AT_S + _KILL_DURATION_S
    ]
    srlg_holds = sum(
        1
        for ev in controller.quarantine_log
        if ev.path_id == stitched_id and ev.cause == "srlg-down"
    )

    composed_series = stitch.composer.composed.series(stitched_id)

    # -- scaling: the analytical Tango-of-N curve from live tunnels -----------
    scaling = []
    for n in scaling_sizes:
        if n == n_edges:
            reg_n, names = registry, scenario.member_names
        else:
            scen_n = build_live_federation(n, seed=seed)
            reg_n = FederationRegistry(scen_n)
            reg_n.establish()
            names = scen_n.member_names
        row = {"n": n, **_diversity_stats(reg_n.analytical_mesh(), names)}
        row["snapshot_hit_rate"] = reg_n.snapshot_stats()["hit_rate"]
        scaling.append(row)
        if reg_n is not registry:
            reg_n.stop()

    registry.stop()

    return {
        "schema": REPORT_SCHEMA,
        "seed": seed,
        "smoke": smoke,
        "n_edges": n_edges,
        "pairs": state.pair_count,
        "established_pairs": established,
        "snapshot_cache": shared_stats,
        "independent_baseline": baseline_stats,
        "degraded_pair": {
            "pair": [deg_src, deg_dst],
            "direct_routes": len(direct),
            "relay": relay,
            "stitched_path_id": stitched_id,
            "stitched_label": stitch.tunnel.label,
            "stitched_srlgs": sorted(stitch.tunnel.srlgs),
            "usable_routes": len(usable),
        },
        "reroute": {
            "killed_at": _KILL_AT_S,
            "kill_duration_s": _KILL_DURATION_S,
            "detected_at": detected_at,
            "delay_s": (
                detected_at - _KILL_AT_S if detected_at is not None else None
            ),
            "budget_s": budget_s,
            "within_budget": (
                detected_at is not None
                and detected_at - _KILL_AT_S <= budget_s
            ),
            "cause": quarantines[0].cause if quarantines else None,
            "srlg_probation_holds": srlg_holds,
            "restored_after_clear": bool(restores),
        },
        "segment_composition": {
            "samples": len(composed_series),
            "composed_owd_ms_at_warmup": (
                composed_warm * 1e3 if composed_warm is not None else None
            ),
            "measured_owd_ms_at_warmup": (
                direct_warm * 1e3 if direct_warm is not None else None
            ),
        },
        "scaling": scaling,
    }
