"""Multi-edge Tango federation: a live N-site session registry.

The paper pairs *two* edges; this package scales the cooperative
machinery to N cooperating sites in one process.  The
:class:`~repro.federation.registry.FederationRegistry` owns every
pairwise session over one shared BGP network (deduplicating convergence
through one :class:`~repro.bgp.snapshot.SnapshotCache`), runs every
controller and rebalancer off one shared tick wheel, and — when a pair
lacks usable direct diversity — composes **stitched transit tunnels**
through intermediate members, with per-segment telemetry folded into
end-to-end estimates via the multi-PoP clock-offset model.
"""

from .registry import (
    FederationRegistry,
    FederationState,
    PairView,
    StitchResult,
)
from .segments import Segment, SegmentComposer, compose_delay, compose_loss
from .stitching import RelayPlan, StitchedWanLink, build_stitched_tunnel

__all__ = [
    "FederationRegistry",
    "FederationState",
    "PairView",
    "StitchResult",
    "Segment",
    "SegmentComposer",
    "compose_delay",
    "compose_loss",
    "RelayPlan",
    "StitchedWanLink",
    "build_stitched_tunnel",
]
