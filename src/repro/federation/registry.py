"""The federation registry: a live control plane for N cooperating edges.

"It takes N": the registry owns the full mesh of pairwise
:class:`~repro.core.session.TangoSession`\\ s over **one** shared
:class:`~repro.bgp.network.BgpNetwork`, and keeps a single process able
to simulate dozens of edges by sharing every heavyweight resource:

* one :class:`~repro.bgp.snapshot.SnapshotCache` dedupes convergence
  work across all pairs' establishments — discovery is run
  *announcer-major* in a dedicated phase, so every announcer's
  suppression states recur across its N−1 observers and are restored
  instead of re-propagated;
* one :class:`~repro.netsim.ticks.TickScheduler` carries every member's
  controller, every rebalancer and every segment composer on a single
  recurring heap event;
* one (vector) fluid engine per focused direction drives telemetry for
  all of that direction's tunnels — direct and stitched alike.

Path-id space is partitioned so all sessions coexist in the members'
shared gateways: unordered pair *k* owns ids ``[128k, 128k+128)`` (two
direction bases), and stitched relay tunnels draw from a block above all
pairs.  Each member's route prefixes are likewise partitioned into
per-peer slices, so concurrent pins from different pairs can never
contend for one prefix's community set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..bgp.attributes import RouteAttributes
from ..bgp.snapshot import SnapshotCache
from ..core.config import EdgeConfig, PairingConfig
from ..core.controller import QuarantinePolicy, TangoController
from ..core.discovery import DiscoveryResult, PathDiscovery
from ..core.gateway import TangoGateway
from ..core.mesh import DEFAULT_RELAY_OVERHEAD_S, TangoMesh
from ..core.multipop import MultiPopStore
from ..core.session import TangoSession
from ..core.tunnels import TangoTunnel, build_tunnels
from ..dataplane.relay import RelayBinding, attach_relay_program
from ..netsim.ticks import TickScheduler
from ..netsim.topology import Network
from ..scenarios.topologies import LiveFederationScenario
from ..scenarios.vultr import PathCalibration
from ..srlg.registry import SrlgRegistry
from ..traffic.demand import DemandModel, FlowClass
from ..traffic.splitting import (
    LoadAwareWeights,
    SplitRebalancer,
    WeightedSplitSelector,
)
from ..traffic.vector import create_fluid_engine
from .segments import Segment, SegmentComposer
from .stitching import RelayPlan, StitchedWanLink, build_stitched_tunnel

__all__ = ["FederationState", "StitchResult", "PairView", "FederationRegistry"]

#: Path-id block per unordered pair: two direction bases of stride 64.
_PAIR_ID_STRIDE = 128
#: Source-port region stitched tunnels draw from (direct tunnels use
#: ``build_tunnels``' 40000+ region).
_RELAY_SPORT_BASE = 41000


@dataclass
class FederationState:
    """Everything federation-wide establishment produced."""

    #: Unordered pairs in creation order (index = path-id block owner).
    pairs: list[tuple[str, str]]

    @property
    def pair_count(self) -> int:
        return len(self.pairs)


@dataclass
class StitchResult:
    """One installed stitched relay tunnel and its observers."""

    plan: RelayPlan
    tunnel: TangoTunnel
    link: StitchedWanLink
    composer: SegmentComposer


class PairView:
    """One ordered pair of the federation, shaped like a deployment.

    The fluid engine (and anything else written against the two-party
    deployment protocol: ``sim``, ``gateway``, ``peer_of``, ``tunnels``,
    ``wan_link``, ``clock_offset_delta``, ``calibrations``) runs over a
    federation through this adapter, unmodified.  Stitched tunnels are
    part of :meth:`tunnels`' answer, so creating an engine *after*
    stitching makes the relay route a first-class engine path.
    """

    def __init__(self, registry: "FederationRegistry", a: str, b: str) -> None:
        self.registry = registry
        self.a = a
        self.b = b
        self.sim = registry.sim
        self.calibrations = {
            a: registry.calibrations_for(a, b),
            b: registry.calibrations_for(b, a),
        }

    def gateway(self, name: str) -> TangoGateway:
        return self.registry.gateways[name]

    def peer_of(self, name: str) -> str:
        if name == self.a:
            return self.b
        if name == self.b:
            return self.a
        raise KeyError(f"{name!r} is not part of pair ({self.a}, {self.b})")

    def tunnels(self, src: str) -> list[TangoTunnel]:
        return self.registry.direction_tunnels(src, self.peer_of(src))

    def wan_link(self, src: str, short_label: str):
        return self.registry.wan_link(src, self.peer_of(src), short_label)

    def clock_offset_delta(self, src: str) -> float:
        peer = self.registry.scenario.member(self.peer_of(src))
        edge = self.registry.scenario.member(src)
        return peer.clock_offset_s - edge.clock_offset_s

    def attach_traffic_engine(self, src: str, engine) -> None:
        self.registry.engines[(src, self.peer_of(src))] = engine


class FederationRegistry:
    """Owns N members' gateways, sessions, wheel, engines and faults."""

    def __init__(
        self,
        scenario: LiveFederationScenario,
        *,
        probe_interval_s: float = 0.010,
        report_interval_s: float = 0.100,
        control_interval_s: float = 0.100,
        share_snapshots: bool = True,
        snapshot_capacity: int = 256,
    ) -> None:
        """``share_snapshots=False`` gives every pair its own private
        convergence cache — the *independent pairwise establishment*
        baseline the E20 dedup gate compares against."""
        self.scenario = scenario
        self.bgp = scenario.bgp
        self.net = Network()
        self.sim = self.net.sim
        self.srlg = SrlgRegistry()
        self.share_snapshots = share_snapshots
        self.snapshots: Optional[SnapshotCache] = (
            SnapshotCache(capacity=snapshot_capacity) if share_snapshots else None
        )
        self.probe_interval_s = probe_interval_s
        self.report_interval_s = report_interval_s
        self.control_interval_s = control_interval_s

        self.switches = {}
        self.gateways: dict[str, TangoGateway] = {}
        for config in scenario.members:
            switch = self.net.add_switch(
                f"{config.name}-sw", clock_offset=config.clock_offset_s
            )
            self.switches[config.name] = switch
            self.gateways[config.name] = TangoGateway(switch, config)

        self.sessions: dict[tuple[str, str], TangoSession] = {}
        self.state: Optional[FederationState] = None
        self.scheduler: Optional[TickScheduler] = None
        self.controllers: dict[str, TangoController] = {}
        self.rebalancers: dict[tuple[str, str], SplitRebalancer] = {}
        self.engines: dict[tuple[str, str], object] = {}
        self.stitches: dict[tuple[str, str], StitchResult] = {}
        #: (src, dst) -> {short_label: calibration} — per ordered pair,
        #: because AS-path short labels repeat across a member's peers.
        self._calibrations: dict[tuple[str, str], dict[str, PathCalibration]] = {}
        self._stitched_links: dict[tuple[str, str, str], StitchedWanLink] = {}
        self._extra_tunnels: dict[tuple[str, str], list[TangoTunnel]] = {}
        self._member_links: dict[str, list] = {
            name: [] for name in scenario.member_names
        }
        self._relay_count = 0
        self._telemetry_started = False

    # -- establishment ------------------------------------------------------------

    def establish(self) -> FederationState:
        """Establish every pairwise session over the shared network.

        Shared-cache mode batches the control-plane work into three
        phases so announcer state recurs: (A) all host-prefix
        originations, one convergence; (B) all discoveries,
        announcer-major, each probing the announcer's one canonical
        prefix; (C) all pins, one convergence, then tunnel installation
        per pair.  Baseline mode instead runs each session's own
        ``establish()`` sequentially — the independent-pairwise cost the
        dedup gate measures against.
        """
        if self.state is not None:
            raise RuntimeError("federation already established")
        names = self.scenario.member_names
        per = self.scenario.prefixes_per_peer
        pairs = [
            (names[i], names[j])
            for i in range(len(names))
            for j in range(i + 1, len(names))
        ]
        for pair_index, (a, b) in enumerate(pairs):
            a_cfg = self.scenario.peer_slice(a, b)
            b_cfg = self.scenario.peer_slice(b, a)
            pairing = PairingConfig(
                a_cfg,
                b_cfg,
                probe_interval_s=self.probe_interval_s,
                report_interval_s=self.report_interval_s,
                control_interval_s=self.control_interval_s,
            )
            self.sessions[(a, b)] = TangoSession(
                pairing,
                self.bgp,
                self.gateways[a],
                self.gateways[b],
                self.sim,
                # Empty per-edge maps (not None) so establishment stamps
                # the automatic transit:<AS> fate tags.
                srlg_tags={a: {}, b: {}},
                snapshots=self.snapshots,
                direction_base_a_to_b=pair_index * _PAIR_ID_STRIDE,
                direction_base_b_to_a=pair_index * _PAIR_ID_STRIDE + 64,
            )
        if self.share_snapshots:
            self._establish_phased(per)
        else:
            for session in self.sessions.values():
                session.establish(max_paths=per)
        self._build_wide_area()
        self.state = FederationState(pairs=pairs)
        return self.state

    def _establish_phased(self, max_paths: int) -> None:
        assert self.snapshots is not None
        # Phase A: every host prefix, one convergence.
        for config in self.scenario.members:
            self.bgp.router(config.tenant_router).originate(config.host_prefix)
        self.snapshots.converge(self.bgp)
        # Phase B: all discoveries, announcer-major.  One canonical
        # probe prefix per announcer means the announcer's suppression
        # sequence produces identical network configurations for every
        # observer — cache hits instead of re-convergences.
        discoveries: dict[tuple[str, str], DiscoveryResult] = {}
        for announcer in self.scenario.member_names:
            config = self.scenario.member(announcer)
            probe = self.scenario.probe_prefixes[announcer]
            for observer in self.scenario.member_names:
                if observer == announcer:
                    continue
                discoveries[(observer, announcer)] = PathDiscovery(
                    self.bgp, config.provider_asn, snapshots=self.snapshots
                ).discover(
                    announcer=config.tenant_router,
                    observer=self.scenario.member(observer).tenant_router,
                    probe_prefix=probe,
                    max_paths=max_paths,
                )
        # Phase C: all pins into per-peer slices, one convergence, then
        # tunnels.  Slices are disjoint, so no pin disturbs another
        # pair's pinned state.
        for (a, b), session in self.sessions.items():
            self._pin(session.pairing.b, discoveries[(a, b)])
            self._pin(session.pairing.a, discoveries[(b, a)])
        self.snapshots.converge(self.bgp)
        for (a, b), session in self.sessions.items():
            d_ab = discoveries[(a, b)]
            d_ba = discoveries[(b, a)]
            tunnels_ab = build_tunnels(
                d_ab.paths,
                local_route_prefixes=session.pairing.a.route_prefixes,
                remote_route_prefixes=session.pairing.b.route_prefixes,
                direction_base=session.direction_base_a_to_b,
                srlg_tags={},
            )
            tunnels_ba = build_tunnels(
                d_ba.paths,
                local_route_prefixes=session.pairing.b.route_prefixes,
                remote_route_prefixes=session.pairing.a.route_prefixes,
                direction_base=session.direction_base_b_to_a,
                srlg_tags={},
            )
            session.install_established(d_ab, d_ba, tunnels_ab, tunnels_ba)

    def _pin(self, edge: EdgeConfig, discovery: DiscoveryResult) -> None:
        """Pin each discovered path to one of ``edge``'s slice prefixes."""
        router = self.bgp.router(edge.tenant_router)
        for path in discovery.paths:
            router.originate(
                edge.route_prefixes[path.index],
                RouteAttributes().add_communities(large=path.communities),
            )

    def _build_wide_area(self) -> None:
        """One netsim link per (direction, tunnel), calibrated and tagged."""
        for (a, b), session in self.sessions.items():
            state = session.state
            assert state is not None
            directions = (
                (a, b, state.discovery_a_to_b, state.tunnels_a_to_b),
                (b, a, state.discovery_b_to_a, state.tunnels_b_to_a),
            )
            for src, dst, discovery, tunnels in directions:
                cal_map = self._calibrations.setdefault((src, dst), {})
                for path, tunnel in zip(discovery.paths, tunnels):
                    calibration = self.scenario.calibration(
                        src, dst, path, tunnel.short_label
                    )
                    cal_map[tunnel.short_label] = calibration
                    link = self.net.add_link(
                        f"{src}->{dst}:{tunnel.short_label}",
                        self.switches[src],
                        self.switches[dst],
                        delay=calibration.build(),
                    )
                    self.srlg.tag_link(
                        link.name,
                        *tunnel.srlgs,
                        f"member:{src}",
                        f"member:{dst}",
                    )
                    self.switches[src].fib.add_route(tunnel.remote_prefix, link)
                    if tunnel.is_default_path:
                        self.switches[src].fib.add_route(
                            self.scenario.member(dst).host_prefix, link
                        )
                    self._member_links[src].append(link)
                    self._member_links[dst].append(link)

    # -- lookups ------------------------------------------------------------------

    def session_for(self, x: str, y: str) -> TangoSession:
        """The (unordered) session joining two members."""
        i, j = self.scenario.member_index(x), self.scenario.member_index(y)
        key = (x, y) if i < j else (y, x)
        try:
            return self.sessions[key]
        except KeyError:
            raise KeyError(f"no session between {x!r} and {y!r}") from None

    def direction_tunnels(self, src: str, dst: str) -> list[TangoTunnel]:
        """Tunnels carrying ``src``→``dst`` traffic: direct + stitched."""
        session = self.session_for(src, dst)
        state = session.state
        if state is None:
            raise RuntimeError("federation not established")
        direct = (
            state.tunnels_a_to_b
            if src == session.pairing.a.name
            else state.tunnels_b_to_a
        )
        return list(direct) + list(self._extra_tunnels.get((src, dst), []))

    def wan_link(self, src: str, dst: str, short_label: str):
        stitched = self._stitched_links.get((src, dst, short_label))
        if stitched is not None:
            return stitched
        return self.net.links[f"{src}->{dst}:{short_label}"]

    def calibrations_for(self, src: str, dst: str) -> dict[str, PathCalibration]:
        return self._calibrations.setdefault((src, dst), {})

    def member_links(self, member: str) -> list:
        """Every real WAN link touching ``member`` — the blast radius a
        ``relay_outage`` fault blackholes."""
        try:
            return list(self._member_links[member])
        except KeyError:
            raise ValueError(
                f"{member!r} is not a federation member; members: "
                f"{self.scenario.member_names}"
            ) from None

    def snapshot_stats(self) -> dict:
        """Convergence-cache counters (the CI-visible dedup evidence)."""
        caches = (
            [self.snapshots]
            if self.snapshots is not None
            else [s.snapshots for s in self.sessions.values()]
        )
        hits = sum(c.hits for c in caches)
        misses = sum(c.misses for c in caches)
        bypasses = sum(c.bypasses for c in caches)
        return {
            "shared": self.share_snapshots,
            "hits": hits,
            "misses": misses,
            "bypasses": bypasses,
            "hit_rate": hits / max(hits + misses, 1),
        }

    # -- stitched relay tunnels ----------------------------------------------------

    def plan_relay(
        self, src: str, dst: str, relay: Optional[str] = None
    ) -> RelayPlan:
        """Pick the relay composition with the lowest composed base delay.

        Candidate relays are members with established tunnels on both
        segments; pass ``relay`` to force one.  Segment tunnels are the
        base-delay-best of each direction.
        """
        if self.state is None:
            raise RuntimeError("establish() before planning relays")
        candidates = (
            [relay]
            if relay is not None
            else [n for n in self.scenario.member_names if n not in (src, dst)]
        )
        best: Optional[RelayPlan] = None
        for member in candidates:
            if member in (src, dst):
                raise ValueError(f"relay {member!r} is an endpoint of the pair")
            seg1 = self._best_segment(src, member)
            seg2 = self._best_segment(member, dst)
            if seg1 is None or seg2 is None:
                continue
            composed = (
                self._base_delay_s(src, member, seg1)
                + self._base_delay_s(member, dst, seg2)
                + self.scenario_overhead_s
            )
            plan = RelayPlan(
                src=src,
                dst=dst,
                relay=member,
                seg1=seg1,
                seg2=seg2,
                path_id=0,  # allocated at install time
                sport=0,
                composed_base_delay_s=composed,
            )
            if best is None or composed < best.composed_base_delay_s:
                best = plan
        if best is None:
            raise LookupError(
                f"no member can relay {src}->{dst}: need established "
                "tunnels on both segments"
            )
        return best

    @property
    def scenario_overhead_s(self) -> float:
        return DEFAULT_RELAY_OVERHEAD_S

    def _best_segment(self, src: str, dst: str) -> Optional[TangoTunnel]:
        try:
            tunnels = [
                t
                for t in self.direction_tunnels(src, dst)
                if not t.short_label.startswith("via-")
            ]
        except KeyError:
            return None
        if not tunnels:
            return None
        return min(tunnels, key=lambda t: self._base_delay_s(src, dst, t))

    def _base_delay_s(self, src: str, dst: str, tunnel: TangoTunnel) -> float:
        calibration = self._calibrations[(src, dst)][tunnel.short_label]
        return calibration.base_ms * 1e-3

    def stitch_pair(
        self, src: str, dst: str, relay: Optional[str] = None
    ) -> StitchResult:
        """Install a stitched relay tunnel for ``src``→``dst`` traffic.

        The stitched route becomes part of the direction's tunnel set
        (selectors, quarantine, diversity and FRR see it unmodified),
        backed by a composed virtual WAN link for the fluid engine and a
        header-swap binding at the relay switch for packet mode.  Its
        telemetry joins the pair's existing mirror, and a
        :class:`SegmentComposer` is wired over the two segments' own
        series.
        """
        if (src, dst) in self.stitches:
            raise ValueError(f"{src}->{dst} already has a stitched tunnel")
        plan = self.plan_relay(src, dst, relay=relay)
        self._relay_count += 1
        if self._relay_count >= 64:
            raise RuntimeError("stitched-tunnel id block exhausted (63 max)")
        offset = self._relay_count
        assert self.state is not None
        base = _PAIR_ID_STRIDE * self.state.pair_count
        plan = RelayPlan(
            src=plan.src,
            dst=plan.dst,
            relay=plan.relay,
            seg1=plan.seg1,
            seg2=plan.seg2,
            path_id=base + offset,
            sport=_RELAY_SPORT_BASE + offset,
            composed_base_delay_s=plan.composed_base_delay_s,
        )
        tunnel = build_stitched_tunnel(plan)

        # Data plane: available to src's traffic for dst's hosts, plus
        # the header swap at the relay.
        dst_cfg = self.scenario.member(dst)
        self.gateways[src].install_tunnels(dst_cfg.host_prefix, [tunnel])
        self._extra_tunnels.setdefault((src, dst), []).append(tunnel)
        attach_relay_program(self.switches[plan.relay]).bind(
            RelayBinding(
                path_id=tunnel.path_id,
                arrival_endpoint=plan.seg1.remote_endpoint,
                next_src=plan.seg2.local_endpoint,
                next_dst=plan.seg2.remote_endpoint,
                next_sport=plan.seg2.sport,
            )
        )

        # Fluid plane: composed virtual link + capacity calibration.
        link = StitchedWanLink(
            f"{src}->{dst}:{tunnel.short_label}",
            self.wan_link(src, plan.relay, plan.seg1.short_label),
            self.wan_link(plan.relay, dst, plan.seg2.short_label),
        )
        self._stitched_links[(src, dst, tunnel.short_label)] = link
        seg1_cal = self._calibrations[(src, plan.relay)][plan.seg1.short_label]
        seg2_cal = self._calibrations[(plan.relay, dst)][plan.seg2.short_label]
        self.calibrations_for(src, dst)[tunnel.short_label] = PathCalibration(
            label=tunnel.short_label,
            base_ms=plan.composed_base_delay_s * 1e3,
            sigma_ms=0.0,
            capacity_bps=min(seg1_cal.capacity_bps, seg2_cal.capacity_bps),
        )
        self.srlg.tag_link(link.name, *tunnel.srlgs)

        # Telemetry: the stitched id joins the pair's mirror scope, and
        # the segments' own series compose into an end-to-end estimate.
        self._extend_mirror_scope(src, dst, tunnel.path_id)
        src_offset = self.scenario.member(src).clock_offset_s
        offsets = MultiPopStore(reference_pop=src)
        for config in self.scenario.members:
            offsets.set_offset(
                config.name, config.clock_offset_s - src_offset
            )
        composer = SegmentComposer(
            tunnel.path_id,
            [
                Segment(
                    sender_pop=src,
                    receiver_pop=plan.relay,
                    store=self.gateways[plan.relay].inbound,
                    path_id=plan.seg1.path_id,
                ),
                Segment(
                    sender_pop=plan.relay,
                    receiver_pop=dst,
                    store=self.gateways[dst].inbound,
                    path_id=plan.seg2.path_id,
                ),
            ],
            offsets,
        )
        if self.scheduler is not None:
            composer.attach(
                self.scheduler, name=f"segments:{src}->{dst}"
            )
        result = StitchResult(
            plan=plan, tunnel=tunnel, link=link, composer=composer
        )
        self.stitches[(src, dst)] = result
        return result

    def _extend_mirror_scope(self, src: str, dst: str, path_id: int) -> None:
        if not self._telemetry_started:
            return
        mirror, _task = self.session_for(src, dst).mirror_to(src)
        if mirror.path_ids is not None:
            mirror.path_ids.add(path_id)

    # -- runtime ------------------------------------------------------------------

    def start_telemetry(self) -> None:
        """Start every session's scoped mirror pair."""
        if self._telemetry_started:
            raise RuntimeError("telemetry already started")
        for session in self.sessions.values():
            session.start_telemetry_mirrors(scoped=True)
        self._telemetry_started = True
        for (src, dst), result in self.stitches.items():
            mirror, _task = self.session_for(src, dst).mirror_to(src)
            if mirror.path_ids is not None:
                mirror.path_ids.add(result.tunnel.path_id)

    def start_control_plane(
        self,
        *,
        staleness_s: float = 0.5,
        quarantine: Optional[QuarantinePolicy] = None,
        focus: Optional[list[tuple[str, str]]] = None,
    ) -> TickScheduler:
        """One shared wheel: every member's controller, every focused
        direction's rebalancer, every stitched composer.

        ``focus`` directions additionally get a load-aware weighted
        split selector (rebalanced on the wheel) so relay routes
        participate in split decisions, and their send-side member is
        where reroute behaviour is observed.
        """
        if self.scheduler is not None:
            raise RuntimeError("control plane already started")
        if quarantine is None:
            quarantine = QuarantinePolicy(unhealthy_ticks=1)
        self.scheduler = TickScheduler(self.sim, self.control_interval_s)
        for src, dst in focus or []:
            tunnels = self.direction_tunnels(src, dst)
            gateway = self.gateways[src]
            # The rebalancer pushes fresh static weights each wheel round;
            # the selector itself stays policy-free (a dynamic policy
            # would shadow the pushed weights).
            selector = WeightedSplitSelector(refresh_s=self.control_interval_s)
            rebalancer = SplitRebalancer(
                selector, LoadAwareWeights(gateway.outbound), tunnels
            )
            gateway.set_data_selector(selector)
            rebalancer.attach(
                self.scheduler, name=f"rebalance:{src}->{dst}"
            )
            self.rebalancers[(src, dst)] = rebalancer
        for name in self.scenario.member_names:
            controller = TangoController(
                self.gateways[name],
                self.sim,
                interval_s=self.control_interval_s,
                staleness_s=staleness_s,
                quarantine=quarantine,
                srlg_registry=self.srlg,
                scheduler=self.scheduler,
            )
            controller.start()
            self.controllers[name] = controller
        for result in self.stitches.values():
            result.composer.attach(
                self.scheduler,
                name=f"segments:{result.plan.src}->{result.plan.dst}",
            )
        return self.scheduler

    def start_traffic(
        self,
        src: str,
        dst: str,
        demand: Optional[DemandModel] = None,
        *,
        engine: str = "vector",
    ):
        """Drive one direction with a fluid engine (stitched routes
        included — start traffic *after* stitching)."""
        if demand is None:
            pair_seed = (
                self.scenario.member_index(src) * 64
                + self.scenario.member_index(dst)
            )
            demand = DemandModel(
                classes=(
                    FlowClass(
                        name=f"{src}->{dst}",
                        flow_label=1,
                        arrival_rate_per_s=200.0,
                        mean_size_bytes=125_000,
                        rate_bps=2e6,
                    ),
                ),
                seed=pair_seed,
            )
        view = PairView(self, *self._pair_key(src, dst))
        fluid = create_fluid_engine(
            view, src, demand, engine=engine, step_s=self.report_interval_s
        )
        fluid.start(at_equilibrium=True)
        return fluid

    def _pair_key(self, x: str, y: str) -> tuple[str, str]:
        i, j = self.scenario.member_index(x), self.scenario.member_index(y)
        return (x, y) if i < j else (y, x)

    def analytical_mesh(self) -> TangoMesh:
        """Project the live federation onto the analytical
        :class:`TangoMesh` (diversity / delay-gain reporting), using the
        calibrated base delays of every established direct tunnel."""
        mesh = TangoMesh()
        for name in self.scenario.member_names:
            mesh.add_member(name)
        for (a, b), session in self.sessions.items():
            state = session.state
            if state is None:
                continue
            for src, dst, tunnels in (
                (a, b, state.tunnels_a_to_b),
                (b, a, state.tunnels_b_to_a),
            ):
                mesh.add_paths(
                    src,
                    dst,
                    [
                        (t.short_label, self._base_delay_s(src, dst, t))
                        for t in tunnels
                    ],
                )
        return mesh

    def stop(self) -> None:
        """Defensive teardown: stop engines, controllers and sessions
        (sessions' ``stop()`` is idempotent, so double-stops are safe)."""
        for engine in self.engines.values():
            stop = getattr(engine, "stop", None)
            if callable(stop):
                stop()
        for controller in self.controllers.values():
            controller.stop()
        for session in self.sessions.values():
            session.stop()
