"""Summary statistics and comparisons for measurement campaigns."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..telemetry.jitter import rolling_window_std
from ..telemetry.store import MeasurementStore

__all__ = [
    "PathStats",
    "campaign_table",
    "default_vs_best",
    "DefaultVsBest",
    "time_under_threshold",
    "detect_excursions",
    "Excursion",
]


@dataclass(frozen=True)
class PathStats:
    """One path's campaign statistics (all delays in seconds)."""

    path_id: int
    label: str
    samples: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float
    stddev: float
    jitter_1s: float

    def as_row(self) -> dict:
        """Milliseconds view for tables."""
        return {
            "path": self.label,
            "samples": self.samples,
            "mean_ms": self.mean * 1e3,
            "min_ms": self.minimum * 1e3,
            "p50_ms": self.p50 * 1e3,
            "p95_ms": self.p95 * 1e3,
            "p99_ms": self.p99 * 1e3,
            "max_ms": self.maximum * 1e3,
            "std_ms": self.stddev * 1e3,
            "jitter_1s_ms": self.jitter_1s * 1e3,
        }


def campaign_table(
    store: MeasurementStore,
    labels: dict[int, str],
    t0: Optional[float] = None,
    t1: Optional[float] = None,
) -> list[PathStats]:
    """Per-path statistics over a window (whole campaign by default)."""
    rows = []
    for path_id in store.path_ids():
        series = store.series(path_id)
        if t0 is None and t1 is None:
            times, values = series.times, series.values
        else:
            times, values = series.window(
                t0 if t0 is not None else float("-inf"),
                t1 if t1 is not None else float("inf"),
            )
        if values.size == 0:
            continue
        rows.append(
            PathStats(
                path_id=path_id,
                label=labels.get(path_id, str(path_id)),
                samples=int(values.size),
                mean=float(np.mean(values)),
                minimum=float(np.min(values)),
                maximum=float(np.max(values)),
                p50=float(np.percentile(values, 50)),
                p95=float(np.percentile(values, 95)),
                p99=float(np.percentile(values, 99)),
                stddev=float(np.std(values)),
                jitter_1s=rolling_window_std(times, values, 1.0),
            )
        )
    return rows


@dataclass(frozen=True)
class DefaultVsBest:
    """The paper's headline comparison for one direction."""

    default_label: str
    best_label: str
    default_mean: float
    best_mean: float

    @property
    def penalty_fraction(self) -> float:
        """How much worse the BGP default is than the best path.

        The difference of measured means is clock-offset-free; the
        denominator uses the best path's mean, so with a small (or
        corrected) offset this is the paper's "30% worse" number.
        """
        if self.best_mean <= 0:
            return float("nan")
        return (self.default_mean - self.best_mean) / self.best_mean


def default_vs_best(
    store: MeasurementStore,
    labels: dict[int, str],
    default_path_id: int,
    offset_correction_s: float = 0.0,
) -> DefaultVsBest:
    """Compare the BGP-default path's mean against the best path's.

    Args:
        store: measured delays (may include a clock-offset constant).
        labels: path id -> label.
        default_path_id: the BGP default (discovery index 0).
        offset_correction_s: known receiver-minus-sender offset to
            subtract (simulation ground truth; a deployment would quote
            the offset-free *difference* instead).
    """
    means = {
        path_id: store.series(path_id).mean() - offset_correction_s
        for path_id in store.path_ids()
    }
    if default_path_id not in means:
        raise KeyError(f"default path {default_path_id} has no samples")
    best_id = min(means, key=lambda p: means[p])
    return DefaultVsBest(
        default_label=labels.get(default_path_id, str(default_path_id)),
        best_label=labels.get(best_id, str(best_id)),
        default_mean=means[default_path_id],
        best_mean=means[best_id],
    )


def time_under_threshold(
    times: np.ndarray, values: np.ndarray, threshold: float
) -> float:
    """Fraction of samples at or below ``threshold`` (deadline SLO)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return float("nan")
    return float(np.mean(values <= threshold))


@dataclass(frozen=True)
class Excursion:
    """A contiguous period where a series exceeded a threshold."""

    start: float
    end: float
    peak: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def detect_excursions(
    times: np.ndarray,
    values: np.ndarray,
    threshold: float,
    min_duration_s: float = 0.0,
    merge_gap_s: float = 1.0,
) -> list[Excursion]:
    """Find threshold excursions — how reports locate the Fig. 4 events.

    Consecutive above-threshold samples separated by gaps shorter than
    ``merge_gap_s`` merge into one excursion; excursions shorter than
    ``min_duration_s`` are dropped.
    """
    times = np.asarray(times, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if times.shape != values.shape:
        raise ValueError("times and values must align")
    above = values > threshold
    excursions: list[Excursion] = []
    start: Optional[float] = None
    last_above: Optional[float] = None
    peak = float("-inf")
    for t, v, flag in zip(times, values, above):
        if flag:
            if start is None:
                start, peak = float(t), float(v)
            elif last_above is not None and t - last_above > merge_gap_s:
                excursions.append(Excursion(start, last_above, peak))
                start, peak = float(t), float(v)
            peak = max(peak, float(v))
            last_above = float(t)
    if start is not None and last_above is not None:
        excursions.append(Excursion(start, last_above, peak))
    return [e for e in excursions if e.duration >= min_duration_s]
