"""TCP impact of delay spikes and reordering (paper Section 5).

The paper's argument: during GTT's instability window, *most* packets
still arrive at the 28 ms floor, but in-order delivery means one spiked
packet holds up every later packet at the application layer — so a
latency-sensitive stream suffers far more than the mean delay suggests,
and switching to a stable path wins even when GTT's average looks fine.

Two complementary models:

* :class:`InOrderDeliveryModel` — exact head-of-line-blocking replay of a
  packet stream: application delivery time of packet *i* is the max
  arrival time over packets 0..i.  Produces application-level latency and
  stall statistics from per-packet network delays.
* :func:`mathis_throughput` — the classic Mathis/Semke/Mahdavi steady
  state bound ``MSS / (RTT * sqrt(2p/3))``: loss- and RTT-sensitive
  throughput for the comparison tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "DeliveryStats",
    "InOrderDeliveryModel",
    "mathis_throughput",
    "stream_goodput",
]


@dataclass(frozen=True)
class DeliveryStats:
    """Application-level outcome of replaying a stream in order."""

    packets: int
    mean_network_delay_s: float
    mean_app_delay_s: float
    p99_app_delay_s: float
    max_app_delay_s: float
    stalled_packets: int
    total_stall_s: float

    @property
    def hol_blocking_penalty_s(self) -> float:
        """Extra mean latency caused purely by in-order delivery."""
        return self.mean_app_delay_s - self.mean_network_delay_s


class InOrderDeliveryModel:
    """Replays (send time, network delay) pairs through in-order delivery.

    A packet is *stalled* when it arrived but could not be delivered
    because an earlier packet was still in flight; the stall time is how
    long it waited in the reorder buffer.
    """

    def __init__(self, stall_threshold_s: float = 0.0) -> None:
        if stall_threshold_s < 0:
            raise ValueError("stall threshold must be >= 0")
        self.stall_threshold_s = stall_threshold_s

    def replay(
        self, send_times: np.ndarray, network_delays: np.ndarray
    ) -> DeliveryStats:
        """Compute application delivery statistics for one stream.

        Args:
            send_times: per-packet transmission times, non-decreasing.
            network_delays: per-packet one-way network delays.
        """
        send_times = np.asarray(send_times, dtype=np.float64)
        network_delays = np.asarray(network_delays, dtype=np.float64)
        if send_times.shape != network_delays.shape:
            raise ValueError("send_times and network_delays must align")
        if send_times.size == 0:
            raise ValueError("cannot replay an empty stream")
        if np.any(np.diff(send_times) < 0):
            raise ValueError("send times must be non-decreasing")
        arrivals = send_times + network_delays
        delivered = np.maximum.accumulate(arrivals)
        app_delays = delivered - send_times
        stalls = delivered - arrivals
        stalled = stalls > self.stall_threshold_s
        return DeliveryStats(
            packets=int(send_times.size),
            mean_network_delay_s=float(np.mean(network_delays)),
            mean_app_delay_s=float(np.mean(app_delays)),
            p99_app_delay_s=float(np.percentile(app_delays, 99)),
            max_app_delay_s=float(np.max(app_delays)),
            stalled_packets=int(np.sum(stalled)),
            total_stall_s=float(np.sum(stalls)),
        )


def mathis_throughput(
    mss_bytes: int, rtt_s: float, loss_fraction: float
) -> float:
    """Steady-state TCP throughput bound, bytes per second.

    ``MSS / (RTT * sqrt(2p/3))``.  Returns ``inf`` for zero loss (the
    bound degenerates; callers cap by link rate) and raises for invalid
    inputs rather than silently extrapolating.
    """
    if mss_bytes <= 0:
        raise ValueError(f"mss must be positive, got {mss_bytes}")
    if rtt_s <= 0:
        raise ValueError(f"rtt must be positive, got {rtt_s}")
    if not 0 <= loss_fraction <= 1:
        raise ValueError(f"loss must be in [0, 1], got {loss_fraction}")
    if loss_fraction == 0:
        return float("inf")
    return mss_bytes / (rtt_s * math.sqrt(2.0 * loss_fraction / 3.0))


def stream_goodput(
    send_times: np.ndarray,
    network_delays: np.ndarray,
    payload_bytes: int,
    deadline_s: float,
) -> float:
    """Deadline-respecting goodput of an in-order stream, bytes/second.

    Packets whose *application* delivery latency exceeds the deadline are
    worthless to a real-time consumer (the drone-control framing of the
    paper's Section 2); goodput counts only on-time bytes over the stream
    duration.
    """
    send_times = np.asarray(send_times, dtype=np.float64)
    network_delays = np.asarray(network_delays, dtype=np.float64)
    if send_times.size == 0:
        return 0.0
    arrivals = send_times + network_delays
    delivered = np.maximum.accumulate(arrivals)
    app_delays = delivered - send_times
    on_time = int(np.sum(app_delays <= deadline_s))
    duration = float(send_times[-1] - send_times[0])
    if duration <= 0:
        return float(on_time * payload_bytes)
    return on_time * payload_bytes / duration
