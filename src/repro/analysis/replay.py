"""Campaign-scale policy replay.

Packet-level simulation is exact but too slow for multi-hour traces; the
replay engine evaluates a path-selection policy against a sampled
campaign instead:

* at each *decision epoch*, the policy sees the **measured** store —
  but only samples older than the visibility latency (mirror freshness:
  report interval plus reverse-path delay);
* between epochs the selected path is fixed, and the *achieved* delay at
  each probe instant is the **true** delay of the selected path.

This mirrors exactly what the packet-level pipeline does (the test suite
asserts the two agree on short windows), while handling 8-day campaigns
in milliseconds.

Choosers correspond one-to-one with the data-plane selectors in
:mod:`repro.core.policy`; they operate on per-path trailing-window means
instead of tunnels/packets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..telemetry.store import MeasurementStore

__all__ = [
    "ReplayResult",
    "PolicyReplay",
    "Chooser",
    "static_chooser",
    "greedy_chooser",
    "hysteresis_chooser",
    "jitter_aware_chooser",
]


@dataclass(frozen=True)
class PathView:
    """What a chooser sees about one path at a decision epoch."""

    path_id: int
    mean: Optional[float]
    std: Optional[float]


#: A chooser: (views, current_path_id, now) -> chosen path_id.
Chooser = Callable[[Sequence[PathView], int, float], int]


@dataclass
class ReplayResult:
    """Outcome of replaying one policy over a campaign window."""

    name: str
    times: np.ndarray
    achieved: np.ndarray
    choices: np.ndarray  # chosen path id per probe sample
    switch_count: int

    @property
    def mean_delay(self) -> float:
        return float(np.mean(self.achieved))

    @property
    def p99_delay(self) -> float:
        return float(np.percentile(self.achieved, 99))

    @property
    def max_delay(self) -> float:
        return float(np.max(self.achieved))

    def fraction_on_path(self, path_id: int) -> float:
        return float(np.mean(self.choices == path_id))

    def as_row(self) -> dict:
        return {
            "policy": self.name,
            "mean_ms": self.mean_delay * 1e3,
            "p99_ms": self.p99_delay * 1e3,
            "max_ms": self.max_delay * 1e3,
            "switches": self.switch_count,
        }


class PolicyReplay:
    """Replays choosers against a (measured, true) campaign pair.

    Args:
        measured: what the policy is allowed to see (clock-offset
            distorted, mirror-delayed) — per-path series.
        true: ground-truth per-path delays used to score decisions.
        decision_interval_s: how often the policy re-decides (the
            controller cadence).
        visibility_latency_s: freshness of mirrored measurements.
        window_s: trailing window the choosers' means are computed over.
    """

    def __init__(
        self,
        measured: MeasurementStore,
        true: MeasurementStore,
        decision_interval_s: float = 0.1,
        visibility_latency_s: float = 0.1,
        window_s: float = 1.0,
    ) -> None:
        for name, value in (
            ("decision_interval_s", decision_interval_s),
            ("window_s", window_s),
        ):
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if visibility_latency_s < 0:
            raise ValueError("visibility_latency_s must be >= 0")
        self.measured = measured
        self.true = true
        self.decision_interval_s = decision_interval_s
        self.visibility_latency_s = visibility_latency_s
        self.window_s = window_s

    def run(
        self,
        chooser: Chooser,
        t0: float,
        t1: float,
        name: str = "policy",
        initial_path: Optional[int] = None,
        restrict_paths: Optional[Sequence[int]] = None,
    ) -> ReplayResult:
        """Replay ``chooser`` over [t0, t1).

        Args:
            chooser: the policy.
            initial_path: path used before the first decision (defaults
                to the lowest path id — the BGP default).
            restrict_paths: limit the choice set (multihoming baseline).
        """
        path_ids = restrict_paths or self.true.path_ids()
        path_ids = sorted(path_ids)
        if not path_ids:
            raise ValueError("no paths to replay over")
        current = initial_path if initial_path is not None else path_ids[0]
        # Probe timeline comes from the true store of the first path.
        probe_times, _ = self.true.series(path_ids[0]).window(t0, t1)
        if probe_times.size == 0:
            raise ValueError(f"true store has no samples in [{t0}, {t1})")
        true_values = {
            p: self.true.series(p).window(t0, t1)[1] for p in path_ids
        }
        for p, v in true_values.items():
            if v.size != probe_times.size:
                raise ValueError(
                    f"path {p} probe grid mismatch: {v.size} vs {probe_times.size}"
                )
        epochs = np.arange(t0, t1, self.decision_interval_s)
        # Each epoch's choice governs probes in [epoch_i, epoch_{i+1});
        # slicing by consecutive boundaries (not epoch + interval) keeps
        # coverage gap-free under floating-point drift.
        boundaries = np.searchsorted(probe_times, epochs, side="left")
        boundaries = np.append(boundaries, probe_times.size)
        choices = np.empty(probe_times.size, dtype=np.int64)
        switch_count = 0
        for i, epoch in enumerate(epochs):
            # An epoch governing zero probes (past the last sample, or
            # several decisions between two probes) can neither observe
            # nor affect anything — skip it, so switch_count always
            # equals the number of transitions visible in ``choices``.
            if boundaries[i] == boundaries[i + 1]:
                continue
            views = self._views(path_ids, epoch)
            chosen = chooser(views, current, float(epoch))
            if chosen not in path_ids:
                raise ValueError(f"chooser picked unknown path {chosen}")
            if chosen != current:
                switch_count += 1
                current = chosen
            choices[boundaries[i] : boundaries[i + 1]] = current
        achieved = np.empty(probe_times.size, dtype=np.float64)
        for p in path_ids:
            mask = choices == p
            achieved[mask] = true_values[p][mask]
        return ReplayResult(
            name=name,
            times=probe_times.copy(),
            achieved=achieved,
            choices=choices,
            switch_count=switch_count,
        )

    def _views(self, path_ids: Sequence[int], now: float) -> list[PathView]:
        horizon = now - self.visibility_latency_s
        views = []
        for p in path_ids:
            times, values = self.measured.series(p).window(
                horizon - self.window_s, horizon
            )
            if values.size == 0:
                views.append(PathView(p, None, None))
            else:
                views.append(
                    PathView(
                        p, float(np.mean(values)), float(np.std(values))
                    )
                )
        return views


# -- choosers (campaign-scale twins of repro.core.policy selectors) ----------


def static_chooser(path_id: int) -> Chooser:
    """Always ``path_id`` — the BGP-default behaviour when it is the
    lowest-id path."""

    def choose(
        _views: Sequence[PathView], _current: int, _now: float
    ) -> int:
        return path_id

    return choose


def greedy_chooser() -> Chooser:
    """Lowest visible mean; keeps the current path when nothing is
    visible (twin of :class:`repro.core.policy.LowestDelaySelector`)."""

    def choose(views: Sequence[PathView], current: int, _now: float) -> int:
        best, best_mean = current, float("inf")
        for view in views:
            if view.mean is not None and view.mean < best_mean:
                best, best_mean = view.path_id, view.mean
        return best

    return choose


def hysteresis_chooser(margin_s: float = 0.002, dwell_s: float = 1.0) -> Chooser:
    """Switch only for a ``margin_s`` win after ``dwell_s`` on a path
    (twin of :class:`repro.core.policy.HysteresisSelector`)."""
    state = {"last_switch": float("-inf")}

    def choose(views: Sequence[PathView], current: int, now: float) -> int:
        if now - state["last_switch"] < dwell_s:
            return current
        current_mean = None
        for view in views:
            if view.path_id == current:
                current_mean = view.mean
        best, best_mean = current, current_mean
        for view in views:
            if view.mean is None:
                continue
            if best_mean is None or view.mean < best_mean - margin_s:
                best, best_mean = view.path_id, view.mean
        if best != current:
            state["last_switch"] = now
        return best

    return choose


def jitter_aware_chooser(jitter_weight: float = 10.0) -> Chooser:
    """Score = mean + weight × std (twin of
    :class:`repro.core.policy.JitterAwareSelector`)."""

    def choose(views: Sequence[PathView], current: int, _now: float) -> int:
        best, best_score = current, float("inf")
        for view in views:
            if view.mean is None or view.std is None:
                continue
            score = view.mean + jitter_weight * view.std
            if score < best_score:
                best, best_score = view.path_id, score
        return best

    return choose
