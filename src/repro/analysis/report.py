"""Plain-text report rendering for experiment harnesses.

Benchmarks print the same rows the paper reports; this module renders
them as aligned monospace tables so ``pytest benchmarks/ --benchmark-only``
output is directly comparable with the paper's tables and figure
narrations.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

__all__ = ["format_table", "format_kv", "series_sparkline"]


def _render_cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict-rows as an aligned text table.

    Column order defaults to first-row key order; missing cells render
    as ``-``.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    rendered = [[_render_cell(row.get(c)) for c in cols] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


def format_kv(pairs: Iterable[tuple[str, object]], title: Optional[str] = None) -> str:
    """Render key/value findings, one per line."""
    lines = [title] if title else []
    for key, value in pairs:
        lines.append(f"  {key}: {_render_cell(value)}")
    return "\n".join(lines)


_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def series_sparkline(values: Sequence[float], width: int = 60) -> str:
    """A terminal sparkline of a series (down-sampled to ``width``).

    Handy for eyeballing the Figure 4 shapes in benchmark output without
    a plotting stack.
    """
    data = [float(v) for v in values]
    if not data:
        return ""
    if len(data) > width:
        stride = len(data) / width
        data = [
            max(data[int(i * stride) : max(int((i + 1) * stride), int(i * stride) + 1)])
            for i in range(width)
        ]
    lo, hi = min(data), max(data)
    if hi - lo < 1e-12:
        return _SPARK_CHARS[0] * len(data)
    scale = (len(_SPARK_CHARS) - 1) / (hi - lo)
    return "".join(_SPARK_CHARS[int((v - lo) * scale)] for v in data)
