"""Analysis: campaign statistics, policy replay, TCP impact, reports."""

from .figures import (
    export_all,
    export_fig4_left,
    export_fig4_middle,
    export_fig4_right,
)
from .replay import (
    PolicyReplay,
    ReplayResult,
    greedy_chooser,
    hysteresis_chooser,
    jitter_aware_chooser,
    static_chooser,
)
from .report import format_kv, format_table, series_sparkline
from .stats import (
    DefaultVsBest,
    Excursion,
    PathStats,
    campaign_table,
    default_vs_best,
    detect_excursions,
    time_under_threshold,
)
from .tcp_model import (
    DeliveryStats,
    InOrderDeliveryModel,
    mathis_throughput,
    stream_goodput,
)

__all__ = [
    "DefaultVsBest",
    "DeliveryStats",
    "Excursion",
    "InOrderDeliveryModel",
    "PathStats",
    "PolicyReplay",
    "ReplayResult",
    "campaign_table",
    "default_vs_best",
    "detect_excursions",
    "export_all",
    "export_fig4_left",
    "export_fig4_middle",
    "export_fig4_right",
    "format_kv",
    "format_table",
    "greedy_chooser",
    "hysteresis_chooser",
    "jitter_aware_chooser",
    "mathis_throughput",
    "series_sparkline",
    "static_chooser",
    "stream_goodput",
    "time_under_threshold",
]
