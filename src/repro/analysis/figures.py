"""Figure-data export.

The benchmarks print the rows a reader compares against the paper; this
module writes the underlying *series* to CSV so any plotting stack can
regenerate the actual figures.  One function per figure, all driven by a
:class:`~repro.scenarios.vultr.VultrDeployment`.

No plotting library is imported — the repository stays dependency-light;
the CSVs load directly into pandas/gnuplot/matplotlib.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

from ..scenarios.deployment import PacketLevelDeployment
from ..scenarios.vultr import INSTABILITY_HOUR, ROUTE_CHANGE_HOUR

__all__ = [
    "export_fig4_left",
    "export_fig4_middle",
    "export_fig4_right",
    "export_all",
]

PathLike = Union[str, Path]


def _write_series_csv(
    path: Path,
    deployment: PacketLevelDeployment,
    src: str,
    t0: float,
    t1: float,
    interval: float,
) -> int:
    """One CSV: time_hours plus a measured-OWD-ms column per path."""
    _, true = deployment.run_fast_campaign(src, t0, t1, interval_s=interval)
    labels = {t.path_id: t.short_label for t in deployment.tunnels(src)}
    path_ids = true.path_ids()
    times = true.series(path_ids[0]).times
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time_hours"] + [labels[p] + "_ms" for p in path_ids])
        columns = [true.series(p).values for p in path_ids]
        for index, t in enumerate(times):
            writer.writerow(
                [f"{t / 3600.0:.6f}"]
                + [f"{column[index] * 1e3:.4f}" for column in columns]
            )
    return len(times)


def export_fig4_left(
    deployment: PacketLevelDeployment, out_dir: PathLike, interval_s: float = 5.0
) -> Path:
    """Hours 25–48, NY→LA, all paths (the figure's left panel)."""
    out = Path(out_dir) / "fig4_left_owd_ny_to_la.csv"
    _write_series_csv(
        out, deployment, "ny", 25.0 * 3600.0, 48.0 * 3600.0, interval_s
    )
    return out


def export_fig4_middle(
    deployment: PacketLevelDeployment, out_dir: PathLike, interval_s: float = 0.5
) -> Path:
    """The hour around the route-change event (middle panel)."""
    event = ROUTE_CHANGE_HOUR * 3600.0
    out = Path(out_dir) / "fig4_middle_route_change.csv"
    _write_series_csv(
        out, deployment, "ny", event - 900.0, event + 2700.0, interval_s
    )
    return out


def export_fig4_right(
    deployment: PacketLevelDeployment, out_dir: PathLike, interval_s: float = 0.05
) -> Path:
    """The ~12 minutes around the instability window (right panel)."""
    event = INSTABILITY_HOUR * 3600.0
    out = Path(out_dir) / "fig4_right_instability.csv"
    _write_series_csv(
        out, deployment, "ny", event - 120.0, event + 420.0, interval_s
    )
    return out


def export_all(
    deployment: PacketLevelDeployment, out_dir: PathLike
) -> list[Path]:
    """Write every figure's data; returns the paths written."""
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    return [
        export_fig4_left(deployment, directory),
        export_fig4_middle(deployment, directory),
        export_fig4_right(deployment, directory),
    ]
