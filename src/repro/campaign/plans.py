"""Seeded generation of adversarial fault-plan populations.

Each plan is drawn from its own :class:`numpy.random.SeedSequence`
spawned as ``[master_seed, index]`` — the i-th plan is a pure function of
``(master_seed, i)``, independent of how many plans are generated around
it or which worker process later runs it.  That per-plan independence is
what lets the campaign runner shard plans across cores and still merge a
byte-identical report.

The population cycles through five archetypes:

* ``favored_tamper`` — timestamp bias on a truly-worse path sized to
  make it *appear* best (the headline steering attack E17 gates on);
* ``telemetry_replay`` — stale-sample replay with valid tags;
* ``gray_loss`` — silent partial drop with sequence rewriting, hidden
  from the loss ledgers;
* ``clock_drift`` — ppm drift plus an NTP-style step on the victim's
  peer clock (the defense must re-estimate, not re-route);
* ``blackhole`` — a classic active-path blackhole, kept in the mix so
  every campaign also measures plain-fault MTTR under the full stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..faults.plan import FaultEvent, FaultPlan

__all__ = [
    "AdversarialPlan",
    "generate_adversarial_plans",
    "generate_correlated_plans",
    "ARCHETYPES",
    "CORRELATED_ARCHETYPES",
]

#: Generation order; plan ``i`` gets archetype ``ARCHETYPES[i % 5]``.
ARCHETYPES = (
    "favored_tamper",
    "telemetry_replay",
    "gray_loss",
    "clock_drift",
    "blackhole",
)

#: Victim direction every plan attacks (the campaign defends it).
VICTIM = "ny"
PEER = "la"

#: ny->la calibrated base delays (ms) — the tamper generator sizes its
#: bias from the gap to the true best path so the tampered path appears
#: fastest.  Kept in sync with ``repro.scenarios.vultr`` by a test.
_BASE_MS = {"NTT": 36.4, "Telia": 32.0, "GTT": 28.05, "Level3": 40.2}
_TRUE_BEST = "GTT"


@dataclass(frozen=True)
class AdversarialPlan:
    """One generated campaign entry.

    Attributes:
        index: position in the population (the shard-merge sort key).
        archetype: which generator produced it (gate selection key).
        favored: path label a tamper tries to steer onto (None for
            archetypes that do not steer).
        plan: the replayable fault plan itself.
    """

    index: int
    archetype: str
    favored: Optional[str]
    plan: FaultPlan

    def to_payload(self) -> dict:
        """Picklable/serializable form shipped to worker processes."""
        return {
            "index": self.index,
            "archetype": self.archetype,
            "favored": self.favored,
            "plan_json": self.plan.to_json(),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "AdversarialPlan":
        return cls(
            index=int(payload["index"]),
            archetype=str(payload["archetype"]),
            favored=payload["favored"],
            plan=FaultPlan.from_json(payload["plan_json"]),
        )


def _window(rng: np.random.Generator) -> tuple[float, float]:
    """Attack onset and duration inside the runner's fixed horizon."""
    at = round(float(rng.uniform(3.0, 4.5)), 3)
    duration = round(float(rng.uniform(3.0, 5.0)), 3)
    return at, duration


def _favored_tamper(rng: np.random.Generator, seed: int) -> tuple[FaultEvent, str]:
    label = str(rng.choice(sorted(set(_BASE_MS) - {_TRUE_BEST})))
    gap_ms = _BASE_MS[label] - _BASE_MS[_TRUE_BEST]
    bias_ms = round(gap_ms + float(rng.uniform(4.0, 12.0)), 3)
    at, _ = _window(rng)
    # Long enough that an undefended victim demonstrably steers: the
    # adaptive selector's rolling window adds ~1 s of lag before the
    # tampered path wins, and the E17 gate wants >= 3 steered horizons.
    duration = round(float(rng.uniform(4.5, 6.5)), 3)
    event = FaultEvent(
        "telemetry_tamper",
        at=at,
        duration=duration,
        params={"src": VICTIM, "path": label, "bias_ms": bias_ms},
    )
    return event, label


def _telemetry_replay(rng: np.random.Generator, seed: int) -> FaultEvent:
    label = str(rng.choice(sorted(_BASE_MS)))
    at, duration = _window(rng)
    return FaultEvent(
        "telemetry_replay",
        at=at,
        duration=duration,
        params={
            "src": VICTIM,
            "path": label,
            "delay_s": round(float(rng.uniform(0.5, 1.5)), 3),
            "every": int(rng.integers(2, 4)),
        },
    )


def _gray_loss(rng: np.random.Generator, seed: int) -> FaultEvent:
    # Target the true best path: silent loss on the path the selector
    # rides is the damaging case (an idle path's loss harms nobody).
    at, duration = _window(rng)
    return FaultEvent(
        "gray_loss",
        at=at,
        duration=duration,
        params={
            "src": VICTIM,
            "path": _TRUE_BEST,
            "rate": round(float(rng.uniform(0.2, 0.5)), 3),
        },
    )


def _clock_drift(rng: np.random.Generator, seed: int) -> FaultEvent:
    at, _ = _window(rng)
    return FaultEvent(
        "clock_drift",
        at=at,
        duration=0.0,  # drift persists; the monitor must track it
        params={
            "edge": PEER,
            "ppm": round(float(rng.uniform(50.0, 300.0)) * float(rng.choice([-1.0, 1.0])), 3),
            "step_ms": round(float(rng.uniform(5.0, 20.0)), 3),
        },
    )


def _blackhole(rng: np.random.Generator, seed: int) -> FaultEvent:
    at, duration = _window(rng)
    return FaultEvent(
        "link_blackhole",
        at=at,
        duration=duration,
        params={"src": VICTIM, "path": _TRUE_BEST},
    )


#: Correlated-failure archetypes (the E18 population).  All target the
#: shared-fate structure of the Vultr scenario: Telia and GTT — the two
#: fastest NY→LA paths — exit LA through the same "socal-conduit".
CORRELATED_ARCHETYPES = (
    "shared_srlg",
    "two_group",
    "regional",
    "maintenance",
)

_SHARED_GROUP = "socal-conduit"
_SECOND_GROUP = "level3-backbone"
_REGION = "socal"


def _shared_srlg(rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    """One fiber cut on the conduit both fast paths share."""
    at, duration = _window(rng)
    return (
        FaultEvent(
            "srlg_failure",
            at=at,
            duration=duration,
            params={"group": _SHARED_GROUP},
        ),
    )


def _two_group(rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    """Two overlapping group failures: the shared conduit plus Level3's
    backbone.  During the overlap only NTT survives — the availability
    gate's worst case (>= 0.9 on one remaining path)."""
    at, duration = _window(rng)
    second_at = round(at + float(rng.uniform(0.3, max(duration - 0.8, 0.4))), 3)
    second_duration = round(float(rng.uniform(2.0, 3.5)), 3)
    return (
        FaultEvent(
            "srlg_failure",
            at=at,
            duration=duration,
            params={"group": _SHARED_GROUP},
        ),
        FaultEvent(
            "srlg_failure",
            at=second_at,
            duration=second_duration,
            params={"group": _SECOND_GROUP},
        ),
    )


def _regional(rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    """Metro-scale outage: the socal region's links AND its transit
    routers' BGP sessions go down together."""
    at, duration = _window(rng)
    return (
        FaultEvent(
            "regional_outage",
            at=at,
            duration=duration,
            params={"region": _REGION},
        ),
    )


def _maintenance(rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    """Scheduled drain-then-fail on the shared conduit: the defended
    controller gets advance notice and must switch losslessly."""
    at, duration = _window(rng)
    drain_s = round(float(rng.uniform(0.3, 0.7)), 3)
    return (
        FaultEvent(
            "maintenance_window",
            at=at,
            duration=duration,
            params={"group": _SHARED_GROUP, "drain_s": drain_s},
        ),
    )


def generate_correlated_plans(
    count: int, master_seed: int
) -> list[AdversarialPlan]:
    """The E18 population: ``count`` correlated-failure plans.

    Same purity contract as :func:`generate_adversarial_plans`, with the
    seed sequence namespaced ``[master_seed, index, 18]`` so E17 and E18
    populations generated from the same master seed stay decorrelated.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    plans: list[AdversarialPlan] = []
    for index in range(count):
        archetype = CORRELATED_ARCHETYPES[index % len(CORRELATED_ARCHETYPES)]
        sequence = np.random.SeedSequence([master_seed, index, 18])
        rng = np.random.Generator(np.random.PCG64(sequence))
        plan_seed = int(rng.integers(0, 2**31 - 1))
        if archetype == "shared_srlg":
            events = _shared_srlg(rng)
        elif archetype == "two_group":
            events = _two_group(rng)
        elif archetype == "regional":
            events = _regional(rng)
        else:
            events = _maintenance(rng)
        plans.append(
            AdversarialPlan(
                index=index,
                archetype=archetype,
                favored=None,
                plan=FaultPlan(
                    name=f"corr-{index:03d}-{archetype}",
                    seed=plan_seed,
                    events=events,
                ),
            )
        )
    return plans


def generate_adversarial_plans(
    count: int, master_seed: int
) -> list[AdversarialPlan]:
    """The campaign population: ``count`` plans, archetypes interleaved.

    Plan ``i`` is a pure function of ``(master_seed, i)``; generating 16
    or 64 plans yields the same first 16.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    plans: list[AdversarialPlan] = []
    for index in range(count):
        archetype = ARCHETYPES[index % len(ARCHETYPES)]
        sequence = np.random.SeedSequence([master_seed, index])
        rng = np.random.Generator(np.random.PCG64(sequence))
        plan_seed = int(rng.integers(0, 2**31 - 1))
        favored: Optional[str] = None
        if archetype == "favored_tamper":
            event, favored = _favored_tamper(rng, plan_seed)
        elif archetype == "telemetry_replay":
            event = _telemetry_replay(rng, plan_seed)
        elif archetype == "gray_loss":
            event = _gray_loss(rng, plan_seed)
        elif archetype == "clock_drift":
            event = _clock_drift(rng, plan_seed)
        else:
            event = _blackhole(rng, plan_seed)
        plans.append(
            AdversarialPlan(
                index=index,
                archetype=archetype,
                favored=favored,
                plan=FaultPlan(
                    name=f"adv-{index:03d}-{archetype}",
                    seed=plan_seed,
                    events=(event,),
                ),
            )
        )
    return plans
