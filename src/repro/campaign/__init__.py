"""Multiprocess chaos campaigns against the Byzantine-peer defense.

A campaign fans a generated population of seeded adversarial fault plans
(:mod:`repro.campaign.plans`) across worker processes, runs each plan
against a *defended* and an *undefended* victim deployment
(:mod:`repro.campaign.runner`), merges the per-shard results
deterministically, and gates the merged report on the E17 SLOs —
availability, MTTR, and one-way-delay regret.  Identical master seed ⇒
byte-identical ``BENCH_ROBUST.json``, regardless of worker count.

The correlated-failure (E18) campaign reuses the same machinery over the
SRLG plan family: shared-fate fiber cuts, two-group overlaps, regional
outages, and drain-then-fail maintenance windows, with the defended
variant running the failure-domain stack (diversity-aware selection plus
make-before-break fast reroute).
"""

from .plans import (
    AdversarialPlan,
    ARCHETYPES,
    CORRELATED_ARCHETYPES,
    generate_adversarial_plans,
    generate_correlated_plans,
)
from .runner import (
    CampaignConfig,
    CampaignReport,
    CorrelatedConfig,
    run_campaign,
    run_correlated_campaign,
    run_correlated_plan,
    run_plan,
)

__all__ = [
    "AdversarialPlan",
    "ARCHETYPES",
    "CORRELATED_ARCHETYPES",
    "generate_adversarial_plans",
    "generate_correlated_plans",
    "CampaignConfig",
    "CampaignReport",
    "CorrelatedConfig",
    "run_campaign",
    "run_correlated_campaign",
    "run_correlated_plan",
    "run_plan",
]
