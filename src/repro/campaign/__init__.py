"""Multiprocess chaos campaigns against the Byzantine-peer defense.

A campaign fans a generated population of seeded adversarial fault plans
(:mod:`repro.campaign.plans`) across worker processes, runs each plan
against a *defended* and an *undefended* victim deployment
(:mod:`repro.campaign.runner`), merges the per-shard results
deterministically, and gates the merged report on the E17 SLOs —
availability, MTTR, and one-way-delay regret.  Identical master seed ⇒
byte-identical ``BENCH_ROBUST.json``, regardless of worker count.
"""

from .plans import AdversarialPlan, generate_adversarial_plans
from .runner import (
    CampaignConfig,
    CampaignReport,
    run_campaign,
    run_plan,
)

__all__ = [
    "AdversarialPlan",
    "generate_adversarial_plans",
    "CampaignConfig",
    "CampaignReport",
    "run_campaign",
    "run_plan",
]
