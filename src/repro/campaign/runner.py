"""Multiprocess chaos-campaign runner and its E17 SLO gates.

Every plan runs twice against the same victim deployment recipe — once
*defended* (authenticated dataplane telemetry, channel record MACs, the
plausibility gate, clock-integrity monitor, and peer-trust demotion) and
once *undefended* (the PR 2 quarantine stack alone) — so each report row
is its own ablation.  Worker processes receive serialized plans and a
picklable config; each run is a pure function of ``(plan, config)``, so
the merged report is byte-identical no matter how the population was
sharded.  Nothing in the report reads the wall clock.

The E17 gates (see EXPERIMENTS.md):

* **regret** — each defended run's median one-way-delay regret stays
  within ``2 x`` the fault-free baseline's (with a 1 ms noise floor);
* **steering** — a defended victim never rides a tamper-favored tunnel
  longer than one telemetry horizon, while the undefended victim is
  demonstrably steered (>= 3 horizons) by every favored-tamper plan;
* **availability** — defended data-packet delivery stays >= the SLO
  despite the attack (reroutes are allowed, outages are not);
* **MTTR** — classic blackholes still recover within the SLO with the
  full defense stack armed (the defense must not slow plain recovery).

The **E18** correlated-failure campaign reuses the same sharding and
determinism machinery over the SRLG plan family
(:func:`~repro.campaign.plans.generate_correlated_plans`); its defended
variant swaps the Byzantine defense for the failure-domain stack
(:class:`~repro.srlg.FateAwareSelector` + fast reroute) and gates on
switchover latency, zero post-detection traffic on failed groups, and
availability under a two-group outage.

Worker-death hardening: shards run under a
:class:`~concurrent.futures.ProcessPoolExecutor`; a shard whose process
dies (or whose future otherwise errors) is retried **once in-process**,
and the merged report surfaces a ``shard_retries`` counter.  Because
each shard is a pure function of ``(plan, config)``, the retry produces
the same bytes the dead worker would have — determinism survives
crashes.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:
    from ..core.controller import TangoController
    from ..scenarios.vultr import VultrDeployment

from .plans import (
    AdversarialPlan,
    generate_adversarial_plans,
    generate_correlated_plans,
)

__all__ = [
    "CampaignConfig",
    "CorrelatedConfig",
    "CampaignReport",
    "run_plan",
    "run_campaign",
    "run_correlated_plan",
    "run_correlated_campaign",
]

#: Shared per-pairing MAC key used by every campaign run.
CAMPAIGN_KEY = b"tango-campaign-key"

VICTIM = "ny"


@dataclass(frozen=True)
class CampaignConfig:
    """Per-run simulation recipe and the SLO thresholds gating it."""

    horizon_s: float = 14.0
    probe_interval_s: float = 0.05
    data_gap_s: float = 0.02
    controller_interval_s: float = 0.1
    staleness_s: float = 0.5
    telemetry_horizon_s: float = 1.0
    warmup_s: float = 1.0
    #: SLOs.
    regret_factor: float = 2.0
    regret_floor_ms: float = 1.0
    min_undefended_steer_horizons: float = 3.0
    availability_slo: float = 0.92
    mttr_slo_s: float = 2.0
    #: Regret charged for a tick spent on a path that delivers nothing
    #: (blackholed / silently lossy) — large enough to dominate any real
    #: path gap, finite so medians stay defined.
    unusable_penalty_ms: float = 50.0

    def __post_init__(self) -> None:
        if self.horizon_s <= self.warmup_s:
            raise ValueError("horizon_s must exceed warmup_s")
        if self.telemetry_horizon_s <= 0:
            raise ValueError("telemetry_horizon_s must be positive")


@dataclass(frozen=True)
class CorrelatedConfig(CampaignConfig):
    """E18 recipe: the base simulation plus correlated-failure SLOs."""

    #: Availability floor while *two* risk groups are down at once (only
    #: one calibrated path survives the overlap).
    availability_two_group_slo: float = 0.9
    #: FRR switchover budget, in telemetry horizons.
    switchover_horizons: float = 1.0


def _build_victim(
    defended: bool, config: CampaignConfig, defense: str = "trust"
) -> tuple["VultrDeployment", "TangoController", Any, Any, Any]:
    """One victim deployment with a data stream.

    ``defense`` selects which defended stack is installed: ``"trust"``
    (the E17 Byzantine-telemetry defense) or ``"srlg"`` (the E18
    failure-domain stack: :class:`~repro.srlg.FateAwareSelector` over the
    delay policy plus fast reroute wired into the controller).  Returns
    ``(deployment, controller, sent_counter, fate, frr)`` — the last two
    are ``None`` outside the ``"srlg"`` mode.
    """
    from ..core.controller import QuarantinePolicy, TangoController
    from ..core.policy import LowestDelaySelector
    from ..netsim.trace import PacketFactory
    from ..resilience.channel import ChannelConfig
    from ..scenarios.vultr import VultrDeployment
    from ..trust import install_defense

    deployment = VultrDeployment(
        include_events=False,
        auth_key=CAMPAIGN_KEY if defended and defense == "trust" else b"",
        telemetry_channel=ChannelConfig(report_interval_s=0.05),
    )
    deployment.establish()
    deployment.start_path_probes(VICTIM, interval_s=config.probe_interval_s)
    inner = LowestDelaySelector(deployment.gateway(VICTIM).outbound, window_s=1.0)
    fate = None
    frr = None
    controller_kwargs = {}
    if defended and defense == "srlg":
        from ..srlg import FastReroute, FateAwareSelector

        fate = FateAwareSelector(inner, deployment.srlg)
        deployment.set_data_policy(VICTIM, fate)
        frr = FastReroute(deployment.gateway(VICTIM), deployment.srlg, fate)
        controller_kwargs = {"frr": frr}
    else:
        deployment.set_data_policy(VICTIM, inner)
        if defended:
            stack = install_defense(
                deployment,
                VICTIM,
                CAMPAIGN_KEY,
                horizon_s=config.telemetry_horizon_s,
            )
            controller_kwargs = stack.controller_kwargs()
    controller = TangoController(
        deployment.gateway(VICTIM),
        deployment.sim,
        interval_s=config.controller_interval_s,
        staleness_s=config.staleness_s,
        quarantine=QuarantinePolicy(),
        **controller_kwargs,
    )
    deployment.attach_controller(VICTIM, controller)
    controller.start()

    peer = deployment.peer_of(VICTIM)
    factory = PacketFactory(
        src=str(deployment.pairing.edge(VICTIM).host_address(4)),
        dst=str(deployment.pairing.edge(peer).host_address(4)),
        flow_label=9,
    )
    send = deployment.sender_for(VICTIM)
    sent = [0]

    def pump() -> None:
        sent[0] += 1
        send(factory.build())

    deployment.sim.call_every(config.data_gap_s, pump)
    return deployment, controller, sent, fate, frr


def _true_delay_models(deployment: "VultrDeployment") -> dict[int, object]:
    table = deployment.calibrations[VICTIM]
    return {
        t.path_id: table[t.short_label].build(deployment.include_events)
        for t in deployment.tunnels(VICTIM)
    }


def _unusable_windows(adv: AdversarialPlan, horizon_s: float) -> list:
    """``(path_label, start, end)`` spans where a path delivers nothing.

    A blackholed path is unusable while the blackhole holds.  A
    gray-lossy path stays unusable through the *end of the run*: the
    attacker keeps rewriting sequence numbers after the drop window to
    hide the gap, which under authentication keeps breaking MACs.
    Rerouting away from these paths is the correct decision, so regret
    is judged against the best path *outside* these windows.
    """
    windows = []
    for event in adv.plan.events:
        if event.kind == "link_blackhole":
            windows.append((str(event.params["path"]), event.at, event.end))
        elif event.kind == "gray_loss":
            windows.append((str(event.params["path"]), event.at, horizon_s))
    return windows


def _regret_ms(
    controller: "TangoController",
    models: dict[int, Any],
    labels: dict[int, str],
    unusable: list[tuple[str, float, float]],
    config: CampaignConfig,
) -> dict:
    """Per-tick regret of the installed choice vs the best usable path."""
    samples = []
    for t, v in zip(controller.choice_trace.times, controller.choice_trace.values):
        if t < config.warmup_s or int(v) < 0:
            continue
        down = {
            label for label, start, end in unusable if start <= t <= end
        }
        delays = {
            pid: m.delay_at(t)
            for pid, m in models.items()
            if labels[pid] not in down
        }
        if labels[int(v)] in down:
            samples.append(config.unusable_penalty_ms)
        else:
            samples.append((delays[int(v)] - min(delays.values())) * 1e3)
    if not samples:
        return {"median_ms": None, "mean_ms": None, "ticks": 0}
    return {
        "median_ms": round(statistics.median(samples), 4),
        "mean_ms": round(statistics.fmean(samples), 4),
        "ticks": len(samples),
    }


def _steered_s(
    controller: "TangoController", favored_id: int, window: tuple[float, float]
) -> float:
    """Longest contiguous stretch of ticks riding ``favored_id`` inside
    ``window`` — the steering-exposure metric the E17 gate bounds."""
    interval = controller.interval_s
    longest = 0.0
    run_start: Optional[float] = None
    for t, v in zip(controller.choice_trace.times, controller.choice_trace.values):
        inside = window[0] <= t <= window[1] and int(v) == favored_id
        if inside:
            if run_start is None:
                run_start = t
            longest = max(longest, t - run_start + interval)
        else:
            run_start = None
    return round(longest, 4)


def _run_variant(adv: AdversarialPlan, defended: bool, config: CampaignConfig) -> dict:
    from ..faults import FaultInjector, RecoveryLog

    deployment, controller, sent, _, _ = _build_victim(defended, config)
    if adv.plan.events:
        FaultInjector(deployment, adv.plan).arm()
    deployment.net.run(until=config.horizon_s)

    models = _true_delay_models(deployment)
    labels = {t.path_id: t.short_label for t in deployment.tunnels(VICTIM)}
    unusable = _unusable_windows(adv, config.horizon_s)
    result = _regret_ms(controller, models, labels, unusable, config)

    peer = deployment.peer_of(VICTIM)
    received = sum(
        1
        for p in deployment.hosts[peer].received_packets
        if p.flow_label == 9
    )
    result["availability"] = round(received / sent[0], 4) if sent[0] else None

    if adv.favored is not None:
        favored_id = next(
            t.path_id
            for t in deployment.tunnels(VICTIM)
            if t.short_label == adv.favored
        )
        event = adv.plan.events[0]
        result["steered_s"] = _steered_s(
            controller, favored_id, (event.at, event.end + 1.0)
        )

    mttr = RecoveryLog.build(adv.plan, {VICTIM: controller}).mttr()
    result["mttr_s"] = None if mttr is None else round(mttr, 4)
    result["mode_transitions"] = len(controller.mode_log)
    result["quarantine_events"] = len(controller.quarantine_log)

    if defended:
        peer_auth = deployment.gateways[peer].authenticator
        stack = deployment.defenses[VICTIM]
        result["dataplane_rejected"] = peer_auth.stats.rejected
        result["dataplane_replayed"] = peer_auth.stats.replayed
        result["records_forged"] = stack.channel.stats.records_forged
        result["gate_rejected"] = stack.gate.rejected
        result["trust_final"] = stack.trust.state
        result["trust_transitions"] = len(stack.trust.events)
        result["clock_events"] = len(stack.monitor.events)
    return result


# -- E18: correlated-failure variants ----------------------------------------------


def _correlated_windows(
    adv: AdversarialPlan, deployment: "VultrDeployment", horizon_s: float
) -> list[tuple[float, float, frozenset]]:
    """``(onset, end, affected_labels)`` per correlated event, sorted by
    onset.  ``maintenance_window`` onsets at the end of its drain — the
    path still works during the drain, and charging ticks before the
    actual failure would punish the zero-loss make-before-break case."""
    from ..faults.plan import maintenance_drain_s

    registry = deployment.srlg
    tunnels = deployment.tunnels(VICTIM)
    windows = []
    for event in adv.plan.events:
        if event.kind in ("srlg_failure", "maintenance_window"):
            groups = frozenset({str(event.params["group"])})
        elif event.kind == "regional_outage":
            groups = frozenset(registry.region(str(event.params["region"])).groups)
        else:
            continue
        onset = event.at
        if event.kind == "maintenance_window":
            onset += maintenance_drain_s(event)
        labels = frozenset(t.short_label for t in tunnels if t.srlgs & groups)
        windows.append((onset, min(event.end, horizon_s), labels))
    windows.sort(key=lambda w: w[0])
    return windows


def _switchover(
    controller: "TangoController",
    labels: dict,
    window: tuple[float, float, frozenset],
) -> tuple[Optional[float], Optional[str]]:
    """(delay_s, landing label) of the first post-onset tick whose
    installed choice is outside the failed groups — the FRR latency the
    E18 gate bounds.  A make-before-break switch that landed *before*
    onset reads as ~one tick."""
    onset = window[0]
    affected = window[2]
    for t, v in zip(controller.choice_trace.times, controller.choice_trace.values):
        if t < onset or int(v) < 0:
            continue
        if labels[int(v)] not in affected:
            return round(float(t) - onset, 4), labels[int(v)]
    return None, None


def _failed_srlg_ticks(
    controller: "TangoController", labels: dict, windows: list, grace_s: float
) -> int:
    """Control ticks spent riding a tunnel whose risk group had already
    failed ``grace_s`` earlier — the "zero traffic on a failed SRLG
    after detection" metric (one controller interval of grace covers
    the detection tick itself)."""
    count = 0
    for t, v in zip(controller.choice_trace.times, controller.choice_trace.values):
        if int(v) < 0:
            continue
        label = labels[int(v)]
        for onset, end, affected in windows:
            if label in affected and onset + grace_s <= t <= end:
                count += 1
                break
    return count


def _run_correlated_variant(
    adv: AdversarialPlan, defended: bool, config: CampaignConfig
) -> dict:
    from ..faults import FaultInjector, RecoveryLog

    deployment, controller, sent, fate, frr = _build_victim(
        defended, config, defense="srlg"
    )
    if adv.plan.events:
        FaultInjector(deployment, adv.plan).arm()
    deployment.net.run(until=config.horizon_s)

    models = _true_delay_models(deployment)
    labels = {t.path_id: t.short_label for t in deployment.tunnels(VICTIM)}
    windows = _correlated_windows(adv, deployment, config.horizon_s)
    unusable = [
        (label, onset, end)
        for onset, end, affected in windows
        for label in sorted(affected)
    ]
    result = _regret_ms(controller, models, labels, unusable, config)

    peer = deployment.peer_of(VICTIM)
    received = sum(
        1
        for p in deployment.hosts[peer].received_packets
        if p.flow_label == 9
    )
    result["availability"] = round(received / sent[0], 4) if sent[0] else None

    if windows:
        switchover_s, switched_to = _switchover(controller, labels, windows[0])
    else:
        switchover_s, switched_to = None, None
    result["switchover_s"] = switchover_s
    result["switched_to"] = switched_to
    result["failed_srlg_ticks"] = _failed_srlg_ticks(
        controller, labels, windows, config.controller_interval_s
    )

    log = RecoveryLog.build(adv.plan, {VICTIM: controller})
    mttr = log.mttr()
    result["mttr_s"] = None if mttr is None else round(mttr, 4)
    result["group_faults"] = log.path_fault_count
    result["detected"] = log.detected_count
    result["quarantine_events"] = len(controller.quarantine_log)
    result["probation_holds"] = sum(
        1 for q in controller.quarantine_log if q.action == "probation-hold"
    )

    if fate is not None:
        result["fate_filtered"] = fate.filtered
        result["pin_hits"] = fate.pin_hits
    if frr is not None:
        result["frr_switchovers"] = frr.switchovers
        result["frr_events"] = len(frr.log)
    return result


def run_correlated_plan(payload: dict, config: CampaignConfig) -> dict:
    """Worker entry point for one E18 plan: the SRLG-defended stack vs
    the plain quarantine stack (the row's own ablation)."""
    adv = AdversarialPlan.from_payload(payload)
    return {
        "index": adv.index,
        "name": adv.plan.name,
        "archetype": adv.archetype,
        "seed": adv.plan.seed,
        "defended": _run_correlated_variant(adv, True, config),
        "undefended": _run_correlated_variant(adv, False, config),
    }


def run_plan(payload: dict, config: CampaignConfig) -> dict:
    """Worker entry point: one plan, defended and undefended variants.

    Takes the :meth:`AdversarialPlan.to_payload` form so the argument
    crosses process boundaries as plain data.
    """
    adv = AdversarialPlan.from_payload(payload)
    return {
        "index": adv.index,
        "name": adv.plan.name,
        "archetype": adv.archetype,
        "favored": adv.favored,
        "seed": adv.plan.seed,
        "defended": _run_variant(adv, True, config),
        "undefended": _run_variant(adv, False, config),
    }


#: Test seam: when set, every worker calls it with the plan index before
#: running the shard.  A test pointing this at an ``os._exit`` kills the
#: worker process mid-campaign and exercises the retry path without
#: patching multiprocessing itself.  In-process retries bypass the hook.
_shard_crash_hook: Optional[Callable[[int], None]] = None


def _worker(args: tuple[dict, CampaignConfig]) -> dict:
    payload, config = args
    if _shard_crash_hook is not None:
        _shard_crash_hook(int(payload["index"]))
    return run_plan(payload, config)


def _correlated_worker(args: tuple[dict, CampaignConfig]) -> dict:
    payload, config = args
    if _shard_crash_hook is not None:
        _shard_crash_hook(int(payload["index"]))
    return run_correlated_plan(payload, config)


def _execute(
    worker: Callable[[tuple[dict, CampaignConfig]], dict],
    runner: Callable[[dict, CampaignConfig], dict],
    payloads: list[tuple[dict, CampaignConfig]],
    workers: int,
) -> tuple[list[dict], int]:
    """Run every shard, retrying dead shards once in-process.

    With ``workers > 1`` shards run under a forked
    :class:`~concurrent.futures.ProcessPoolExecutor`.  A shard whose
    worker process dies (a broken pool poisons every outstanding future)
    or whose run raises is re-run exactly once, in-process, via
    ``runner`` — shards are pure functions of ``(plan, config)``, so the
    retry emits the same row the dead worker would have.  Returns
    ``(rows, shard_retries)``.
    """
    if workers <= 1:
        return [worker(args) for args in payloads], 0
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    rows: list[dict] = []
    retries = 0
    context = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        futures = [pool.submit(worker, args) for args in payloads]
        for args, future in zip(payloads, futures):
            try:
                rows.append(future.result())
            except Exception:
                retries += 1
                payload, config = args
                rows.append(runner(payload, config))
    return rows, retries


def _baseline(config: CampaignConfig) -> dict:
    """Fault-free defended run — the regret yardstick."""
    from ..faults.plan import FaultPlan

    empty = AdversarialPlan(
        index=-1,
        archetype="baseline",
        favored=None,
        plan=FaultPlan(name="baseline", seed=0, events=()),
    )
    return _run_variant(empty, True, config)


def _correlated_baseline(config: CampaignConfig) -> dict:
    """Fault-free run of the SRLG-defended stack — the E18 yardstick."""
    from ..faults.plan import FaultPlan

    empty = AdversarialPlan(
        index=-1,
        archetype="baseline",
        favored=None,
        plan=FaultPlan(name="baseline", seed=0, events=()),
    )
    return _run_correlated_variant(empty, True, config)


@dataclass
class CampaignReport:
    """Merged campaign results plus the gate verdicts (E17 or E18)."""

    master_seed: int
    workers: int
    config: CampaignConfig
    baseline: dict
    results: list[dict]
    gates: dict
    failures: list[str]
    experiment: str = "E17"
    shard_retries: int = 0

    @property
    def passed(self) -> bool:
        return not self.failures

    def to_json(self) -> str:
        """Stable serialization: sorted keys, no wall-clock anywhere —
        the determinism contract ``cmp`` checks byte-for-byte.  The
        worker count is deliberately *excluded*: 1-vs-N shards must
        produce identical bytes.  ``shard_retries`` stays 0 on a healthy
        run, so crash-free reruns remain byte-identical too."""
        payload = {
            "experiment": self.experiment,
            "shard_retries": self.shard_retries,
            "master_seed": self.master_seed,
            "plans": len(self.results),
            "config": asdict(self.config),
            "baseline": self.baseline,
            "results": self.results,
            "gates": self.gates,
            "failures": self.failures,
            "passed": self.passed,
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _apply_gates(
    results: list[dict], baseline: dict, config: CampaignConfig
) -> tuple[dict, list[str]]:
    failures: list[str] = []
    budget_ms = max(
        config.regret_factor * (baseline["median_ms"] or 0.0),
        config.regret_floor_ms,
    )

    for row in results:
        name = row["name"]
        defended = row["defended"]
        if defended["median_ms"] is None or defended["median_ms"] > budget_ms:
            failures.append(
                f"{name}: defended median regret {defended['median_ms']} ms "
                f"exceeds budget {round(budget_ms, 4)} ms"
            )
        if (
            defended["availability"] is None
            or defended["availability"] < config.availability_slo
        ):
            failures.append(
                f"{name}: defended availability {defended['availability']} "
                f"below SLO {config.availability_slo}"
            )
        if row["favored"] is not None:
            steered = defended.get("steered_s", 0.0)
            if steered > config.telemetry_horizon_s:
                failures.append(
                    f"{name}: defended rode tampered-favored path "
                    f"{steered} s (> {config.telemetry_horizon_s} s horizon)"
                )
            floor = (
                config.min_undefended_steer_horizons * config.telemetry_horizon_s
            )
            undefended_steered = row["undefended"].get("steered_s", 0.0)
            if undefended_steered < floor:
                failures.append(
                    f"{name}: undefended only steered {undefended_steered} s "
                    f"(< {floor} s) — attack not demonstrated"
                )

    mttrs = [
        row["defended"]["mttr_s"]
        for row in results
        if row["defended"]["mttr_s"] is not None
    ]
    mttr_median = round(statistics.median(mttrs), 4) if mttrs else None
    if mttrs and mttr_median > config.mttr_slo_s:
        failures.append(
            f"defended median MTTR {mttr_median} s exceeds SLO "
            f"{config.mttr_slo_s} s"
        )

    defended_medians = [
        row["defended"]["median_ms"]
        for row in results
        if row["defended"]["median_ms"] is not None
    ]
    gates = {
        "regret_budget_ms": round(budget_ms, 4),
        "defended_regret_median_ms": (
            round(statistics.median(defended_medians), 4)
            if defended_medians
            else None
        ),
        "mttr_median_s": mttr_median,
        "mttr_slo_s": config.mttr_slo_s,
        "availability_slo": config.availability_slo,
        "steer_horizon_s": config.telemetry_horizon_s,
    }
    return gates, failures


def _apply_correlated_gates(
    results: list[dict], baseline: dict, config: CorrelatedConfig
) -> tuple[dict, list[str]]:
    failures: list[str] = []
    budget_ms = max(
        config.regret_factor * (baseline["median_ms"] or 0.0),
        config.regret_floor_ms,
    )
    switchover_budget_s = (
        config.switchover_horizons * config.telemetry_horizon_s
    )

    for row in results:
        name = row["name"]
        defended = row["defended"]
        slo = (
            config.availability_two_group_slo
            if row["archetype"] == "two_group"
            else config.availability_slo
        )
        if defended["availability"] is None or defended["availability"] < slo:
            failures.append(
                f"{name}: defended availability {defended['availability']} "
                f"below SLO {slo}"
            )
        if (
            defended["switchover_s"] is None
            or defended["switchover_s"] > switchover_budget_s
        ):
            failures.append(
                f"{name}: defended switchover {defended['switchover_s']} s "
                f"exceeds {switchover_budget_s} s budget"
            )
        if defended["failed_srlg_ticks"] != 0:
            failures.append(
                f"{name}: defended rode a failed risk group for "
                f"{defended['failed_srlg_ticks']} ticks after detection"
            )
        if defended["median_ms"] is None or defended["median_ms"] > budget_ms:
            failures.append(
                f"{name}: defended median regret {defended['median_ms']} ms "
                f"exceeds budget {round(budget_ms, 4)} ms"
            )
        if row["undefended"]["failed_srlg_ticks"] < 1:
            failures.append(
                f"{name}: undefended never rode the failed group — "
                f"fault not demonstrated"
            )

    switchovers = [
        row["defended"]["switchover_s"]
        for row in results
        if row["defended"]["switchover_s"] is not None
    ]
    gates = {
        "regret_budget_ms": round(budget_ms, 4),
        "switchover_budget_s": round(switchover_budget_s, 4),
        "defended_switchover_median_s": (
            round(statistics.median(switchovers), 4) if switchovers else None
        ),
        "frr_switchovers_total": sum(
            row["defended"].get("frr_switchovers", 0) for row in results
        ),
        "availability_slo": config.availability_slo,
        "availability_two_group_slo": config.availability_two_group_slo,
    }
    return gates, failures


def run_campaign(
    count: int,
    master_seed: int,
    workers: int = 1,
    config: Optional[CampaignConfig] = None,
) -> CampaignReport:
    """Generate, shard, run, merge, and gate one campaign.

    ``workers=1`` runs in-process; more fork a process pool with one
    plan per task (dead shards are retried once in-process).  Either way
    the merged report is sorted by plan index and byte-identical for the
    same ``(count, master_seed, config)``.
    """
    config = config or CampaignConfig()
    population = generate_adversarial_plans(count, master_seed)
    payloads = [(adv.to_payload(), config) for adv in population]
    # The crash-hook seam is deliberately a rebindable module global (a
    # test must rebind it *before* the fork so children inherit it).
    results, retries = _execute(_worker, run_plan, payloads, workers)  # tango: noqa[TNG301]
    results.sort(key=lambda row: row["index"])
    baseline = _baseline(config)
    gates, failures = _apply_gates(results, baseline, config)
    return CampaignReport(
        master_seed=master_seed,
        workers=workers,
        config=config,
        baseline=baseline,
        results=results,
        gates=gates,
        failures=failures,
        experiment="E17",
        shard_retries=retries,
    )


def run_correlated_campaign(
    count: int,
    master_seed: int,
    workers: int = 1,
    config: Optional[CorrelatedConfig] = None,
) -> CampaignReport:
    """The E18 campaign: correlated-failure plans, SRLG-defended vs
    plain quarantine stack, gated on switchover latency, zero traffic on
    failed risk groups, and availability through a two-group outage.

    Same sharding/merge/determinism contract as :func:`run_campaign`.
    """
    config = config or CorrelatedConfig()
    population = generate_correlated_plans(count, master_seed)
    payloads = [(adv.to_payload(), config) for adv in population]
    # Same deliberate seam as run_campaign: see _shard_crash_hook.
    results, retries = _execute(  # tango: noqa[TNG301]
        _correlated_worker, run_correlated_plan, payloads, workers
    )
    results.sort(key=lambda row: row["index"])
    baseline = _correlated_baseline(config)
    gates, failures = _apply_correlated_gates(results, baseline, config)
    return CampaignReport(
        master_seed=master_seed,
        workers=workers,
        config=config,
        baseline=baseline,
        results=results,
        gates=gates,
        failures=failures,
        experiment="E18",
        shard_retries=retries,
    )
