"""Sub-second jitter: the paper's rolling-window standard deviation.

Section 5: "To measure sub-second network jitter, we calculated the mean
standard deviation of a 1-second rolling window."  (Reported: GTT 0.01 ms
vs Telia 0.33 ms in the LA→NY direction.)

Two implementations are provided:

* :func:`rolling_window_std` — the faithful metric: at each sample, the
  standard deviation of all samples in the preceding one-second window;
  the statistic is the mean of those.  Computed in O(n) with prefix sums.
* :func:`tumbling_window_std` — cheaper non-overlapping variant used for
  quick-look reports; converges to the same value for stationary series.
"""

from __future__ import annotations

import numpy as np

from .store import MeasurementStore

__all__ = [
    "rolling_window_std",
    "tumbling_window_std",
    "jitter_report",
]


def rolling_window_std(
    times: np.ndarray, values: np.ndarray, window_s: float = 1.0
) -> float:
    """Mean standard deviation over trailing windows of ``window_s``.

    For each sample i, the window is every sample j with
    ``times[i] - window_s < times[j] <= times[i]``; windows with fewer
    than two samples are skipped.  Returns nan when no window qualifies.
    """
    times = np.asarray(times, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if times.shape != values.shape:
        raise ValueError("times and values must align")
    n = times.size
    if n < 2:
        return float("nan")
    if window_s <= 0:
        raise ValueError(f"window must be positive, got {window_s}")
    # Center first: the variance is shift-invariant, and centering keeps
    # the prefix-sum trick numerically stable even when values carry a
    # large constant (e.g. a clock offset dwarfing the jitter).
    values = values - np.mean(values)
    # Prefix sums for O(1) window mean/variance.
    csum = np.concatenate(([0.0], np.cumsum(values)))
    csum2 = np.concatenate(([0.0], np.cumsum(values * values)))
    # Window start index for each sample (strictly after t - window).
    starts = np.searchsorted(times, times - window_s, side="right")
    ends = np.arange(1, n + 1)
    counts = ends - starts
    valid = counts >= 2
    if not np.any(valid):
        return float("nan")
    counts_v = counts[valid].astype(np.float64)
    sums = csum[ends[valid]] - csum[starts[valid]]
    sums2 = csum2[ends[valid]] - csum2[starts[valid]]
    variances = sums2 / counts_v - (sums / counts_v) ** 2
    variances = np.maximum(variances, 0.0)  # numeric guard
    return float(np.mean(np.sqrt(variances)))


def tumbling_window_std(
    times: np.ndarray, values: np.ndarray, window_s: float = 1.0
) -> float:
    """Mean standard deviation over consecutive non-overlapping windows."""
    times = np.asarray(times, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if times.shape != values.shape:
        raise ValueError("times and values must align")
    if window_s <= 0:
        raise ValueError(f"window must be positive, got {window_s}")
    if times.size < 2:
        return float("nan")
    bins = np.floor((times - times[0]) / window_s).astype(np.int64)
    stds = []
    for bin_id in np.unique(bins):
        bucket = values[bins == bin_id]
        if bucket.size >= 2:
            stds.append(float(np.std(bucket)))
    return float(np.mean(stds)) if stds else float("nan")


def jitter_report(
    store: MeasurementStore,
    t0: float,
    t1: float,
    window_s: float = 1.0,
    rolling: bool = True,
) -> dict[int, float]:
    """Per-path jitter (seconds) over [t0, t1) — the paper's Section 5 stat."""
    metric = rolling_window_std if rolling else tumbling_window_std
    report: dict[int, float] = {}
    for path_id in store.path_ids():
        times, values = store.series(path_id).window(t0, t1)
        if times.size >= 2:
            report[path_id] = metric(times, values, window_s)
    return report
