"""Authenticated telemetry (the paper's Section 6 extension).

A wide-area measurement system is a target: an on-path attacker who can
forge or tamper with piggybacked timestamps can steer a victim's routing
("make every path but mine look bad").  The paper notes that cooperating
Tango endpoints can protect the process with cryptography, under switch
resource constraints.

:class:`TelemetryAuthenticator` implements the lightweight design point:
a truncated HMAC-SHA256 over (timestamp, sequence, path id) with a shared
per-pairing key.  Eight tag bytes ride in the Tango header; verification
is constant-time.  A real Tofino would use a SipHash-like keyed permutation
instead of SHA-256, but the *protocol* — what is signed, what replay
protection sequence numbers give — is the same, which is what the
experiments exercise.
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from collections import OrderedDict
from typing import Optional

__all__ = ["TelemetryAuthenticator", "ForgeryStats"]

_TAG_BYTES = 8


class ForgeryStats:
    """Counters for verification outcomes."""

    def __init__(self) -> None:
        self.verified = 0
        self.rejected = 0
        self.replayed = 0

    def __repr__(self) -> str:
        return (
            f"ForgeryStats(verified={self.verified}, "
            f"rejected={self.rejected}, replayed={self.replayed})"
        )


class TelemetryAuthenticator:
    """Shared-key MAC over Tango telemetry fields.

    Both ends of a pairing construct one with the same key (established
    out of band — the edges already cooperate by configuration).

    Replay note: the sequence number is part of the MAC, so a captured
    packet replayed later carries a *valid* tag — the MAC alone cannot
    tell a replay from the original.  The verifier therefore keeps a
    bounded per-path window of recently accepted ``(timestamp, seq)``
    pairs and rejects duplicates (counted separately in
    :attr:`ForgeryStats.replayed`), which is exactly the sequence-number
    replay protection the paper sketches.
    """

    #: Accepted (timestamp, seq) pairs remembered per path.  Bounded so a
    #: switch implementation is a small per-tunnel register file, not an
    #: unbounded table; older-than-window replays are instead caught by the
    #: plausibility layer's timestamp-age check.
    REPLAY_WINDOW = 4096

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise ValueError(
                f"key must be at least 16 bytes, got {len(key)} "
                "(weak keys defeat the point of authenticating telemetry)"
            )
        self._key = key
        self.stats = ForgeryStats()
        self._seen: dict[int, "OrderedDict[tuple[int, int], None]"] = {}

    def tag(self, timestamp_ns: int, seq: int, path_id: int) -> bytes:
        """Compute the truncated MAC for a header's telemetry fields."""
        message = struct.pack(">QQQ", timestamp_ns & (2**64 - 1), seq, path_id)
        return hmac.new(self._key, message, hashlib.sha256).digest()[:_TAG_BYTES]

    def verify(
        self, timestamp_ns: int, seq: int, path_id: int, tag: Optional[bytes]
    ) -> bool:
        """Constant-time MAC check plus duplicate rejection; fails closed.

        A missing tag or MAC mismatch counts as ``rejected``; a valid tag
        whose ``(timestamp, seq)`` was already accepted on this path
        counts as ``replayed``.  Both return False.
        """
        if tag is None:
            self.stats.rejected += 1
            return False
        expected = self.tag(timestamp_ns, seq, path_id)
        ok = hmac.compare_digest(expected, tag)
        if not ok:
            self.stats.rejected += 1
            return False
        window = self._seen.setdefault(path_id, OrderedDict())
        key = (timestamp_ns, seq)
        if key in window:
            self.stats.replayed += 1
            return False
        window[key] = None
        while len(window) > self.REPLAY_WINDOW:
            window.popitem(last=False)
        self.stats.verified += 1
        return True
