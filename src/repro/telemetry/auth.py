"""Authenticated telemetry (the paper's Section 6 extension).

A wide-area measurement system is a target: an on-path attacker who can
forge or tamper with piggybacked timestamps can steer a victim's routing
("make every path but mine look bad").  The paper notes that cooperating
Tango endpoints can protect the process with cryptography, under switch
resource constraints.

:class:`TelemetryAuthenticator` implements the lightweight design point:
a truncated HMAC-SHA256 over (timestamp, sequence, path id) with a shared
per-pairing key.  Eight tag bytes ride in the Tango header; verification
is constant-time.  A real Tofino would use a SipHash-like keyed permutation
instead of SHA-256, but the *protocol* — what is signed, what replay
protection sequence numbers give — is the same, which is what the
experiments exercise.
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from typing import Optional

__all__ = ["TelemetryAuthenticator", "ForgeryStats"]

_TAG_BYTES = 8


class ForgeryStats:
    """Counters for verification outcomes."""

    def __init__(self) -> None:
        self.verified = 0
        self.rejected = 0

    def __repr__(self) -> str:
        return f"ForgeryStats(verified={self.verified}, rejected={self.rejected})"


class TelemetryAuthenticator:
    """Shared-key MAC over Tango telemetry fields.

    Both ends of a pairing construct one with the same key (established
    out of band — the edges already cooperate by configuration).

    Replay note: the per-tunnel sequence number is part of the MAC, so a
    captured packet replayed later either duplicates a sequence number
    (flagged by the tracker) or fails verification.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise ValueError(
                f"key must be at least 16 bytes, got {len(key)} "
                "(weak keys defeat the point of authenticating telemetry)"
            )
        self._key = key
        self.stats = ForgeryStats()

    def tag(self, timestamp_ns: int, seq: int, path_id: int) -> bytes:
        """Compute the truncated MAC for a header's telemetry fields."""
        message = struct.pack(">QQQ", timestamp_ns & (2**64 - 1), seq, path_id)
        return hmac.new(self._key, message, hashlib.sha256).digest()[:_TAG_BYTES]

    def verify(
        self, timestamp_ns: int, seq: int, path_id: int, tag: Optional[bytes]
    ) -> bool:
        """Constant-time verification; missing tags fail closed."""
        if tag is None:
            self.stats.rejected += 1
            return False
        expected = self.tag(timestamp_ns, seq, path_id)
        ok = hmac.compare_digest(expected, tag)
        if ok:
            self.stats.verified += 1
        else:
            self.stats.rejected += 1
        return ok
