"""Online anomaly detection for path telemetry.

The paper's Section 5 narrates two event classes found by eyeballing the
trace — a route change (level shift) and an instability window (spike
cluster).  A deployment needs to find them *online*; this module provides
the two standard switch-friendly detectors:

* :class:`CusumDetector` — two-sided CUSUM on the measurement stream;
  detects sustained level shifts (the Fig. 4-middle route change) with
  O(1) state per path.
* :class:`SpikeClusterDetector` — counts threshold exceedances in a
  sliding window; fires when spikes cluster (the Fig. 4-right
  instability) while ignoring isolated outliers.

Both are incremental (one ``update`` per sample), deterministic, and
reset-able, so they can run inside the controller's tick loop or be
replayed over a recorded campaign.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

__all__ = ["AnomalyEvent", "CusumDetector", "SpikeClusterDetector"]


@dataclass(frozen=True)
class AnomalyEvent:
    """A detector firing."""

    t: float
    kind: str  # "shift-up" | "shift-down" | "spike-cluster"
    magnitude: float


class CusumDetector:
    """Two-sided CUSUM change detector.

    Standard parameterization: after a warm-up that estimates the
    baseline mean, accumulate ``S+ = max(0, S+ + (x - mean - drift))``
    and the symmetric ``S-``; fire when either exceeds ``threshold``.
    After a detection the baseline re-anchors to the recent level, so a
    reverted route change fires again on the way back.

    Args:
        drift: slack per sample (in measurement units); deviations below
            it are ignored.  Set near one noise stddev.
        threshold: accumulated deviation that triggers detection.
        warmup: samples used to (re-)estimate the baseline.
    """

    def __init__(
        self, drift: float = 0.0005, threshold: float = 0.01, warmup: int = 50
    ) -> None:
        if drift < 0:
            raise ValueError(f"drift must be >= 0, got {drift}")
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if warmup < 2:
            raise ValueError(f"warmup must be >= 2, got {warmup}")
        self.drift = drift
        self.threshold = threshold
        self.warmup = warmup
        self.events: list[AnomalyEvent] = []
        self.reset()

    def reset(self) -> None:
        """Forget all state (baseline re-estimated from scratch)."""
        self._sum_high = 0.0
        self._sum_low = 0.0
        self._baseline: Optional[float] = None
        self._warmup_values: list[float] = []

    @property
    def baseline(self) -> Optional[float]:
        """Current baseline estimate (None during warm-up)."""
        return self._baseline

    def update(self, t: float, value: float) -> Optional[AnomalyEvent]:
        """Feed one sample; returns an event if a shift was detected."""
        if self._baseline is None:
            self._warmup_values.append(value)
            if len(self._warmup_values) >= self.warmup:
                self._baseline = sum(self._warmup_values) / len(
                    self._warmup_values
                )
                self._warmup_values.clear()
            return None
        deviation = value - self._baseline
        self._sum_high = max(0.0, self._sum_high + deviation - self.drift)
        self._sum_low = max(0.0, self._sum_low - deviation - self.drift)
        event: Optional[AnomalyEvent] = None
        if self._sum_high > self.threshold:
            event = AnomalyEvent(t=t, kind="shift-up", magnitude=self._sum_high)
        elif self._sum_low > self.threshold:
            event = AnomalyEvent(t=t, kind="shift-down", magnitude=self._sum_low)
        if event is not None:
            self.events.append(event)
            # Re-anchor: estimate the new level from scratch.
            self.reset()
            self._warmup_values.append(value)
        return event


class SpikeClusterDetector:
    """Fires when threshold exceedances cluster in a sliding window.

    Args:
        spike_threshold: absolute value above which a sample is a spike
            (e.g. baseline + 10 ms for the GTT instability).
        window_s: sliding window length.
        min_spikes: exceedances within the window needed to fire.
        cooldown_s: suppress repeat firings for this long.
    """

    def __init__(
        self,
        spike_threshold: float,
        window_s: float = 10.0,
        min_spikes: int = 3,
        cooldown_s: float = 30.0,
    ) -> None:
        if window_s <= 0:
            raise ValueError(f"window must be positive, got {window_s}")
        if min_spikes < 1:
            raise ValueError(f"min_spikes must be >= 1, got {min_spikes}")
        if cooldown_s < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown_s}")
        self.spike_threshold = spike_threshold
        self.window_s = window_s
        self.min_spikes = min_spikes
        self.cooldown_s = cooldown_s
        self.events: list[AnomalyEvent] = []
        self._spike_times: deque[float] = deque()
        self._last_fire = float("-inf")

    def update(self, t: float, value: float) -> Optional[AnomalyEvent]:
        """Feed one sample; returns an event when a cluster is detected."""
        if value > self.spike_threshold:
            self._spike_times.append(t)
        while self._spike_times and self._spike_times[0] < t - self.window_s:
            self._spike_times.popleft()
        if (
            len(self._spike_times) >= self.min_spikes
            and t - self._last_fire >= self.cooldown_s
        ):
            event = AnomalyEvent(
                t=t, kind="spike-cluster", magnitude=float(len(self._spike_times))
            )
            self.events.append(event)
            self._last_fire = t
            return event
        return None
