"""Measurement engine: one-way delay, jitter, loss, reordering,
authenticated telemetry, online anomaly detection, streaming quantiles."""

from .anomaly import AnomalyEvent, CusumDetector, SpikeClusterDetector
from .auth import ForgeryStats, TelemetryAuthenticator
from .jitter import jitter_report, rolling_window_std, tumbling_window_std
from .loss import LossBin, LossMonitor
from .oneway import (
    DirectionalStore,
    Ewma,
    PathSummary,
    estimate_clock_offset,
    rank_paths,
    relative_delays,
    summarize_path,
)
from .quantiles import P2Quantile
from .reorder import ReorderingReport, reordering_extent, reordering_from_arrivals
from .store import MeasurementStore, TimeSeries

__all__ = [
    "AnomalyEvent",
    "CusumDetector",
    "DirectionalStore",
    "Ewma",
    "ForgeryStats",
    "LossBin",
    "LossMonitor",
    "MeasurementStore",
    "P2Quantile",
    "PathSummary",
    "ReorderingReport",
    "SpikeClusterDetector",
    "TelemetryAuthenticator",
    "TimeSeries",
    "estimate_clock_offset",
    "jitter_report",
    "rank_paths",
    "relative_delays",
    "reordering_extent",
    "reordering_from_arrivals",
    "rolling_window_std",
    "summarize_path",
    "tumbling_window_std",
]
