"""Loss monitoring from tunnel sequence numbers.

Builds time-binned loss-rate series on top of the data plane's
:class:`~repro.dataplane.seqnum.SequenceTracker` counters, so policies can
react to loss (not only delay) and reports can show loss aligned with the
delay timeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dataplane.seqnum import SequenceTracker
from .store import TimeSeries

__all__ = ["LossBin", "LossMonitor"]


@dataclass(frozen=True)
class LossBin:
    """Loss over one sampling interval of one path."""

    t: float
    received: int
    presumed_lost: int

    @property
    def loss_fraction(self) -> float:
        total = self.received + self.presumed_lost
        return self.presumed_lost / total if total else 0.0


class LossMonitor:
    """Periodically snapshots a tracker into per-path loss-rate series.

    Call :meth:`sample` on a fixed cadence (the Tango controller does this
    from its control loop); each call converts the delta of counters since
    the previous call into a :class:`LossBin` and appends the loss
    fraction to the per-path series.
    """

    def __init__(self, tracker: SequenceTracker) -> None:
        self._tracker = tracker
        self._last: dict[int, tuple[int, int]] = {}
        self.series: dict[int, TimeSeries] = {}
        self.bins: dict[int, list[LossBin]] = {}

    def sample(self, now: float) -> dict[int, LossBin]:
        """Snapshot all paths; returns the new bin per path."""
        out: dict[int, LossBin] = {}
        for path_id, stats in sorted(self._tracker.all_paths().items()):
            prev_received, prev_lost = self._last.get(path_id, (0, 0))
            bin_ = LossBin(
                t=now,
                received=stats.received - prev_received,
                presumed_lost=stats.presumed_lost - prev_lost,
            )
            self._last[path_id] = (stats.received, stats.presumed_lost)
            self.series.setdefault(path_id, TimeSeries()).append(
                now, bin_.loss_fraction
            )
            self.bins.setdefault(path_id, []).append(bin_)
            out[path_id] = bin_
        return out

    def recent_loss(self, path_id: int, bins: int = 1) -> float:
        """Mean loss fraction over the last ``bins`` samples (0 if none)."""
        history = self.bins.get(path_id, [])
        if not history:
            return 0.0
        tail = history[-bins:]
        received = sum(b.received for b in tail)
        lost = sum(b.presumed_lost for b in tail)
        total = received + lost
        return lost / total if total else 0.0
