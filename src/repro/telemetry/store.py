"""Time-series storage for per-path measurements.

A :class:`TimeSeries` is an append-friendly (time, value) column pair that
exposes numpy views for analysis; a :class:`MeasurementStore` keys series
by Tango path id.  The store is the boundary between the data plane
(which appends one sample per received packet) and the policy/analysis
layers (which read windows and summaries).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np

__all__ = ["TimeSeries", "MeasurementStore"]

_INITIAL_CAPACITY = 1024


class TimeSeries:
    """Append-optimized (time, value) series backed by numpy arrays.

    Appends are amortized O(1) via geometric over-allocation and a length
    cursor; reads return zero-copy views of the filled region.  The hot
    path keeps everything in Python scalars (the last time is cached as a
    float, the capacity as an int), so one ``append`` is two array-cell
    stores plus comparisons — no numpy scalar boxing, no ``len()`` of the
    backing array.  Times must be non-decreasing (they come from a
    monotonic simulation clock); violations raise immediately, because a
    disordered series silently corrupts windowed statistics.
    """

    __slots__ = ("_times", "_values", "_size", "_capacity", "_last_t", "grows")

    def __init__(self) -> None:
        self._times = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._values = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._size = 0
        self._capacity = _INITIAL_CAPACITY
        self._last_t = -np.inf
        #: Number of reallocations so far (observable: growth must stay
        #: logarithmic in the number of appends).
        self.grows = 0

    def append(self, t: float, value: float) -> None:
        """Add a sample at time ``t``."""
        if t < self._last_t:
            raise ValueError(f"time went backwards: {t} < {self._last_t}")
        size = self._size
        if size == self._capacity:
            self._grow()
        self._times[size] = t
        self._values[size] = value
        self._size = size + 1
        self._last_t = t

    def extend(self, times: np.ndarray, values: np.ndarray) -> None:
        """Bulk-append aligned arrays (used by the fast sampling campaign)."""
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if times.shape != values.shape:
            raise ValueError(
                f"shape mismatch: times {times.shape} vs values {values.shape}"
            )
        if times.size == 0:
            return
        if np.any(np.diff(times) < 0):
            raise ValueError("times must be non-decreasing")
        if times[0] < self._last_t:
            raise ValueError("bulk append would go backwards in time")
        needed = self._size + times.size
        while needed > self._capacity:
            self._grow()
        self._times[self._size : needed] = times
        self._values[self._size : needed] = values
        self._size = needed
        self._last_t = float(times[-1])

    def _grow(self) -> None:
        capacity = max(self._capacity * 2, _INITIAL_CAPACITY)
        times = np.empty(capacity, dtype=np.float64)
        values = np.empty(capacity, dtype=np.float64)
        times[: self._size] = self._times[: self._size]
        values[: self._size] = self._values[: self._size]
        self._times = times
        self._values = values
        self._capacity = capacity
        self.grows += 1

    @property
    def times(self) -> np.ndarray:
        """View of sample times (do not mutate)."""
        return self._times[: self._size]

    @property
    def values(self) -> np.ndarray:
        """View of sample values (do not mutate)."""
        return self._values[: self._size]

    def window(self, t0: float, t1: float) -> tuple[np.ndarray, np.ndarray]:
        """Samples with ``t0 <= time < t1`` as (times, values) views."""
        times = self.times
        lo = int(np.searchsorted(times, t0, side="left"))
        hi = int(np.searchsorted(times, t1, side="left"))
        return times[lo:hi], self.values[lo:hi]

    def latest(self, count: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """The most recent ``count`` samples."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        lo = max(self._size - count, 0)
        return self.times[lo:], self.values[lo:]

    @property
    def last_time(self) -> Optional[float]:
        """Time of the most recent sample, or None when empty.

        The freshness primitive: staleness checks (controller health,
        quarantine decisions) are ``now - last_time`` comparisons.
        """
        if not self._size:
            return None
        return float(self._times[self._size - 1])

    @property
    def last_value(self) -> Optional[float]:
        """Value of the most recent sample, or None when empty.

        The None-returning companion of :attr:`last_time` — callers that
        would otherwise index ``values[-1]`` (IndexError on an empty
        series) get the same consistent empty-series contract.
        """
        if not self._size:
            return None
        return float(self._values[self._size - 1])

    def mean(self) -> float:
        """Mean value over the whole series (nan when empty)."""
        return float(np.mean(self.values)) if self._size else float("nan")

    def percentile(self, q: float) -> float:
        """Value percentile (q in [0, 100]; nan when empty)."""
        return float(np.percentile(self.values, q)) if self._size else float("nan")

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        if not self._size:
            return "TimeSeries(empty)"
        return (
            f"TimeSeries(n={self._size}, "
            f"t=[{self.times[0]:.3f}, {self.times[-1]:.3f}])"
        )


class MeasurementStore:
    """Per-path one-way-delay series, plus arbitrary named series.

    The canonical consumer pattern: the Tango receiver program calls
    :meth:`record` per packet; path-selection policies call
    :meth:`recent_delay` / :meth:`series`; reports iterate
    :meth:`path_ids`.
    """

    def __init__(self) -> None:
        self._series: dict[int, TimeSeries] = {}

    def record(self, path_id: int, t: float, owd_s: float) -> None:
        """Append one one-way-delay sample for ``path_id``."""
        self._series.setdefault(path_id, TimeSeries()).append(t, owd_s)

    def extend(self, path_id: int, times: np.ndarray, owds: np.ndarray) -> None:
        """Bulk-append samples for ``path_id``."""
        self._series.setdefault(path_id, TimeSeries()).extend(times, owds)

    def record_aggregate_many(
        self,
        path_ids: Sequence[int],
        t: float,
        owds_s: Sequence[float],
    ) -> None:
        """Append one sample per path at a single time ``t``.

        The batched twin of :meth:`record` for aggregate engines (the
        vectorized fluid engine records one delay per tunnel per step):
        one call walks the paths in the given order, appending exactly
        the samples the equivalent :meth:`record` loop would — the
        resulting series are byte-identical — without re-resolving the
        store attribute per path.
        """
        if len(path_ids) != len(owds_s):
            raise ValueError(
                f"length mismatch: {len(path_ids)} paths vs "
                f"{len(owds_s)} samples"
            )
        series = self._series
        for path_id, owd_s in zip(path_ids, owds_s):
            entry = series.get(path_id)
            if entry is None:
                entry = series[path_id] = TimeSeries()
            entry.append(t, owd_s)

    def series(self, path_id: int) -> TimeSeries:
        """The series for ``path_id`` (empty series if nothing recorded)."""
        return self._series.setdefault(path_id, TimeSeries())

    def has_path(self, path_id: int) -> bool:
        return path_id in self._series and len(self._series[path_id]) > 0

    def path_ids(self) -> list[int]:
        """All path ids with at least one sample, sorted."""
        return sorted(p for p, s in self._series.items() if len(s))

    def recent_delay(
        self, path_id: int, window_s: float, now: float
    ) -> Optional[float]:
        """Mean delay over the trailing ``window_s`` seconds, or None."""
        series = self._series.get(path_id)
        if series is None or not len(series):
            return None
        _, values = series.window(now - window_s, now + 1e-12)
        if values.size == 0:
            return None
        return float(np.mean(values))

    def last_time(self, path_id: int) -> Optional[float]:
        """Time of ``path_id``'s most recent sample, or None if unmeasured."""
        series = self._series.get(path_id)
        if series is None:
            return None
        return series.last_time

    def last_value(self, path_id: int) -> Optional[float]:
        """Value of ``path_id``'s most recent sample, or None if unmeasured."""
        series = self._series.get(path_id)
        if series is None:
            return None
        return series.last_value

    def items(self) -> Iterator[tuple[int, TimeSeries]]:
        """(path_id, series) pairs with at least one sample, sorted.

        Consistent with :meth:`path_ids`: empty series that exist only
        because :meth:`series` was called on an unmeasured path (it
        creates on read) are not reported.
        """
        return iter(
            (p, s) for p, s in sorted(self._series.items()) if len(s)
        )
