"""Reordering metrics (RFC 4737 flavoured).

Why Tango cares (paper Section 5): during instability, GTT still delivered
*some* packets at the 28 ms floor, but spiked packets arrive late and TCP's
in-order delivery turns one slow packet into a stalled stream.  Quantifying
reordering per path lets policies avoid paths that will wreck transport
performance even when their mean delay looks fine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ReorderingReport", "reordering_from_arrivals", "reordering_extent"]


@dataclass(frozen=True)
class ReorderingReport:
    """Summary of reordering over an arrival sequence."""

    packets: int
    reordered: int
    max_extent: int
    mean_late_time_s: float

    @property
    def reordered_fraction(self) -> float:
        return self.reordered / self.packets if self.packets else 0.0


def reordering_from_arrivals(
    seqs: np.ndarray, arrival_times: np.ndarray
) -> ReorderingReport:
    """Classify arrivals against RFC 4737's "Type-P-Reordered" definition.

    A packet is reordered iff its sequence number is smaller than one seen
    earlier.  ``max_extent`` is the largest number of in-flight later
    packets that overtook a reordered one; ``mean_late_time_s`` averages
    how long after its in-order slot each reordered packet arrived (using
    the arrival of the next-higher already-arrived sequence as reference).
    """
    seqs = np.asarray(seqs, dtype=np.int64)
    arrival_times = np.asarray(arrival_times, dtype=np.float64)
    if seqs.shape != arrival_times.shape:
        raise ValueError("seqs and arrival_times must align")
    packets = int(seqs.size)
    reordered = 0
    max_extent = 0
    late_times: list[float] = []
    highest = -1
    highest_time = 0.0
    for seq, t in zip(seqs, arrival_times):
        seq = int(seq)
        if seq > highest:
            highest = seq
            highest_time = float(t)
            continue
        reordered += 1
        # Extent: how many higher sequence numbers already arrived.
        extent = int(np.sum(seqs[: np.searchsorted(arrival_times, t, "right")] > seq))
        max_extent = max(max_extent, extent)
        late_times.append(float(t) - highest_time)
    mean_late = float(np.mean(late_times)) if late_times else 0.0
    return ReorderingReport(
        packets=packets,
        reordered=reordered,
        max_extent=max_extent,
        mean_late_time_s=mean_late,
    )


def reordering_extent(seqs: np.ndarray) -> int:
    """Maximum reordering extent alone (cheap, no timing needed)."""
    seqs = np.asarray(seqs, dtype=np.int64)
    highest = -1
    extent = 0
    seen: list[int] = []
    for seq in seqs:
        seq = int(seq)
        if seq > highest:
            highest = seq
        else:
            overtakers = sum(1 for s in seen if s > seq)
            extent = max(extent, overtakers)
        seen.append(seq)
    return extent
