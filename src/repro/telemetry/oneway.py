"""One-way-delay analysis with unsynchronized-clock semantics.

The measured one-way delay is ``receiver_wall_clock - sender_timestamp``,
which equals the true delay plus the (constant) clock offset between the
two switches.  Consequences the paper spells out, which this module's API
enforces by construction:

* *Relative* comparisons between paths in the same direction are exact —
  the offset cancels.  :func:`relative_delays` and best-path ranking
  therefore operate on raw measured values.
* Comparisons *between directions* are meaningless; a
  :class:`DirectionalStore` keeps the two directions' measurements in
  separate stores so they cannot be mixed by accident.
* Absolute delays are only approximate; :func:`estimate_clock_offset`
  recovers the offset under a symmetric-path assumption (the classic
  NTP-style bound), exposed for diagnostics rather than policy use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .store import MeasurementStore

__all__ = [
    "Ewma",
    "relative_delays",
    "rank_paths",
    "estimate_clock_offset",
    "DirectionalStore",
    "PathSummary",
    "summarize_path",
]


class Ewma:
    """Exponentially weighted moving average, the policies' smoother.

    ``alpha`` is the weight of a new sample.  Switch-friendly: one
    multiply-accumulate per packet, no history buffer.
    """

    def __init__(self, alpha: float = 0.1) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value: Optional[float] = None

    def update(self, sample: float) -> float:
        """Fold in a sample; returns the new average."""
        if self._value is None:
            self._value = sample
        else:
            self._value += self.alpha * (sample - self._value)
        return self._value

    @property
    def value(self) -> Optional[float]:
        """Current average (None before the first sample)."""
        return self._value

    def reset(self) -> None:
        self._value = None


def relative_delays(
    store: MeasurementStore, t0: float, t1: float
) -> dict[int, float]:
    """Mean measured delay per path over [t0, t1), offset-cancelled.

    The smallest per-path mean is subtracted, so the result expresses each
    path's penalty relative to the best path in the window — exactly the
    comparison the paper argues is sound without synchronized clocks.
    """
    means: dict[int, float] = {}
    for path_id in store.path_ids():
        _, values = store.series(path_id).window(t0, t1)
        if values.size:
            means[path_id] = float(np.mean(values))
    if not means:
        return {}
    best = min(means.values())
    return {path_id: mean - best for path_id, mean in means.items()}


def rank_paths(
    store: MeasurementStore, window_s: float, now: float
) -> list[tuple[int, float]]:
    """Paths sorted best-first by trailing-window mean measured delay."""
    ranked = []
    for path_id in store.path_ids():
        delay = store.recent_delay(path_id, window_s, now)
        if delay is not None:
            ranked.append((path_id, delay))
    ranked.sort(key=lambda item: (item[1], item[0]))
    return ranked


def estimate_clock_offset(
    forward_owd_s: float, reverse_owd_s: float
) -> tuple[float, float]:
    """NTP-style decomposition of a measured OWD pair.

    Given measured forward and reverse one-way delays between two switches
    (each distorted by opposite-sign offsets), and assuming symmetric true
    path delays, returns ``(offset_s, true_one_way_s)`` where ``offset_s``
    is receiver-clock-minus-sender-clock for the forward direction.

    The symmetry assumption is exactly what Tango does *not* rely on —
    this helper exists for diagnostics and for quantifying asymmetry in
    the one-way-vs-RTT ablation.
    """
    true_one_way = (forward_owd_s + reverse_owd_s) / 2.0
    offset = (forward_owd_s - reverse_owd_s) / 2.0
    return offset, true_one_way


@dataclass(frozen=True)
class PathSummary:
    """Descriptive statistics for one path over a window."""

    path_id: int
    samples: int
    mean_s: float
    minimum_s: float
    maximum_s: float
    p50_s: float
    p99_s: float

    def as_row(self) -> dict:
        """Flat dict (milliseconds) for report tables."""
        return {
            "path_id": self.path_id,
            "samples": self.samples,
            "mean_ms": self.mean_s * 1e3,
            "min_ms": self.minimum_s * 1e3,
            "max_ms": self.maximum_s * 1e3,
            "p50_ms": self.p50_s * 1e3,
            "p99_ms": self.p99_s * 1e3,
        }


def summarize_path(
    store: MeasurementStore, path_id: int, t0: float, t1: float
) -> Optional[PathSummary]:
    """Window statistics for one path, or None if it has no samples."""
    _, values = store.series(path_id).window(t0, t1)
    if values.size == 0:
        return None
    return PathSummary(
        path_id=path_id,
        samples=int(values.size),
        mean_s=float(np.mean(values)),
        minimum_s=float(np.min(values)),
        maximum_s=float(np.max(values)),
        p50_s=float(np.percentile(values, 50)),
        p99_s=float(np.percentile(values, 99)),
    )


class DirectionalStore:
    """Measurements of the two directions of a Tango pairing, kept apart.

    ``forward`` holds delays measured at the remote switch for paths
    *we* select (our outbound); ``reverse`` holds delays measured locally
    for the peer's outbound.  The split makes the paper's "comparisons
    between one-way delays in different directions have little meaning"
    a type-level property instead of a convention.
    """

    def __init__(self) -> None:
        self.forward = MeasurementStore()
        self.reverse = MeasurementStore()

    def record_forward(self, path_id: int, t: float, owd_s: float) -> None:
        self.forward.record(path_id, t, owd_s)

    def record_reverse(self, path_id: int, t: float, owd_s: float) -> None:
        self.reverse.record(path_id, t, owd_s)
