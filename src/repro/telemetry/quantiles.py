"""Streaming quantile estimation (the P² algorithm).

A programmable switch cannot buffer a campaign to compute percentiles;
the P² algorithm (Jain & Chlamtac, 1985) tracks a quantile with five
markers and O(1) updates — the kind of structure the paper's Section 6
"efficient telemetry" direction calls for.  Used by the controller to
report tail latency per tunnel without storing samples.
"""

from __future__ import annotations

__all__ = ["P2Quantile"]


class P2Quantile:
    """P² single-quantile estimator.

    Args:
        q: the target quantile in (0, 1), e.g. 0.99.

    Example:
        >>> estimator = P2Quantile(0.5)
        >>> for value in range(1, 101):
        ...     estimator.update(float(value))
        >>> 45 < estimator.value < 56
        True
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._initial: list[float] = []
        # Marker state after initialization:
        self._heights: list[float] = []
        self._positions: list[float] = []
        self._desired: list[float] = []
        self._increments: list[float] = []
        self.count = 0

    def update(self, value: float) -> None:
        """Fold in one observation."""
        self.count += 1
        if self.count <= 5:
            self._initial.append(value)
            if self.count == 5:
                self._initialize()
            return
        self._step(value)

    def _initialize(self) -> None:
        self._initial.sort()
        self._heights = list(self._initial)
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        q = self.q
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def _step(self, value: float) -> None:
        heights, positions = self._heights, self._positions
        # Find the cell and clamp extremes.
        if value < heights[0]:
            heights[0] = value
            k = 0
        elif value >= heights[4]:
            heights[4] = value
            k = 3
        else:
            k = 0
            while k < 4 and value >= heights[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust interior markers.
        for i in range(1, 4):
            delta = self._desired[i] - positions[i]
            step = 1.0 if delta >= 1.0 else -1.0 if delta <= -1.0 else 0.0
            if step == 0.0:
                continue
            if not (
                positions[i] + step - positions[i - 1] >= 1.0
                and positions[i + 1] - (positions[i] + step) >= 1.0
            ):
                continue
            adjusted = self._parabolic(i, step)
            if heights[i - 1] < adjusted < heights[i + 1]:
                heights[i] = adjusted
            else:
                heights[i] = self._linear(i, step)
            positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step)
            * (h[i + 1] - h[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        """Current quantile estimate.

        For fewer than five observations, falls back to the exact
        quantile of what was seen (nan if nothing was seen).
        """
        if self.count == 0:
            return float("nan")
        if self.count < 5:
            ordered = sorted(self._initial)
            index = min(
                int(self.q * len(ordered)), len(ordered) - 1
            )
            return ordered[index]
        return self._heights[2]
