"""Provider traffic-control communities (the Vultr dialect).

The Tango prototype shapes announcement propagation with the BGP
communities Vultr offers its BGP customers [AS20473 BGP customer guide]:
a tenant attaches, e.g., *"do not announce to AS 2914"* and Vultr's border
routers honor it when exporting.  Prior work (Streibelt et al., IMC'18;
Birge-Lee et al., CCS'19) shows such communities are widely supported —
this is the paper's deployability argument.

We model the mechanism precisely:

* Action communities are :class:`~repro.bgp.attributes.LargeCommunity`
  values whose ``global_admin`` is the provider's ASN.
* Only routers of that provider *interpret* them (at export time); all
  other ASes carry them transitively and ignore them.
* Supported actions: suppress export to a specific AS, suppress export to
  all transit/peer neighbors, and prepend N times to a specific AS.
"""

from __future__ import annotations

from dataclasses import dataclass

from .attributes import LargeCommunity, RouteAttributes

__all__ = [
    "ACTION_NO_EXPORT_TO",
    "ACTION_NO_EXPORT_ALL",
    "ACTION_PREPEND_TO",
    "no_export_to",
    "no_export_all",
    "prepend_to",
    "ExportAction",
    "TrafficControlInterpreter",
]

#: data1 values for the action encoding (modeled on Vultr's 6000-series).
ACTION_NO_EXPORT_TO = 6000
ACTION_NO_EXPORT_ALL = 6001
ACTION_PREPEND_TO = 6600  # 6600 + n encodes "prepend n times", n in 1..3


def no_export_to(provider_asn: int, target_asn: int) -> LargeCommunity:
    """Community telling ``provider_asn`` not to export to ``target_asn``.

    This is the knob Tango's path discovery turns: suppress the currently
    observed transit, wait for convergence, observe the next-best path.
    """
    return LargeCommunity(provider_asn, ACTION_NO_EXPORT_TO, target_asn)


def no_export_all(provider_asn: int) -> LargeCommunity:
    """Community telling the provider to export to no transit or peer at
    all (the route stays inside the provider and its customer cone)."""
    return LargeCommunity(provider_asn, ACTION_NO_EXPORT_ALL, 0)


def prepend_to(provider_asn: int, target_asn: int, count: int) -> LargeCommunity:
    """Community asking the provider to prepend its ASN ``count`` times
    when exporting to ``target_asn`` (path de-preferencing, 1..3)."""
    if not 1 <= count <= 3:
        raise ValueError(f"prepend count must be 1..3, got {count}")
    return LargeCommunity(provider_asn, ACTION_PREPEND_TO + count, target_asn)


@dataclass(frozen=True)
class ExportAction:
    """Outcome of interpreting traffic-control communities for one export."""

    allow: bool = True
    prepend: int = 0


class TrafficControlInterpreter:
    """Export-time community interpreter for one provider AS.

    Instantiated by provider routers; :meth:`evaluate` is called per
    (route, target neighbor) pair during export processing.
    """

    def __init__(self, provider_asn: int) -> None:
        self.provider_asn = provider_asn

    def evaluate(
        self,
        attributes: RouteAttributes,
        target_asn: int,
        target_is_customer: bool = False,
    ) -> ExportAction:
        """Interpret the route's communities for an export to ``target_asn``.

        Communities addressed to other providers are ignored (transitive
        baggage), matching real deployments.  ``NO_EXPORT_ALL`` keeps the
        route within the provider's customer cone, so customer sessions
        are exempt from it.
        """
        allow = True
        prepend = 0
        for community in attributes.large_communities:
            if community.global_admin != self.provider_asn:
                continue
            if (
                community.data1 == ACTION_NO_EXPORT_TO
                and community.data2 == target_asn
            ):
                allow = False
            elif community.data1 == ACTION_NO_EXPORT_ALL and not target_is_customer:
                allow = False
            elif (
                ACTION_PREPEND_TO < community.data1 <= ACTION_PREPEND_TO + 3
                and community.data2 == target_asn
            ):
                prepend = max(prepend, community.data1 - ACTION_PREPEND_TO)
        return ExportAction(allow=allow, prepend=prepend)
