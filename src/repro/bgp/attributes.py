"""BGP path attributes.

Only the attributes the Tango control plane actually exercises are modeled,
but they are modeled with real BGP semantics: AS paths with prepending and
loop detection, standard and large communities (Vultr's traffic-control
knobs are large communities of the form ``20473:6000:<asn>``), origin
codes, LOCAL_PREF, and MED.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Optional

__all__ = [
    "Origin",
    "AsPath",
    "Community",
    "LargeCommunity",
    "RouteAttributes",
    "is_private_asn",
]

#: RFC 6996 private ASN range (16-bit block).
_PRIVATE_ASN_MIN = 64512
_PRIVATE_ASN_MAX = 65534


def is_private_asn(asn: int) -> bool:
    """True for RFC 6996 private-use ASNs (the prototype's tenant ASN)."""
    return _PRIVATE_ASN_MIN <= asn <= _PRIVATE_ASN_MAX


class Origin(enum.IntEnum):
    """BGP ORIGIN attribute; lower is preferred in the decision process."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2


@dataclass(frozen=True)
class AsPath:
    """An AS_PATH: a sequence of ASNs, most recent hop first.

    ``asns[0]`` is the neighbor that sent the route; ``asns[-1]`` is the
    origin AS (or a poisoned ASN).  Prepending repeats an ASN, lengthening
    the path without changing reachability.
    """

    asns: tuple[int, ...] = ()
    #: Hash and length are on the decision-process hot path (every
    #: candidate comparison reads both), so they are precomputed once at
    #: construction.  The cached hash equals the frozen-dataclass hash of
    #: the ``asns`` field, keeping hash/equality semantics unchanged.
    _hash: int = field(init=False, repr=False, compare=False)
    _length: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.asns,)))
        object.__setattr__(self, "_length", len(self.asns))

    def __hash__(self) -> int:
        return self._hash

    @classmethod
    def of(cls, *asns: int) -> "AsPath":
        """Convenience constructor: ``AsPath.of(2914, 20473)``."""
        return cls(tuple(asns))

    def prepend(self, asn: int, count: int = 1) -> "AsPath":
        """Return a path with ``asn`` prepended ``count`` times."""
        if count < 1:
            raise ValueError(f"prepend count must be >= 1, got {count}")
        return AsPath((asn,) * count + self.asns)

    def contains(self, asn: int) -> bool:
        """Loop-detection test."""
        return asn in self.asns

    def strip_private(self) -> "AsPath":
        """Remove private ASNs (what Vultr does to tenant sessions)."""
        return AsPath(tuple(a for a in self.asns if not is_private_asn(a)))

    def without(self, asn: int) -> "AsPath":
        """Remove every occurrence of ``asn`` (used to present transit-only
        views of paths that traverse the provider's own ASN)."""
        return AsPath(tuple(a for a in self.asns if a != asn))

    def unique_asns(self) -> tuple[int, ...]:
        """ASNs in path order with consecutive duplicates collapsed."""
        out: list[int] = []
        for asn in self.asns:
            if not out or out[-1] != asn:
                out.append(asn)
        return tuple(out)

    @property
    def length(self) -> int:
        """AS_PATH length as the decision process counts it (with repeats)."""
        return self._length

    @property
    def first_hop(self) -> Optional[int]:
        """The neighboring AS this route was heard from."""
        return self.asns[0] if self.asns else None

    @property
    def origin_as(self) -> Optional[int]:
        """The AS that originated the route."""
        return self.asns[-1] if self.asns else None

    def __iter__(self) -> Iterator[int]:
        return iter(self.asns)

    def __len__(self) -> int:
        return self._length

    def __str__(self) -> str:
        return " ".join(str(a) for a in self.asns) if self.asns else "<empty>"


@dataclass(frozen=True, order=True)
class Community(object):
    """A standard RFC 1997 community, rendered ``asn:value``."""

    asn: int
    value: int

    def __post_init__(self) -> None:
        for name, part in (("asn", self.asn), ("value", self.value)):
            if not 0 <= part <= 0xFFFF:
                raise ValueError(f"community {name} out of 16-bit range: {part}")

    def __str__(self) -> str:
        return f"{self.asn}:{self.value}"


@dataclass(frozen=True, order=True)
class LargeCommunity:
    """An RFC 8092 large community ``global_admin:data1:data2``.

    Vultr's traffic-control communities are large communities with
    ``global_admin == 20473``; every other AS treats them as opaque
    transitive baggage, exactly as on the real Internet.
    """

    global_admin: int
    data1: int
    data2: int

    def __post_init__(self) -> None:
        for name, part in (
            ("global_admin", self.global_admin),
            ("data1", self.data1),
            ("data2", self.data2),
        ):
            if not 0 <= part <= 0xFFFFFFFF:
                raise ValueError(f"large community {name} out of range: {part}")

    def __str__(self) -> str:
        return f"{self.global_admin}:{self.data1}:{self.data2}"


@dataclass(frozen=True)
class RouteAttributes:
    """The attribute bundle carried with an announcement.

    LOCAL_PREF is *not* carried across eBGP in real BGP; we keep it here
    because import policy assigns it on receipt and the decision process
    reads it — announcements built for export always reset it.
    """

    as_path: AsPath = field(default_factory=AsPath)
    origin: Origin = Origin.IGP
    local_pref: int = 100
    med: int = 0
    communities: frozenset[Community] = frozenset()
    large_communities: frozenset[LargeCommunity] = frozenset()

    def with_path(self, as_path: AsPath) -> "RouteAttributes":
        return replace(self, as_path=as_path)

    def with_local_pref(self, local_pref: int) -> "RouteAttributes":
        return replace(self, local_pref=local_pref)

    def add_communities(
        self,
        communities: Iterable[Community] = (),
        large: Iterable[LargeCommunity] = (),
    ) -> "RouteAttributes":
        """Return attributes with extra communities attached."""
        return replace(
            self,
            communities=self.communities | frozenset(communities),
            large_communities=self.large_communities | frozenset(large),
        )
