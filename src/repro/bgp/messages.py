"""BGP UPDATE messages: announcements and withdrawals."""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Union

from .attributes import RouteAttributes

__all__ = ["Prefix", "Announcement", "Withdrawal", "as_prefix"]

Prefix = Union[ipaddress.IPv4Network, ipaddress.IPv6Network]


def as_prefix(value: Union[str, Prefix]) -> Prefix:
    """Normalize a prefix argument to an ``ip_network`` object."""
    if isinstance(value, str):
        return ipaddress.ip_network(value)
    return value


@dataclass(frozen=True)
class Announcement:
    """A reachability announcement for one prefix.

    The attribute bundle's AS path already includes the sender's ASN
    (exports prepend before sending, as real BGP speakers do).
    """

    prefix: Prefix
    attributes: RouteAttributes

    def __str__(self) -> str:
        return f"{self.prefix} via [{self.attributes.as_path}]"


@dataclass(frozen=True)
class Withdrawal:
    """Withdrawal of a previously announced prefix."""

    prefix: Prefix

    def __str__(self) -> str:
        return f"withdraw {self.prefix}"
