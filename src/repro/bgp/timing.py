"""BGP on the wall clock: hold timers and convergence latency.

The propagation engine in :mod:`repro.bgp.network` computes *converged*
state instantly — right for discovery experiments, wrong for questions
like "how long is the default path black-holed after a failure?".  This
module puts the control plane on the simulation timeline:

* a failed session is only *detected* after the hold timer expires
  (RFC 4271 default: 90 s without keepalives);
* the network then reconverges, which costs a convergence delay (the
  paper's "several minute convergence time"; we default to
  :data:`~repro.bgp.network.CONVERGENCE_DELAY_S`);
* only then do data-plane FIBs change (the ``on_converged`` hook, wired
  to :func:`repro.core.fibsync.sync_fibs` in full-system setups).

Tango's data plane reacts in measurement-window time, orders of
magnitude earlier — the E11 benchmark quantifies the gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..netsim.events import Simulator
from .network import CONVERGENCE_DELAY_S, BgpNetwork

__all__ = ["SessionTimers", "TimedFailover"]


@dataclass(frozen=True)
class SessionTimers:
    """RFC 4271-style timers.

    Attributes:
        hold_s: seconds without keepalives before a session is declared
            down (RFC default 90; aggressive deployments use 9–30).
        convergence_s: wall-clock cost of the reconvergence wave that
            follows.
    """

    hold_s: float = 90.0
    convergence_s: float = CONVERGENCE_DELAY_S

    def __post_init__(self) -> None:
        if self.hold_s < 0:
            raise ValueError(f"hold timer must be >= 0, got {self.hold_s}")
        if self.convergence_s < 0:
            raise ValueError(
                f"convergence delay must be >= 0, got {self.convergence_s}"
            )

    @property
    def total_blackhole_s(self) -> float:
        """Worst-case time traffic is black-holed: detect + reconverge."""
        return self.hold_s + self.convergence_s


class TimedFailover:
    """Plays a session failure out on the simulation timeline.

    Usage::

        failover = TimedFailover(sim, bgp, timers, on_converged=resync)
        failover.fail_session("vultr-ny", "gtt", at=5.0)

    At ``at + hold_s`` the session is torn down and the network
    reconverges (logically); at ``at + hold_s + convergence_s`` the
    ``on_converged`` callback fires — the moment new FIBs are live.
    """

    def __init__(
        self,
        sim: Simulator,
        bgp: BgpNetwork,
        timers: Optional[SessionTimers] = None,
        on_converged: Optional[Callable[[], None]] = None,
    ) -> None:
        self.sim = sim
        self.bgp = bgp
        self.timers = timers or SessionTimers()
        self.on_converged = on_converged
        #: (a, b, failed_at, detected_at, converged_at) per failure.
        self.log: list[tuple[str, str, float, float, float]] = []

    def fail_session(self, a: str, b: str, at: float) -> tuple[float, float]:
        """Schedule a failure of the a–b session at time ``at``.

        Returns:
            ``(detected_at, converged_at)`` — when BGP notices, and when
            new routes are actually forwarding.
        """
        detected_at = at + self.timers.hold_s
        converged_at = detected_at + self.timers.convergence_s
        self.sim.schedule_at(detected_at, lambda: self._detect(a, b))
        self.sim.schedule_at(
            converged_at, lambda: self._converged(a, b, at, detected_at)
        )
        return detected_at, converged_at

    def _detect(self, a: str, b: str) -> None:
        self.bgp.disconnect(a, b)
        self.bgp.converge()

    def _converged(self, a: str, b: str, failed_at: float, detected_at: float) -> None:
        self.log.append((a, b, failed_at, detected_at, self.sim.now))
        if self.on_converged is not None:
            self.on_converged()
