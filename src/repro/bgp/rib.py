"""Routing information bases: Adj-RIB-In, Loc-RIB, Adj-RIB-Out."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .attributes import AsPath, RouteAttributes
from .messages import Announcement, Prefix
from .policy import Relationship

__all__ = ["RibEntry", "AdjRibIn", "LocRib", "AdjRibOut"]


@dataclass(frozen=True)
class RibEntry:
    """One candidate route: a prefix as heard from one neighbor."""

    prefix: Prefix
    attributes: RouteAttributes
    neighbor: str
    relationship: Relationship

    @property
    def as_path(self) -> AsPath:
        return self.attributes.as_path


class AdjRibIn:
    """Routes received from each neighbor, pre-decision."""

    def __init__(self) -> None:
        self._routes: dict[tuple[str, Prefix], RibEntry] = {}

    def upsert(self, entry: RibEntry) -> bool:
        """Install/replace a route.  Returns True if anything changed."""
        key = (entry.neighbor, entry.prefix)
        if self._routes.get(key) == entry:
            return False
        self._routes[key] = entry
        return True

    def remove(self, neighbor: str, prefix: Prefix) -> bool:
        """Drop the route for ``prefix`` from ``neighbor`` if present."""
        return self._routes.pop((neighbor, prefix), None) is not None

    def remove_neighbor(self, neighbor: str) -> int:
        """Session teardown: drop every route from ``neighbor``."""
        keys = [k for k in self._routes if k[0] == neighbor]
        for key in keys:
            del self._routes[key]
        return len(keys)

    def get(self, neighbor: str, prefix: Prefix) -> Optional[RibEntry]:
        return self._routes.get((neighbor, prefix))

    def candidates(self, prefix: Prefix) -> list[RibEntry]:
        """All routes for ``prefix``, across neighbors (stable order)."""
        return [e for (_, p), e in sorted(self._routes.items()) if p == prefix]

    def prefixes(self) -> set[Prefix]:
        return {prefix for (_, prefix) in self._routes}

    def prefixes_from(self, neighbor: str) -> set[Prefix]:
        return {p for (n, p) in self._routes if n == neighbor}

    def snapshot(self) -> dict[tuple[str, Prefix], RibEntry]:
        """Copy of the table.  Entries are frozen, so a shallow dict copy
        is a full copy-on-write fork of this RIB's state."""
        return dict(self._routes)

    def restore(self, state: dict[tuple[str, Prefix], RibEntry]) -> None:
        """Replace the table with a previously captured snapshot."""
        self._routes = dict(state)

    def __len__(self) -> int:
        return len(self._routes)


class LocRib:
    """Best route per prefix, post-decision."""

    def __init__(self) -> None:
        self._best: dict[Prefix, RibEntry] = {}

    def set_best(self, prefix: Prefix, entry: Optional[RibEntry]) -> bool:
        """Record the decision outcome.  Returns True on change."""
        current = self._best.get(prefix)
        if entry is None:
            if current is None:
                return False
            del self._best[prefix]
            return True
        if current == entry:
            return False
        self._best[prefix] = entry
        return True

    def best(self, prefix: Prefix) -> Optional[RibEntry]:
        return self._best.get(prefix)

    def routes(self) -> dict[Prefix, RibEntry]:
        return dict(self._best)

    def snapshot(self) -> dict[Prefix, RibEntry]:
        """Copy-on-write fork of the best-route table (entries frozen)."""
        return dict(self._best)

    def restore(self, state: dict[Prefix, RibEntry]) -> None:
        """Replace the table with a previously captured snapshot."""
        self._best = dict(state)

    def __len__(self) -> int:
        return len(self._best)


class AdjRibOut:
    """What we last advertised to each neighbor (for diff-based updates)."""

    def __init__(self) -> None:
        self._sent: dict[tuple[str, Prefix], Announcement] = {}

    def last_sent(self, neighbor: str, prefix: Prefix) -> Optional[Announcement]:
        return self._sent.get((neighbor, prefix))

    def record(self, neighbor: str, announcement: Announcement) -> None:
        self._sent[(neighbor, announcement.prefix)] = announcement

    def forget(self, neighbor: str, prefix: Prefix) -> None:
        self._sent.pop((neighbor, prefix), None)

    def prefixes_to(self, neighbor: str) -> set[Prefix]:
        return {p for (n, p) in self._sent if n == neighbor}

    def clear_neighbor(self, neighbor: str) -> None:
        """Session teardown: forget everything advertised to ``neighbor``."""
        for key in [k for k in self._sent if k[0] == neighbor]:
            del self._sent[key]

    def snapshot(self) -> dict[tuple[str, Prefix], Announcement]:
        """Copy-on-write fork of the advertised table (entries frozen)."""
        return dict(self._sent)

    def restore(self, state: dict[tuple[str, Prefix], Announcement]) -> None:
        """Replace the table with a previously captured snapshot."""
        self._sent = dict(state)
