"""AS-level BGP control-plane simulator.

Policy-faithful route propagation: Gao–Rexford export rules, the full
decision process, provider traffic-control communities (the Vultr
dialect), private-ASN stripping, allowas-in, AS-path poisoning, and a
wall-clock failure-response model (hold timers + convergence latency).
"""

from .attributes import (
    AsPath,
    Community,
    LargeCommunity,
    Origin,
    RouteAttributes,
    is_private_asn,
)
from .communities import (
    ExportAction,
    TrafficControlInterpreter,
    no_export_all,
    no_export_to,
    prepend_to,
)
from .messages import Announcement, Prefix, Withdrawal, as_prefix
from .network import (
    CONVERGENCE_DELAY_S,
    ENGINE_INCREMENTAL,
    ENGINE_ROUNDS,
    BgpNetwork,
    ConvergenceError,
)
from .poisoning import poison_targets, poisoned_attributes
from .snapshot import (
    NetworkSnapshot,
    SnapshotCache,
    capture_snapshot,
    network_fingerprint,
    restore_snapshot,
)
from .timing import SessionTimers, TimedFailover
from .policy import (
    Relationship,
    default_local_pref,
    gao_rexford_allows_export,
)
from .rib import AdjRibIn, AdjRibOut, LocRib, RibEntry
from .router import BgpRouter, Neighbor

__all__ = [
    "AdjRibIn",
    "AdjRibOut",
    "Announcement",
    "AsPath",
    "BgpNetwork",
    "BgpRouter",
    "CONVERGENCE_DELAY_S",
    "Community",
    "ConvergenceError",
    "ENGINE_INCREMENTAL",
    "ENGINE_ROUNDS",
    "ExportAction",
    "LargeCommunity",
    "LocRib",
    "Neighbor",
    "NetworkSnapshot",
    "Origin",
    "Prefix",
    "Relationship",
    "RibEntry",
    "SessionTimers",
    "SnapshotCache",
    "RouteAttributes",
    "TimedFailover",
    "TrafficControlInterpreter",
    "Withdrawal",
    "as_prefix",
    "capture_snapshot",
    "default_local_pref",
    "gao_rexford_allows_export",
    "is_private_asn",
    "network_fingerprint",
    "no_export_all",
    "no_export_to",
    "poison_targets",
    "poisoned_attributes",
    "prepend_to",
    "restore_snapshot",
]
