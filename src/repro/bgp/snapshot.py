"""Convergence snapshot cache: fork converged control-plane state.

The discovery procedure and fault replays keep returning a network to
configurations it has already converged from — every suppression round
ends by withdrawing the probe and re-converging to the *base* state, and
a flapping fault alternates between the same two configurations.  Since
the fixpoint is a pure function of the network configuration (routers,
sessions, originations — Gao–Rexford plus deterministic tie-breaks make
it unique), converged state can be cached against a canonical fingerprint
of that configuration and restored in O(state) instead of re-propagating.

Snapshots are copy-on-write in the practical sense: every RIB entry,
announcement, and attribute bundle is a frozen dataclass, so capturing or
restoring a snapshot copies only the per-router dicts that index them,
never the entries themselves.

Custom import/export policies are opaque callables — they cannot be
fingerprinted — so a network using them is never cached (the cache
degrades to plain :meth:`BgpNetwork.converge`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from .attributes import RouteAttributes
from .messages import Announcement, Prefix
from .network import BgpNetwork
from .rib import RibEntry

__all__ = [
    "NetworkSnapshot",
    "SnapshotCache",
    "network_fingerprint",
    "capture_snapshot",
    "restore_snapshot",
]


def _attr_token(attrs: RouteAttributes) -> str:
    """Canonical text form of an attribute bundle for fingerprinting."""
    communities = ",".join(sorted(str(c) for c in attrs.communities))
    large = ",".join(sorted(str(c) for c in attrs.large_communities))
    return (
        f"{attrs.as_path}|{int(attrs.origin)}|{attrs.local_pref}"
        f"|{attrs.med}|{communities}|{large}"
    )


def network_fingerprint(network: BgpNetwork) -> Optional[str]:
    """Canonical digest of everything the fixpoint depends on.

    Covers routers (name, ASN, knobs), sessions (endpoints, relationship,
    preferences), and originations (prefix plus full attributes).  Returns
    ``None`` — *uncacheable* — when any router carries custom import or
    export policies, since opaque callables cannot be hashed canonically.
    """
    digest = hashlib.sha256()
    for name in sorted(network.routers):
        router = network.routers[name]
        if router.import_policies or router.export_policies:
            return None
        digest.update(
            f"R|{name}|{router.asn}|{int(router.allowas_in)}"
            f"|{int(router.strip_private_on_export)}\n".encode()
        )
        for prefix in sorted(router.originated, key=str):
            token = _attr_token(router.originated[prefix])
            digest.update(f"O|{name}|{prefix}|{token}\n".encode())
    for a, b in sorted(network._session_meta):
        rel, a_pref, b_pref = network._session_meta[(a, b)]
        digest.update(f"S|{a}|{b}|{rel.name}|{a_pref}|{b_pref}\n".encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class _RouterState:
    """One router's converged state: shallow copies of its four tables
    plus the decision-memoization epochs that must stay consistent with
    them."""

    adj_rib_in: dict[tuple[str, Prefix], RibEntry]
    loc_rib: dict[Prefix, RibEntry]
    adj_rib_out: dict[tuple[str, Prefix], Announcement]
    originated: dict[Prefix, RouteAttributes]
    rib_epoch: dict[Prefix, int]
    decided_epoch: dict[Prefix, int]


@dataclass(frozen=True)
class NetworkSnapshot:
    """A converged network state, restorable onto the same topology."""

    fingerprint: str
    routers: dict[str, _RouterState]


def capture_snapshot(
    network: BgpNetwork, fingerprint: Optional[str] = None
) -> NetworkSnapshot:
    """Fork the network's current (converged) state."""
    if fingerprint is None:
        fingerprint = network_fingerprint(network)
    if fingerprint is None:
        raise ValueError(
            "network with custom import/export policies is not snapshotable"
        )
    routers: dict[str, _RouterState] = {}
    for name, router in network.routers.items():
        routers[name] = _RouterState(
            adj_rib_in=router.adj_rib_in.snapshot(),
            loc_rib=router.loc_rib.snapshot(),
            adj_rib_out=router.adj_rib_out.snapshot(),
            originated=dict(router.originated),
            rib_epoch=dict(router._rib_epoch),
            decided_epoch=dict(router._decided_epoch),
        )
    return NetworkSnapshot(fingerprint=fingerprint, routers=routers)


def restore_snapshot(network: BgpNetwork, snapshot: NetworkSnapshot) -> None:
    """Load a captured state back onto the network.

    The snapshot is authoritative: queued incremental work describes
    mutations the captured state already reflects, so pending buffers are
    cleared.  Cumulative statistics (``total_rounds`` and friends) are
    deliberately left alone — a restore is not a convergence.
    """
    if set(snapshot.routers) != set(network.routers):
        raise ValueError("snapshot router set does not match this network")
    for name, state in snapshot.routers.items():
        router = network.routers[name]
        router.adj_rib_in.restore(state.adj_rib_in)
        router.loc_rib.restore(state.loc_rib)
        router.adj_rib_out.restore(state.adj_rib_out)
        router.originated = dict(state.originated)
        router._rib_epoch = dict(state.rib_epoch)
        router._decided_epoch = dict(state.decided_epoch)
        router.clear_pending_exports()
    network._pending_full_sync.clear()
    network.snapshot_restores += 1


class SnapshotCache:
    """An LRU cache of converged states keyed by network fingerprint.

    Drop-in accelerator for any ``network.converge()`` call site: use
    :meth:`converge` instead, and configurations already seen restore in
    O(state) with zero propagation waves.

    Args:
        capacity: snapshots retained (least recently used evicted first).
    """

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._snapshots: dict[str, NetworkSnapshot] = {}
        self.hits = 0
        self.misses = 0
        self.bypasses = 0

    def __len__(self) -> int:
        return len(self._snapshots)

    def converge(self, network: BgpNetwork, max_rounds: int = 200) -> int:
        """Converge ``network``, restoring a cached fixpoint when one
        exists for its current configuration.

        Returns the wave count, 0 on a cache hit (no propagation ran).
        """
        key = network_fingerprint(network)
        if key is None:
            self.bypasses += 1
            return network.converge(max_rounds)
        snapshot = self._snapshots.get(key)
        if snapshot is not None:
            # Refresh LRU position.
            del self._snapshots[key]
            self._snapshots[key] = snapshot
            restore_snapshot(network, snapshot)
            self.hits += 1
            return 0
        waves = network.converge(max_rounds)
        self.misses += 1
        self._snapshots[key] = capture_snapshot(network, key)
        while len(self._snapshots) > self.capacity:
            del self._snapshots[next(iter(self._snapshots))]
        return waves

    def clear(self) -> None:
        """Drop every cached snapshot (counters are kept)."""
        self._snapshots.clear()
