"""A BGP speaker: sessions, RIBs, decision process, export processing.

Routers are identified by *name*, not ASN, because the Vultr scenario has
two border routers sharing AS 20473 (one per datacenter).  Paths are still
sequences of ASNs; the ``allowas_in`` knob (a real BGP feature) lets a
router accept paths containing its own ASN, which is how the two Vultr
routers hear each other's tenant prefixes across the public core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from .attributes import AsPath, RouteAttributes
from .communities import TrafficControlInterpreter
from .messages import Announcement, Prefix, Withdrawal, as_prefix
from .policy import (
    ExportPolicy,
    ImportPolicy,
    Relationship,
    default_local_pref,
    gao_rexford_allows_export,
)
from .rib import AdjRibIn, AdjRibOut, LocRib, RibEntry

__all__ = ["Neighbor", "BgpRouter"]


@dataclass
class Neighbor:
    """An eBGP session to an adjacent router.

    Attributes:
        name: the adjacent router's name.
        asn: its ASN (used for AS-path prepending/interpretation).
        relationship: business relationship from the local viewpoint.
        preference: operator tie-break rank (lower wins).  This models the
            paper's observation that Vultr's routers prefer NTT, then
            Telia, then GTT, then the rest.
    """

    name: str
    asn: int
    relationship: Relationship
    preference: int = 1000


class BgpRouter:
    """One BGP speaker with full import/decision/export processing.

    Args:
        name: unique router name ("vultr-ny", "ntt", ...).
        asn: the ASN this router speaks for.
        allowas_in: accept routes whose path already contains ``asn``.
        strip_private_on_export: remove private ASNs from exported paths,
            as Vultr does for its BGP tenants (paper footnote 2).
    """

    def __init__(
        self,
        name: str,
        asn: int,
        allowas_in: bool = False,
        strip_private_on_export: bool = True,
    ) -> None:
        self.name = name
        self.asn = asn
        self.allowas_in = allowas_in
        self.strip_private_on_export = strip_private_on_export
        self.neighbors: dict[str, Neighbor] = {}
        self.adj_rib_in = AdjRibIn()
        self.loc_rib = LocRib()
        self.adj_rib_out = AdjRibOut()
        self.originated: dict[Prefix, RouteAttributes] = {}
        self.interpreter = TrafficControlInterpreter(asn)
        self.import_policies: list[ImportPolicy] = []
        self.export_policies: list[ExportPolicy] = []
        #: Prefixes whose exports may have changed since the network last
        #: drained this router — the incremental engine's work queue.
        self._pending_export: set[Prefix] = set()
        #: Adj-RIB-In generation per prefix, bumped on every accepted
        #: change; :meth:`run_decision` skips prefixes whose decision
        #: already reflects the current generation.
        self._rib_epoch: dict[Prefix, int] = {}
        self._decided_epoch: dict[Prefix, int] = {}
        #: Profiling counters (cheap ints, always on).
        self.decisions_run = 0
        self.decisions_memoized = 0

    # -- session management ---------------------------------------------------

    def add_neighbor(
        self,
        name: str,
        asn: int,
        relationship: Relationship,
        preference: Optional[int] = None,
    ) -> Neighbor:
        """Register an eBGP session (one side; the peer registers its own)."""
        if name in self.neighbors:
            raise ValueError(f"{self.name}: duplicate neighbor {name}")
        neighbor = Neighbor(
            name=name,
            asn=asn,
            relationship=relationship,
            preference=preference if preference is not None else 1000,
        )
        self.neighbors[name] = neighbor
        return neighbor

    def remove_neighbor(self, name: str) -> None:
        """Tear down a session and flush its routes."""
        self.neighbors.pop(name, None)
        flushed = self.adj_rib_in.prefixes_from(name)
        self.adj_rib_in.remove_neighbor(name)
        for prefix in flushed:
            self._bump_epoch(prefix)
        self.run_decision()

    # -- origination ------------------------------------------------------------

    def originate(
        self,
        prefix: Union[str, Prefix],
        attributes: Optional[RouteAttributes] = None,
    ) -> None:
        """Originate (or re-originate with new attributes) a prefix.

        ``attributes.as_path`` holds any *poisoned* tail; the router's own
        ASN is prepended at export time, so a normal origination passes an
        empty path.
        """
        normalized = as_prefix(prefix)
        attrs = attributes or RouteAttributes()
        if self.originated.get(normalized) != attrs:
            self.originated[normalized] = attrs
            self._pending_export.add(normalized)

    def withdraw_origination(self, prefix: Union[str, Prefix]) -> bool:
        """Stop originating ``prefix``.  True if it was being originated."""
        normalized = as_prefix(prefix)
        if self.originated.pop(normalized, None) is None:
            return False
        self._pending_export.add(normalized)
        return True

    # -- import side ------------------------------------------------------------

    def receive_announcement(self, from_name: str, announcement: Announcement) -> bool:
        """Process an UPDATE from a neighbor.  Returns True if RIBs changed."""
        neighbor = self._require_neighbor(from_name)
        attrs = announcement.attributes
        if attrs.as_path.contains(self.asn) and not self.allowas_in:
            # Standard AS-path loop detection; also what defeats a
            # poisoned announcement (repro.bgp.poisoning).  The rejected
            # update implicitly replaces any earlier accepted route from
            # this neighbor, so the stale entry must go *and* the
            # decision must rerun.
            return self._reject_update(from_name, announcement.prefix)
        for policy in self.import_policies:
            if not policy(from_name, announcement.prefix, attrs):
                return self._reject_update(from_name, announcement.prefix)
        entry = RibEntry(
            prefix=announcement.prefix,
            attributes=attrs.with_local_pref(
                default_local_pref(neighbor.relationship)
            ),
            neighbor=from_name,
            relationship=neighbor.relationship,
        )
        changed = self.adj_rib_in.upsert(entry)
        if changed:
            self._bump_epoch(announcement.prefix)
            changed = self._decide(announcement.prefix) or changed
        return changed

    def _reject_update(self, from_name: str, prefix: Prefix) -> bool:
        """Drop a rejected update's predecessor and re-decide."""
        changed = self.adj_rib_in.remove(from_name, prefix)
        if changed:
            self._bump_epoch(prefix)
            self._decide(prefix)
        return changed

    def receive_withdrawal(self, from_name: str, withdrawal: Withdrawal) -> bool:
        """Process a withdrawal.  Returns True if RIBs changed."""
        self._require_neighbor(from_name)
        changed = self.adj_rib_in.remove(from_name, withdrawal.prefix)
        if changed:
            self._bump_epoch(withdrawal.prefix)
            self._decide(withdrawal.prefix)
        return changed

    # -- decision process ---------------------------------------------------------

    def run_decision(self) -> bool:
        """Re-run best-path selection for every known prefix.

        Prefixes whose Adj-RIB-In is unchanged since their last decision
        (same epoch) are skipped: re-ranking an unchanged candidate set
        cannot alter the outcome, because the decision is a pure function
        of the candidates and the (stable) neighbor preferences.
        """
        changed = False
        prefixes = self.adj_rib_in.prefixes() | set(self.loc_rib.routes())
        # Sorted so decision order never depends on set iteration order
        # (TNG005; the replay-determinism invariant).
        for prefix in sorted(prefixes, key=str):
            if self._decided_epoch.get(prefix) == self._rib_epoch.get(prefix, 0):
                self.decisions_memoized += 1
                continue
            changed = self._decide(prefix) or changed
        return changed

    def _bump_epoch(self, prefix: Prefix) -> None:
        self._rib_epoch[prefix] = self._rib_epoch.get(prefix, 0) + 1

    def _decide(self, prefix: Prefix) -> bool:
        self.decisions_run += 1
        self._decided_epoch[prefix] = self._rib_epoch.get(prefix, 0)
        candidates = self.adj_rib_in.candidates(prefix)
        if not candidates:
            changed = self.loc_rib.set_best(prefix, None)
        else:
            best = min(candidates, key=self._decision_key)
            changed = self.loc_rib.set_best(prefix, best)
        if changed:
            self._pending_export.add(prefix)
        return changed

    def _decision_key(self, entry: RibEntry) -> tuple:
        """BGP decision process, expressed as a sort key (lower wins).

        Order: highest LOCAL_PREF, shortest AS path, lowest origin code,
        lowest MED, operator neighbor preference, neighbor name.
        """
        neighbor = self.neighbors[entry.neighbor]
        return (
            -entry.attributes.local_pref,
            entry.attributes.as_path.length,
            int(entry.attributes.origin),
            entry.attributes.med,
            neighbor.preference,
            entry.neighbor,
        )

    def best_route(self, prefix: Union[str, Prefix]) -> Optional[RibEntry]:
        """The Loc-RIB best route for ``prefix`` (None if unreachable)."""
        return self.loc_rib.best(as_prefix(prefix))

    def best_path(self, prefix: Union[str, Prefix]) -> Optional[AsPath]:
        """Convenience: the best route's AS path."""
        route = self.best_route(prefix)
        return route.attributes.as_path if route else None

    # -- export side ------------------------------------------------------------

    def exports_for(self, neighbor_name: str) -> dict[Prefix, Announcement]:
        """Compute the full set of announcements for one neighbor.

        Applies, in order: Gao–Rexford valley-freedom, split horizon,
        provider traffic-control communities (only interpreted when this
        router's ASN is the community's admin), custom export policies,
        private-ASN stripping, and AS-path prepending.
        """
        neighbor = self._require_neighbor(neighbor_name)
        exports: dict[Prefix, Announcement] = {}
        for prefix, best in sorted(
            self.loc_rib.routes().items(), key=lambda kv: str(kv[0])
        ):
            if prefix in self.originated:
                continue  # our origination supersedes the learned route
            if best.neighbor == neighbor_name:
                continue  # split horizon
            if not gao_rexford_allows_export(
                best.relationship, neighbor.relationship
            ):
                continue
            announcement = self._build_export(
                prefix, best.attributes, neighbor
            )
            if announcement is not None:
                exports[prefix] = announcement
        for prefix, attrs in sorted(
            self.originated.items(), key=lambda kv: str(kv[0])
        ):
            announcement = self._build_export(prefix, attrs, neighbor)
            if announcement is not None:
                exports[prefix] = announcement
        return exports

    def export_for(
        self, neighbor_name: str, prefix: Prefix
    ) -> Optional[Announcement]:
        """Export processing for a single (neighbor, prefix) pair.

        The same pipeline as :meth:`exports_for` restricted to one prefix
        — the incremental engine's unit of work.  Returns ``None`` when
        nothing is exportable (which the engine turns into a withdrawal if
        something was previously advertised).
        """
        neighbor = self._require_neighbor(neighbor_name)
        originated = self.originated.get(prefix)
        if originated is not None:
            # our origination supersedes any learned route
            return self._build_export(prefix, originated, neighbor)
        best = self.loc_rib.best(prefix)
        if best is None:
            return None
        if best.neighbor == neighbor_name:
            return None  # split horizon
        if not gao_rexford_allows_export(
            best.relationship, neighbor.relationship
        ):
            return None
        return self._build_export(prefix, best.attributes, neighbor)

    def drain_export_changes(self) -> tuple[Prefix, ...]:
        """Take (and clear) the prefixes whose exports may have changed.

        Sorted by prefix string so the engine's delivery order never
        depends on set iteration order (TNG005; the replay-determinism
        invariant).
        """
        if not self._pending_export:
            return ()
        changed = tuple(sorted(self._pending_export, key=str))
        self._pending_export.clear()
        return changed

    def clear_pending_exports(self) -> None:
        """Discard queued export work (snapshot restore / full-scan
        convergence both leave nothing to ripple)."""
        self._pending_export.clear()

    def _build_export(
        self, prefix: Prefix, attrs: RouteAttributes, neighbor: Neighbor
    ) -> Optional[Announcement]:
        action = self.interpreter.evaluate(
            attrs,
            neighbor.asn,
            target_is_customer=neighbor.relationship is Relationship.CUSTOMER,
        )
        if not action.allow:
            return None
        for policy in self.export_policies:
            if not policy(neighbor.name, prefix, attrs):
                return None
        path = attrs.as_path
        if self.strip_private_on_export:
            path = path.strip_private()
        path = path.prepend(self.asn, 1 + action.prepend)
        exported = RouteAttributes(
            as_path=path,
            origin=attrs.origin,
            local_pref=100,  # LOCAL_PREF is not carried across eBGP
            med=0,
            communities=attrs.communities,
            large_communities=attrs.large_communities,
        )
        return Announcement(prefix=prefix, attributes=exported)

    # -- helpers ------------------------------------------------------------

    def _require_neighbor(self, name: str) -> Neighbor:
        try:
            return self.neighbors[name]
        except KeyError:
            raise KeyError(
                f"{self.name}: no session with {name!r}; "
                f"have {sorted(self.neighbors)}"
            ) from None

    def __repr__(self) -> str:
        return f"BgpRouter({self.name}, AS{self.asn})"
