"""Routing policy: relationships, Gao–Rexford rules, and policy chains.

Interdomain routing economics are captured by the classic Gao–Rexford
model: an AS exports customer-learned (and self-originated) routes to
everyone, but peer- and provider-learned routes only to customers.  This
"valley-free" discipline is what limits an edge network's path visibility —
the very limitation Tango's cooperative prefix announcements work around —
so the simulator enforces it faithfully.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from .attributes import RouteAttributes

__all__ = [
    "Relationship",
    "default_local_pref",
    "gao_rexford_allows_export",
    "ImportPolicy",
    "ExportPolicy",
    "accept_all",
    "reject_prefixes",
]


class Relationship(enum.Enum):
    """Business relationship to a neighbor, from the local AS's viewpoint."""

    CUSTOMER = "customer"  # neighbor pays us
    PEER = "peer"  # settlement-free
    PROVIDER = "provider"  # we pay neighbor

    def inverse(self) -> "Relationship":
        """The relationship as seen from the other side."""
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return Relationship.PEER


#: Conventional LOCAL_PREF tiers: prefer routes that earn money.
_LOCAL_PREF = {
    Relationship.CUSTOMER: 300,
    Relationship.PEER: 200,
    Relationship.PROVIDER: 100,
}


def default_local_pref(relationship: Relationship) -> int:
    """LOCAL_PREF assigned on import, by neighbor relationship."""
    return _LOCAL_PREF[relationship]


def gao_rexford_allows_export(
    learned_from: Optional[Relationship], exporting_to: Relationship
) -> bool:
    """Valley-free export test.

    Args:
        learned_from: relationship of the neighbor the route was learned
            from; ``None`` for locally originated routes.
        exporting_to: relationship of the neighbor being exported to.

    Returns:
        True when export is permitted: originated and customer-learned
        routes go everywhere; peer/provider-learned routes go to customers
        only.
    """
    if learned_from is None or learned_from is Relationship.CUSTOMER:
        return True
    return exporting_to is Relationship.CUSTOMER


#: An import filter: (neighbor_name, prefix, attributes) -> accept?
ImportPolicy = Callable[[str, object, RouteAttributes], bool]
#: An export filter: (neighbor_name, prefix, attributes) -> accept?
ExportPolicy = Callable[[str, object, RouteAttributes], bool]


def accept_all(_neighbor: str, _prefix: object, _attrs: RouteAttributes) -> bool:
    """The default (no-op) policy term."""
    return True


def reject_prefixes(prefixes: set) -> ImportPolicy:
    """Build a policy rejecting a fixed prefix set (e.g. bogons)."""

    def policy(_neighbor: str, prefix: object, _attrs: RouteAttributes) -> bool:
        return prefix not in prefixes

    return policy
