"""AS-path poisoning.

An alternative (or complement) to provider communities for steering
propagation, mentioned in the paper's Sections 3 and 6: by *including a
target AS's number in the announced path*, the origin makes that AS reject
the route via standard loop detection, so the route only propagates along
paths avoiding the target.  Unlike communities, poisoning needs no
provider support — but it lengthens the path and some networks filter
poisoned announcements.
"""

from __future__ import annotations

from typing import Iterable

from .attributes import AsPath, RouteAttributes

__all__ = ["poisoned_attributes", "poison_targets"]


def poisoned_attributes(
    targets: Iterable[int], base: RouteAttributes = RouteAttributes()
) -> RouteAttributes:
    """Build origination attributes whose path pre-contains ``targets``.

    The originating router prepends its own ASN at export, so the wire
    path becomes ``origin, target1, target2, ...`` — each target drops the
    route on loop detection while everyone else just sees a longer path.
    """
    target_list = tuple(targets)
    if not target_list:
        raise ValueError("need at least one target ASN to poison")
    return base.with_path(AsPath(target_list))


def poison_targets(attributes: RouteAttributes) -> tuple[int, ...]:
    """The ASNs a poisoned origination excludes (its pre-set path tail)."""
    return attributes.as_path.asns
