"""AS-level topology and route propagation to convergence.

The engine deliberately ignores BGP timers (MRAI, convergence takes
"several minutes" in the paper — one reason BGP cannot do fast reroute).
Instead it computes the *converged* routing state by synchronous
iteration: each round, every router's exports are diffed against what the
neighbor last heard, deltas are delivered, decisions rerun — until a
fixpoint.  Under Gao–Rexford policies with deterministic tie-breaks the
fixpoint exists and is unique, and reaching it round-by-round mirrors the
"wait for BGP to propagate" step of the paper's discovery procedure.

Wall-clock convergence latency is modeled separately: callers that care
(e.g. the route-change experiment) charge ``CONVERGENCE_DELAY_S`` per
convergence when translating control-plane activity onto the data-plane
timeline.

Two interchangeable propagation engines compute the fixpoint:

* ``"rounds"`` — the original full-scan engine: every round re-diffs
  every directed session.  O(sessions × prefixes) per round regardless
  of how small the change was.
* ``"incremental"`` (default) — a dirty-set work queue: routers buffer
  the prefixes whose exports may have changed; each wave drains only
  those buffers and delivers per-prefix deltas, so a single flapped
  session ripples outward instead of re-evaluating the whole topology.

Both engines reach the same unique fixpoint (Gao–Rexford policies plus
deterministic tie-breaks), verified bit-exactly by the engine-equivalence
test suite; ``use_engine`` switches at any converged point.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Union

from .attributes import AsPath
from .messages import Prefix, Withdrawal, as_prefix
from .policy import Relationship
from .router import BgpRouter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..profiling.core import Profiler

__all__ = [
    "ConvergenceError",
    "BgpNetwork",
    "CONVERGENCE_DELAY_S",
    "ENGINE_INCREMENTAL",
    "ENGINE_ROUNDS",
]

#: Engine names accepted by :class:`BgpNetwork` and :meth:`use_engine`.
ENGINE_INCREMENTAL = "incremental"
ENGINE_ROUNDS = "rounds"
_ENGINES = (ENGINE_INCREMENTAL, ENGINE_ROUNDS)

#: Nominal wall-clock cost of one BGP convergence wave, for experiments
#: that put control-plane reactions on the data-plane timeline.  The paper
#: cites "BGP's several minute convergence time"; 180 s is a middle value.
CONVERGENCE_DELAY_S = 180.0


class ConvergenceError(RuntimeError):
    """Raised when propagation fails to reach a fixpoint (policy bug)."""


class BgpNetwork:
    """A set of BGP routers plus their sessions, with a propagation engine."""

    def __init__(self, engine: str = ENGINE_INCREMENTAL) -> None:
        self.routers: dict[str, BgpRouter] = {}
        #: Directed session list (a, b): a may send updates to b.
        self._sessions: list[tuple[str, str]] = []
        #: Session establishment parameters, keyed by the (a, b) order
        #: :meth:`connect` was called with — what a session reset replays.
        self._session_meta: dict[
            tuple[str, str], tuple[Relationship, Optional[int], Optional[int]]
        ] = {}
        self._engine = self._validate_engine(engine)
        #: Directed sessions created since the last convergence; the
        #: incremental engine gives each a one-off full-table sync.
        self._pending_full_sync: list[tuple[str, str]] = []
        self.total_rounds = 0
        self.convergence_count = 0
        #: Profiling counters (cheap ints, always on).
        self.updates_delivered = 0
        self.withdrawals_delivered = 0
        self.routers_scanned = 0
        self.snapshot_restores = 0
        #: Optional attached profiler; when set, convergences are timed.
        self.profiler: Optional["Profiler"] = None

    @staticmethod
    def _validate_engine(engine: str) -> str:
        if engine not in _ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {_ENGINES}"
            )
        return engine

    @property
    def engine(self) -> str:
        """The active propagation engine name."""
        return self._engine

    def use_engine(self, engine: str) -> None:
        """Switch propagation engines.

        Safe at any converged point: both engines leave no pending work
        behind when :meth:`converge` returns.
        """
        self._engine = self._validate_engine(engine)

    # -- construction -----------------------------------------------------------

    def add_router(self, router: BgpRouter) -> BgpRouter:
        if router.name in self.routers:
            raise ValueError(f"duplicate router name: {router.name}")
        self.routers[router.name] = router
        return router

    def router(self, name: str) -> BgpRouter:
        try:
            return self.routers[name]
        except KeyError:
            raise KeyError(
                f"unknown router {name!r}; have {sorted(self.routers)}"
            ) from None

    def connect(
        self,
        a: str,
        b: str,
        relationship_of_b_to_a: Relationship,
        a_preference: Optional[int] = None,
        b_preference: Optional[int] = None,
    ) -> None:
        """Create a bidirectional eBGP session.

        Args:
            a, b: router names.
            relationship_of_b_to_a: how ``a`` sees ``b`` (e.g. PROVIDER
                means b is a's provider).
            a_preference: a's operator tie-break rank for this session.
            b_preference: b's rank for the reverse direction.
        """
        router_a = self.router(a)
        router_b = self.router(b)
        router_a.add_neighbor(
            b, router_b.asn, relationship_of_b_to_a, a_preference
        )
        router_b.add_neighbor(
            a, router_a.asn, relationship_of_b_to_a.inverse(), b_preference
        )
        self._sessions.append((a, b))
        self._sessions.append((b, a))
        self._session_meta[(a, b)] = (
            relationship_of_b_to_a,
            a_preference,
            b_preference,
        )
        self._pending_full_sync.append((a, b))
        self._pending_full_sync.append((b, a))

    def add_provider(
        self,
        customer: str,
        provider: str,
        customer_preference: Optional[int] = None,
    ) -> None:
        """Shorthand: ``provider`` sells transit to ``customer``."""
        self.connect(
            customer,
            provider,
            Relationship.PROVIDER,
            a_preference=customer_preference,
        )

    def add_peering(self, a: str, b: str) -> None:
        """Shorthand: settlement-free peering between ``a`` and ``b``."""
        self.connect(a, b, Relationship.PEER)

    def disconnect(self, a: str, b: str) -> None:
        """Tear down the session between ``a`` and ``b``.

        Both routers flush the routes learned over it and rerun their
        decision; call :meth:`converge` afterwards to propagate the
        fallout (withdrawals, new best paths).
        """
        router_a = self.router(a)
        router_b = self.router(b)
        if b not in router_a.neighbors:
            raise KeyError(f"no session between {a!r} and {b!r}")
        router_a.remove_neighbor(b)
        router_b.remove_neighbor(a)
        router_a.adj_rib_out.clear_neighbor(b)
        router_b.adj_rib_out.clear_neighbor(a)
        self._sessions = [
            s for s in self._sessions if s not in ((a, b), (b, a))
        ]
        self._session_meta.pop((a, b), None)
        self._session_meta.pop((b, a), None)
        self._pending_full_sync = [
            s for s in self._pending_full_sync if s not in ((a, b), (b, a))
        ]

    def session_config(
        self, a: str, b: str
    ) -> tuple[str, str, Relationship, Optional[int], Optional[int]]:
        """The parameters :meth:`connect` was called with for this session.

        Returns ``(a, b, relationship_of_b_to_a, a_preference,
        b_preference)`` normalized to the original call orientation, so the
        tuple can be splatted straight back into :meth:`connect` — the
        capture half of a fault injector's session-down/session-up pair.
        """
        if (a, b) in self._session_meta:
            rel, a_pref, b_pref = self._session_meta[(a, b)]
            return (a, b, rel, a_pref, b_pref)
        if (b, a) in self._session_meta:
            rel, b_pref, a_pref = self._session_meta[(b, a)]
            return (b, a, rel, b_pref, a_pref)
        raise KeyError(f"no session between {a!r} and {b!r}")

    def reset_session(self, a: str, b: str) -> tuple[int, int]:
        """Bounce the a–b session: tear down, converge, re-establish, converge.

        Models a BGP session reset (hold-timer expiry, operator clear):
        routes learned over the session are withdrawn network-wide, then
        re-announced once it comes back.  Returns the convergence round
        counts of the (down, up) waves.

        Under the incremental engine both waves run off the dirty set
        seeded by the torn-down/re-established session, so the counts
        reflect how far each ripple actually travelled rather than the
        legacy full-scan round count; resulting routes are identical
        either way (see tests/bgp/test_engine_equivalence.py).
        """
        config = self.session_config(a, b)
        self.disconnect(config[0], config[1])
        down_rounds = self.converge()
        self.connect(*config)
        up_rounds = self.converge()
        return down_rounds, up_rounds

    # -- propagation --------------------------------------------------------------

    def converge(self, max_rounds: int = 200) -> int:
        """Propagate updates until no router's state changes.

        Returns:
            The number of rounds (waves) taken, counting the final wave
            that verifies the fixpoint — so an already-converged network
            reports 1 under either engine.

        Raises:
            ConvergenceError: if ``max_rounds`` is exceeded, which under
                valley-free policies indicates a modeling bug rather than a
                genuine BGP wedgie.
        """
        self.convergence_count += 1
        if self.profiler is not None:
            with self.profiler.time(f"bgp.converge.{self._engine}"):
                waves = self._run_engine(max_rounds)
        else:
            waves = self._run_engine(max_rounds)
        self.total_rounds += waves
        return waves

    def _run_engine(self, max_rounds: int) -> int:
        if self._engine == ENGINE_ROUNDS:
            return self._converge_rounds(max_rounds)
        return self._converge_incremental(max_rounds)

    def _converge_rounds(self, max_rounds: int) -> int:
        """The original full-scan engine: re-diff every session per round."""
        for round_number in range(1, max_rounds + 1):
            changed = self._propagate_round()
            if not changed:
                self._discard_pending_work()
                return round_number
        raise ConvergenceError(
            f"no fixpoint after {max_rounds} rounds; "
            "check relationships/policies for dispute wheels"
        )

    def _converge_incremental(self, max_rounds: int) -> int:
        """Dirty-set work queue: waves ripple outward from changed state.

        Each wave drains every router's pending-export buffer and
        delivers per-prefix deltas only for those (sender, prefix) pairs;
        receivers whose RIBs change queue their own exports for the next
        wave.  Newly created sessions get a one-off full-table sync.
        """
        waves = 0
        full_sync = self._take_full_sync()
        dirty = self._collect_dirty()
        while full_sync or dirty:
            waves += 1
            if waves > max_rounds:
                raise ConvergenceError(
                    f"no fixpoint after {max_rounds} waves; "
                    "check relationships/policies for dispute wheels"
                )
            for sender_name, receiver_name in full_sync:
                self._full_sync_session(sender_name, receiver_name)
            for sender_name in sorted(dirty):
                self._send_prefix_updates(sender_name, dirty[sender_name])
            self.routers_scanned += len(dirty) + len(full_sync)
            full_sync = []
            dirty = self._collect_dirty()
        # +1 for the implicit final wave that verifies the fixpoint,
        # keeping wave totals aligned with the rounds engine's convention
        # (an already-converged network reports one round).
        return waves + 1

    def _take_full_sync(self) -> list[tuple[str, str]]:
        """Directed sessions awaiting their initial full-table exchange."""
        pairs = list(dict.fromkeys(self._pending_full_sync))
        self._pending_full_sync.clear()
        return pairs

    def _collect_dirty(self) -> dict[str, tuple[Prefix, ...]]:
        """Drain every router's pending-export buffer (insertion order of
        ``routers`` is deterministic; prefix tuples arrive pre-sorted)."""
        dirty: dict[str, tuple[Prefix, ...]] = {}
        for name, router in self.routers.items():
            changed = router.drain_export_changes()
            if changed:
                dirty[name] = changed
        return dirty

    def _discard_pending_work(self) -> None:
        """A full-scan fixpoint subsumes the incremental work queue:
        nothing is left to ripple, so queued markers are stale."""
        for router in self.routers.values():
            router.clear_pending_exports()
        self._pending_full_sync.clear()

    def _full_sync_session(self, sender_name: str, receiver_name: str) -> None:
        """Initial full-table exchange over one new directed session."""
        sender = self.routers[sender_name]
        if receiver_name not in sender.neighbors:
            return  # torn down again before the sync could run
        receiver = self.routers[receiver_name]
        exports = sender.exports_for(receiver_name)
        previously_sent = sender.adj_rib_out.prefixes_to(receiver_name)
        for prefix, announcement in exports.items():
            if sender.adj_rib_out.last_sent(receiver_name, prefix) == announcement:
                continue
            sender.adj_rib_out.record(receiver_name, announcement)
            self.updates_delivered += 1
            receiver.receive_announcement(sender_name, announcement)
        # Sorted so withdrawal delivery order never depends on set
        # iteration order (TNG005; the replay-determinism invariant).
        for prefix in sorted(previously_sent - set(exports), key=str):
            sender.adj_rib_out.forget(receiver_name, prefix)
            self.withdrawals_delivered += 1
            receiver.receive_withdrawal(sender_name, Withdrawal(prefix))

    def _send_prefix_updates(
        self, sender_name: str, prefixes: tuple[Prefix, ...]
    ) -> None:
        """Deliver one router's changed prefixes to all its neighbors."""
        sender = self.routers[sender_name]
        for receiver_name in sender.neighbors:
            receiver = self.routers[receiver_name]
            for prefix in prefixes:
                announcement = sender.export_for(receiver_name, prefix)
                last = sender.adj_rib_out.last_sent(receiver_name, prefix)
                if announcement is not None:
                    if announcement == last:
                        continue
                    sender.adj_rib_out.record(receiver_name, announcement)
                    self.updates_delivered += 1
                    receiver.receive_announcement(sender_name, announcement)
                elif last is not None:
                    sender.adj_rib_out.forget(receiver_name, prefix)
                    self.withdrawals_delivered += 1
                    receiver.receive_withdrawal(sender_name, Withdrawal(prefix))

    def _propagate_round(self) -> bool:
        """One synchronous delivery wave.  Returns True if anything changed."""
        changed = False
        self.routers_scanned += len(self.routers)
        for sender_name, receiver_name in self._sessions:
            sender = self.routers[sender_name]
            receiver = self.routers[receiver_name]
            exports = sender.exports_for(receiver_name)
            previously_sent = sender.adj_rib_out.prefixes_to(receiver_name)
            for prefix, announcement in exports.items():
                if sender.adj_rib_out.last_sent(receiver_name, prefix) == announcement:
                    continue
                sender.adj_rib_out.record(receiver_name, announcement)
                self.updates_delivered += 1
                if receiver.receive_announcement(sender_name, announcement):
                    changed = True
            # Sorted so withdrawal delivery order never depends on set
            # iteration order (TNG005; the replay-determinism invariant).
            for prefix in sorted(previously_sent - set(exports), key=str):
                sender.adj_rib_out.forget(receiver_name, prefix)
                self.withdrawals_delivered += 1
                if receiver.receive_withdrawal(sender_name, Withdrawal(prefix)):
                    changed = True
        return changed

    # -- queries ------------------------------------------------------------------

    def best_path(
        self, router_name: str, prefix: Union[str, Prefix]
    ) -> Optional[AsPath]:
        """Best AS path from ``router_name`` toward ``prefix``."""
        return self.router(router_name).best_path(as_prefix(prefix))

    def reachable(self, router_name: str, prefix: Union[str, Prefix]) -> bool:
        """Does ``router_name`` currently have any route for ``prefix``?"""
        router = self.router(router_name)
        normalized = as_prefix(prefix)
        if normalized in router.originated:
            return True
        return router.best_route(normalized) is not None

    def routers_originating(self, prefix: Union[str, Prefix]) -> list[str]:
        """Names of routers currently originating ``prefix``."""
        normalized = as_prefix(prefix)
        return sorted(
            name for name, r in self.routers.items() if normalized in r.originated
        )

    def session_pairs(self) -> Iterable[tuple[str, str]]:
        """Directed sessions (sender, receiver)."""
        return tuple(self._sessions)
