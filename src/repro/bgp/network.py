"""AS-level topology and route propagation to convergence.

The engine deliberately ignores BGP timers (MRAI, convergence takes
"several minutes" in the paper — one reason BGP cannot do fast reroute).
Instead it computes the *converged* routing state by synchronous
iteration: each round, every router's exports are diffed against what the
neighbor last heard, deltas are delivered, decisions rerun — until a
fixpoint.  Under Gao–Rexford policies with deterministic tie-breaks the
fixpoint exists and is unique, and reaching it round-by-round mirrors the
"wait for BGP to propagate" step of the paper's discovery procedure.

Wall-clock convergence latency is modeled separately: callers that care
(e.g. the route-change experiment) charge ``CONVERGENCE_DELAY_S`` per
convergence when translating control-plane activity onto the data-plane
timeline.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from .attributes import AsPath
from .messages import Prefix, Withdrawal, as_prefix
from .policy import Relationship
from .router import BgpRouter

__all__ = ["ConvergenceError", "BgpNetwork", "CONVERGENCE_DELAY_S"]

#: Nominal wall-clock cost of one BGP convergence wave, for experiments
#: that put control-plane reactions on the data-plane timeline.  The paper
#: cites "BGP's several minute convergence time"; 180 s is a middle value.
CONVERGENCE_DELAY_S = 180.0


class ConvergenceError(RuntimeError):
    """Raised when propagation fails to reach a fixpoint (policy bug)."""


class BgpNetwork:
    """A set of BGP routers plus their sessions, with a propagation engine."""

    def __init__(self) -> None:
        self.routers: dict[str, BgpRouter] = {}
        #: Directed session list (a, b): a may send updates to b.
        self._sessions: list[tuple[str, str]] = []
        #: Session establishment parameters, keyed by the (a, b) order
        #: :meth:`connect` was called with — what a session reset replays.
        self._session_meta: dict[
            tuple[str, str], tuple[Relationship, Optional[int], Optional[int]]
        ] = {}
        self.total_rounds = 0
        self.convergence_count = 0

    # -- construction -----------------------------------------------------------

    def add_router(self, router: BgpRouter) -> BgpRouter:
        if router.name in self.routers:
            raise ValueError(f"duplicate router name: {router.name}")
        self.routers[router.name] = router
        return router

    def router(self, name: str) -> BgpRouter:
        try:
            return self.routers[name]
        except KeyError:
            raise KeyError(
                f"unknown router {name!r}; have {sorted(self.routers)}"
            ) from None

    def connect(
        self,
        a: str,
        b: str,
        relationship_of_b_to_a: Relationship,
        a_preference: Optional[int] = None,
        b_preference: Optional[int] = None,
    ) -> None:
        """Create a bidirectional eBGP session.

        Args:
            a, b: router names.
            relationship_of_b_to_a: how ``a`` sees ``b`` (e.g. PROVIDER
                means b is a's provider).
            a_preference: a's operator tie-break rank for this session.
            b_preference: b's rank for the reverse direction.
        """
        router_a = self.router(a)
        router_b = self.router(b)
        router_a.add_neighbor(
            b, router_b.asn, relationship_of_b_to_a, a_preference
        )
        router_b.add_neighbor(
            a, router_a.asn, relationship_of_b_to_a.inverse(), b_preference
        )
        self._sessions.append((a, b))
        self._sessions.append((b, a))
        self._session_meta[(a, b)] = (
            relationship_of_b_to_a,
            a_preference,
            b_preference,
        )

    def add_provider(
        self,
        customer: str,
        provider: str,
        customer_preference: Optional[int] = None,
    ) -> None:
        """Shorthand: ``provider`` sells transit to ``customer``."""
        self.connect(
            customer,
            provider,
            Relationship.PROVIDER,
            a_preference=customer_preference,
        )

    def add_peering(self, a: str, b: str) -> None:
        """Shorthand: settlement-free peering between ``a`` and ``b``."""
        self.connect(a, b, Relationship.PEER)

    def disconnect(self, a: str, b: str) -> None:
        """Tear down the session between ``a`` and ``b``.

        Both routers flush the routes learned over it and rerun their
        decision; call :meth:`converge` afterwards to propagate the
        fallout (withdrawals, new best paths).
        """
        router_a = self.router(a)
        router_b = self.router(b)
        if b not in router_a.neighbors:
            raise KeyError(f"no session between {a!r} and {b!r}")
        router_a.remove_neighbor(b)
        router_b.remove_neighbor(a)
        router_a.adj_rib_out.clear_neighbor(b)
        router_b.adj_rib_out.clear_neighbor(a)
        self._sessions = [
            s for s in self._sessions if s not in ((a, b), (b, a))
        ]
        self._session_meta.pop((a, b), None)
        self._session_meta.pop((b, a), None)

    def session_config(
        self, a: str, b: str
    ) -> tuple[str, str, Relationship, Optional[int], Optional[int]]:
        """The parameters :meth:`connect` was called with for this session.

        Returns ``(a, b, relationship_of_b_to_a, a_preference,
        b_preference)`` normalized to the original call orientation, so the
        tuple can be splatted straight back into :meth:`connect` — the
        capture half of a fault injector's session-down/session-up pair.
        """
        if (a, b) in self._session_meta:
            rel, a_pref, b_pref = self._session_meta[(a, b)]
            return (a, b, rel, a_pref, b_pref)
        if (b, a) in self._session_meta:
            rel, b_pref, a_pref = self._session_meta[(b, a)]
            return (b, a, rel, b_pref, a_pref)
        raise KeyError(f"no session between {a!r} and {b!r}")

    def reset_session(self, a: str, b: str) -> tuple[int, int]:
        """Bounce the a–b session: tear down, converge, re-establish, converge.

        Models a BGP session reset (hold-timer expiry, operator clear):
        routes learned over the session are withdrawn network-wide, then
        re-announced once it comes back.  Returns the convergence round
        counts of the (down, up) waves.
        """
        config = self.session_config(a, b)
        self.disconnect(config[0], config[1])
        down_rounds = self.converge()
        self.connect(*config)
        up_rounds = self.converge()
        return down_rounds, up_rounds

    # -- propagation --------------------------------------------------------------

    def converge(self, max_rounds: int = 200) -> int:
        """Propagate updates until no router's state changes.

        Returns:
            The number of rounds taken.

        Raises:
            ConvergenceError: if ``max_rounds`` is exceeded, which under
                valley-free policies indicates a modeling bug rather than a
                genuine BGP wedgie.
        """
        self.convergence_count += 1
        for round_number in range(1, max_rounds + 1):
            changed = self._propagate_round()
            self.total_rounds += 1
            if not changed:
                return round_number
        raise ConvergenceError(
            f"no fixpoint after {max_rounds} rounds; "
            "check relationships/policies for dispute wheels"
        )

    def _propagate_round(self) -> bool:
        """One synchronous delivery wave.  Returns True if anything changed."""
        changed = False
        for sender_name, receiver_name in self._sessions:
            sender = self.routers[sender_name]
            receiver = self.routers[receiver_name]
            exports = sender.exports_for(receiver_name)
            previously_sent = sender.adj_rib_out.prefixes_to(receiver_name)
            for prefix, announcement in exports.items():
                if sender.adj_rib_out.last_sent(receiver_name, prefix) == announcement:
                    continue
                sender.adj_rib_out.record(receiver_name, announcement)
                if receiver.receive_announcement(sender_name, announcement):
                    changed = True
            # Sorted so withdrawal delivery order never depends on set
            # iteration order (TNG005; the replay-determinism invariant).
            for prefix in sorted(previously_sent - set(exports), key=str):
                sender.adj_rib_out.forget(receiver_name, prefix)
                if receiver.receive_withdrawal(sender_name, Withdrawal(prefix)):
                    changed = True
        return changed

    # -- queries ------------------------------------------------------------------

    def best_path(
        self, router_name: str, prefix: Union[str, Prefix]
    ) -> Optional[AsPath]:
        """Best AS path from ``router_name`` toward ``prefix``."""
        return self.router(router_name).best_path(as_prefix(prefix))

    def reachable(self, router_name: str, prefix: Union[str, Prefix]) -> bool:
        """Does ``router_name`` currently have any route for ``prefix``?"""
        router = self.router(router_name)
        normalized = as_prefix(prefix)
        if normalized in router.originated:
            return True
        return router.best_route(normalized) is not None

    def routers_originating(self, prefix: Union[str, Prefix]) -> list[str]:
        """Names of routers currently originating ``prefix``."""
        normalized = as_prefix(prefix)
        return sorted(
            name for name, r in self.routers.items() if normalized in r.originated
        )

    def session_pairs(self) -> Iterable[tuple[str, str]]:
        """Directed sessions (sender, receiver)."""
        return tuple(self._sessions)
