"""Findings: what a lint rule reports, and how findings are identified.

A :class:`Finding` is one diagnosed occurrence — rule code, severity,
location, message — plus a :meth:`fingerprint` that names the occurrence
*stably* across unrelated edits (used by the baseline machinery, see
:mod:`repro.lint.baseline`).  Fingerprints deliberately exclude the line
number: inserting a docstring above a violation must not make it "new".
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field

__all__ = ["Severity", "Finding"]


class Severity(enum.IntEnum):
    """How bad a finding is; ordering is meaningful (higher = worse)."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnosed rule violation.

    Attributes:
        path: file the finding is in (as given to the engine), or a
            pseudo-path like ``scenario:vultr`` for semantic checks.
        line: 1-based line number (0 for whole-file/semantic findings).
        column: 1-based column (0 when not applicable).
        code: rule code, e.g. ``TNG001``.
        message: human-readable diagnosis.
        severity: see :class:`Severity`.
        snippet: the offending source line, stripped (empty when not
            applicable); feeds the fingerprint.
    """

    path: str
    line: int
    column: int
    code: str
    message: str
    severity: Severity = field(default=Severity.ERROR, compare=False)
    snippet: str = field(default="", compare=False)

    def fingerprint(self) -> str:
        """Stable identity for baselining: path + code + snippet digest.

        Two findings of the same rule on identical source lines in one
        file share a prefix and are disambiguated positionally by
        :class:`~repro.lint.baseline.Baseline`, so a moved-but-unchanged
        violation stays suppressed while a genuinely new one surfaces.
        """
        digest = hashlib.sha256(
            self.snippet.strip().encode("utf-8")
        ).hexdigest()[:16]
        return f"{self.path}::{self.code}::{digest}"

    def render(self) -> str:
        """One-line ``path:line:col: CODE message`` rendering."""
        location = self.path
        if self.line:
            location = f"{location}:{self.line}"
            if self.column:
                location = f"{location}:{self.column}"
        return f"{location}: {self.code} [{self.severity.label}] {self.message}"

    def as_dict(self) -> dict[str, object]:
        """JSON-reporter payload."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "code": self.code,
            "severity": self.severity.label,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }
