"""The interprocedural taint evaluator (TNG2xx) and its fixpoint.

The evaluator interprets each function's descriptor IR against an
abstract domain:

* **taints** — which nondeterminism kinds a value may carry
  (``wall-clock``, ``os-entropy``, ``environment``, ``unseeded-rng``),
  each with the *call chain* that produced it (for the finding message);
* **params** — which of the enclosing function's parameters the value
  derives from (how taint summaries compose across calls);
* **obj** — a coarse object kind for the handful of classes the rules
  care about: RNGs (seeded or not), ``SeedSequence``, ``Simulator``,
  process pools, open file handles, project-class instances (for method
  dispatch), and function references (for fork entrypoints).

The per-function result is a :class:`FunctionFacts`: the merged return
value, *param→sink* summaries (``param i`` of this function reaches sink
S through chain C), fork sites, constant-seed RNG constructions, and the
sink hits that become findings.  Facts compose: a caller passing a
tainted value into a callee whose summary says "param 0 reaches the
simulator scheduler" yields a finding at the caller's call site whose
chain stitches both halves together.

Everything runs to a fixpoint (the lattice is finite — taint kinds,
param sets — and chains are recorded once, first writer wins), then a
reporting pass derives findings for the modules being (re-)analyzed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..rules import _OS_ENTROPY, _RNG_CONSTRUCTORS, _WALLCLOCK
from .callgraph import ProjectGraph
from .summaries import Desc, FunctionSummary

__all__ = [
    "TAINT_WALLCLOCK",
    "TAINT_ENTROPY",
    "TAINT_ENV",
    "TAINT_RNG",
    "Value",
    "FunctionFacts",
    "Evaluator",
]

TAINT_WALLCLOCK = "wall-clock"
TAINT_ENTROPY = "os-entropy"
TAINT_ENV = "environment"
TAINT_RNG = "unseeded-rng"

#: Attribute names that schedule work on the shared simulator — writing a
#: tainted value here makes *event timing* nondeterministic.
_SIM_SINK_ATTRS = frozenset({"schedule_at", "schedule_in", "call_every"})
#: Attribute names that persist telemetry samples replays compare.
_TELEMETRY_SINK_ATTRS = frozenset(
    {"record", "record_aggregate", "record_aggregate_many"}
)
#: Report-writer surface (replay-compared output): TNG203 territory.
_REPORT_SINK_ATTRS = frozenset({"to_json"})
_REPORT_SINK_DOTTED = frozenset({"json.dump", "json.dumps"})
#: Class basenames that are simulation-state sinks when constructed or
#: fed via classmethods (``RecoveryLog.build``).
_SINK_CLASS_BASENAMES = frozenset({"RecoveryLog"})

#: Chains longer than this stop growing (first 4 + last 4 are kept).
_MAX_CHAIN = 10
#: Container element tracking depth (for fork-shipping checks).
_MAX_ELEMENTS_DEPTH = 3

_SIMULATOR_BASENAME = "Simulator"
_POOL_DOTTED = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
    }
)
_PROCESS_DOTTED = frozenset(
    {"multiprocessing.Process", "multiprocessing.context.Process"}
)
_SEEDSEQ_DOTTED = frozenset({"numpy.random.SeedSequence"})


def _clip_chain(chain: tuple[str, ...]) -> tuple[str, ...]:
    if len(chain) <= _MAX_CHAIN:
        return chain
    return (*chain[:4], "...", *chain[-5:])


@dataclass
class Value:
    """One abstract value."""

    taints: dict[str, tuple[str, ...]] = field(default_factory=dict)
    params: frozenset[int] = frozenset()
    obj: Optional[dict[str, Any]] = None
    elements: tuple["Value", ...] = ()

    @classmethod
    def bottom(cls) -> "Value":
        return cls()

    def tainted(self) -> bool:
        return bool(self.taints)

    def with_step(self, step: str) -> "Value":
        """A copy whose every taint chain is extended by ``step``."""
        if not self.taints:
            return self
        return Value(
            taints={
                kind: _clip_chain((*chain, step))
                for kind, chain in self.taints.items()
            },
            params=self.params,
            obj=self.obj,
            elements=self.elements,
        )

    @staticmethod
    def merge(values: list["Value"]) -> "Value":
        taints: dict[str, tuple[str, ...]] = {}
        params: set[int] = set()
        obj = None
        elements: list[Value] = []
        for value in values:
            for kind, chain in value.taints.items():
                taints.setdefault(kind, chain)
            params.update(value.params)
            if obj is None:
                obj = value.obj
            elements.extend(value.elements)
        return Value(
            taints=taints,
            params=frozenset(params),
            obj=obj,
            elements=tuple(elements[:8]),
        )

    def flat_objs(self, depth: int = _MAX_ELEMENTS_DEPTH) -> list[dict[str, Any]]:
        """This value's object kind plus its elements', recursively."""
        objs = [] if self.obj is None else [self.obj]
        if depth > 0:
            for element in self.elements:
                objs.extend(element.flat_objs(depth - 1))
        return objs


@dataclass
class FunctionFacts:
    """Derived, composable facts about one function."""

    returns: Value = field(default_factory=Value.bottom)
    #: ``{"param": i, "sink": str, "code": str, "chain": [...]}``
    param_sinks: list[dict[str, Any]] = field(default_factory=list)
    #: ``{"entry": qual|None, "entry_param": i|None, "ship_params": [i],
    #:   "shipped": [obj...], "line": int, "via": [qual...]}``
    param_forks: list[dict[str, Any]] = field(default_factory=list)
    #: Fully-resolved fork sites found in this function.
    fork_sites: list[dict[str, Any]] = field(default_factory=list)
    #: ``{"line": int, "target": str}`` — RNGs built with a literal seed.
    const_seed_rngs: list[dict[str, Any]] = field(default_factory=list)
    #: Resolved project callees (call-graph edges).
    calls: set[str] = field(default_factory=set)
    #: Raw findings: ``{"code", "line", "message"}``.
    sink_hits: list[dict[str, Any]] = field(default_factory=list)

    def signature(self) -> tuple:
        """Cheap convergence check for the fixpoint."""
        return (
            tuple(sorted(self.returns.taints)),
            tuple(sorted(self.returns.params)),
            None if self.returns.obj is None else self.returns.obj.get("kind"),
            len(self.param_sinks),
            len(self.param_forks),
            len(self.fork_sites),
            len(self.calls),
            len(self.sink_hits),
        )


class Evaluator:
    """Interprets descriptor IR against the current facts table."""

    def __init__(self, graph: ProjectGraph) -> None:
        self.graph = graph
        self.facts: dict[str, FunctionFacts] = {}
        #: Module name -> evaluated module-global environment.
        self.module_env: dict[str, dict[str, Value]] = {}
        #: Module name -> module-level sink hits / TNG202 hits.
        self.module_hits: dict[str, list[dict[str, Any]]] = {}
        #: Class qualname -> accumulated self-attribute environment.
        self.class_attrs: dict[str, dict[str, Value]] = {}

    # -- fixpoint -----------------------------------------------------------------

    def run_fixpoint(self, max_passes: int = 12) -> None:
        modules = sorted(self.graph.modules)
        for name in modules:
            self.module_env.setdefault(name, {})
        previous: Optional[tuple] = None
        for _ in range(max_passes):
            for name in modules:
                self._eval_module_level(name)
            for name in modules:
                summary = self.graph.modules[name]
                for qual in sorted(summary.functions):
                    self.facts[qual] = self._eval_function(
                        name, summary.functions[qual]
                    )
            signature = tuple(
                self.facts[q].signature() for q in sorted(self.facts)
            )
            if signature == previous:
                break
            previous = signature

    # -- module-level evaluation ---------------------------------------------------

    def _eval_module_level(self, module: str) -> None:
        summary = self.graph.modules[module]
        env = self.module_env[module]
        hits: list[dict[str, Any]] = []
        ctx = _FrameContext(
            self, module, qualname=f"{module}.<module>", params={}, hits=hits
        )
        for stmt in summary.toplevel:
            self._eval_stmt(stmt, env, ctx, module_level=True)
        self.module_hits[module] = hits

    # -- function evaluation -------------------------------------------------------

    def _eval_function(
        self, module: str, summary: FunctionSummary
    ) -> FunctionFacts:
        facts = FunctionFacts()
        env: dict[str, Value] = {}
        param_index = {name: i for i, name in enumerate(summary.params)}
        class_qual = self._enclosing_class(module, summary.qualname)
        for i, name in enumerate(summary.params):
            value = Value(params=frozenset({i}))
            if i == 0 and class_qual is not None and name in ("self", "cls"):
                value = Value(
                    params=frozenset({i}),
                    obj={"kind": "instance", "cls": class_qual},
                )
            default = summary.defaults.get(name)
            if default is not None:
                ctx_probe = _FrameContext(
                    self, module, summary.qualname, param_index, facts=facts
                )
                default_value = self._eval_expr(default, env, ctx_probe)
                if default_value.tainted():
                    merged = Value.merge([value, default_value])
                    value = Value(
                        taints={
                            kind: _clip_chain(
                                (*chain, f"default of parameter '{name}'")
                            )
                            for kind, chain in merged.taints.items()
                        },
                        params=value.params,
                        obj=merged.obj,
                        elements=merged.elements,
                    )
            env[name] = value
        ctx = _FrameContext(
            self, module, summary.qualname, param_index, facts=facts
        )
        for stmt in summary.body:
            self._eval_stmt(stmt, env, ctx)
        return facts

    def _enclosing_class(self, module: str, qualname: str) -> Optional[str]:
        prefix = qualname.rsplit(".", 1)[0]
        summary = self.graph.modules.get(module)
        if summary is not None and prefix in summary.classes:
            return prefix
        return None

    # -- statements ---------------------------------------------------------------

    def _eval_stmt(
        self,
        stmt: Desc,
        env: dict[str, Value],
        ctx: "_FrameContext",
        module_level: bool = False,
    ) -> None:
        kind = stmt.get("s")
        if kind == "assign":
            value = self._eval_expr(stmt["v"], env, ctx)
            for target in stmt["targets"]:
                env[target] = value
                is_global_bind = module_level or target in ctx.global_decls
                if (
                    is_global_bind
                    and value.obj is not None
                    and value.obj.get("kind") == "rng"
                ):
                    ctx.report(
                        "TNG202",
                        stmt["line"],
                        f"RNG object ({value.obj.get('origin', 'RNG')}) is "
                        f"aliased into module-global scope as '{target}'; "
                        "module-global generators couple every subsystem "
                        "that draws from them — pass an owned generator "
                        "instead",
                    )
                if module_level:
                    self.module_env[ctx.module][target] = value
        elif kind == "ret":
            value = self._eval_expr(stmt["v"], env, ctx)
            if ctx.facts is not None:
                ctx.facts.returns = Value.merge([ctx.facts.returns, value])
        elif kind == "expr":
            self._eval_expr(stmt["v"], env, ctx)
        elif kind == "setattr":
            value = self._eval_expr(stmt["v"], env, ctx)
            obj = stmt["obj"]
            env[f"{obj}.{stmt['attr']}"] = value
            if obj in ("self", "cls"):
                cls = self._enclosing_class(
                    ctx.module, ctx.qualname
                ) or ctx.qualname.rsplit(".", 1)[0]
                attrs = self.class_attrs.setdefault(cls, {})
                existing = attrs.get(stmt["attr"])
                attrs[stmt["attr"]] = (
                    value
                    if existing is None
                    else Value.merge([existing, value])
                )
        elif kind == "globaldecl":
            ctx.global_decls.update(stmt["names"])
        # "storesub" carries no dataflow; it exists for global-write
        # bookkeeping in the extractor.

    # -- expressions --------------------------------------------------------------

    def _eval_expr(
        self, desc: Desc, env: dict[str, Value], ctx: "_FrameContext"
    ) -> Value:
        kind = desc.get("k")
        if kind == "const":
            return Value(obj={"kind": "const", "value": desc.get("v")})
        if kind == "name":
            return self._eval_name(desc["id"], env, ctx)
        if kind == "modref":
            return self._eval_modref(desc["name"], ctx)
        if kind == "attr":
            return self._eval_attr(desc, env, ctx)
        if kind == "call":
            return self._eval_call(desc, env, ctx)
        if kind == "tuple":
            items = [self._eval_expr(d, env, ctx) for d in desc["items"]]
            merged = Value.merge(items)
            return Value(
                taints=merged.taints,
                params=merged.params,
                obj=None,
                elements=tuple(items[:8]),
            )
        if kind == "bin":
            parts = [self._eval_expr(d, env, ctx) for d in desc["parts"]]
            merged = Value.merge(parts)
            return Value(taints=merged.taints, params=merged.params)
        if kind == "sub":
            base = self._eval_expr(desc["base"], env, ctx)
            if (
                base.obj is not None
                and base.obj.get("kind") == "modref"
                and base.obj["name"] == "os.environ"
            ):
                return self._source(
                    TAINT_ENV,
                    f"os.environ[...] read ({ctx.where(desc.get('line', 0))})",
                )
            merged = Value.merge([base, *base.elements])
            return Value(taints=merged.taints, params=merged.params)
        return Value.bottom()

    def _eval_name(
        self, name: str, env: dict[str, Value], ctx: "_FrameContext"
    ) -> Value:
        if name in env:
            return env[name]
        summary = self.graph.modules[ctx.module]
        qual = f"{ctx.module}.{name}"
        if qual in summary.functions:
            return Value(obj={"kind": "func", "qual": qual})
        if qual in summary.classes:
            return Value(obj={"kind": "class", "qual": qual})
        module_env = self.module_env.get(ctx.module, {})
        if name in module_env:
            return module_env[name]
        resolved = summary.exports.get(name)
        if resolved is not None:
            return self._eval_modref(resolved, ctx)
        return Value.bottom()

    def _eval_modref(self, dotted: str, ctx: "_FrameContext") -> Value:
        resolved = self.graph.resolve(dotted)
        if resolved is not None:
            return Value(obj={"kind": resolved[0], "qual": resolved[1]})
        split = self.graph._split_module_prefix(dotted)
        if split is not None:
            module, remainder = split
            if len(remainder) == 1:
                value = self.module_env.get(module, {}).get(remainder[0])
                if value is not None:
                    return value
        return Value(obj={"kind": "modref", "name": dotted})

    def _eval_attr(
        self, desc: Desc, env: dict[str, Value], ctx: "_FrameContext"
    ) -> Value:
        base = self._eval_expr(desc["base"], env, ctx)
        attr = desc["attr"]
        if base.obj is not None:
            obj_kind = base.obj.get("kind")
            if obj_kind == "modref":
                return self._eval_modref(f"{base.obj['name']}.{attr}", ctx)
            if obj_kind == "instance":
                cls = base.obj["cls"]
                method = f"{cls}.{attr}"
                if method in self.graph.functions:
                    return Value(
                        obj={"kind": "method", "qual": method, "recv": base}
                    )
                attr_value = self.class_attrs.get(cls, {}).get(attr)
                if attr_value is not None:
                    return Value.merge([attr_value, Value(taints=base.taints)])
        pseudo = None
        if desc["base"].get("k") == "name":
            pseudo = env.get(f"{desc['base']['id']}.{attr}")
        if pseudo is not None:
            return pseudo
        # Unknown attribute: propagate the receiver's taints and object
        # (drawing on a tainted thing stays tainted; rng.uniform is a
        # bound method of an rng object).
        return Value(
            taints=base.taints,
            params=base.params,
            obj={"kind": "boundattr", "attr": attr, "recv": base},
        )

    # -- calls --------------------------------------------------------------------

    def _source(self, kind: str, step: str) -> Value:
        return Value(taints={kind: (step,)})

    def _eval_call(
        self, desc: Desc, env: dict[str, Value], ctx: "_FrameContext"
    ) -> Value:
        line = desc.get("line", 0)
        args = [self._eval_expr(d, env, ctx) for d in desc.get("args", [])]
        kwargs = {
            name: self._eval_expr(d, env, ctx)
            for name, d in desc.get("kw", {}).items()
        }
        dotted = desc.get("dotted")
        fn_value: Optional[Value] = None
        fn_attr: Optional[str] = None
        recv: Optional[Value] = None
        if dotted is None:
            fn_desc = desc.get("fn") or {"k": "const", "v": None}
            if fn_desc.get("k") == "attr":
                fn_attr = fn_desc["attr"]
                recv = self._eval_expr(fn_desc["base"], env, ctx)
                if (
                    recv.obj is not None
                    and recv.obj.get("kind") == "modref"
                ):
                    dotted = f"{recv.obj['name']}.{fn_attr}"
                else:
                    fn_value = self._eval_attr(fn_desc, env, ctx)
            else:
                fn_value = self._eval_expr(fn_desc, env, ctx)
                if fn_desc.get("k") == "name" and fn_value.obj is None:
                    # Unresolved bare name: builtin or comprehension var.
                    return self._builtin_call(fn_desc["id"], args, kwargs)

        if dotted is not None:
            return self._call_dotted(desc, dotted, args, kwargs, ctx, line)

        # Attribute call on a computed receiver.
        if fn_attr is not None and recv is not None:
            return self._call_attr(desc, fn_attr, recv, args, kwargs, ctx, line)

        # Calling a first-class value (funcref / classref / method).
        if fn_value is not None and fn_value.obj is not None:
            obj_kind = fn_value.obj.get("kind")
            if obj_kind == "func":
                return self._call_project(
                    fn_value.obj["qual"], args, kwargs, ctx, line
                )
            if obj_kind == "method":
                return self._call_project(
                    fn_value.obj["qual"],
                    [fn_value.obj["recv"], *args],
                    kwargs,
                    ctx,
                    line,
                )
            if obj_kind == "class":
                return self._construct(fn_value.obj["qual"], args, kwargs, ctx, line)
        return self._opaque_call(args, kwargs)

    def _builtin_call(
        self, name: str, args: list[Value], kwargs: dict[str, Value]
    ) -> Value:
        if name == "open":
            return Value(obj={"kind": "file", "origin": "open(...)"})
        return self._opaque_call(args, kwargs)

    def _opaque_call(
        self, args: list[Value], kwargs: dict[str, Value]
    ) -> Value:
        """Unknown callable: conservatively propagate argument taints."""
        merged = Value.merge([*args, *kwargs.values()])
        return Value(taints=merged.taints, params=merged.params)

    def _call_dotted(
        self,
        desc: Desc,
        dotted: str,
        args: list[Value],
        kwargs: dict[str, Value],
        ctx: "_FrameContext",
        line: int,
    ) -> Value:
        # 1. Known nondeterminism sources.
        if dotted in _WALLCLOCK:
            return self._source(
                TAINT_WALLCLOCK, f"{dotted}() ({ctx.where(line)})"
            )
        if dotted in _OS_ENTROPY:
            return self._source(
                TAINT_ENTROPY, f"{dotted}() ({ctx.where(line)})"
            )
        if dotted == "os.getenv" or dotted.startswith("os.environ"):
            return self._source(
                TAINT_ENV, f"{dotted}() ({ctx.where(line)})"
            )
        # 2. RNG / SeedSequence / pool / process constructors.
        if dotted in _SEEDSEQ_DOTTED:
            return Value(obj={"kind": "seedseq"})
        if dotted in _RNG_CONSTRUCTORS:
            return self._construct_rng(dotted, desc, args, kwargs, ctx, line)
        if dotted in _POOL_DOTTED:
            return Value(obj={"kind": "pool"})
        if dotted in _PROCESS_DOTTED:
            self._record_fork(desc, args, kwargs, ctx, line, entry_kw="target")
            return Value(obj={"kind": "process"})
        if dotted in _REPORT_SINK_DOTTED:
            self._check_sink(
                "report writer", "TNG203", args, kwargs, ctx, line,
                detail=f"{dotted}()",
            )
            return self._opaque_call(args, kwargs)
        # 3. Project functions / classes (possibly through re-exports).
        resolved = self.graph.resolve(dotted)
        if resolved is not None:
            what, qual = resolved
            if what == "func":
                return self._call_project(qual, args, kwargs, ctx, line)
            return self._construct(qual, args, kwargs, ctx, line)
        # 4. Sink-looking dotted names (``store.record`` via module alias).
        basename = dotted.rsplit(".", 1)[-1]
        sink = self._sink_for_attr(basename, None)
        if sink is not None:
            self._check_sink(sink[0], sink[1], args, kwargs, ctx, line,
                             detail=f"{dotted}()")
        return self._opaque_call(args, kwargs)

    def _construct_rng(
        self,
        dotted: str,
        desc: Desc,
        args: list[Value],
        kwargs: dict[str, Value],
        ctx: "_FrameContext",
        line: int,
    ) -> Value:
        seed_value = args[0] if args else None
        for key in ("seed", "entropy"):
            if key in kwargs:
                seed_value = kwargs[key]
        seeded = seed_value is not None and not (
            seed_value.obj is not None
            and seed_value.obj.get("kind") == "const"
            and seed_value.obj.get("value") is None
        )
        if not seeded:
            # The generator itself is the source; every draw from it is
            # tainted (handled via the unseeded flag at draw sites).
            return Value(
                taints={
                    TAINT_RNG: (
                        f"unseeded {dotted}() ({ctx.where(line)})",
                    )
                },
                obj={"kind": "rng", "seeded": False, "origin": f"{dotted}()"},
            )
        if (
            seed_value is not None
            and seed_value.obj is not None
            and seed_value.obj.get("kind") == "const"
            and not seed_value.params
        ):
            if ctx.facts is not None:
                ctx.facts.const_seed_rngs.append(
                    {
                        "line": line,
                        "target": f"{dotted}({seed_value.obj.get('value')!r})",
                        "where": ctx.where(line),
                    }
                )
        taints = dict(seed_value.taints) if seed_value is not None else {}
        return Value(
            taints=taints,
            obj={"kind": "rng", "seeded": True, "origin": f"{dotted}(seed)"},
        )

    def _sink_for_attr(
        self, attr: str, recv: Optional[Value]
    ) -> Optional[tuple[str, str]]:
        if attr in _SIM_SINK_ATTRS:
            return ("simulator event scheduling", "TNG201")
        if attr in _TELEMETRY_SINK_ATTRS:
            return ("telemetry store", "TNG201")
        if attr in _REPORT_SINK_ATTRS:
            return ("report writer", "TNG203")
        if attr == "write" and recv is not None and recv.obj is not None:
            if recv.obj.get("kind") == "file":
                return ("report writer", "TNG203")
        return None

    def _call_attr(
        self,
        desc: Desc,
        attr: str,
        recv: Value,
        args: list[Value],
        kwargs: dict[str, Value],
        ctx: "_FrameContext",
        line: int,
    ) -> Value:
        obj = recv.obj or {}
        obj_kind = obj.get("kind")
        # Fork boundaries take precedence over everything.
        if obj_kind in ("pool", "process") and attr in ("submit", "map", "apply_async"):
            self._record_fork(desc, args, kwargs, ctx, line, entry_arg=0)
            return self._opaque_call(args[1:], kwargs)
        if obj_kind == "modref" and obj.get("name", "").startswith(
            "multiprocessing"
        ):
            if attr in ("Process",):
                self._record_fork(desc, args, kwargs, ctx, line, entry_kw="target")
                return Value(obj={"kind": "process"})
        # Sinks.
        sink = self._sink_for_attr(attr, recv)
        if sink is not None:
            self._check_sink(
                sink[0], sink[1], args, kwargs, ctx, line,
                detail=f".{attr}()",
            )
            return Value.bottom()
        # SeedSequence spawning stays a SeedSequence.
        if obj_kind == "seedseq":
            if attr in ("spawn", "generate_state"):
                return Value(obj={"kind": "seedseq"})
            return Value.bottom()
        # Draws on an RNG object.
        if obj_kind == "rng":
            if not obj.get("seeded", True):
                return Value(
                    taints={
                        kind: chain
                        for kind, chain in recv.taints.items()
                    }
                    or {
                        TAINT_RNG: (
                            f"draw from unseeded RNG ({ctx.where(line)})",
                        )
                    },
                    params=recv.params,
                )
            return Value(params=recv.params)
        # Project instance: method dispatch.
        if obj_kind == "instance":
            method = f"{obj['cls']}.{attr}"
            if method in self.graph.functions:
                return self._call_project(
                    method, [recv, *args], kwargs, ctx, line
                )
        # Unknown receiver: taints flow through.
        return self._opaque_call([recv, *args], kwargs)

    def _check_sink(
        self,
        sink: str,
        code: str,
        args: list[Value],
        kwargs: dict[str, Value],
        ctx: "_FrameContext",
        line: int,
        detail: str = "",
    ) -> None:
        values = [*args, *kwargs.values()]
        for value in values:
            for kind, chain in value.taints.items():
                if code == "TNG203" and kind not in (
                    TAINT_WALLCLOCK,
                    TAINT_ENTROPY,
                ):
                    continue
                full = [*chain, f"reaches {sink} {detail} ({ctx.where(line)})"]
                ctx.report(
                    code,
                    line,
                    self._taint_message(code, kind, full),
                )
            if value.params and ctx.facts is not None:
                for index in sorted(value.params):
                    ctx.facts.param_sinks.append(
                        {
                            "param": index,
                            "sink": sink,
                            "code": code,
                            "chain": [
                                f"reaches {sink} {detail} ({ctx.where(line)})"
                            ],
                        }
                    )

    @staticmethod
    def _taint_message(code: str, kind: str, chain: list[str]) -> str:
        rendered = " -> ".join(chain)
        if code == "TNG203":
            return (
                f"{kind} taint reaches replay-compared output: {rendered}"
            )
        return (
            f"nondeterministic value ({kind}) reaches simulation state: "
            f"{rendered}"
        )

    def _record_fork(
        self,
        desc: Desc,
        args: list[Value],
        kwargs: dict[str, Value],
        ctx: "_FrameContext",
        line: int,
        entry_arg: Optional[int] = None,
        entry_kw: Optional[str] = None,
    ) -> None:
        if ctx.facts is None:
            return
        entry_value: Optional[Value] = None
        shipped: list[Value] = []
        if entry_arg is not None and len(args) > entry_arg:
            entry_value = args[entry_arg]
            shipped = args[entry_arg + 1:]
        if entry_kw is not None and entry_kw in kwargs:
            entry_value = kwargs[entry_kw]
        shipped.extend(
            v for k, v in kwargs.items() if k in ("args", "kwds", "kwargs")
        )
        entry: Optional[str] = None
        entry_param: Optional[int] = None
        if entry_value is not None and entry_value.obj is not None:
            obj_kind = entry_value.obj.get("kind")
            if obj_kind in ("func", "method"):
                entry = entry_value.obj["qual"]
        if entry is None and entry_value is not None and entry_value.params:
            entry_param = min(entry_value.params)
        shipped_objs = []
        ship_params: set[int] = set()
        for value in shipped:
            for obj in value.flat_objs():
                if obj.get("kind") in ("rng", "sim", "file"):
                    shipped_objs.append(obj)
            ship_params.update(value.params)
        site = {
            "line": line,
            "entry": entry,
            "entry_param": entry_param,
            "ship_params": sorted(ship_params),
            "shipped": shipped_objs,
            "via": [ctx.qualname],
        }
        if entry_param is not None or ship_params:
            ctx.facts.param_forks.append(site)
        if entry is not None or shipped_objs:
            ctx.facts.fork_sites.append(dict(site))

    def _construct(
        self,
        class_qual: str,
        args: list[Value],
        kwargs: dict[str, Value],
        ctx: "_FrameContext",
        line: int,
    ) -> Value:
        basename = class_qual.rsplit(".", 1)[-1]
        if basename in _SINK_CLASS_BASENAMES:
            self._check_sink(
                "RecoveryLog", "TNG201", args, kwargs, ctx, line,
                detail=f"{basename}(...)",
            )
        init = f"{class_qual}.__init__"
        if init in self.graph.functions:
            self._call_project(
                init,
                [Value(obj={"kind": "instance", "cls": class_qual}), *args],
                kwargs,
                ctx,
                line,
            )
        merged = Value.merge([*args, *kwargs.values()])
        obj: dict[str, Any] = {"kind": "instance", "cls": class_qual}
        if basename == _SIMULATOR_BASENAME:
            obj = {"kind": "sim", "origin": f"{basename}()"}
        return Value(
            taints=merged.taints,
            params=merged.params,
            obj=obj,
            elements=tuple([*args, *kwargs.values()][:8]),
        )

    def _call_project(
        self,
        qual: str,
        args: list[Value],
        kwargs: dict[str, Value],
        ctx: "_FrameContext",
        line: int,
    ) -> Value:
        if ctx.facts is not None:
            ctx.facts.calls.add(qual)
        callee_module = self.graph.functions.get(qual)
        if callee_module is None:
            return self._opaque_call(args, kwargs)
        callee = self.graph.modules[callee_module].functions[qual]
        callee_facts = self.facts.get(qual, FunctionFacts())
        # Classmethod `build(cls, ...)` on a sink class.
        class_prefix = qual.rsplit(".", 2)
        if (
            len(class_prefix) >= 2
            and class_prefix[-2] in _SINK_CLASS_BASENAMES
        ):
            self._check_sink(
                class_prefix[-2], "TNG201", args, kwargs, ctx, line,
                detail=f"{class_prefix[-2]}.{class_prefix[-1]}(...)",
            )
        # Map arguments to parameter indices.
        arg_by_index: dict[int, Value] = dict(enumerate(args))
        for name, value in kwargs.items():
            if name in callee.params:
                arg_by_index[callee.params.index(name)] = value
        # Param → sink summaries: tainted arg reaches a sink inside callee.
        for ps in callee_facts.param_sinks:
            value = arg_by_index.get(ps["param"])
            if value is None:
                continue
            param_name = (
                callee.params[ps["param"]]
                if ps["param"] < len(callee.params)
                else f"arg{ps['param']}"
            )
            step = (
                f"passed to {qual}(...{param_name}...) ({ctx.where(line)})"
            )
            for kind, chain in value.taints.items():
                if ps["code"] == "TNG203" and kind not in (
                    TAINT_WALLCLOCK,
                    TAINT_ENTROPY,
                ):
                    continue
                full = [*chain, step, *ps["chain"]]
                ctx.report(
                    ps["code"],
                    line,
                    self._taint_message(ps["code"], kind, _list_clip(full)),
                )
            if value.params and ctx.facts is not None:
                for index in sorted(value.params):
                    ctx.facts.param_sinks.append(
                        {
                            "param": index,
                            "sink": ps["sink"],
                            "code": ps["code"],
                            "chain": _list_clip([step, *ps["chain"]]),
                        }
                    )
        # Param → fork summaries: entry/arguments resolved at this level.
        for pf in callee_facts.param_forks:
            entry = pf.get("entry")
            if entry is None and pf.get("entry_param") is not None:
                value = arg_by_index.get(pf["entry_param"])
                if (
                    value is not None
                    and value.obj is not None
                    and value.obj.get("kind") in ("func", "method")
                ):
                    entry = value.obj["qual"]
            shipped = list(pf.get("shipped", []))
            ship_params: set[int] = set()
            for index in pf.get("ship_params", []):
                value = arg_by_index.get(index)
                if value is None:
                    continue
                for obj in value.flat_objs():
                    if obj.get("kind") in ("rng", "sim", "file"):
                        shipped.append(obj)
                ship_params.update(value.params)
            if ctx.facts is not None and len(pf.get("via", [])) < 6:
                site = {
                    "line": line,
                    "entry": entry,
                    "entry_param": None if entry is not None else pf.get("entry_param"),
                    "ship_params": sorted(ship_params),
                    "shipped": shipped,
                    "via": [ctx.qualname, *pf.get("via", [])],
                }
                if entry is not None or shipped:
                    ctx.facts.fork_sites.append(site)
                if entry is None and (
                    pf.get("entry_param") is not None or ship_params
                ):
                    ctx.facts.param_forks.append(dict(site))
        # Return value: callee's own return taints, plus taint flowing
        # through returned parameters.
        result_parts = [
            callee_facts.returns.with_step(
                f"returned by {qual} ({ctx.where(line)})"
            )
        ]
        for index in callee_facts.returns.params:
            value = arg_by_index.get(index)
            if value is not None and value.taints:
                result_parts.append(
                    value.with_step(f"through {qual} ({ctx.where(line)})")
                )
        merged = Value.merge(result_parts)
        # The caller's params feeding returned values keep composing.
        passthrough_params: set[int] = set()
        for index in callee_facts.returns.params:
            value = arg_by_index.get(index)
            if value is not None:
                passthrough_params.update(value.params)
        return Value(
            taints=merged.taints,
            params=frozenset(passthrough_params),
            obj=merged.obj if merged.obj not in (None,) else None,
            elements=merged.elements,
        )


def _list_clip(chain: list[str]) -> list[str]:
    if len(chain) <= _MAX_CHAIN:
        return chain
    return [*chain[:4], "...", *chain[-5:]]


@dataclass
class _FrameContext:
    """Evaluation context for one function (or module) body."""

    evaluator: Evaluator
    module: str
    qualname: str
    params: dict[str, int]
    facts: Optional[FunctionFacts] = None
    hits: Optional[list[dict[str, Any]]] = None
    global_decls: set[str] = field(default_factory=set)

    def where(self, line: int) -> str:
        path = self.evaluator.graph.modules[self.module].path
        return f"{path}:{line}"

    def report(self, code: str, line: int, message: str) -> None:
        hit = {"code": code, "line": line, "message": message}
        if self.facts is not None:
            if hit not in self.facts.sink_hits:
                self.facts.sink_hits.append(hit)
        elif self.hits is not None:
            if hit not in self.hits:
                self.hits.append(hit)
